//! # field-replication
//!
//! A full implementation of **“Performance Enhancement Through
//! Replication in an Object-Oriented DBMS”** (Shekita & Carey, SIGMOD
//! 1989): *field replication* — selectively replicating data fields
//! reachable through reference attributes so that queries avoid
//! functional joins — with both of the paper's storage strategies
//! (in-place and separate), inverted-path maintenance, a replica-aware
//! query processor, the paper's analytical cost model, and an
//! I/O-measured storage engine to validate it.
//!
//! This crate is a facade: it re-exports the public API of the workspace
//! crates. Start with [`Database`].
//!
//! ```
//! use field_replication::{Database, DbConfig, Strategy, TypeDef, FieldType, Value};
//! use field_replication::query::{ReadQuery, Filter};
//!
//! let mut db = Database::in_memory(DbConfig::default());
//! db.define_type(TypeDef::new("DEPT", vec![
//!     ("name", FieldType::Str),
//! ])).unwrap();
//! db.define_type(TypeDef::new("EMP", vec![
//!     ("name", FieldType::Str),
//!     ("salary", FieldType::Int),
//!     ("dept", FieldType::Ref("DEPT".into())),
//! ])).unwrap();
//! db.create_set("Dept", "DEPT").unwrap();
//! db.create_set("Emp1", "EMP").unwrap();
//!
//! let d = db.insert("Dept", vec![Value::Str("Shoe".into())]).unwrap();
//! db.insert("Emp1", vec![
//!     Value::Str("Alice".into()), Value::Int(120_000), Value::Ref(d),
//! ]).unwrap();
//!
//! // replicate Emp1.dept.name (§3.1) — the functional join disappears.
//! db.replicate("Emp1.dept.name", Strategy::InPlace).unwrap();
//!
//! let res = ReadQuery::on("Emp1")
//!     .filter(Filter::Range {
//!         path: "salary".into(),
//!         lo: Value::Int(100_000),
//!         hi: Value::Int(i64::MAX),
//!     })
//!     .project(["name", "salary", "dept.name"])
//!     .run(&mut db).unwrap();
//! assert_eq!(res.rows[0][2], Some(Value::Str("Shoe".into())));
//! ```

/// B⁺-tree indexes and key encodings.
pub use fieldrep_btree as btree;
/// The schema catalog (sets, links, replication paths, replica groups).
pub use fieldrep_catalog as catalog;
/// The replication engine and [`Database`] facade.
pub use fieldrep_core as core;
/// The paper's §6 analytical cost model.
pub use fieldrep_costmodel as costmodel;
/// EXTRA-style statement language (`define type`, `create`, `replicate`,
/// `retrieve`, `replace`, …) — the syntax the paper's examples use.
pub use fieldrep_lang as lang;
/// The EXTRA-subset data model (types, values, objects, paths).
pub use fieldrep_model as model;
/// Path indexes: replicated-value vs Gemstone-style (§3.3.4 / §7.2).
pub use fieldrep_pathindex as pathindex;
/// Read/update query processing.
pub use fieldrep_query as query;
/// The storage substrate (pages, buffer pool, heap files, I/O counters).
pub use fieldrep_storage as storage;

pub use fieldrep_catalog::{IndexKind, PathId, SetId, Strategy};
pub use fieldrep_core::{Database, DbConfig, DbError};
pub use fieldrep_model::{FieldType, Object, PathExpr, TypeDef, Value};
pub use fieldrep_storage::{IoProfile, Oid};
