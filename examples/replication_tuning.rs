//! Strategy tuning: which replication strategy wins for *your* query
//! mix? Reproduces the paper's §6 experiment empirically on the real
//! engine at a reduced scale, sweeping the update probability, and
//! prints the measured crossovers next to the analytical predictions.
//!
//! ```text
//! cargo run --release --example replication_tuning
//! ```

use field_replication::costmodel::{total_cost, IndexSetting, ModelStrategy};
use field_replication::Strategy;
use fieldrep_bench::{avg_read_io, avg_update_io, build_workload, WorkloadSpec};

fn main() {
    let s_count = 2000; // scaled-down |S| (the paper uses 10 000)
    let sharing = 10;
    let setting = IndexSetting::Unclustered;
    let queries = 4;

    println!("=== Empirical strategy tuning: f = {sharing}, |S| = {s_count}, unclustered ===\n");

    // Measure C_read and C_update once per strategy.
    let mut measured = Vec::new();
    for (name, strat, model) in [
        ("none", None, ModelStrategy::None),
        ("in-place", Some(Strategy::InPlace), ModelStrategy::InPlace),
        (
            "separate",
            Some(Strategy::Separate),
            ModelStrategy::Separate,
        ),
    ] {
        let spec = WorkloadSpec::paper(sharing, setting, strat).scaled(s_count);
        let params = spec.params();
        let mut w = build_workload(spec).expect("build workload");
        let read = avg_read_io(&mut w, queries).expect("read measurement");
        let update = avg_update_io(&mut w, queries).expect("update measurement");
        println!("{name:>9}: measured C_read = {read:7.1}   C_update = {update:7.1}");
        measured.push((name, read, update, params, model));
    }

    println!(
        "\n{:>6} | {:^28} | {:^28}",
        "P_up", "measured C_total", "analytical C_total"
    );
    println!(
        "{:>6} | {:>8} {:>8} {:>8}  | {:>8} {:>8} {:>8}",
        "", "none", "in-pl", "sep", "none", "in-pl", "sep"
    );
    let mut crossover_measured = None;
    let mut prev_winner = "";
    for i in 0..=10 {
        let p = i as f64 / 10.0;
        let totals: Vec<f64> = measured
            .iter()
            .map(|(_, r, u, _, _)| (1.0 - p) * r + p * u)
            .collect();
        let analytic: Vec<f64> = measured
            .iter()
            .map(|(_, _, _, params, model)| total_cost(params, *model, setting, p))
            .collect();
        print!("{p:>6.1} |");
        for t in &totals {
            print!(" {t:>8.1}");
        }
        print!("  |");
        for t in &analytic {
            print!(" {t:>8.1}");
        }
        println!();

        // Track the in-place / separate crossover.
        let winner = if totals[1] <= totals[2] {
            "in-place"
        } else {
            "separate"
        };
        if prev_winner == "in-place" && winner == "separate" && crossover_measured.is_none() {
            crossover_measured = Some(p);
        }
        prev_winner = winner;
    }

    println!();
    match crossover_measured {
        Some(p) => println!(
            "Measured in-place→separate crossover near P_up ≈ {p:.1}; the paper's \
             analysis puts it between 0.15 and 0.35 (§6.6)."
        ),
        None => println!("No in-place→separate crossover in [0,1] at these parameters."),
    }
    println!("Recommendation: replicate frequently-read, rarely-updated paths in-place;");
    println!("switch heavily-shared, update-prone paths to separate replication.");
}
