//! An interactive EXTRA-style shell over the field-replication engine.
//!
//! ```text
//! cargo run --release --example extra_repl            # interactive
//! cargo run --release --example extra_repl -- --demo  # scripted demo
//! echo 'show catalog' | cargo run --example extra_repl
//! ```
//!
//! Statements end with `;` (or a lone newline in interactive mode).
//! Supported: `define type`, `create`, `replicate … [using separate]
//! [deferred]`, `drop replicate`, `build [clustered] btree on`,
//! `insert … as $var`, `retrieve (…) where …`,
//! `retrieve (…) from sys.<table> where …`, `replace (…) where …`,
//! `delete from … where …`, `sync`, `set slowlog …`,
//! `show catalog|pending|io|stats|slowlog`.

use field_replication::lang::Interpreter;
use field_replication::DbConfig;
use std::io::{BufRead, Write};

const DEMO: &str = r#"
define type ORG ( name: char[], budget: int );
define type DEPT ( name: char[], budget: int, org: ref ORG );
define type EMP ( name: char[], age: int, salary: int, dept: ref DEPT );
create Org: {own ref ORG};
create Dept: {own ref DEPT};
create Emp1: {own ref EMP};
create Emp2: {own ref EMP};

insert Org (name = "Acme", budget = 5000000) as $acme;
insert Dept (name = "Shoe", budget = 100000, org = $acme) as $shoe;
insert Dept (name = "Toy", budget = 200000, org = $acme) as $toy;
insert Emp1 (name = "Alice", age = 34, salary = 120000, dept = $shoe);
insert Emp1 (name = "Bob", age = 29, salary = 90000, dept = $toy);
insert Emp1 (name = "Cara", age = 41, salary = 150000, dept = $toy);

replicate Emp1.dept.name;
replicate Emp1.dept.org.name;
show catalog;

retrieve (Emp1.name, Emp1.salary, Emp1.dept.name) where Emp1.salary > 100000;
replace (Dept.name = "Footwear") where Dept.name = "Shoe";
retrieve (Emp1.name, Emp1.dept.name) where Emp1.salary > 100000;

set slowlog threshold 0 ms;
retrieve (Emp1.name, Emp1.dept.org.name) where Emp1.age > 30;
set slowlog off;
retrieve (statement, io_pages, rows) from sys.slow_queries;
retrieve (name, value) from sys.metrics where name = "storage.pool.hits";
"#;

fn main() {
    let mut it = Interpreter::new(DbConfig::default());
    let demo = std::env::args().any(|a| a == "--demo");

    if demo {
        println!("-- running built-in demo script --\n");
        for stmt in split_statements(DEMO) {
            println!("extra> {}", stmt.trim());
            match it.execute(&stmt) {
                Ok(out) => println!("{out}\n"),
                Err(e) => println!("{e}\n"),
            }
        }
        return;
    }

    eprintln!("EXTRA-style shell — end statements with ';', Ctrl-D to quit.");
    let stdin = std::io::stdin();
    let mut buf = String::new();
    loop {
        if buf.is_empty() {
            eprint!("extra> ");
        } else {
            eprint!("   ..> ");
        }
        std::io::stderr().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        buf.push_str(&line);
        if !buf.trim_end().ends_with(';') && !line.trim().is_empty() {
            continue; // keep accumulating until ';'
        }
        let stmt = buf.trim();
        if !stmt.is_empty() {
            match it.execute(stmt.trim_end_matches(';')) {
                Ok(out) => println!("{out}"),
                Err(e) => println!("{e}"),
            }
        }
        buf.clear();
    }
}

/// Split a script on ';' while respecting string literals.
fn split_statements(src: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    let mut chars = src.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            '\\' if in_str => {
                cur.push(c);
                if let Some(n) = chars.next() {
                    cur.push(n);
                }
            }
            ';' if !in_str => {
                if !cur.trim().is_empty() {
                    out.push(cur.trim().to_string());
                }
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}
