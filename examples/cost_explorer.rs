//! Interactive-ish exploration of the §6 analytical cost model: pass a
//! sharing level and selectivities on the command line and get the full
//! cost breakdown, the Figure-11/13 curves, and the break-even update
//! probabilities.
//!
//! ```text
//! cargo run --example cost_explorer -- [f] [f_r] [f_s]
//! cargo run --example cost_explorer -- 20 0.002 0.001
//! ```

use field_replication::costmodel::{
    crossover, percent_difference, read_cost, recommend, update_cost, IndexSetting, ModelStrategy,
    Params,
};

fn main() {
    let mut args = std::env::args().skip(1);
    let f: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(10.0);
    let fr: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0.002);
    let fs: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0.001);

    let params = Params {
        sharing: f,
        read_sel: fr,
        update_sel: fs,
        ..Params::default()
    };
    println!(
        "Cost model at f = {f}, f_r = {fr}, f_s = {fs}  (|S| = {}, |R| = {})\n",
        params.s_count,
        params.r_count()
    );

    for setting in [IndexSetting::Unclustered, IndexSetting::Clustered] {
        println!("--- {setting:?} indexes ---");
        for strat in [
            ModelStrategy::None,
            ModelStrategy::InPlace,
            ModelStrategy::Separate,
        ] {
            let r = read_cost(&params, strat, setting);
            let u = update_cost(&params, strat, setting);
            println!("{strat:?}:");
            print!("  C_read  = {:7.1}  [", r.total());
            for (n, v) in &r.terms {
                print!(" {n}={v:.1}");
            }
            println!(" ]");
            print!("  C_update= {:7.1}  [", u.total());
            for (n, v) in &u.terms {
                print!(" {n}={v:.1}");
            }
            println!(" ]");
        }

        // Break-even points vs. no replication.
        for strat in [ModelStrategy::InPlace, ModelStrategy::Separate] {
            let mut break_even = None;
            for i in 0..=1000 {
                let p = i as f64 / 1000.0;
                if percent_difference(&params, strat, setting, p) > 0.0 {
                    break_even = Some(p);
                    break;
                }
            }
            match break_even {
                Some(p) if p > 0.0 => println!("{strat:?} stops paying off at P_update ≈ {p:.3}"),
                Some(_) => println!("{strat:?} never pays off at these parameters"),
                None => println!("{strat:?} pays off for every update probability"),
            }
        }
        // Advisor summary.
        for p_up in [0.05, 0.25, 0.50] {
            let r = recommend(&params, setting, p_up);
            println!(
                "advisor: at P_update = {p_up:.2} choose {:?} (saves {:.1}%)",
                r.strategy, r.saving_pct
            );
        }
        if let Some(x) = crossover(
            &params,
            setting,
            ModelStrategy::InPlace,
            ModelStrategy::Separate,
        ) {
            println!("advisor: in-place/separate crossover at P_update ≈ {x:.3}");
        }
        println!();
    }
}
