//! Quickstart: the paper's Figure-1 employee database and §3.1 query.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds the ORG / DEPT / EMP schema, replicates `Emp1.dept.name`, runs
//! the paper's example query ("name, salary, and department of each
//! employee who makes more than $100,000") with and without replication,
//! and prints the measured page I/O of both plans.

use field_replication::query::{Filter, ReadQuery};
use field_replication::{Database, DbConfig, FieldType, IndexKind, Strategy, TypeDef, Value};

fn main() {
    let mut db = Database::in_memory(DbConfig::default());

    // --- Figure 1: define type ORG / DEPT / EMP ------------------------
    db.define_type(TypeDef::new(
        "ORG",
        vec![("name", FieldType::Str), ("budget", FieldType::Int)],
    ))
    .unwrap();
    db.define_type(TypeDef::new(
        "DEPT",
        vec![
            ("name", FieldType::Str),
            ("budget", FieldType::Int),
            ("org", FieldType::Ref("ORG".into())),
            // "various fields..." — realistic departments are not tiny.
            ("pad", FieldType::Pad(160)),
        ],
    ))
    .unwrap();
    db.define_type(TypeDef::new(
        "EMP",
        vec![
            ("name", FieldType::Str),
            ("age", FieldType::Int),
            ("salary", FieldType::Int),
            ("dept", FieldType::Ref("DEPT".into())),
            ("pad", FieldType::Pad(56)),
        ],
    ))
    .unwrap();
    db.create_set("Org", "ORG").unwrap();
    db.create_set("Dept", "DEPT").unwrap();
    db.create_set("Emp1", "EMP").unwrap();
    db.create_set("Emp2", "EMP").unwrap();

    // --- Populate ------------------------------------------------------
    let acme = db
        .insert(
            "Org",
            vec![Value::Str("Acme".into()), Value::Int(5_000_000)],
        )
        .unwrap();
    // 2000 departments (a hundred pages of DEPT objects), 5000 employees
    // whose dept references are scattered — the paper's "relatively
    // unclustered" assumption (§6.2).
    let dept_names = ["Shoe", "Toy", "Tool", "Book"];
    let depts: Vec<_> = (0..2000)
        .map(|i| {
            db.insert(
                "Dept",
                vec![
                    Value::Str(format!("{} #{i}", dept_names[i % 4])),
                    Value::Int(100_000 + 997 * i as i64),
                    Value::Ref(acme),
                    Value::Unit,
                ],
            )
            .unwrap()
        })
        .collect();
    for i in 0..5000usize {
        let scatter = (i * 2654435761) % depts.len();
        db.insert(
            "Emp1",
            vec![
                Value::Str(format!("emp{i:05}")),
                Value::Int(22 + (i % 40) as i64),
                Value::Int(60_000 + ((i * 48271) % 60_000) as i64),
                Value::Ref(depts[scatter]),
                Value::Unit,
            ],
        )
        .unwrap();
    }
    db.create_index("Emp1.salary", IndexKind::Unclustered)
        .unwrap();

    // --- The §3.1 query, before replication ----------------------------
    let query = ReadQuery::on("Emp1")
        .filter(Filter::Range {
            path: "salary".into(),
            lo: Value::Int(100_000),
            hi: Value::Int(104_000),
        })
        .project(["name", "salary", "dept.name"]);

    println!("retrieve (Emp1.name, Emp1.salary, Emp1.dept.name)");
    println!("where     Emp1.salary > 100000\n");

    db.flush_all().unwrap();
    db.reset_io();
    let before = query.run(&mut db).unwrap();
    let io_before = db.io_profile().total_io();
    println!("--- without replication ---");
    print!("{}", before.plan);
    println!("rows: {}, page I/O: {io_before}\n", before.rows.len());

    // --- replicate Emp1.dept.name (§3.1) -------------------------------
    db.replicate("Emp1.dept.name", Strategy::InPlace).unwrap();

    db.flush_all().unwrap();
    db.reset_io();
    let after = query.run(&mut db).unwrap();
    let io_after = db.io_profile().total_io();
    println!("--- with `replicate Emp1.dept.name` ---");
    print!("{}", after.plan);
    println!("rows: {}, page I/O: {io_after}\n", after.rows.len());

    assert_eq!(before.rows, after.rows, "replication never changes answers");
    println!(
        "Same {} rows, {} fewer page I/Os — \"the query can be executed",
        after.rows.len(),
        io_before.saturating_sub(io_after)
    );
    println!("without performing a functional join\" (§3.1).");
    println!("\nSample: {:?}", &after.rows[0]);

    // Updates keep replicas consistent automatically.
    db.update(depts[0], &[("name", Value::Str("Footwear".into()))])
        .unwrap();
    let all = ReadQuery::on("Emp1")
        .project(["dept.name"])
        .run(&mut db)
        .unwrap();
    let renamed = all
        .rows
        .iter()
        .filter(|r| r[0] == Some(Value::Str("Footwear".into())))
        .count();
    println!("\nAfter renaming \"Shoe #0\", its {renamed} employees see \"Footwear\"");
    println!("through their replicated hidden fields.");
}
