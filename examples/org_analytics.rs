//! Multi-level reference paths in practice (§3.3): 2-level replication,
//! collapse paths, full-object replication, and indexing on a replicated
//! path — on a corporate reporting workload.
//!
//! ```text
//! cargo run --example org_analytics
//! ```

use field_replication::pathindex::{GemstonePathIndex, ReplicatedPathIndex};
use field_replication::query::{Filter, ReadQuery};
use field_replication::{Database, DbConfig, FieldType, IndexKind, Strategy, TypeDef, Value};

fn main() {
    let mut db = Database::in_memory(DbConfig::default());

    db.define_type(TypeDef::new(
        "ORG",
        vec![
            ("name", FieldType::Str),
            ("budget", FieldType::Int),
            ("pad", FieldType::Pad(120)),
        ],
    ))
    .unwrap();
    db.define_type(TypeDef::new(
        "DEPT",
        vec![
            ("name", FieldType::Str),
            ("budget", FieldType::Int),
            ("org", FieldType::Ref("ORG".into())),
            ("pad", FieldType::Pad(140)),
        ],
    ))
    .unwrap();
    db.define_type(TypeDef::new(
        "EMP",
        vec![
            ("name", FieldType::Str),
            ("salary", FieldType::Int),
            ("dept", FieldType::Ref("DEPT".into())),
            ("pad", FieldType::Pad(120)),
        ],
    ))
    .unwrap();
    db.create_set("Org", "ORG").unwrap();
    db.create_set("Dept", "DEPT").unwrap();
    db.create_set("Emp1", "EMP").unwrap();

    // 200 orgs, 3000 depts, 8000 employees; references scattered (§6.2).
    let orgs: Vec<_> = (0..200)
        .map(|i| {
            db.insert(
                "Org",
                vec![
                    Value::Str(format!("org-{i:03}")),
                    Value::Int(1_000_000 * (i as i64 + 1)),
                    Value::Unit,
                ],
            )
            .unwrap()
        })
        .collect();
    let depts: Vec<_> = (0..3000)
        .map(|i| {
            db.insert(
                "Dept",
                vec![
                    Value::Str(format!("dept-{i:04}")),
                    Value::Int(50_000 + 13 * i as i64),
                    Value::Ref(orgs[(i * 2654435761) % 200]),
                    Value::Unit,
                ],
            )
            .unwrap()
        })
        .collect();
    for i in 0..8000usize {
        db.insert(
            "Emp1",
            vec![
                Value::Str(format!("emp-{i:05}")),
                Value::Int(55_000 + ((i * 48271) % 70_000) as i64),
                Value::Ref(depts[(i * 11400714819323198485) % 3000]),
                Value::Unit,
            ],
        )
        .unwrap();
    }

    db.create_index("Emp1.salary", IndexKind::Unclustered)
        .unwrap();

    // ---- §3.3.2: 2-level replication eliminates two joins -------------
    // A selective reporting query: employees in a salary band, with the
    // org they ultimately roll up to.
    let band = Filter::Range {
        path: "salary".into(),
        lo: Value::Int(100_000),
        hi: Value::Int(104_000),
    };
    let q = ReadQuery::on("Emp1")
        .filter(band.clone())
        .project(["name", "dept.org.name"]);
    let io = |db: &mut Database, q: &ReadQuery| {
        db.flush_all().unwrap();
        db.reset_io();
        let r = q.run(db).unwrap();
        (r, db.io_profile().total_io())
    };

    let (base, io0) = io(&mut db, &q);
    println!("salary-band query projecting dept.org.name (2 joins):     {io0} I/Os");

    db.replicate("Emp1.dept.org.name", Strategy::InPlace)
        .unwrap();
    let (fast, io1) = io(&mut db, &q);
    assert_eq!(base.rows, fast.rows);
    println!("after `replicate Emp1.dept.org.name` (2-level, §3.3.2):    {io1} I/Os");

    // ---- §3.3.3: collapse Emp1.dept.org for *other* org fields --------
    let q_budget = ReadQuery::on("Emp1")
        .filter(band.clone())
        .project(["dept.org.budget"]);
    let (slow_b, io2) = io(&mut db, &q_budget);
    println!("\nprojecting dept.org.budget (not replicated, 2 joins):      {io2} I/Os");

    db.replicate("Emp1.dept.org", Strategy::InPlace).unwrap();
    let (fast_b, io3) = io(&mut db, &q_budget);
    assert_eq!(slow_b.rows, fast_b.rows);
    println!("after collapse path `replicate Emp1.dept.org` (§3.3.3):    {io3} I/Os");
    print!("{}", fast_b.plan);

    // ---- §3.3.4: index on a replicated path ----------------------------
    // "build btree on Emp1.dept.org.name": maps org names *directly* to
    // Emp1 objects. The Gemstone-style alternative traverses three trees.
    let rep_idx = ReplicatedPathIndex::build(&mut db, "Emp1.dept.org.name").unwrap();
    let gem_idx = GemstonePathIndex::build(&mut db, "Emp1.dept.org.name").unwrap();

    let probe = Value::Str("org-007".into());
    db.flush_all().unwrap();
    db.reset_io();
    let via_rep = rep_idx.lookup(&mut db, &probe).unwrap();
    let io_rep = db.io_profile().pages_read();

    db.flush_all().unwrap();
    db.reset_io();
    let mut via_gem = gem_idx.lookup(&mut db, &probe).unwrap();
    let io_gem = db.io_profile().pages_read();

    let mut via_rep_sorted = via_rep.clone();
    via_rep_sorted.sort_unstable();
    via_gem.sort_unstable();
    assert_eq!(via_rep_sorted, via_gem);

    println!("\n§3.3.4 associative lookup: employees of org-007");
    println!(
        "  via index on replicated values (1 B+-tree):   {} hits, {io_rep} page reads",
        via_rep.len()
    );
    println!(
        "  via Gemstone path index ({} B+-trees, §7.2):   {} hits, {io_gem} page reads",
        gem_idx.component_count(),
        via_gem.len()
    );

    println!("\nDone.");
}
