//! Cross-crate integration tests through the `field_replication` facade:
//! schema → population → replication → queries → updates → verification,
//! including a file-backed database.

use field_replication::query::{Assign, Filter, ReadQuery, UpdateQuery};
use field_replication::storage::FileDisk;
use field_replication::{Database, DbConfig, FieldType, IndexKind, Strategy, TypeDef, Value};

fn schema(db: &mut Database) {
    db.define_type(TypeDef::new(
        "ORG",
        vec![("name", FieldType::Str), ("budget", FieldType::Int)],
    ))
    .unwrap();
    db.define_type(TypeDef::new(
        "DEPT",
        vec![
            ("name", FieldType::Str),
            ("budget", FieldType::Int),
            ("org", FieldType::Ref("ORG".into())),
        ],
    ))
    .unwrap();
    db.define_type(TypeDef::new(
        "EMP",
        vec![
            ("name", FieldType::Str),
            ("age", FieldType::Int),
            ("salary", FieldType::Int),
            ("dept", FieldType::Ref("DEPT".into())),
        ],
    ))
    .unwrap();
    db.create_set("Org", "ORG").unwrap();
    db.create_set("Dept", "DEPT").unwrap();
    db.create_set("Emp1", "EMP").unwrap();
    db.create_set("Emp2", "EMP").unwrap();
}

fn populate(db: &mut Database, n_orgs: usize, n_depts: usize, n_emps: usize) {
    let orgs: Vec<_> = (0..n_orgs)
        .map(|i| {
            db.insert(
                "Org",
                vec![Value::Str(format!("org{i}")), Value::Int(i as i64 * 1000)],
            )
            .unwrap()
        })
        .collect();
    let depts: Vec<_> = (0..n_depts)
        .map(|i| {
            db.insert(
                "Dept",
                vec![
                    Value::Str(format!("dept{i}")),
                    Value::Int(i as i64 * 10),
                    Value::Ref(orgs[i % n_orgs]),
                ],
            )
            .unwrap()
        })
        .collect();
    for i in 0..n_emps {
        let set = if i % 5 == 4 { "Emp2" } else { "Emp1" };
        db.insert(
            set,
            vec![
                Value::Str(format!("emp{i}")),
                Value::Int(20 + (i % 45) as i64),
                Value::Int(40_000 + (i * 61) as i64 % 90_000),
                Value::Ref(depts[(i * 7) % n_depts]),
            ],
        )
        .unwrap();
    }
}

#[test]
fn full_stack_mixed_strategies() {
    let mut db = Database::in_memory(DbConfig::default());
    schema(&mut db);
    populate(&mut db, 5, 40, 1000);

    db.create_index("Emp1.salary", IndexKind::Unclustered)
        .unwrap();
    db.create_index("Dept.budget", IndexKind::Unclustered)
        .unwrap();
    db.replicate("Emp1.dept.name", Strategy::InPlace).unwrap();
    db.replicate("Emp1.dept.org.name", Strategy::Separate)
        .unwrap();

    // Baseline answers computed by dereference.
    let q = ReadQuery::on("Emp1")
        .filter(Filter::Range {
            path: "salary".into(),
            lo: Value::Int(100_000),
            hi: Value::Int(i64::MAX),
        })
        .project(["name", "dept.name", "dept.org.name"]);
    let res = q.run(&mut db).unwrap();
    assert!(!res.rows.is_empty());
    for row in &res.rows {
        assert!(row.iter().all(Option::is_some));
    }

    // An update query over departments: all replicas follow.
    UpdateQuery::on("Dept")
        .filter(Filter::Range {
            path: "budget".into(),
            lo: Value::Int(0),
            hi: Value::Int(100),
        })
        .assign("name", Assign::Set(Value::Str("reorg".into())))
        .run(&mut db)
        .unwrap();
    let res2 = q.run(&mut db).unwrap();
    // Every result row still answers, and rows referencing the first 11
    // departments see the rename.
    let renamed = res2
        .rows
        .iter()
        .filter(|r| r[1] == Some(Value::Str("reorg".into())))
        .count();
    assert!(renamed > 0);

    // Replicated answers always equal join answers.
    for (oid, row) in db.scan_set("Emp1").unwrap().into_iter().zip(
        ReadQuery::on("Emp1")
            .project(["dept.name"])
            .run(&mut db)
            .unwrap()
            .rows,
    ) {
        let truth = db
            .deref_path(oid, "dept.name")
            .unwrap()
            .map(|v| v[0].clone());
        assert_eq!(row[0], truth);
    }
}

#[test]
fn file_backed_database() {
    let dir = std::env::temp_dir().join(format!("fieldrep-int-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let disk = FileDisk::open(&dir).unwrap();
        let mut db = Database::with_disk(Box::new(disk), DbConfig::default());
        schema(&mut db);
        populate(&mut db, 3, 12, 300);
        db.replicate("Emp1.dept.name", Strategy::InPlace).unwrap();
        let res = ReadQuery::on("Emp1")
            .project(["name", "dept.name"])
            .run(&mut db)
            .unwrap();
        assert_eq!(res.rows.len(), 240);
        db.flush_all().unwrap();
    }
    // Pages really hit the filesystem.
    let bytes: u64 = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().metadata().unwrap().len())
        .sum();
    assert!(
        bytes > 30 * 1024,
        "expected real on-disk pages, got {bytes}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn instance_level_separation_between_sets() {
    // Emp1 replicates, Emp2 (same type!) does not — §3.2.
    let mut db = Database::in_memory(DbConfig::default());
    schema(&mut db);
    populate(&mut db, 2, 10, 200);
    db.replicate("Emp1.dept.name", Strategy::InPlace).unwrap();

    let p1 = ReadQuery::on("Emp1")
        .project(["dept.name"])
        .plan(&db)
        .unwrap();
    let p2 = ReadQuery::on("Emp2")
        .project(["dept.name"])
        .plan(&db)
        .unwrap();
    assert!(matches!(
        p1.projections[0],
        field_replication::query::ProjPlan::InPlaceReplica { .. }
    ));
    assert!(matches!(
        p2.projections[0],
        field_replication::query::ProjPlan::FunctionalJoin { .. }
    ));
    // And both give the same kind of (correct) answers.
    let r2 = ReadQuery::on("Emp2")
        .project(["dept.name"])
        .run(&mut db)
        .unwrap();
    assert_eq!(r2.rows.len(), 40);
}

#[test]
fn io_savings_materialise_end_to_end() {
    // The headline claim, via the facade: a read-heavy mix is cheaper
    // with in-place replication.
    let build = |strategy: Option<Strategy>| {
        let mut db = Database::in_memory(DbConfig::default());
        schema(&mut db);
        populate(&mut db, 4, 500, 3000);
        db.create_index("Emp1.salary", IndexKind::Unclustered)
            .unwrap();
        if let Some(s) = strategy {
            db.replicate("Emp1.dept.name", s).unwrap();
        }
        db
    };
    let q = ReadQuery::on("Emp1")
        .filter(Filter::Range {
            path: "salary".into(),
            lo: Value::Int(60_000),
            hi: Value::Int(70_000),
        })
        .project(["name", "dept.name"]);

    let mut io = Vec::new();
    for strat in [None, Some(Strategy::InPlace)] {
        let mut db = build(strat);
        db.flush_all().unwrap();
        db.reset_io();
        let r = q.run(&mut db).unwrap();
        assert!(!r.rows.is_empty());
        io.push(db.io_profile().total_io());
    }
    assert!(
        io[1] < io[0],
        "in-place ({}) should beat baseline ({})",
        io[1],
        io[0]
    );
}

#[test]
fn deep_path_through_facade() {
    let mut db = Database::in_memory(DbConfig::default());
    schema(&mut db);
    populate(&mut db, 3, 9, 90);
    let p = db
        .replicate("Emp1.dept.org.budget", Strategy::InPlace)
        .unwrap();
    for oid in db.scan_set("Emp1").unwrap() {
        let via_replica = db.path_values(oid, p).unwrap();
        let via_join = db.deref_path(oid, "dept.org.budget").unwrap();
        assert_eq!(via_replica, via_join);
    }
}
