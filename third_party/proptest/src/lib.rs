//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no route to crates.io, so the workspace
//! vendors the subset of `proptest` its property tests use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! * [`prop_oneof!`] with and without weights,
//! * [`Strategy`](strategy::Strategy) with `prop_map` / `boxed`,
//! * range strategies over the primitive integers, tuple strategies up
//!   to arity 10, [`Just`](strategy::Just), [`any`](arbitrary::any),
//! * [`collection::vec`], [`option::of`], and regex-lite string
//!   strategies (`"[A-Za-z0-9 _.,!?-]{0,40}"`, `".{0,200}"`, …).
//!
//! Differences from the real crate, by design: generation is purely
//! random with a per-test deterministic seed (reruns reproduce failures
//! exactly), and there is **no shrinking** — on failure the case index is
//! reported and the panic propagates. `PROPTEST_SEED=<u64>` perturbs the
//! seed for exploratory runs.

/// Test configuration and the deterministic RNG.
pub mod test_runner {
    /// Run configuration (`ProptestConfig` in the prelude).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }

    /// Deterministic SplitMix64 stream, seeded from the test's name (and
    /// optionally perturbed via `PROPTEST_SEED`).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from an arbitrary label (the test path).
        pub fn for_test(label: &str) -> TestRng {
            // FNV-1a over the label.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            if let Ok(extra) = std::env::var("PROPTEST_SEED") {
                if let Ok(x) = extra.trim().parse::<u64>() {
                    h ^= x;
                }
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }

        /// Uniform `usize` in `[lo, hi)`.
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            assert!(lo < hi, "empty size range");
            lo + self.below((hi - lo) as u64) as usize
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking: a
    /// strategy is just a deterministic function of the RNG stream.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Erase the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng| self.generate(rng)))
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A type-erased strategy (see [`Strategy::boxed`]).
    pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Weighted choice between boxed strategies (built by `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Build from `(weight, strategy)` arms; weights must sum > 0.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
            let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof!: all weights are zero");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights summed correctly")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128 % width) as i128;
                    (self.start as i128 + off) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_pattern(self, rng)
        }
    }
}

/// `any::<T>()` over the primitive types.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generate one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Half-open element-count range for [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.usize_in(self.size.lo, self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec`s of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// `Option` strategies.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy returned by [`of`].
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 1 {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }

    /// `Some(inner)` half the time, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

/// Regex-lite string generation.
///
/// Supports the pattern subset the workspace uses: a sequence of atoms,
/// each a character class `[..]` (ranges, literals, a trailing `-`
/// literal), `.` (printable ASCII), or a literal character; optionally
/// followed by `{m}` or `{m,n}` repetition.
pub mod string {
    use crate::test_runner::TestRng;

    #[derive(Debug)]
    struct Atom {
        /// Inclusive char ranges to draw from.
        ranges: Vec<(char, char)>,
        min: usize,
        max: usize,
    }

    fn parse(pat: &str) -> Vec<Atom> {
        let chars: Vec<char> = pat.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let ranges = match chars[i] {
                '[' => {
                    i += 1;
                    let mut ranges = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let c = chars[i];
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            ranges.push((c, chars[i + 2]));
                            i += 3;
                        } else {
                            ranges.push((c, c));
                            i += 1;
                        }
                    }
                    assert!(i < chars.len(), "unterminated class in pattern {pat:?}");
                    i += 1; // consume ']'
                    ranges
                }
                '.' => {
                    i += 1;
                    vec![(' ', '~')]
                }
                c => {
                    i += 1;
                    vec![(c, c)]
                }
            };
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unterminated repetition")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("bad repetition min"),
                        n.trim().parse().expect("bad repetition max"),
                    ),
                    None => {
                        let m: usize = body.trim().parse().expect("bad repetition count");
                        (m, m)
                    }
                }
            } else {
                (1, 1)
            };
            atoms.push(Atom { ranges, min, max });
        }
        atoms
    }

    /// Generate one string matching `pat`.
    pub fn generate_pattern(pat: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse(pat) {
            let n = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
            let total: u64 = atom
                .ranges
                .iter()
                .map(|(a, b)| (*b as u64) - (*a as u64) + 1)
                .sum();
            for _ in 0..n {
                let mut pick = rng.below(total);
                for (a, b) in &atom.ranges {
                    let width = (*b as u64) - (*a as u64) + 1;
                    if pick < width {
                        out.push(char::from_u32(*a as u32 + pick as u32).expect("valid char"));
                        break;
                    }
                    pick -= width;
                }
            }
        }
        out
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert inside a proptest body (no shrinking: maps to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Weighted (`w => strat`) or uniform choice between strategies with a
/// common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Define property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a test running `body` over `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| $body),
                );
                if let Err(err) = __outcome {
                    eprintln!(
                        "proptest: case {}/{} of `{}` failed (deterministic seed — rerun reproduces; set PROPTEST_SEED to vary)",
                        __case + 1,
                        __config.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(err);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        let strat = (0..10usize, -5..5i64, any::<u8>());
        for _ in 0..1000 {
            let (a, b, _c) = strat.generate(&mut rng);
            assert!(a < 10);
            assert!((-5..5).contains(&b));
        }
    }

    #[test]
    fn pattern_strings_match_shape() {
        let mut rng = TestRng::for_test("patterns");
        for _ in 0..500 {
            let s = crate::string::generate_pattern("[A-Z][a-z]{1,6}", &mut rng);
            let cs: Vec<char> = s.chars().collect();
            assert!((2..=7).contains(&cs.len()), "{s:?}");
            assert!(cs[0].is_ascii_uppercase());
            assert!(cs[1..].iter().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
        let punct = crate::string::generate_pattern("[a-zA-Z0-9 _.,!?-]{0,40}", &mut rng);
        assert!(punct.len() <= 40);
        let any_len = crate::string::generate_pattern(".{0,200}", &mut rng);
        assert!(any_len.len() <= 200);
    }

    #[test]
    fn oneof_respects_weights_roughly() {
        let mut rng = TestRng::for_test("oneof");
        let strat = prop_oneof![
            3 => Just(0u8),
            1 => Just(1u8),
        ];
        let ones = (0..10_000)
            .filter(|_| strat.generate(&mut rng) == 1)
            .count();
        assert!((1_500..3_500).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn vec_and_option_sizes() {
        let mut rng = TestRng::for_test("vec");
        for _ in 0..200 {
            let v = crate::collection::vec(0..5u8, 1..4).generate(&mut rng);
            assert!((1..4).contains(&v.len()));
            let exact = crate::collection::vec(0..5u8, 8).generate(&mut rng);
            assert_eq!(exact.len(), 8);
        }
        let somes = (0..1000)
            .filter(|_| crate::option::of(0..5u8).generate(&mut rng).is_some())
            .count();
        assert!((300..700).contains(&somes));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: patterns, multiple args, trailing comma.
        #[test]
        fn macro_smoke((a, b) in (0..10u8, 0..10u8), v in crate::collection::vec(any::<i16>(), 0..6),) {
            prop_assert!(a < 10 && b < 10);
            prop_assert!(v.len() < 6);
            prop_assert_eq!(v.len(), v.as_slice().len());
        }
    }
}
