//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no route to crates.io, so the workspace
//! vendors the slice of `rand` it uses: [`rngs::StdRng`] seeded with
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over half-open
//! integer ranges, [`Rng::gen_bool`], and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ (the same family the real `StdRng` has
//! used) seeded through SplitMix64. Statistical quality is more than
//! adequate for workload shuffling and trace draws; this shim is NOT a
//! cryptographic RNG and does not promise the real crate's value
//! streams — benchmarks here only need determinism for a fixed seed.

/// Core random-number generation: a source of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (the one constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The standard generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

mod private {
    pub trait Sealed {}
}

/// Integer types that [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd + private::Sealed {
    /// Sample uniformly from `[lo, hi)` given a raw 64-bit source.
    fn sample_half_open(lo: Self, hi: Self, raw: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl private::Sealed for $t {}
        impl SampleUniform for $t {
            fn sample_half_open(lo: $t, hi: $t, raw: u64) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                // Width as u128 to survive full-domain i64/u64 ranges.
                let width = (hi as i128 - lo as i128) as u128;
                let off = (raw as u128 % width) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range `lo..hi`.
    ///
    /// Uses a modulo reduction; the bias for the range sizes used in this
    /// workspace (≪ 2⁶⁴) is far below anything the benchmarks can observe.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        let raw = self.next_u64();
        T::sample_half_open(range.start, range.end, raw)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        // 53 random bits → uniform f64 in [0, 1).
        let f = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        f < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// Slice extension: in-place Fisher–Yates shuffle.
    pub trait SliceRandom {
        /// Shuffle the slice uniformly.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000i64), b.gen_range(0..1_000_000i64));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-50..75i64);
            assert!((-50..75).contains(&v));
            let u = rng.gen_range(0..13usize);
            assert!(u < 13);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..500).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..500).collect::<Vec<_>>());
        assert_ne!(v, sorted, "500 elements should not shuffle to identity");
    }
}
