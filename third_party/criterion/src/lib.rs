//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no route to crates.io, so the workspace
//! vendors the subset of `criterion` its benches use: [`Criterion`],
//! [`benchmark groups`](BenchmarkGroup), [`BenchmarkId`], [`black_box`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! This shim does real timing but no statistics: each benchmark runs a
//! short warmup, then `sample_size` timed samples, and prints the mean
//! and minimum per-iteration time. It exists so `cargo bench` and
//! `cargo clippy --all-targets` work offline, not to replace criterion's
//! analysis.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier — defers to `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    /// Run a single benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// No-op in the shim (the real crate writes reports here).
    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.criterion.sample_size = n;
        self
    }

    /// Run a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.criterion.sample_size, &mut f);
        self
    }

    /// Run a benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(
            &label,
            self.criterion.sample_size,
            &mut |b: &mut Bencher| f(b, input),
        );
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark identifier.
pub trait IntoBenchmarkId {
    /// The display label.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Passed to each benchmark closure; times the hot loop.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, once per sample after a brief warmup.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..2 {
            black_box(routine());
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Like [`iter`](Self::iter), but drops the routine's output outside
    /// the timed region.
    pub fn iter_with_large_drop<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..2 {
            black_box(routine());
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            let out = black_box(routine());
            self.samples.push(start.elapsed());
            drop(out);
        }
    }
}

fn run_one<F>(label: &str, sample_size: usize, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().expect("nonempty");
    println!(
        "{label:<48} mean {:>12?}  min {:>12?}  ({} samples)",
        mean,
        min,
        bencher.samples.len()
    );
}

/// Define a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_addition(c: &mut Criterion) {
        c.bench_function("addition", |b| b.iter(|| black_box(2u64) + black_box(3u64)));
    }

    #[test]
    fn group_and_function_run() {
        let mut c = Criterion::default().sample_size(3);
        bench_addition(&mut c);
        let mut group = c.benchmark_group("grp");
        group.bench_function(BenchmarkId::from_parameter(7), |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("with", 9), &9u32, |b, &n| b.iter(|| n * 2));
        group.finish();
    }

    criterion_group!(plain_group, bench_addition);
    criterion_group! {
        name = cfg_group;
        config = Criterion::default().sample_size(2);
        targets = bench_addition
    }

    #[test]
    fn macro_forms_compile_and_run() {
        plain_group();
        cfg_group();
    }
}
