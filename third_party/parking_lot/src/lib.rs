//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no route to crates.io, so the workspace
//! vendors the small slice of `parking_lot`'s API it actually uses:
//! [`Mutex`] and [`RwLock`] with guard types, implemented over
//! `std::sync`. The semantic difference from the real crate that matters
//! here is poisoning: `parking_lot` locks never poison, so this shim
//! recovers the inner guard from a poisoned std lock instead of
//! panicking (matching `parking_lot`'s behaviour of letting the caller
//! proceed after another thread panicked while holding the lock).

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock with the `parking_lot::Mutex` API shape.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        })
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock with the `parking_lot::RwLock` API shape.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        })
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        })
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock(..)")
    }
}

/// RAII shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// RAII exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
