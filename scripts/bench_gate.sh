#!/usr/bin/env bash
# Regression gate over committed benchmark snapshots: diff the two newest
# BENCH_*.json reports and fail on I/O regressions, excess model drift,
# a >15% wall-clock regression (wall gating applies only to readings
# above the noise floor, and never against v1 snapshots), >5%
# always-on telemetry overhead in the newest report's overhead section,
# or <2x 1->4-thread snapshot-read scaling in the newest report (only
# judged when the producing host had >=4 CPUs and the readings cleared
# the noise floor).
# Run from anywhere:
#   ./scripts/bench_gate.sh [--max-io-regress PCT] [--max-drift PCT] \
#                           [--max-wall-regress PCT] [--max-obs-overhead PCT] \
#                           [--min-read-scaling X]
set -euo pipefail
cd "$(dirname "$0")/.."

mapfile -t files < <(ls -1 BENCH_*.json 2>/dev/null | sort | tail -2)
if [ "${#files[@]}" -lt 2 ]; then
    echo "bench_gate: need two BENCH_*.json snapshots (found ${#files[@]});"
    echo "run 'cargo run --release -p fieldrep-bench --bin bench_suite' to create one."
    exit 0
fi
exec cargo run --release -q -p fieldrep-bench --bin bench_gate -- \
    "${files[0]}" "${files[1]}" --max-wall-regress 15 --max-obs-overhead 5 "$@"
