#!/usr/bin/env bash
# Tier-1 quality gate: formatting, lints, and the full test suite.
# Run from the repository root: ./scripts/check.sh
# Each stage reports its wall-clock time; a summary prints at the end.
set -euo pipefail
cd "$(dirname "$0")/.."

STAGE_SUMMARY=""
stage() {
    local name=$1
    shift
    local start end
    start=$(date +%s)
    "$@"
    end=$(date +%s)
    local took=$((end - start))
    STAGE_SUMMARY+=$(printf '%-24s %4ds' "$name" "$took")$'\n'
    printf '== %s: %ds\n' "$name" "$took"
}

stage fmt cargo fmt --all -- --check
stage clippy cargo clippy --workspace --all-targets -- -D warnings

# Repo-specific static analysis (layering, obs-name registry, panic
# budget, lock discipline, interprocedural lock order / blocking-I/O /
# apply coverage) against the committed lint_budget.toml.
stage lint cargo run -q -p fieldrep-lint

stage test cargo test -q --workspace

# Concurrency stress smoke: the seeded 8-thread hostile mix across all
# three replication strategies (release mode, fixed seed). A torn
# replica read or a lock-ordering deadlock fails here.
stage concurrency_stress cargo test --release -q -p fieldrep-core --test concurrency_stress

# Crash-recovery smoke: kill a committed workload's WAL at 100 seeded
# byte offsets and reopen each truncated image (release mode, fixed
# seed). A lost committed update, a phantom uncommitted one, or a
# replica/source divergence after replay fails here.
stage crash_recovery cargo test --release -q -p fieldrep-core --test crash_recovery

# Fast benchmark smoke: runs the suite's tiny matrix and self-tests the
# regression-gate logic (exits nonzero if the gate stops catching
# injected regressions).
stage bench_smoke cargo run --release -q -p fieldrep-bench --bin bench_suite -- \
    --smoke --run-id check.sh --out target/BENCH_smoke.json

# Observability smoke: a tiny workload through the always-on pipeline
# (two timeline ticks + flight-recorder dump), validating that every
# exported JSONL line parses and carries the current schema version,
# and that the Chrome-trace/Perfetto export of the profiled read's span
# tree is structurally sound (balanced B/E, monotone timestamps).
stage obs_smoke cargo run --release -q -p fieldrep-bench --bin obs_smoke

printf '\n== check.sh stage timings ==\n%s' "$STAGE_SUMMARY"
