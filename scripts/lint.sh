#!/usr/bin/env bash
# Run the repo-specific static analysis (fieldrep-lint) on its own.
#
#   ./scripts/lint.sh                 check against lint_budget.toml
#   ./scripts/lint.sh --json          machine-readable JSONL diagnostics
#                                     (one object per finding, suppressed
#                                     findings included)
#   ./scripts/lint.sh --update-budget rewrite lint_budget.toml after a
#                                     legitimate ratchet-down
#
# The seven rules (see DESIGN.md §9 and crates/lint/src/lib.rs):
#   L1  layering        raw page/file/WAL-store I/O only inside crates/storage
#   L2  name registry   obs name literals must exist in obs::names
#   L3  panic budget    unwrap/expect/panic in library code only ratchets down
#   L4  lock discipline no second frame acquire under a live page write guard
#   L5  lock order      held-lock sets through the call graph obey the
#                       declared total order over the named locks
#   L6  blocking I/O    no fsync/sleep/file I/O reachable while a lock
#                       that forbids it is held
#   L7  apply coverage  pub &self Database mutators hold (or document
#                       inheriting) the WAL apply section
set -euo pipefail
cd "$(dirname "$0")/.."

exec cargo run -q -p fieldrep-lint -- "$@"
