#!/usr/bin/env bash
# Run the repo-specific static analysis (fieldrep-lint) on its own.
#
#   ./scripts/lint.sh                 check against lint_budget.toml
#   ./scripts/lint.sh --update-budget rewrite lint_budget.toml after a
#                                     legitimate ratchet-down
#
# The four rules (see DESIGN.md §9 and crates/lint/src/lib.rs):
#   L1  layering      raw page/file I/O only inside crates/storage
#   L2  name registry obs name literals must exist in obs::names
#   L3  panic budget  unwrap/expect/panic in library code only ratchets down
#   L4  lock order    no second frame acquire under a live page write guard
set -euo pipefail
cd "$(dirname "$0")/.."

exec cargo run -q -p fieldrep-lint -- "$@"
