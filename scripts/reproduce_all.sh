#!/usr/bin/env bash
# Regenerate every table/figure and experiment output into results/.
# Usage: scripts/reproduce_all.sh [--full]   (--full adds f = 50 runs)
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results

FULL="${1:-}"

echo "== analytical figures =="
cargo run --release -q -p fieldrep-bench --bin fig11 > results/fig11.txt
cargo run --release -q -p fieldrep-bench --bin fig12 > results/fig12.txt
cargo run --release -q -p fieldrep-bench --bin fig13 > results/fig13.txt
cargo run --release -q -p fieldrep-bench --bin fig14 > results/fig14.txt

echo "== empirical validation =="
if [ "$FULL" = "--full" ]; then
  cargo run --release -q -p fieldrep-bench --bin empirical -- --full > results/empirical.txt
else
  cargo run --release -q -p fieldrep-bench --bin empirical > results/empirical.txt
fi

echo "== measured curves and traces =="
cargo run --release -q -p fieldrep-bench --bin empirical_curves -- --s 2000 > results/empirical_curves.txt
cargo run --release -q -p fieldrep-bench --bin trace_run > results/trace_run.txt

echo "== ablations =="
cargo run --release -q -p fieldrep-bench --bin ablations > results/ablations.txt
cargo run --release -q -p fieldrep-bench --bin pathindex_ablation > results/pathindex_ablation.txt

echo "done — see results/"
