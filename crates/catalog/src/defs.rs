//! Catalog entities: sets, indexes, links, replication paths, and replica
//! groups.

use fieldrep_model::{PathExpr, TypeId};
use fieldrep_storage::FileId;
use std::fmt;

/// Identifier of a named set.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SetId(pub u16);

/// Identifier of an index.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct IndexId(pub u16);

/// Identifier of a replication path (the `path` in
/// `Annotation::ReplicaValue`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PathId(pub u16);

/// Identifier of a link in an inverted path. One byte, as the paper sizes
/// it (Figure 10: `sizeof(link-ID) = 1`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LinkId(pub u8);

/// Identifier of a separate-replication replica group (one `S'` file).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct GroupId(pub u16);

impl fmt::Display for SetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "set#{}", self.0)
    }
}
impl fmt::Display for PathId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rp#{}", self.0)
    }
}
impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "link#{}", self.0)
    }
}

/// The replication strategy chosen for a path (§4 vs §5 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Strategy {
    /// §4: replicated values stored as hidden fields in the source objects.
    InPlace,
    /// §5: replicated values stored in shared replica objects in a
    /// separate, tightly clustered file `S'`.
    Separate,
}

/// When replicated values are refreshed after a source-of-truth update —
/// the paper's §8 future-work direction ("replication techniques in which
/// updates are not propagated until needed"), related to the POSTGRES
/// update-cache strategies of §7.1.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Propagation {
    /// Propagate during the update (the paper's base design). Replicated
    /// values are always up to date; queries never pay a refresh cost.
    #[default]
    Eager,
    /// Record which replicas became stale and refresh them lazily — on
    /// the next query that reads the path, or an explicit `sync_path`.
    /// Repeated updates to the same object collapse into one
    /// propagation. Inverted-path *structure* (link memberships, replica
    /// refcounts) is always maintained eagerly; only value refresh is
    /// deferred.
    Deferred,
}

/// Whether an index is clustered (the heap file is in key order) or not
/// (§6.4 analyses both settings).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IndexKind {
    /// Heap order is unrelated to key order.
    Unclustered,
    /// Heap was bulk-loaded in key order.
    Clustered,
}

/// What an index is built over.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum IndexTarget {
    /// A base field of the set's element type (by field index).
    Field(usize),
    /// The replicated values of a replication path (§3.3.4: "there is
    /// basically no reason why an index cannot be built on replicated
    /// data"). The key is the first terminal field of the path.
    ReplicatedPath(PathId),
}

/// A named set: `create Emp1 : {own ref EMP}`.
#[derive(Clone, Debug)]
pub struct SetDef {
    /// Id.
    pub id: SetId,
    /// Set name.
    pub name: String,
    /// Element type.
    pub elem_type: TypeId,
    /// Heap file storing the members.
    pub file: FileId,
}

/// An index over a set.
#[derive(Clone, Debug)]
pub struct IndexDef {
    /// Id.
    pub id: IndexId,
    /// The indexed set.
    pub set: SetId,
    /// What is indexed.
    pub target: IndexTarget,
    /// Clustered or unclustered.
    pub kind: IndexKind,
    /// The B⁺-tree file.
    pub file: FileId,
}

/// One link of an inverted path (§4.1): the inverse of following
/// `prefix` (a chain of reference-attribute field indexes) from `set`.
///
/// A link is identified by `(set, prefix)`, which is exactly what lets
/// replication paths with a common prefix share links (§4.1.4).
#[derive(Clone, Debug)]
pub struct LinkDef {
    /// Link id (stored in objects as the `link-ID` of their
    /// `(link-OID, link-ID)` pairs).
    pub id: LinkId,
    /// The set the forward path starts from.
    pub set: SetId,
    /// Chain of ref-field indexes from the set's element type; the link is
    /// the inverse of the *last* hop of this chain.
    pub prefix: Vec<usize>,
    /// Type of the objects at the source end of the last hop (the
    /// referencing side).
    pub src_type: TypeId,
    /// Type of the objects the link's link-objects attach to (the
    /// referenced side).
    pub dst_type: TypeId,
    /// File storing this link's link objects, kept in the same order as
    /// the referenced set (§4.1, Figure 2).
    pub file: FileId,
    /// Zero-based level within inverted paths (0 = the `Emp1.dept⁻¹`
    /// link).
    pub level: usize,
    /// Number of replication paths currently using this link.
    pub refcount: u32,
    /// §4.3.3: a *collapsed* link maps terminal objects directly to
    /// source objects with intermediate tags. Collapsed links are never
    /// shared with uncollapsed ones ("collapsed paths prohibit the
    /// sharing of some links").
    pub collapsed: bool,
}

/// A declared replication path (`replicate Emp1.dept.org.name`).
#[derive(Clone, Debug)]
pub struct RepPathDef {
    /// Id (the `path` of `Annotation::ReplicaValue`).
    pub id: PathId,
    /// The original expression.
    pub expr: PathExpr,
    /// The source set (whose objects receive replicated values).
    pub set: SetId,
    /// Ref-field indexes for each hop, from the set's element type to the
    /// terminal object's type.
    pub hops: Vec<usize>,
    /// Types along the path: `node_types[0]` is the set's element type,
    /// `node_types[i]` the type after hop `i`; length = hops+1.
    pub node_types: Vec<TypeId>,
    /// Terminal field indexes (within the terminal type) whose values are
    /// replicated. A plain field path has one entry; `.all` has one per
    /// non-padding field; a collapse path has the ref field itself.
    pub terminal_fields: Vec<usize>,
    /// The strategy.
    pub strategy: Strategy,
    /// Eager or deferred value propagation.
    pub propagation: Propagation,
    /// §4.3.3: true if this path's inverted path is collapsed to a single
    /// tagged link (2-level in-place paths only).
    pub collapsed: bool,
    /// The link IDs of the inverted path, one per maintained level
    /// (in-place: every hop; separate: every hop except the last — §5.2's
    /// "(n−1)-level inverted path"). `links[i]` inverts hop `i`.
    pub links: Vec<LinkId>,
    /// For separate replication: the replica group this path reads
    /// through.
    pub group: Option<GroupId>,
}

impl RepPathDef {
    /// The type of the object the replicated fields live on.
    pub fn terminal_type(&self) -> TypeId {
        *self.node_types.last().expect("path has at least one node")
    }

    /// Number of functional joins the path would otherwise require.
    pub fn levels(&self) -> usize {
        self.hops.len()
    }
}

/// A separate-replication replica group: one `S'` file shared by every
/// separate path from the same set with the same hop chain, so that (as in
/// §5, Figure 7) the replicated values for `D1.name` and `D1.budget` are
/// stored together in one object.
#[derive(Clone, Debug)]
pub struct GroupDef {
    /// Id (the `group` of `Annotation::ReplicaRef` / `ReplicaAnchor`).
    pub id: GroupId,
    /// Source set.
    pub set: SetId,
    /// Hop chain (ref-field indexes) shared by the group's paths.
    pub hops: Vec<usize>,
    /// Terminal object type.
    pub terminal_type: TypeId,
    /// Union of replicated terminal fields across the group's paths,
    /// sorted. A replica object stores one value per entry, in this order.
    pub fields: Vec<usize>,
    /// Paths reading through this group.
    pub paths: Vec<PathId>,
    /// The `S'` heap file.
    pub file: FileId,
}
