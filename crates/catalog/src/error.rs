//! Catalog-level errors.

use fieldrep_model::ModelError;
use fieldrep_storage::StorageError;
use std::fmt;

/// Result alias for catalog operations.
pub type Result<T> = std::result::Result<T, CatalogError>;

/// Errors from schema definition and resolution.
#[derive(Debug)]
pub enum CatalogError {
    /// Underlying data-model error (bad path syntax, bad value, …).
    Model(ModelError),
    /// Underlying storage error.
    Storage(StorageError),
    /// A type name was not found.
    UnknownType(String),
    /// A set name was not found.
    UnknownSet(String),
    /// A field name was not found on a type.
    UnknownField {
        /// The type searched.
        type_name: String,
        /// The missing field.
        field: String,
    },
    /// A path segment that must be a reference attribute is not one.
    NotARef {
        /// The type searched.
        type_name: String,
        /// The offending field.
        field: String,
    },
    /// A name is already in use.
    Duplicate(String),
    /// Replication was requested on a path with no reference attribute
    /// (nothing to replicate across).
    NotAReferencePath(String),
    /// The 8-bit link-ID space is exhausted (the paper sizes link IDs at
    /// one byte, §4.2; reuse of freed IDs is supported but 255 live links
    /// is the cap).
    LinkIdsExhausted,
    /// Semantic misuse detected at schema level.
    Invalid(String),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::Model(e) => write!(f, "model error: {e}"),
            CatalogError::Storage(e) => write!(f, "storage error: {e}"),
            CatalogError::UnknownType(n) => write!(f, "unknown type {n:?}"),
            CatalogError::UnknownSet(n) => write!(f, "unknown set {n:?}"),
            CatalogError::UnknownField { type_name, field } => {
                write!(f, "type {type_name:?} has no field {field:?}")
            }
            CatalogError::NotARef { type_name, field } => {
                write!(f, "field {type_name}.{field} is not a reference attribute")
            }
            CatalogError::Duplicate(n) => write!(f, "name {n:?} already defined"),
            CatalogError::NotAReferencePath(p) => {
                write!(
                    f,
                    "path {p:?} contains no reference attribute to replicate across"
                )
            }
            CatalogError::LinkIdsExhausted => write!(f, "no free link IDs (max 255 live links)"),
            CatalogError::Invalid(m) => write!(f, "invalid schema operation: {m}"),
        }
    }
}

impl std::error::Error for CatalogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CatalogError::Model(e) => Some(e),
            CatalogError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for CatalogError {
    fn from(e: ModelError) -> Self {
        CatalogError::Model(e)
    }
}

impl From<StorageError> for CatalogError {
    fn from(e: StorageError) -> Self {
        CatalogError::Storage(e)
    }
}
