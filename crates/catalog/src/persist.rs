//! Catalog serialization.
//!
//! The paper's scope ends at the engine, but a file-backed database is
//! only useful if it can be reopened — which needs the schema, the
//! replication paths, the link registry and the replica groups to
//! survive. This module encodes the whole [`Catalog`] into a compact
//! binary form (and back); the engine stores it in a dedicated catalog
//! file.
//!
//! The format is versioned and self-contained; no external serialization
//! framework is needed for a structure this small.

use crate::defs::{
    GroupDef, GroupId, IndexDef, IndexId, IndexKind, IndexTarget, LinkDef, LinkId, PathId,
    Propagation, RepPathDef, SetId, Strategy,
};
use crate::{Catalog, CatalogError, Result};
use fieldrep_model::{FieldType, PathExpr, TypeDef, TypeId};
use fieldrep_storage::FileId;

const MAGIC: &[u8; 8] = b"FRCATv01";

// ------------------------------------------------------------------ writer

struct W(Vec<u8>);

impl W {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn usize(&mut self, v: usize) {
        self.u32(u32::try_from(v).expect("catalog structure too large"));
    }
    fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.0.extend_from_slice(s.as_bytes());
    }
    fn flag(&mut self, v: bool) {
        self.u8(v as u8);
    }
}

// ------------------------------------------------------------------ reader

struct R<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> R<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let s = self
            .b
            .get(self.pos..self.pos + n)
            .ok_or_else(|| CatalogError::Invalid("truncated catalog image".into()))?;
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn usize(&mut self) -> Result<usize> {
        Ok(self.u32()? as usize)
    }
    fn str(&mut self) -> Result<String> {
        let n = self.usize()?;
        let s = self.take(n)?;
        String::from_utf8(s.to_vec())
            .map_err(|_| CatalogError::Invalid("non-UTF-8 string in catalog image".into()))
    }
    fn flag(&mut self) -> Result<bool> {
        Ok(self.u8()? != 0)
    }
}

// ------------------------------------------------------------------ encode

/// Serialize a catalog to bytes.
pub fn encode(cat: &Catalog) -> Vec<u8> {
    let mut w = W(Vec::with_capacity(1024));
    w.0.extend_from_slice(MAGIC);

    // Types.
    w.usize(cat.types.len());
    for t in &cat.types {
        w.str(&t.name);
        w.usize(t.fields.len());
        for f in &t.fields {
            w.str(&f.name);
            match &f.ftype {
                FieldType::Int => w.u8(0),
                FieldType::Float => w.u8(1),
                FieldType::Str => w.u8(2),
                FieldType::Ref(target) => {
                    w.u8(3);
                    w.str(target);
                }
                FieldType::Pad(n) => {
                    w.u8(4);
                    w.u16(*n);
                }
            }
        }
    }

    // Sets.
    w.usize(cat.sets.len());
    for s in &cat.sets {
        w.str(&s.name);
        w.u16(s.elem_type.0);
        w.u16(s.file.0);
    }

    // Indexes.
    w.usize(cat.indexes.len());
    for i in &cat.indexes {
        w.u16(i.set.0);
        match &i.target {
            IndexTarget::Field(f) => {
                w.u8(0);
                w.usize(*f);
            }
            IndexTarget::ReplicatedPath(p) => {
                w.u8(1);
                w.u16(p.0);
            }
        }
        w.u8(matches!(i.kind, IndexKind::Clustered) as u8);
        w.u16(i.file.0);
    }

    // Links (Option slots).
    w.usize(cat.links.len());
    for slot in &cat.links {
        match slot {
            None => w.flag(false),
            Some(l) => {
                w.flag(true);
                w.u8(l.id.0);
                w.u16(l.set.0);
                w.usize(l.prefix.len());
                for p in &l.prefix {
                    w.usize(*p);
                }
                w.u16(l.src_type.0);
                w.u16(l.dst_type.0);
                w.u16(l.file.0);
                w.usize(l.level);
                w.u32(l.refcount);
                w.flag(l.collapsed);
            }
        }
    }

    // Paths (Option slots).
    w.usize(cat.paths.len());
    for slot in &cat.paths {
        match slot {
            None => w.flag(false),
            Some(p) => {
                w.flag(true);
                w.str(&p.expr.dotted());
                w.u16(p.set.0);
                w.usize(p.hops.len());
                for h in &p.hops {
                    w.usize(*h);
                }
                w.usize(p.node_types.len());
                for t in &p.node_types {
                    w.u16(t.0);
                }
                w.usize(p.terminal_fields.len());
                for f in &p.terminal_fields {
                    w.usize(*f);
                }
                w.u8(matches!(p.strategy, Strategy::Separate) as u8);
                w.u8(matches!(p.propagation, Propagation::Deferred) as u8);
                w.flag(p.collapsed);
                w.usize(p.links.len());
                for l in &p.links {
                    w.u8(l.0);
                }
                match p.group {
                    None => w.flag(false),
                    Some(g) => {
                        w.flag(true);
                        w.u16(g.0);
                    }
                }
            }
        }
    }

    // Groups (Option slots).
    w.usize(cat.groups.len());
    for slot in &cat.groups {
        match slot {
            None => w.flag(false),
            Some(g) => {
                w.flag(true);
                w.u16(g.set.0);
                w.usize(g.hops.len());
                for h in &g.hops {
                    w.usize(*h);
                }
                w.u16(g.terminal_type.0);
                w.usize(g.fields.len());
                for f in &g.fields {
                    w.usize(*f);
                }
                w.usize(g.paths.len());
                for p in &g.paths {
                    w.u16(p.0);
                }
                w.u16(g.file.0);
            }
        }
    }
    w.0
}

// ------------------------------------------------------------------ decode

/// Reconstruct a catalog from bytes produced by [`encode`].
pub fn decode(bytes: &[u8]) -> Result<Catalog> {
    let mut r = R { b: bytes, pos: 0 };
    if r.take(8)? != MAGIC {
        return Err(CatalogError::Invalid(
            "bad catalog image magic (wrong file or version)".into(),
        ));
    }
    let mut cat = Catalog::new();

    // Types.
    let n_types = r.usize()?;
    for _ in 0..n_types {
        let name = r.str()?;
        let n_fields = r.usize()?;
        let mut fields = Vec::with_capacity(n_fields);
        for _ in 0..n_fields {
            let fname = r.str()?;
            let ftype = match r.u8()? {
                0 => FieldType::Int,
                1 => FieldType::Float,
                2 => FieldType::Str,
                3 => FieldType::Ref(r.str()?),
                4 => FieldType::Pad(r.u16()?),
                other => return Err(CatalogError::Invalid(format!("bad field-type tag {other}"))),
            };
            fields.push((fname, ftype));
        }
        cat.define_type(TypeDef::new(name, fields))?;
    }

    // Sets.
    let n_sets = r.usize()?;
    for _ in 0..n_sets {
        let name = r.str()?;
        let elem = TypeId(r.u16()?);
        let file = FileId(r.u16()?);
        let type_name = cat.type_def(elem).name.clone();
        cat.create_set(&name, &type_name, file)?;
    }

    // Indexes.
    let n_idx = r.usize()?;
    for _ in 0..n_idx {
        let set = SetId(r.u16()?);
        let target = match r.u8()? {
            0 => IndexTarget::Field(r.usize()?),
            1 => IndexTarget::ReplicatedPath(PathId(r.u16()?)),
            other => return Err(CatalogError::Invalid(format!("bad index target {other}"))),
        };
        let kind = if r.u8()? != 0 {
            IndexKind::Clustered
        } else {
            IndexKind::Unclustered
        };
        let file = FileId(r.u16()?);
        cat.indexes.push(IndexDef {
            id: IndexId(cat.indexes.len() as u16),
            set,
            target,
            kind,
            file,
        });
    }

    // Links.
    let n_links = r.usize()?;
    for slot in 0..n_links {
        if !r.flag()? {
            cat.links.push(None);
            continue;
        }
        let id = LinkId(r.u8()?);
        debug_assert_eq!(id.0 as usize, slot + 1);
        let set = SetId(r.u16()?);
        let n_prefix = r.usize()?;
        let mut prefix = Vec::with_capacity(n_prefix);
        for _ in 0..n_prefix {
            prefix.push(r.usize()?);
        }
        let src_type = TypeId(r.u16()?);
        let dst_type = TypeId(r.u16()?);
        let file = FileId(r.u16()?);
        let level = r.usize()?;
        let refcount = r.u32()?;
        let collapsed = r.flag()?;
        cat.links.push(Some(LinkDef {
            id,
            set,
            prefix,
            src_type,
            dst_type,
            file,
            level,
            refcount,
            collapsed,
        }));
    }

    // Paths.
    let n_paths = r.usize()?;
    for slot in 0..n_paths {
        if !r.flag()? {
            cat.paths.push(None);
            continue;
        }
        let expr = PathExpr::parse(&r.str()?)?;
        let set = SetId(r.u16()?);
        let n_hops = r.usize()?;
        let mut hops = Vec::with_capacity(n_hops);
        for _ in 0..n_hops {
            hops.push(r.usize()?);
        }
        let n_nodes = r.usize()?;
        let mut node_types = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            node_types.push(TypeId(r.u16()?));
        }
        let n_tf = r.usize()?;
        let mut terminal_fields = Vec::with_capacity(n_tf);
        for _ in 0..n_tf {
            terminal_fields.push(r.usize()?);
        }
        let strategy = if r.u8()? != 0 {
            Strategy::Separate
        } else {
            Strategy::InPlace
        };
        let propagation = if r.u8()? != 0 {
            Propagation::Deferred
        } else {
            Propagation::Eager
        };
        let collapsed = r.flag()?;
        let n_links = r.usize()?;
        let mut links = Vec::with_capacity(n_links);
        for _ in 0..n_links {
            links.push(LinkId(r.u8()?));
        }
        let group = if r.flag()? {
            Some(GroupId(r.u16()?))
        } else {
            None
        };
        cat.paths.push(Some(RepPathDef {
            id: PathId(slot as u16),
            expr,
            set,
            hops,
            node_types,
            terminal_fields,
            strategy,
            propagation,
            collapsed,
            links,
            group,
        }));
    }

    // Groups.
    let n_groups = r.usize()?;
    for slot in 0..n_groups {
        if !r.flag()? {
            cat.groups.push(None);
            continue;
        }
        let set = SetId(r.u16()?);
        let n_hops = r.usize()?;
        let mut hops = Vec::with_capacity(n_hops);
        for _ in 0..n_hops {
            hops.push(r.usize()?);
        }
        let terminal_type = TypeId(r.u16()?);
        let n_fields = r.usize()?;
        let mut fields = Vec::with_capacity(n_fields);
        for _ in 0..n_fields {
            fields.push(r.usize()?);
        }
        let n_paths = r.usize()?;
        let mut paths = Vec::with_capacity(n_paths);
        for _ in 0..n_paths {
            paths.push(PathId(r.u16()?));
        }
        let file = FileId(r.u16()?);
        cat.groups.push(Some(GroupDef {
            id: GroupId(slot as u16),
            set,
            hops,
            terminal_type,
            fields,
            paths,
            file,
        }));
    }

    if r.pos != bytes.len() {
        return Err(CatalogError::Invalid(format!(
            "trailing bytes in catalog image ({} unread)",
            bytes.len() - r.pos
        )));
    }
    Ok(cat)
}
