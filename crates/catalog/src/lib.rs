//! # fieldrep-catalog
//!
//! The schema catalog: type definitions, named sets, indexes, and — the
//! part specific to this paper — the registry of **replication paths**,
//! their **links** (with the §4.1.4 prefix-sharing rules) and the
//! **replica groups** of separate replication.
//!
//! The catalog is an in-memory structure owned by the database engine. A
//! production system would store it in catalog sets; persistence of the
//! catalog is outside the paper's scope (its §6 evaluation uses a fixed
//! schema), so we keep the substrate simple and documented.

pub mod defs;
pub mod error;
pub mod persist;

pub use defs::{
    GroupDef, GroupId, IndexDef, IndexId, IndexKind, IndexTarget, LinkDef, LinkId, PathId,
    Propagation, RepPathDef, SetDef, SetId, Strategy,
};
pub use error::{CatalogError, Result};

use fieldrep_model::{FieldType, PathExpr, TypeDef, TypeId};
use fieldrep_storage::{FileId, StorageManager};
use std::collections::HashMap;

/// A resolved projection/replication path: schema-checked hops plus a
/// terminal field list.
#[derive(Clone, Debug, PartialEq)]
pub struct ResolvedPath {
    /// The source set.
    pub set: SetId,
    /// Ref-field indexes for each hop.
    pub hops: Vec<usize>,
    /// Types along the path (`hops.len() + 1` entries).
    pub node_types: Vec<TypeId>,
    /// Terminal field indexes (singleton unless the path ends in `all`).
    pub terminal_fields: Vec<usize>,
    /// True if the path ended in the keyword `all`.
    pub is_all: bool,
}

/// Outcome of removing a replication path ([`Catalog::remove_path`]).
#[derive(Clone, Debug)]
pub struct RemovedPath {
    /// The removed path's definition.
    pub path: RepPathDef,
    /// Links whose refcount hit zero: their IDs are free for reuse and
    /// their link files / annotations should be dismantled.
    pub freed_links: Vec<LinkDef>,
    /// The replica group, if this was its last path: its `S'` file,
    /// anchors and replica refs should be dismantled.
    pub dropped_group: Option<GroupDef>,
}

/// Outcome of declaring a replication path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeclaredReplication {
    /// The new path's id.
    pub path: PathId,
    /// For separate replication: the group the path reads through.
    pub group: Option<GroupId>,
    /// True if the path extended an *existing* group with new fields, in
    /// which case the engine must re-materialise that group's replica
    /// objects.
    pub group_extended: bool,
}

/// The catalog.
#[derive(Default)]
pub struct Catalog {
    types: Vec<TypeDef>,
    type_names: HashMap<String, TypeId>,
    sets: Vec<SetDef>,
    set_names: HashMap<String, SetId>,
    indexes: Vec<IndexDef>,
    links: Vec<Option<LinkDef>>,    // indexed by LinkId-1; None = freed
    paths: Vec<Option<RepPathDef>>, // indexed by PathId; None = dropped
    groups: Vec<Option<GroupDef>>,  // indexed by GroupId; None = dropped
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    // ---------------------------------------------------------------- types

    /// Register a type definition (`define type`). Reference targets must
    /// already be defined, or name the type itself (self-references).
    pub fn define_type(&mut self, def: TypeDef) -> Result<TypeId> {
        if self.type_names.contains_key(&def.name) {
            return Err(CatalogError::Duplicate(def.name.clone()));
        }
        for f in &def.fields {
            if let FieldType::Ref(target) = &f.ftype {
                if *target != def.name && !self.type_names.contains_key(target) {
                    return Err(CatalogError::UnknownType(target.clone()));
                }
            }
        }
        let id = TypeId(self.types.len() as u16);
        self.type_names.insert(def.name.clone(), id);
        self.types.push(def);
        Ok(id)
    }

    /// The definition of `id`.
    pub fn type_def(&self, id: TypeId) -> &TypeDef {
        &self.types[id.0 as usize]
    }

    /// Look up a type by name.
    pub fn type_id(&self, name: &str) -> Result<TypeId> {
        self.type_names
            .get(name)
            .copied()
            .ok_or_else(|| CatalogError::UnknownType(name.into()))
    }

    /// The type a ref field points at.
    pub fn ref_target(&self, owner: TypeId, field_idx: usize) -> Result<TypeId> {
        let def = self.type_def(owner);
        match &def.fields[field_idx].ftype {
            FieldType::Ref(t) => self.type_id(t),
            _ => Err(CatalogError::NotARef {
                type_name: def.name.clone(),
                field: def.fields[field_idx].name.clone(),
            }),
        }
    }

    // ----------------------------------------------------------------- sets

    /// Register a named set (`create Emp1 : {own ref EMP}`) stored in
    /// `file`.
    pub fn create_set(&mut self, name: &str, type_name: &str, file: FileId) -> Result<SetId> {
        if self.set_names.contains_key(name) {
            return Err(CatalogError::Duplicate(name.into()));
        }
        let elem_type = self.type_id(type_name)?;
        let id = SetId(self.sets.len() as u16);
        self.sets.push(SetDef {
            id,
            name: name.into(),
            elem_type,
            file,
        });
        self.set_names.insert(name.into(), id);
        Ok(id)
    }

    /// The definition of set `id`.
    pub fn set(&self, id: SetId) -> &SetDef {
        &self.sets[id.0 as usize]
    }

    /// Look up a set by name.
    pub fn set_id(&self, name: &str) -> Result<SetId> {
        self.set_names
            .get(name)
            .copied()
            .ok_or_else(|| CatalogError::UnknownSet(name.into()))
    }

    /// All sets.
    pub fn sets(&self) -> &[SetDef] {
        &self.sets
    }

    /// All sets whose element type is `t`.
    pub fn sets_of_type(&self, t: TypeId) -> impl Iterator<Item = &SetDef> + '_ {
        self.sets.iter().filter(move |s| s.elem_type == t)
    }

    // -------------------------------------------------------------- indexes

    /// Register an index.
    pub fn declare_index(
        &mut self,
        set: SetId,
        target: IndexTarget,
        kind: IndexKind,
        file: FileId,
    ) -> Result<IndexId> {
        if let IndexTarget::Field(idx) = target {
            let t = self.set(set).elem_type;
            if idx >= self.type_def(t).fields.len() {
                return Err(CatalogError::Invalid(format!(
                    "field index {idx} out of range for indexed set"
                )));
            }
        }
        let id = IndexId(self.indexes.len() as u16);
        self.indexes.push(IndexDef {
            id,
            set,
            target,
            kind,
            file,
        });
        Ok(id)
    }

    /// The definition of index `id`.
    #[allow(clippy::should_implement_trait)] // catalog lookup, not ops::Index
    pub fn index(&self, id: IndexId) -> &IndexDef {
        &self.indexes[id.0 as usize]
    }

    /// All indexes on `set`.
    pub fn indexes_on(&self, set: SetId) -> impl Iterator<Item = &IndexDef> + '_ {
        self.indexes.iter().filter(move |i| i.set == set)
    }

    /// Every index in the catalog (the transaction layer uses this to
    /// decide whether B-tree maintenance needs serializing).
    pub fn indexes(&self) -> impl Iterator<Item = &IndexDef> + '_ {
        self.indexes.iter()
    }

    /// Find an index on a specific base field of `set`.
    pub fn index_on_field(&self, set: SetId, field_idx: usize) -> Option<&IndexDef> {
        self.indexes
            .iter()
            .find(|i| i.set == set && i.target == IndexTarget::Field(field_idx))
    }

    /// Find an index on the replicated values of a path.
    pub fn index_on_path(&self, path: PathId) -> Option<&IndexDef> {
        self.indexes
            .iter()
            .find(|i| i.target == IndexTarget::ReplicatedPath(path))
    }

    // ------------------------------------------------------ path resolution

    /// Resolve a dotted path expression against the schema.
    pub fn resolve_path(&self, expr: &PathExpr) -> Result<ResolvedPath> {
        let set = self.set_id(&expr.set)?;
        let mut cur_type = self.set(set).elem_type;
        let mut hops = Vec::new();
        let mut node_types = vec![cur_type];

        let (ref_segs, terminal) = expr
            .segments
            .split_last()
            .map(|(last, init)| (init, last.as_str()))
            .expect("PathExpr::parse guarantees at least one segment");

        for seg in ref_segs {
            let def = self.type_def(cur_type);
            let idx = def
                .field_index(seg)
                .ok_or_else(|| CatalogError::UnknownField {
                    type_name: def.name.clone(),
                    field: seg.clone(),
                })?;
            let target = self.ref_target(cur_type, idx)?;
            hops.push(idx);
            cur_type = target;
            node_types.push(cur_type);
        }

        let def = self.type_def(cur_type);
        let (terminal_fields, is_all) = if terminal == "all" {
            let fields: Vec<usize> = def
                .fields
                .iter()
                .enumerate()
                .filter(|(_, f)| !matches!(f.ftype, FieldType::Pad(_)))
                .map(|(i, _)| i)
                .collect();
            (fields, true)
        } else {
            let idx = def
                .field_index(terminal)
                .ok_or_else(|| CatalogError::UnknownField {
                    type_name: def.name.clone(),
                    field: terminal.into(),
                })?;
            (vec![idx], false)
        };

        Ok(ResolvedPath {
            set,
            hops,
            node_types,
            terminal_fields,
            is_all,
        })
    }

    /// Convenience: parse then resolve.
    pub fn resolve_path_str(&self, s: &str) -> Result<ResolvedPath> {
        let expr = PathExpr::parse(s)?;
        self.resolve_path(&expr)
    }

    // ---------------------------------------------------------------- links

    fn find_link(&self, set: SetId, prefix: &[usize], collapsed: bool) -> Option<LinkId> {
        self.links
            .iter()
            .flatten()
            .find(|l| l.set == set && l.prefix == prefix && l.collapsed == collapsed)
            .map(|l| l.id)
    }

    fn alloc_link(
        &mut self,
        set: SetId,
        prefix: Vec<usize>,
        src_type: TypeId,
        dst_type: TypeId,
        file: FileId,
        collapsed: bool,
    ) -> Result<LinkId> {
        // Reuse a freed slot if any ("link IDs which are not in use can be
        // reused", §4.2).
        let slot = self.links.iter().position(Option::is_none);
        let slot = match slot {
            Some(s) => s,
            None => {
                if self.links.len() >= 255 {
                    return Err(CatalogError::LinkIdsExhausted);
                }
                self.links.push(None);
                self.links.len() - 1
            }
        };
        let id = LinkId((slot + 1) as u8); // link ids start at 1
        let level = prefix.len() - 1;
        self.links[slot] = Some(LinkDef {
            id,
            set,
            prefix,
            src_type,
            dst_type,
            file,
            level,
            refcount: 0,
            collapsed,
        });
        Ok(id)
    }

    /// The definition of link `id`.
    pub fn link(&self, id: LinkId) -> &LinkDef {
        self.links[(id.0 - 1) as usize]
            .as_ref()
            .expect("live link id")
    }

    /// All live links.
    pub fn links(&self) -> impl Iterator<Item = &LinkDef> + '_ {
        self.links.iter().flatten()
    }

    // ---------------------------------------------------------- replication

    /// Declare `replicate <path>` with the given strategy. Creates (or
    /// shares) the links of the inverted path and, for separate
    /// replication, the replica group. New link/replica files are
    /// allocated from `sm`.
    pub fn declare_replication(
        &mut self,
        expr: &PathExpr,
        strategy: Strategy,
        sm: &StorageManager,
    ) -> Result<DeclaredReplication> {
        self.declare_replication_with(expr, strategy, Propagation::Eager, sm)
    }

    /// As [`Catalog::declare_replication`], choosing eager or deferred
    /// value propagation (§8).
    pub fn declare_replication_with(
        &mut self,
        expr: &PathExpr,
        strategy: Strategy,
        propagation: Propagation,
        sm: &StorageManager,
    ) -> Result<DeclaredReplication> {
        self.declare_replication_full(expr, strategy, propagation, false, sm)
    }

    /// Full-control declaration, including §4.3.3 *collapsed* inverted
    /// paths (supported for 2-level in-place paths: the two links are
    /// fused into one tagged link from the terminal set directly to the
    /// sources).
    pub fn declare_replication_full(
        &mut self,
        expr: &PathExpr,
        strategy: Strategy,
        propagation: Propagation,
        collapsed: bool,
        sm: &StorageManager,
    ) -> Result<DeclaredReplication> {
        let resolved = self.resolve_path(expr)?;
        if resolved.hops.is_empty() {
            return Err(CatalogError::NotAReferencePath(expr.to_string()));
        }
        if self.paths.iter().flatten().any(|p| {
            p.set == resolved.set
                && p.hops == resolved.hops
                && p.terminal_fields == resolved.terminal_fields
        }) {
            return Err(CatalogError::Duplicate(expr.to_string()));
        }

        if collapsed {
            if strategy != Strategy::InPlace {
                return Err(CatalogError::Invalid(
                    "collapsed inverted paths require the in-place strategy".into(),
                ));
            }
            if resolved.hops.len() != 2 {
                return Err(CatalogError::Invalid(format!(
                    "collapsed inverted paths support exactly 2 levels (got {})",
                    resolved.hops.len()
                )));
            }
        }

        // Links: in-place inverts every hop (collapsed: one fused link);
        // separate all but the last (§5.2: an n-level path needs an
        // (n−1)-level inverted path).
        let mut links = Vec::new();
        if collapsed {
            let prefix = resolved.hops.clone();
            let id = match self.find_link(resolved.set, &prefix, true) {
                Some(id) => id,
                None => {
                    let file = sm.create_file()?;
                    self.alloc_link(
                        resolved.set,
                        prefix,
                        resolved.node_types[0],
                        *resolved.node_types.last().unwrap(),
                        file,
                        true,
                    )?
                }
            };
            self.links[(id.0 - 1) as usize].as_mut().unwrap().refcount += 1;
            links.push(id);
        } else {
            let n_links = match strategy {
                Strategy::InPlace => resolved.hops.len(),
                Strategy::Separate => resolved.hops.len() - 1,
            };
            for level in 0..n_links {
                let prefix = resolved.hops[..=level].to_vec();
                let id = match self.find_link(resolved.set, &prefix, false) {
                    Some(id) => id,
                    None => {
                        let file = sm.create_file()?;
                        self.alloc_link(
                            resolved.set,
                            prefix,
                            resolved.node_types[level],
                            resolved.node_types[level + 1],
                            file,
                            false,
                        )?
                    }
                };
                let slot = (id.0 - 1) as usize;
                self.links[slot].as_mut().unwrap().refcount += 1;
                links.push(id);
            }
        }

        // Group (separate only).
        let path_id = PathId(self.paths.len() as u16);
        let (group, group_extended) = match strategy {
            Strategy::InPlace => (None, false),
            Strategy::Separate => {
                let existing = self
                    .groups
                    .iter_mut()
                    .flatten()
                    .find(|g| g.set == resolved.set && g.hops == resolved.hops);
                match existing {
                    Some(g) => {
                        let mut extended = false;
                        for f in &resolved.terminal_fields {
                            if !g.fields.contains(f) {
                                g.fields.push(*f);
                                extended = true;
                            }
                        }
                        g.fields.sort_unstable();
                        g.paths.push(path_id);
                        (Some(g.id), extended)
                    }
                    None => {
                        let file = sm.create_file()?;
                        let id = GroupId(self.groups.len() as u16);
                        let mut fields = resolved.terminal_fields.clone();
                        fields.sort_unstable();
                        self.groups.push(Some(GroupDef {
                            id,
                            set: resolved.set,
                            hops: resolved.hops.clone(),
                            terminal_type: *resolved.node_types.last().unwrap(),
                            fields,
                            paths: vec![path_id],
                            file,
                        }));
                        (Some(id), false)
                    }
                }
            }
        };

        self.paths.push(Some(RepPathDef {
            id: path_id,
            expr: expr.clone(),
            set: resolved.set,
            hops: resolved.hops,
            node_types: resolved.node_types,
            terminal_fields: resolved.terminal_fields,
            strategy,
            propagation,
            collapsed,
            links,
            group,
        }));

        Ok(DeclaredReplication {
            path: path_id,
            group,
            group_extended,
        })
    }

    /// The definition of replication path `id`.
    ///
    /// # Panics
    /// Panics if the path was dropped.
    pub fn path(&self, id: PathId) -> &RepPathDef {
        self.paths[id.0 as usize].as_ref().expect("live path id")
    }

    /// All live replication paths.
    pub fn paths(&self) -> impl Iterator<Item = &RepPathDef> + '_ {
        self.paths.iter().flatten()
    }

    /// All live replication paths originating at `set`.
    pub fn paths_from(&self, set: SetId) -> impl Iterator<Item = &RepPathDef> + '_ {
        self.paths.iter().flatten().filter(move |p| p.set == set)
    }

    /// The definition of replica group `id`.
    ///
    /// # Panics
    /// Panics if the group was dropped.
    pub fn group(&self, id: GroupId) -> &GroupDef {
        self.groups[id.0 as usize].as_ref().expect("live group id")
    }

    /// All live replica groups.
    pub fn groups(&self) -> impl Iterator<Item = &GroupDef> + '_ {
        self.groups.iter().flatten()
    }

    /// Remove a replication path: decrement its links' refcounts (freeing
    /// link IDs whose refcount hits zero — the §4.2 reuse), and detach it
    /// from its replica group (dropping the group when it was the last
    /// path). Returns the freed links and the dropped group, if any, so
    /// the engine can dismantle their physical structures.
    pub fn remove_path(&mut self, id: PathId) -> Result<RemovedPath> {
        let slot = self
            .paths
            .get_mut(id.0 as usize)
            .and_then(Option::take)
            .ok_or_else(|| CatalogError::Invalid(format!("path {id} is not live")))?;
        // Refuse if an index is built over it.
        if self
            .indexes
            .iter()
            .any(|i| i.target == IndexTarget::ReplicatedPath(id))
        {
            // Put it back; the operation failed.
            self.paths[id.0 as usize] = Some(slot);
            return Err(CatalogError::Invalid(format!(
                "path {id} still has an index built on its replicated values"
            )));
        }

        let mut freed_links = Vec::new();
        for lid in &slot.links {
            let l = self.links[(lid.0 - 1) as usize]
                .as_mut()
                .expect("path holds live links");
            l.refcount -= 1;
            if l.refcount == 0 {
                freed_links.push(self.links[(lid.0 - 1) as usize].take().unwrap());
            }
        }

        let mut dropped_group = None;
        if let Some(gid) = slot.group {
            let g = self.groups[gid.0 as usize]
                .as_mut()
                .expect("path holds a live group");
            g.paths.retain(|p| *p != id);
            if g.paths.is_empty() {
                dropped_group = self.groups[gid.0 as usize].take();
            }
        }

        Ok(RemovedPath {
            path: slot,
            freed_links,
            dropped_group,
        })
    }

    /// In-place paths whose *terminal* link is `link` and whose replicated
    /// fields include `field_idx` — i.e. the paths that must propagate
    /// when that field of a linked object is updated (§4.1.3: "the
    /// presence of link ID 1 in a DEPT object D indicates … if either
    /// D.budget, D.name, or D.org is updated, that update has to be
    /// propagated").
    pub fn inplace_paths_terminating_at(
        &self,
        link: LinkId,
        field_idx: usize,
    ) -> impl Iterator<Item = &RepPathDef> + '_ {
        self.paths.iter().flatten().filter(move |p| {
            p.strategy == Strategy::InPlace
                && p.links.last() == Some(&link)
                && p.terminal_fields.contains(&field_idx)
        })
    }

    /// Paths for which `link` inverts some hop `i` and whose hop `i+1` is
    /// the ref field `field_idx` — the paths affected when that reference
    /// attribute of a linked intermediate object changes (§4.1.2, and
    /// §5.2's `D2.org` example for separate replication).
    pub fn paths_with_intermediate(
        &self,
        link: LinkId,
        field_idx: usize,
    ) -> impl Iterator<Item = &RepPathDef> + '_ {
        self.paths.iter().flatten().filter(move |p| {
            p.links
                .iter()
                .position(|l| *l == link)
                .is_some_and(|lvl| p.hops.get(lvl + 1) == Some(&field_idx))
        })
    }

    /// Groups whose terminal type is `t` — candidates when a data field of
    /// an object of type `t` is updated under separate replication.
    pub fn groups_with_terminal(&self, t: TypeId) -> impl Iterator<Item = &GroupDef> + '_ {
        self.groups
            .iter()
            .flatten()
            .filter(move |g| g.terminal_type == t)
    }

    /// Find a replication path that answers `(set, hops, field)` without a
    /// (full) functional join: an exact match on hops whose terminal
    /// fields include `field`.
    pub fn replica_for(&self, set: SetId, hops: &[usize], field: usize) -> Option<&RepPathDef> {
        self.paths
            .iter()
            .flatten()
            .find(|p| p.set == set && p.hops == hops && p.terminal_fields.contains(&field))
    }

    /// Find a *collapse* path usable as a shortcut: a replicated path on
    /// `(set, hops[..k])` whose single terminal field is the ref attribute
    /// `hops[k]` (§3.3.3). Returns the longest such `(path, k)`.
    pub fn collapse_for(&self, set: SetId, hops: &[usize]) -> Option<(&RepPathDef, usize)> {
        (0..hops.len()).rev().find_map(|k| {
            self.paths
                .iter()
                .flatten()
                .find(|p| p.set == set && p.hops == hops[..k] && p.terminal_fields == [hops[k]])
                .map(|p| (p, k))
        })
    }
}
