//! Catalog behaviour tests, including the paper's §4.1.4 link-sequence
//! example verified literally.

use fieldrep_catalog::{
    Catalog, CatalogError, DeclaredReplication, IndexKind, IndexTarget, LinkId, PathId, Strategy,
};
use fieldrep_model::{FieldType, PathExpr, TypeDef};
use fieldrep_storage::StorageManager;

fn employee_catalog(sm: &StorageManager) -> Catalog {
    let mut c = Catalog::new();
    c.define_type(TypeDef::new(
        "ORG",
        vec![("name", FieldType::Str), ("budget", FieldType::Int)],
    ))
    .unwrap();
    c.define_type(TypeDef::new(
        "DEPT",
        vec![
            ("name", FieldType::Str),
            ("budget", FieldType::Int),
            ("org", FieldType::Ref("ORG".into())),
        ],
    ))
    .unwrap();
    c.define_type(TypeDef::new(
        "EMP",
        vec![
            ("name", FieldType::Str),
            ("age", FieldType::Int),
            ("salary", FieldType::Int),
            ("dept", FieldType::Ref("DEPT".into())),
        ],
    ))
    .unwrap();
    for (set, ty) in [
        ("Org", "ORG"),
        ("Dept", "DEPT"),
        ("Emp1", "EMP"),
        ("Emp2", "EMP"),
    ] {
        let f = sm.create_file().unwrap();
        c.create_set(set, ty, f).unwrap();
    }
    c
}

#[test]
fn type_definition_rules() {
    let mut c = Catalog::new();
    let bad = TypeDef::new("E", vec![("d", FieldType::Ref("DEPT".into()))]);
    assert!(matches!(
        c.define_type(bad),
        Err(CatalogError::UnknownType(_))
    ));
    let node = TypeDef::new("NODE", vec![("next", FieldType::Ref("NODE".into()))]);
    c.define_type(node).unwrap();
    let dup = TypeDef::new("NODE", vec![("x", FieldType::Int)]);
    assert!(matches!(
        c.define_type(dup),
        Err(CatalogError::Duplicate(_))
    ));
}

#[test]
fn resolve_paths() {
    let sm = StorageManager::in_memory(8);
    let c = employee_catalog(&sm);

    let p = c.resolve_path_str("Emp1.dept.name").unwrap();
    assert_eq!(p.hops, vec![3]); // EMP.dept is field 3
    assert_eq!(p.terminal_fields, vec![0]); // DEPT.name
    assert_eq!(p.node_types.len(), 2);
    assert!(!p.is_all);

    let p = c.resolve_path_str("Emp1.dept.org.name").unwrap();
    assert_eq!(p.hops, vec![3, 2]);
    assert_eq!(p.terminal_fields, vec![0]);

    // Collapse path: terminal is itself a ref field.
    let p = c.resolve_path_str("Emp1.dept.org").unwrap();
    assert_eq!(p.hops, vec![3]);
    assert_eq!(p.terminal_fields, vec![2]); // DEPT.org

    // Full object replication.
    let p = c.resolve_path_str("Emp1.dept.all").unwrap();
    assert!(p.is_all);
    assert_eq!(p.terminal_fields, vec![0, 1, 2]);

    // Plain field (no hops) resolves, for query projections.
    let p = c.resolve_path_str("Emp1.salary").unwrap();
    assert!(p.hops.is_empty());
    assert_eq!(p.terminal_fields, vec![2]);

    assert!(matches!(
        c.resolve_path_str("Nope.dept.name"),
        Err(CatalogError::UnknownSet(_))
    ));
    assert!(matches!(
        c.resolve_path_str("Emp1.bogus.name"),
        Err(CatalogError::UnknownField { .. })
    ));
    assert!(matches!(
        c.resolve_path_str("Emp1.salary.name"),
        Err(CatalogError::NotARef { .. })
    ));
}

#[test]
fn link_sharing_follows_section_4_1_4() {
    // The paper's example:
    //   replicate Emp1.dept.budget    link sequence = (1)
    //   replicate Emp1.dept.name      link sequence = (1)
    //   replicate Emp1.dept.org.name  link sequence = (1,2)
    //   replicate Emp2.dept.org       link sequence = (3)
    let sm = StorageManager::in_memory(8);
    let mut c = employee_catalog(&sm);

    let dec = |c: &mut Catalog, sm: &StorageManager, s: &str| {
        c.declare_replication(&PathExpr::parse(s).unwrap(), Strategy::InPlace, sm)
            .unwrap()
    };
    let p1 = dec(&mut c, &sm, "Emp1.dept.budget");
    let p2 = dec(&mut c, &sm, "Emp1.dept.name");
    let p3 = dec(&mut c, &sm, "Emp1.dept.org.name");
    let p4 = dec(&mut c, &sm, "Emp2.dept.org");

    let l = |p: DeclaredReplication| c.path(p.path).links.clone();
    assert_eq!(l(p1), vec![LinkId(1)]);
    assert_eq!(l(p2), vec![LinkId(1)]);
    assert_eq!(l(p3), vec![LinkId(1), LinkId(2)]);
    assert_eq!(l(p4), vec![LinkId(3)]);
    assert_eq!(c.link(LinkId(1)).refcount, 3);
    assert_eq!(c.link(LinkId(1)).level, 0);
    assert_eq!(c.link(LinkId(2)).level, 1);
    // Link files are distinct.
    assert_ne!(c.link(LinkId(1)).file, c.link(LinkId(2)).file);
}

#[test]
fn separate_groups_share_replica_objects() {
    // §5 Figure 7: Emp1.dept.name and Emp1.dept.budget store their
    // replicated values together in one object per department.
    let sm = StorageManager::in_memory(8);
    let mut c = employee_catalog(&sm);
    let a = c
        .declare_replication(
            &PathExpr::parse("Emp1.dept.name").unwrap(),
            Strategy::Separate,
            &sm,
        )
        .unwrap();
    assert!(!a.group_extended);
    let b = c
        .declare_replication(
            &PathExpr::parse("Emp1.dept.budget").unwrap(),
            Strategy::Separate,
            &sm,
        )
        .unwrap();
    assert_eq!(a.group, b.group);
    assert!(b.group_extended);
    let g = c.group(a.group.unwrap());
    assert_eq!(g.fields, vec![0, 1]);
    assert_eq!(g.paths.len(), 2);

    // 1-level separate paths need no links (§5.2).
    assert!(c.path(a.path).links.is_empty());

    // Different source set → different group (§5: "replicated values are
    // not shared between sets").
    let e2 = c
        .declare_replication(
            &PathExpr::parse("Emp2.dept.name").unwrap(),
            Strategy::Separate,
            &sm,
        )
        .unwrap();
    assert_ne!(e2.group, a.group);
}

#[test]
fn separate_two_level_has_one_link() {
    let sm = StorageManager::in_memory(8);
    let mut c = employee_catalog(&sm);
    let d = c
        .declare_replication(
            &PathExpr::parse("Emp1.dept.org.name").unwrap(),
            Strategy::Separate,
            &sm,
        )
        .unwrap();
    // 2-level path, (n−1) = 1 link: Emp1.dept⁻¹ only.
    assert_eq!(c.path(d.path).links.len(), 1);
    assert_eq!(c.link(c.path(d.path).links[0]).level, 0);
}

#[test]
fn inplace_and_separate_share_links() {
    // §5.3: "links can even be shared by the two strategies".
    let sm = StorageManager::in_memory(8);
    let mut c = employee_catalog(&sm);
    let a = c
        .declare_replication(
            &PathExpr::parse("Emp1.dept.name").unwrap(),
            Strategy::InPlace,
            &sm,
        )
        .unwrap();
    let b = c
        .declare_replication(
            &PathExpr::parse("Emp1.dept.org.name").unwrap(),
            Strategy::Separate,
            &sm,
        )
        .unwrap();
    assert_eq!(c.path(a.path).links[0], c.path(b.path).links[0]);
}

#[test]
fn replication_requires_a_ref() {
    let sm = StorageManager::in_memory(8);
    let mut c = employee_catalog(&sm);
    let r = c.declare_replication(
        &PathExpr::parse("Emp1.salary").unwrap(),
        Strategy::InPlace,
        &sm,
    );
    assert!(matches!(r, Err(CatalogError::NotAReferencePath(_))));
}

#[test]
fn duplicate_replication_rejected() {
    let sm = StorageManager::in_memory(8);
    let mut c = employee_catalog(&sm);
    let e = PathExpr::parse("Emp1.dept.name").unwrap();
    c.declare_replication(&e, Strategy::InPlace, &sm).unwrap();
    assert!(matches!(
        c.declare_replication(&e, Strategy::InPlace, &sm),
        Err(CatalogError::Duplicate(_))
    ));
}

#[test]
fn propagation_lookups() {
    let sm = StorageManager::in_memory(8);
    let mut c = employee_catalog(&sm);
    let p_name = c
        .declare_replication(
            &PathExpr::parse("Emp1.dept.name").unwrap(),
            Strategy::InPlace,
            &sm,
        )
        .unwrap();
    let p_orgname = c
        .declare_replication(
            &PathExpr::parse("Emp1.dept.org.name").unwrap(),
            Strategy::InPlace,
            &sm,
        )
        .unwrap();

    // Updating DEPT.name (field 0) on an object in link 1 propagates only
    // Emp1.dept.name.
    let hits: Vec<PathId> = c
        .inplace_paths_terminating_at(LinkId(1), 0)
        .map(|p| p.id)
        .collect();
    assert_eq!(hits, vec![p_name.path]);

    // Updating ORG.name (field 0) on an object in link 2 propagates
    // Emp1.dept.org.name.
    let hits: Vec<PathId> = c
        .inplace_paths_terminating_at(LinkId(2), 0)
        .map(|p| p.id)
        .collect();
    assert_eq!(hits, vec![p_orgname.path]);

    // Updating DEPT.org (field 2, a ref) on an object in link 1 is an
    // intermediate update of Emp1.dept.org.name.
    let hits: Vec<PathId> = c
        .paths_with_intermediate(LinkId(1), 2)
        .map(|p| p.id)
        .collect();
    assert_eq!(hits, vec![p_orgname.path]);
}

#[test]
fn query_planning_lookups() {
    let sm = StorageManager::in_memory(8);
    let mut c = employee_catalog(&sm);
    c.declare_replication(
        &PathExpr::parse("Emp1.dept.org").unwrap(), // collapse path
        Strategy::InPlace,
        &sm,
    )
    .unwrap();
    c.declare_replication(
        &PathExpr::parse("Emp1.dept.name").unwrap(),
        Strategy::InPlace,
        &sm,
    )
    .unwrap();

    let emp1 = c.set_id("Emp1").unwrap();
    // Exact replica: Emp1.dept.name.
    assert!(c.replica_for(emp1, &[3], 0).is_some());
    assert!(c.replica_for(emp1, &[3], 1).is_none());
    // Collapse: Emp1.dept.org.budget can shortcut through Emp1.dept.org.
    let (p, k) = c.collapse_for(emp1, &[3, 2]).unwrap();
    assert_eq!(k, 1);
    assert_eq!(p.terminal_fields, vec![2]);
    // No collapse for Emp2.
    let emp2 = c.set_id("Emp2").unwrap();
    assert!(c.collapse_for(emp2, &[3, 2]).is_none());
}

#[test]
fn index_registry() {
    let sm = StorageManager::in_memory(8);
    let mut c = employee_catalog(&sm);
    let emp1 = c.set_id("Emp1").unwrap();
    let f = sm.create_file().unwrap();
    let id = c
        .declare_index(emp1, IndexTarget::Field(2), IndexKind::Unclustered, f)
        .unwrap();
    assert_eq!(c.index(id).set, emp1);
    assert!(c.index_on_field(emp1, 2).is_some());
    assert!(c.index_on_field(emp1, 0).is_none());
    assert_eq!(c.indexes_on(emp1).count(), 1);
    assert!(c
        .declare_index(emp1, IndexTarget::Field(99), IndexKind::Unclustered, f)
        .is_err());
}

#[test]
fn all_path_group_fields() {
    // `.all` replication groups every non-pad field of the terminal type.
    let sm = StorageManager::in_memory(8);
    let mut c = employee_catalog(&sm);
    let d = c
        .declare_replication(
            &PathExpr::parse("Emp1.dept.all").unwrap(),
            Strategy::Separate,
            &sm,
        )
        .unwrap();
    let g = c.group(d.group.unwrap());
    assert_eq!(g.fields, vec![0, 1, 2]);
}
