//! # fieldrep-bench
//!
//! The benchmark harness that regenerates the paper's evaluation.
//!
//! * The **analytical side** (Figures 11–14) is pure `fieldrep-costmodel`;
//!   the binaries `fig11`…`fig14` print the same series/rows the paper
//!   reports.
//! * The **empirical side** builds the §6 schema (`R` referencing `S`
//!   through `sref`, `replicate R.sref.repfield`) at the paper's object
//!   sizes on the real storage engine, runs the paper's read/update
//!   queries, and measures actual page I/O with a cold buffer pool —
//!   `cargo run --release -p fieldrep-bench --bin empirical`.
//!
//! This library holds the shared workload builder and measurement
//! helpers; see `src/bin/` for the per-figure drivers and `benches/` for
//! the Criterion timing benchmarks.

pub mod concurrency;
pub mod durability;
pub mod figures;
pub mod json;
pub mod suite;
pub mod trace;

use fieldrep_catalog::{IndexKind, PathId, Strategy};
use fieldrep_core::{Database, DbConfig};
use fieldrep_costmodel::{read_cost, update_cost, IndexSetting, ModelStrategy, Params};
use fieldrep_model::{FieldType, TypeDef, Value};
use fieldrep_obs::{IoCounts, Profile, SpanNode};
use fieldrep_query::{Assign, Filter, ReadQuery, Result, UpdateQuery};
use fieldrep_storage::{IoProfile, Oid};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Which replication strategy a workload uses (`None` = the baseline).
pub type StrategyOpt = Option<Strategy>;

/// The three strategies every sweep iterates, baseline first.
pub const ALL_STRATEGIES: [StrategyOpt; 3] =
    [None, Some(Strategy::InPlace), Some(Strategy::Separate)];

/// Short strategy label used in tables and benchmark point ids.
pub fn strategy_name(s: StrategyOpt) -> &'static str {
    match s {
        None => "none",
        Some(Strategy::InPlace) => "in-place",
        Some(Strategy::Separate) => "separate",
    }
}

/// Specification of a §6 workload.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// `|S|` (the paper uses 10 000).
    pub s_count: usize,
    /// Sharing level `f` (`|R| = f·|S|`).
    pub sharing: usize,
    /// Read selectivity `f_r`.
    pub read_sel: f64,
    /// Update selectivity `f_s`.
    pub update_sel: f64,
    /// Clustered or unclustered indexes (§6.4's two settings).
    pub setting: IndexSetting,
    /// Replication strategy (`None` = no replication).
    pub strategy: StrategyOpt,
    /// §4.3.1 inline-link threshold (0 ⇒ always materialise link
    /// objects, which matches the cost model's link file).
    pub inline_threshold: usize,
    /// Buffer-pool pages.
    pub pool_pages: usize,
    /// RNG seed for the unclustered shuffles.
    pub seed: u64,
}

impl WorkloadSpec {
    /// The paper's defaults at a given sharing level and strategy.
    pub fn paper(sharing: usize, setting: IndexSetting, strategy: StrategyOpt) -> WorkloadSpec {
        WorkloadSpec {
            s_count: 10_000,
            sharing,
            read_sel: 0.001,
            update_sel: 0.001,
            setting,
            strategy,
            inline_threshold: 0,
            pool_pages: 8192,
            seed: 0xF1E1D5EED,
        }
    }

    /// A scaled-down copy (for Criterion timing benches).
    pub fn scaled(mut self, s_count: usize) -> WorkloadSpec {
        self.s_count = s_count;
        self
    }

    /// `|R|`.
    pub fn r_count(&self) -> usize {
        self.s_count * self.sharing
    }

    /// The matching analytical parameter set.
    pub fn params(&self) -> Params {
        Params {
            s_count: self.s_count as f64,
            sharing: self.sharing as f64,
            read_sel: self.read_sel,
            update_sel: self.update_sel,
            ..Params::default()
        }
    }

    /// The matching analytical strategy.
    pub fn model_strategy(&self) -> ModelStrategy {
        match self.strategy {
            None => ModelStrategy::None,
            Some(Strategy::InPlace) => ModelStrategy::InPlace,
            Some(Strategy::Separate) => ModelStrategy::Separate,
        }
    }
}

/// A built workload: the populated database plus bookkeeping.
pub struct Workload {
    /// The database.
    pub db: Database,
    /// The spec it was built from.
    pub spec: WorkloadSpec,
    /// The replication path, if any.
    pub path: Option<PathId>,
    /// S members in physical order.
    pub s_oids: Vec<Oid>,
    /// R members in physical order.
    pub r_oids: Vec<Oid>,
}

/// Build the §6 schema and population:
///
/// ```text
/// define type STYPE ( repfield: char[], field_s: int, pad )   // s = 200
/// define type RTYPE ( sref: ref STYPE, field_r: int, pad )    // r = 100
/// create S; create R; replicate R.sref.repfield
/// ```
///
/// * Unclustered setting: `field_r`/`field_s` are random permutations of
///   `0..N`, and `sref` assignments are a balanced shuffle (every S
///   object referenced by exactly `f` R objects, in random positions) —
///   the paper's "R and S are relatively unclustered".
/// * Clustered setting: key order equals physical order.
pub fn build_workload(spec: WorkloadSpec) -> Result<Workload> {
    let mut db = Database::in_memory(DbConfig {
        pool_pages: spec.pool_pages,
        inline_link_threshold: spec.inline_threshold,
    });

    // Pad sizes make encoded payloads exactly r = 100 / s = 200 before
    // replication:
    //   STYPE: str(2+18) + int(8) + pad(171) + annotation count(1) = 200
    //   RTYPE: ref(8) + int(8) + pad(83) + 1 = 100
    db.define_type(TypeDef::new(
        "STYPE",
        vec![
            ("repfield", FieldType::Str),
            ("field_s", FieldType::Int),
            ("pad", FieldType::Pad(171)),
        ],
    ))?;
    db.define_type(TypeDef::new(
        "RTYPE",
        vec![
            ("sref", FieldType::Ref("STYPE".into())),
            ("field_r", FieldType::Int),
            ("pad", FieldType::Pad(83)),
        ],
    ))?;
    db.create_set("S", "STYPE")?;
    db.create_set("R", "RTYPE")?;

    let mut rng = StdRng::seed_from_u64(spec.seed);
    let n_s = spec.s_count;
    let n_r = spec.r_count();

    // Key assignments.
    let mut s_keys: Vec<i64> = (0..n_s as i64).collect();
    let mut r_keys: Vec<i64> = (0..n_r as i64).collect();
    if spec.setting == IndexSetting::Unclustered {
        s_keys.shuffle(&mut rng);
        r_keys.shuffle(&mut rng);
    }

    // Balanced random sharing: every S object is referenced exactly f
    // times, from random R positions.
    let mut assignment: Vec<usize> = (0..n_r).map(|i| i % n_s).collect();
    assignment.shuffle(&mut rng);

    let mut s_oids = Vec::with_capacity(n_s);
    for (i, &key) in s_keys.iter().enumerate() {
        let rep = format!("rep{i:013}#0"); // 16 chars + "#0" = 18
        debug_assert_eq!(rep.len(), 18);
        let oid = db.insert("S", vec![Value::Str(rep), Value::Int(key), Value::Unit])?;
        s_oids.push(oid);
    }
    let mut r_oids = Vec::with_capacity(n_r);
    for (i, &key) in r_keys.iter().enumerate() {
        let oid = db.insert(
            "R",
            vec![
                Value::Ref(s_oids[assignment[i]]),
                Value::Int(key),
                Value::Unit,
            ],
        )?;
        r_oids.push(oid);
    }

    // Indexes on the selection fields (bulk-built).
    let kind = match spec.setting {
        IndexSetting::Unclustered => IndexKind::Unclustered,
        IndexSetting::Clustered => IndexKind::Clustered,
    };
    db.create_index("R.field_r", kind)?;
    db.create_index("S.field_s", kind)?;

    // Replication.
    let path = match spec.strategy {
        Some(s) => Some(db.replicate("R.sref.repfield", s)?),
        None => None,
    };

    db.flush_all()?;
    db.reset_profile();
    Ok(Workload {
        db,
        spec,
        path,
        s_oids,
        r_oids,
    })
}

/// The §6 read query over keys `[lo, lo + f_r·|R|)`: range-select on
/// `field_r`, project the key and the (possibly replicated) path, spool
/// the output file with `t = 100`.
pub fn read_query(w: &Workload, lo: i64) -> ReadQuery {
    let count = read_rows(w);
    ReadQuery::on("R")
        .filter(Filter::Range {
            path: "field_r".into(),
            lo: Value::Int(lo),
            hi: Value::Int(lo + count - 1),
        })
        .project(["field_r", "sref.repfield"])
        .spool(100)
}

/// The §6 update query over keys `[lo, lo + f_s·|S|)`: range-select on
/// `field_s` and rewrite `repfield`, the replicated field.
pub fn update_query(w: &Workload, lo: i64) -> UpdateQuery {
    let count = update_rows(w);
    UpdateQuery::on("S")
        .filter(Filter::Range {
            path: "field_s".into(),
            lo: Value::Int(lo),
            hi: Value::Int(lo + count - 1),
        })
        .assign("repfield", Assign::CycleStr(8))
}

/// Rows one read query selects (`f_r·|R|`, at least the range width).
fn read_rows(w: &Workload) -> i64 {
    (w.spec.read_sel * w.spec.r_count() as f64).round() as i64
}

/// Objects one update query touches (`f_s·|S|`).
fn update_rows(w: &Workload) -> i64 {
    (w.spec.update_sel * w.spec.s_count as f64).round() as i64
}

/// Run one §6 read query (cold pool, output file generated with
/// `t = 100`) and return the full measured [`IoProfile`] — page counts
/// plus the grouped-read call count (`disk.read_calls`).
pub fn measure_read_query_profile(w: &mut Workload, lo: i64) -> Result<IoProfile> {
    let count = read_rows(w);
    let q = read_query(w, lo);
    w.db.flush_all()?;
    w.db.reset_profile();
    let res = q.run(&mut w.db)?;
    assert_eq!(res.rows.len(), count as usize, "selectivity honoured");
    w.db.flush_all()?;
    let prof = w.db.io_profile();
    if let Some(f) = res.output_file {
        w.db.sm().drop_file(f)?;
    }
    Ok(prof)
}

/// Run one §6 read query and return the measured total page I/O
/// (reads + writes, cold pool, output file generated with `t = 100`).
pub fn measure_read_query(w: &mut Workload, lo: i64) -> Result<u64> {
    Ok(measure_read_query_profile(w, lo)?.total_io())
}

/// Run one §6 update query (cold pool, dirty pages flushed and counted)
/// and return the full measured [`IoProfile`].
pub fn measure_update_query_profile(w: &mut Workload, lo: i64) -> Result<IoProfile> {
    let count = update_rows(w);
    let q = update_query(w, lo);
    w.db.flush_all()?;
    w.db.reset_profile();
    let res = q.run(&mut w.db)?;
    assert_eq!(res.updated, count as usize, "selectivity honoured");
    w.db.flush_all()?;
    Ok(w.db.io_profile())
}

/// Run one §6 update query and return the measured total page I/O
/// (cold pool, dirty pages flushed and counted).
pub fn measure_update_query(w: &mut Workload, lo: i64) -> Result<u64> {
    Ok(measure_update_query_profile(w, lo)?.total_io())
}

/// Convert the storage layer's raw counters into the observability
/// layer's [`IoCounts`] so the two can be compared field by field.
pub fn io_counts_of(p: &IoProfile) -> IoCounts {
    IoCounts {
        disk_reads: p.disk.reads,
        disk_writes: p.disk.writes,
        disk_allocs: p.disk.allocations,
        pool_hits: p.pool_hits,
        pool_misses: p.pool_misses,
        evictions: p.evictions,
    }
}

/// One query executed with tracing enabled on a cold pool: the
/// per-operator [`Profile`], the raw storage counters over the same
/// window, and the span tree.
pub struct ProfiledRun {
    /// Short label (query kind + key range).
    pub label: String,
    /// Result rows (reads) or objects updated (updates).
    pub rows: usize,
    /// Per-operator I/O attribution produced by the executor.
    pub profile: Profile,
    /// Raw buffer-pool counters captured immediately after the query,
    /// before any trailing flush — so they cover exactly the profile's
    /// window and `profile.total_io` must equal `io_counts_of(&raw)`.
    pub raw: IoProfile,
    /// Root spans recorded while the query ran.
    pub spans: Vec<SpanNode>,
}

/// Run one §6 read query with tracing on and return its full profile.
///
/// The pool counters are reset *immediately* before `run` on the same
/// thread, so the raw [`IoProfile`] and the executor's [`Profile`]
/// observe the identical I/O window.
pub fn profile_read_query(w: &mut Workload, lo: i64) -> Result<ProfiledRun> {
    let count = read_rows(w);
    let q = read_query(w, lo);
    w.db.flush_all()?;
    w.db.reset_profile();
    fieldrep_obs::set_tracing(true);
    fieldrep_obs::take_finished();
    let res = q.run(&mut w.db)?;
    let spans = fieldrep_obs::take_finished();
    fieldrep_obs::set_tracing(false);
    let raw = w.db.io_profile();
    let rows = res.rows.len();
    if let Some(f) = res.output_file {
        w.db.sm().drop_file(f)?;
    }
    Ok(ProfiledRun {
        label: format!("read R[{lo}..{}]", lo + count - 1),
        rows,
        profile: res.profile,
        raw,
        spans,
    })
}

/// Run one §6 update query with tracing on and return its full profile.
pub fn profile_update_query(w: &mut Workload, lo: i64) -> Result<ProfiledRun> {
    let count = update_rows(w);
    let q = update_query(w, lo);
    w.db.flush_all()?;
    w.db.reset_profile();
    fieldrep_obs::set_tracing(true);
    fieldrep_obs::take_finished();
    let res = q.run(&mut w.db)?;
    let spans = fieldrep_obs::take_finished();
    fieldrep_obs::set_tracing(false);
    let raw = w.db.io_profile();
    Ok(ProfiledRun {
        label: format!("update S[{lo}..{}]", lo + count - 1),
        rows: res.updated,
        profile: res.profile,
        raw,
        spans,
    })
}

/// Average `(total page I/O, disk read calls)` of `n` read queries at
/// distinct offsets. The second component is the grouped-call count —
/// the seek/syscall proxy the batched fast path shrinks while page I/O
/// stays constant.
pub fn avg_read_stats(w: &mut Workload, n: usize) -> Result<(f64, f64)> {
    let count = (w.spec.read_sel * w.spec.r_count() as f64).round() as i64;
    let max_lo = (w.spec.r_count() as i64 - count).max(1);
    let (mut io, mut calls) = (0.0, 0.0);
    for i in 0..n {
        let lo = (i as i64 * 7919) % max_lo;
        let p = measure_read_query_profile(w, lo)?;
        io += p.total_io() as f64;
        calls += p.disk.read_calls as f64;
    }
    Ok((io / n as f64, calls / n as f64))
}

/// Average measured I/O of `n` read queries at distinct offsets.
pub fn avg_read_io(w: &mut Workload, n: usize) -> Result<f64> {
    Ok(avg_read_stats(w, n)?.0)
}

/// Average `(total page I/O, disk read calls)` of `n` update queries at
/// distinct offsets.
pub fn avg_update_stats(w: &mut Workload, n: usize) -> Result<(f64, f64)> {
    let count = (w.spec.update_sel * w.spec.s_count as f64).round() as i64;
    let max_lo = (w.spec.s_count as i64 - count).max(1);
    let (mut io, mut calls) = (0.0, 0.0);
    for i in 0..n {
        let lo = (i as i64 * 6389) % max_lo;
        let p = measure_update_query_profile(w, lo)?;
        io += p.total_io() as f64;
        calls += p.disk.read_calls as f64;
    }
    Ok((io / n as f64, calls / n as f64))
}

/// Average measured I/O of `n` update queries at distinct offsets.
pub fn avg_update_io(w: &mut Workload, n: usize) -> Result<f64> {
    Ok(avg_update_stats(w, n)?.0)
}

/// One cell of the empirical matrix: measured vs. analytical page I/O
/// for the §6 read and update queries of a single workload.
pub struct CellMeasurement {
    /// Measured read I/O, averaged over the cell's queries.
    pub read_measured: f64,
    /// Analytical `C_read` at the workload's parameters.
    pub read_model: f64,
    /// Measured update I/O, averaged.
    pub update_measured: f64,
    /// Analytical `C_update`.
    pub update_model: f64,
    /// Wall time of all read queries, nanoseconds.
    pub read_nanos: u64,
    /// Wall time of all update queries, nanoseconds.
    pub update_nanos: u64,
    /// Disk read *calls* per read query, averaged (grouped batch reads
    /// count once; `read_measured / read_calls` ≈ mean batch length).
    pub read_calls: f64,
    /// Disk read calls per update query, averaged.
    pub update_calls: f64,
}

/// Build one workload and measure its cell (`queries` runs averaged per
/// side). Returns the workload too, so callers can keep probing it.
pub fn measure_cell(spec: WorkloadSpec, queries: usize) -> Result<(Workload, CellMeasurement)> {
    let params = spec.params();
    let model = spec.model_strategy();
    let setting = spec.setting;
    let mut w = build_workload(spec)?;
    let t0 = std::time::Instant::now();
    let (read_measured, read_calls) = avg_read_stats(&mut w, queries)?;
    let read_nanos = t0.elapsed().as_nanos() as u64;
    let t1 = std::time::Instant::now();
    let (update_measured, update_calls) = avg_update_stats(&mut w, queries)?;
    let update_nanos = t1.elapsed().as_nanos() as u64;
    let cell = CellMeasurement {
        read_measured,
        read_model: read_cost(&params, model, setting).total(),
        update_measured,
        update_model: update_cost(&params, model, setting).total(),
        read_nanos,
        update_nanos,
        read_calls,
        update_calls,
    };
    Ok((w, cell))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_object_sizes_match_paper() {
        let spec = WorkloadSpec::paper(1, IndexSetting::Unclustered, None).scaled(200);
        let w = build_workload(spec).unwrap();
        // r = 100 → 33 objects/page → 200 objects on ⌈200/33⌉ = 7 pages.
        let rfile = w.db.catalog().set(w.db.catalog().set_id("R").unwrap()).file;
        assert_eq!(w.db.sm().page_count(rfile).unwrap(), 7);
        // s = 200 → 18 objects/page → ⌈200/18⌉ = 12 pages.
        let sfile = w.db.catalog().set(w.db.catalog().set_id("S").unwrap()).file;
        assert_eq!(w.db.sm().page_count(sfile).unwrap(), 12);
    }

    #[test]
    fn queries_execute_and_measure() {
        for strategy in [None, Some(Strategy::InPlace), Some(Strategy::Separate)] {
            let spec = WorkloadSpec::paper(2, IndexSetting::Unclustered, strategy).scaled(500);
            let mut w = build_workload(spec).unwrap();
            let r = measure_read_query(&mut w, 0).unwrap();
            let u = measure_update_query(&mut w, 0).unwrap();
            assert!(r > 0 && u > 0, "{strategy:?}: read={r} update={u}");
        }
    }

    #[test]
    fn replication_reduces_read_io() {
        let mut base =
            build_workload(WorkloadSpec::paper(4, IndexSetting::Unclustered, None).scaled(1000))
                .unwrap();
        let mut inp = build_workload(
            WorkloadSpec::paper(4, IndexSetting::Unclustered, Some(Strategy::InPlace)).scaled(1000),
        )
        .unwrap();
        let io_base = avg_read_io(&mut base, 3).unwrap();
        let io_inp = avg_read_io(&mut inp, 3).unwrap();
        assert!(
            io_inp < io_base,
            "in-place read I/O {io_inp} should beat baseline {io_base}"
        );
    }
}
