//! Trace-driven §6 query mixes, executed literally: for each update
//! probability, draw a random interleaved read/update trace, run it
//! against the engine, and report the measured average I/O per query
//! (the empirical `C_total`) for each strategy.
//!
//! Run: `cargo run --release -p fieldrep-bench --bin trace_run [--s N] [--f F] [--q N]`
//!
//! With `--profile`, instead of the P_up sweep, one read and one update
//! query run per strategy with span tracing on, and the per-operator
//! I/O profiles (EXPLAIN-ANALYZE style), span trees, and the global
//! metrics registry are printed; each profile's per-operator counters
//! are checked to sum exactly to the raw buffer-pool totals for the
//! run.  `--jsonl <path>` additionally writes every span, profile, and
//! registry entry as one JSON object per line (and implies --profile).
//! `--chrome-trace <path>` writes the collected span trees as one
//! Chrome-trace/Perfetto JSON document (load it at ui.perfetto.dev or
//! `chrome://tracing`); it also implies --profile.

use fieldrep_bench::trace::run_trace;
use fieldrep_bench::{
    build_workload, io_counts_of, profile_read_query, profile_update_query, strategy_name,
    ProfiledRun, WorkloadSpec, ALL_STRATEGIES,
};
use fieldrep_costmodel::{total_cost, IndexSetting, ModelStrategy};
use fieldrep_obs::{export, registry};
use std::io::Write;

/// Print one profiled query (profile table + span tree) and verify the
/// telescoping invariant against the raw pool counters. Returns the
/// JSONL lines for the run.
fn report_run(name: &str, run: &ProfiledRun) -> Vec<String> {
    let label = format!("{name}/{}", run.label);
    println!("{}", export::profile_text(&label, &run.profile));
    for s in &run.spans {
        print!("{}", export::span_text(s));
    }
    let raw = io_counts_of(&run.raw);
    let sum = run.profile.ops_io_sum();
    assert_eq!(
        sum, raw,
        "{label}: per-operator I/O must sum to the raw pool totals"
    );
    println!(
        "  invariant ok: sum(per-operator I/O) == raw pool totals ({})\n",
        export::io_text(&raw)
    );
    let mut lines = vec![export::profile_jsonl(&label, &run.profile)];
    lines.extend(run.spans.iter().map(export::span_jsonl));
    lines
}

fn run_profiled(
    s_count: usize,
    sharing: usize,
    jsonl: Option<&str>,
    chrome: Option<&str>,
    run_id: &str,
) {
    let setting = IndexSetting::Unclustered;
    println!("=== Profiled §6 queries: f = {sharing}, |S| = {s_count} ===\n");
    let mut lines = vec![export::run_meta_jsonl(run_id)];
    let mut spans = Vec::new();
    for strat in ALL_STRATEGIES {
        let name = strategy_name(strat);
        let mut w = build_workload(WorkloadSpec::paper(sharing, setting, strat).scaled(s_count))
            .expect("build workload");
        for run in [
            profile_read_query(&mut w, 0).expect("profiled read"),
            profile_update_query(&mut w, 0).expect("profiled update"),
        ] {
            lines.extend(report_run(name, &run));
            spans.extend(run.spans);
        }
    }
    let snap = registry().snapshot();
    println!("{}", export::snapshot_text(&snap));
    if let Some(path) = jsonl {
        lines.extend(export::snapshot_jsonl(&snap));
        let mut f = std::fs::File::create(path).expect("create --jsonl file");
        for l in &lines {
            writeln!(f, "{l}").expect("write --jsonl line");
        }
        println!("wrote {} JSON lines to {path}", lines.len());
    }
    if let Some(path) = chrome {
        std::fs::write(path, export::chrome_trace_json(&spans)).expect("write --chrome-trace file");
        println!(
            "wrote Chrome trace of {} root span(s) to {path}",
            spans.len()
        );
    }
}

fn main() {
    let mut s_count = 2000usize;
    let mut sharing = 10usize;
    let mut n_queries = 30usize;
    let mut profile = false;
    let mut jsonl: Option<String> = None;
    let mut chrome: Option<String> = None;
    let mut run_id = String::from("trace_run");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--s" => s_count = args.next().and_then(|v| v.parse().ok()).expect("--s N"),
            "--f" => sharing = args.next().and_then(|v| v.parse().ok()).expect("--f F"),
            "--q" => n_queries = args.next().and_then(|v| v.parse().ok()).expect("--q N"),
            "--profile" => profile = true,
            "--jsonl" => jsonl = Some(args.next().expect("--jsonl <path>")),
            "--chrome-trace" => chrome = Some(args.next().expect("--chrome-trace <path>")),
            "--run-id" => run_id = args.next().expect("--run-id ID"),
            other => panic!("unknown flag {other}"),
        }
    }
    if profile || jsonl.is_some() || chrome.is_some() {
        run_profiled(
            s_count,
            sharing,
            jsonl.as_deref(),
            chrome.as_deref(),
            &run_id,
        );
        return;
    }
    let setting = IndexSetting::Unclustered;

    println!("=== Trace-driven query mixes: f = {sharing}, |S| = {s_count}, {n_queries} queries per point ===\n");
    println!(
        "{:>5} | {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9}",
        "P_up", "none", "in-pl", "sep", "none*", "in-pl*", "sep*"
    );
    println!(
        "{:>5} | {:^29} | {:^29}",
        "", "measured C_total", "model C_total (*)"
    );

    // Build each workload once; traces mutate repfield cyclically, which
    // keeps the database valid across points.
    let mut workloads: Vec<_> = ALL_STRATEGIES
        .into_iter()
        .map(|strat| {
            build_workload(WorkloadSpec::paper(sharing, setting, strat).scaled(s_count))
                .expect("build workload")
        })
        .collect();
    let params = workloads[0].spec.params();

    for i in 0..=5 {
        let p = i as f64 / 5.0;
        print!("{p:>5.1} |");
        let mut measured = Vec::new();
        for w in &mut workloads {
            let r = run_trace(w, p, n_queries, 0xBEEF + i).expect("trace run");
            measured.push(r.c_total());
        }
        for m in &measured {
            print!(" {m:>9.1}");
        }
        print!(" |");
        for strat in [
            ModelStrategy::None,
            ModelStrategy::InPlace,
            ModelStrategy::Separate,
        ] {
            print!(" {:>9.1}", total_cost(&params, strat, setting, p));
        }
        println!();
    }
    println!("\nMeasured values are averages over randomly interleaved traces; model");
    println!("values are the paper's equations at the same (scaled) parameters.");
}
