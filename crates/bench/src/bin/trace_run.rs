//! Trace-driven §6 query mixes, executed literally: for each update
//! probability, draw a random interleaved read/update trace, run it
//! against the engine, and report the measured average I/O per query
//! (the empirical `C_total`) for each strategy.
//!
//! Run: `cargo run --release -p fieldrep-bench --bin trace_run [--s N] [--f F] [--q N]`

use fieldrep_bench::trace::run_trace;
use fieldrep_bench::{build_workload, WorkloadSpec};
use fieldrep_catalog::Strategy;
use fieldrep_costmodel::{total_cost, IndexSetting, ModelStrategy};

fn main() {
    let mut s_count = 2000usize;
    let mut sharing = 10usize;
    let mut n_queries = 30usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--s" => s_count = args.next().and_then(|v| v.parse().ok()).expect("--s N"),
            "--f" => sharing = args.next().and_then(|v| v.parse().ok()).expect("--f F"),
            "--q" => n_queries = args.next().and_then(|v| v.parse().ok()).expect("--q N"),
            other => panic!("unknown flag {other}"),
        }
    }
    let setting = IndexSetting::Unclustered;

    println!("=== Trace-driven query mixes: f = {sharing}, |S| = {s_count}, {n_queries} queries per point ===\n");
    println!(
        "{:>5} | {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9}",
        "P_up", "none", "in-pl", "sep", "none*", "in-pl*", "sep*"
    );
    println!("{:>5} | {:^29} | {:^29}", "", "measured C_total", "model C_total (*)");

    // Build each workload once; traces mutate repfield cyclically, which
    // keeps the database valid across points.
    let mut workloads: Vec<_> = [None, Some(Strategy::InPlace), Some(Strategy::Separate)]
        .into_iter()
        .map(|strat| build_workload(WorkloadSpec::paper(sharing, setting, strat).scaled(s_count)))
        .collect();
    let params = workloads[0].spec.params();

    for i in 0..=5 {
        let p = i as f64 / 5.0;
        print!("{p:>5.1} |");
        let mut measured = Vec::new();
        for w in &mut workloads {
            let r = run_trace(w, p, n_queries, 0xBEEF + i);
            measured.push(r.c_total());
        }
        for m in &measured {
            print!(" {m:>9.1}");
        }
        print!(" |");
        for strat in [
            ModelStrategy::None,
            ModelStrategy::InPlace,
            ModelStrategy::Separate,
        ] {
            print!(" {:>9.1}", total_cost(&params, strat, setting, p));
        }
        println!();
    }
    println!("\nMeasured values are averages over randomly interleaved traces; model");
    println!("values are the paper's equations at the same (scaled) parameters.");
}
