//! Regenerates **Figure 14**: selected `C_read` / `C_update` values for
//! clustered access at (f = 1, f_r = .002) and (f = 20, f_r = .002).
//!
//! Run: `cargo run --release -p fieldrep-bench --bin fig14`

use fieldrep_bench::figures::render_selected_values;
use fieldrep_costmodel::IndexSetting;

fn main() {
    println!("=== Figure 14: Selected Values for C_read and C_update (Clustered) ===\n");
    print!("{}", render_selected_values(IndexSetting::Clustered));
    println!("\nPaper's values:        |     24          4   |    316          4");
    println!("                       |      4         24   |     32        400");
    println!("                       |     23          6   |    133          6");
}
