//! Regenerates **Figure 14**: selected `C_read` / `C_update` values for
//! clustered access at (f = 1, f_r = .002) and (f = 20, f_r = .002).
//!
//! Run: `cargo run --release -p fieldrep-bench --bin fig14`

use fieldrep_costmodel::{selected_values, IndexSetting, ModelStrategy};

fn name(s: ModelStrategy) -> &'static str {
    match s {
        ModelStrategy::None => "no replication",
        ModelStrategy::InPlace => "in-place replication",
        ModelStrategy::Separate => "separate replication",
    }
}

fn main() {
    println!("=== Figure 14: Selected Values for C_read and C_update (Clustered) ===\n");
    println!("{:<22} | f=1,f_r=.002        | f=20,f_r=.002", "");
    println!(
        "{:<22} | C_read   C_update   | C_read   C_update",
        "Strategy"
    );
    println!("{}", "-".repeat(68));
    let t1 = selected_values(IndexSetting::Clustered, 1.0);
    let t20 = selected_values(IndexSetting::Clustered, 20.0);
    for (a, b) in t1.iter().zip(&t20) {
        println!(
            "{:<22} | {:>6}   {:>8}   | {:>6}   {:>8}",
            name(a.strategy),
            a.c_read,
            a.c_update,
            b.c_read,
            b.c_update
        );
    }
    println!("\nPaper's values:        |     24          4   |    316          4");
    println!("                       |      4         24   |     32        400");
    println!("                       |     23          6   |    133          6");
}
