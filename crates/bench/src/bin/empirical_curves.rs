//! Empirical counterparts of Figures 11/13: the percentage change in
//! `C_total` versus update probability, computed from *measured* page I/O
//! of the real engine (scaled |S|), side by side with the analytical
//! curves.
//!
//! `C_total(P) = (1−P)·C_read + P·C_update` needs only one measured
//! `C_read` and `C_update` per strategy; the sweep is then arithmetic —
//! exactly how the paper builds Figures 11/13 from its cost equations.
//!
//! Run: `cargo run --release -p fieldrep-bench --bin empirical_curves [--s N]`

use fieldrep_bench::{avg_read_io, avg_update_io, build_workload, WorkloadSpec};
use fieldrep_catalog::Strategy;
use fieldrep_costmodel::{total_cost, IndexSetting};

fn main() {
    let mut s_count = 4000usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--s" {
            s_count = args
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--s takes a number");
        }
    }
    let queries = 4;

    for setting in [IndexSetting::Unclustered, IndexSetting::Clustered] {
        for f in [1usize, 10, 20] {
            println!(
                "=== {setting:?}, f = {f}, |S| = {s_count}, |R| = {} ===",
                f * s_count
            );
            // Measure each strategy once.
            let mut meas: Vec<(f64, f64)> = Vec::new(); // (read, update)
            let mut model_params = None;
            for strat in [None, Some(Strategy::InPlace), Some(Strategy::Separate)] {
                let spec = WorkloadSpec::paper(f, setting, strat).scaled(s_count);
                model_params.get_or_insert_with(|| spec.params());
                let mut w = build_workload(spec).expect("build workload");
                meas.push((
                    avg_read_io(&mut w, queries).expect("read measurement"),
                    avg_update_io(&mut w, queries).expect("update measurement"),
                ));
            }
            let params = model_params.unwrap();
            let total = |m: &(f64, f64), p: f64| (1.0 - p) * m.0 + p * m.1;

            println!(
                "{:>5} | {:>10} {:>10} | {:>10} {:>10}",
                "P_up", "inpl meas%", "inpl model%", "sep meas%", "sep model%"
            );
            for i in 0..=10 {
                let p = i as f64 / 10.0;
                let base = total(&meas[0], p);
                let m_ip = 100.0 * (total(&meas[1], p) - base) / base;
                let m_sep = 100.0 * (total(&meas[2], p) - base) / base;
                let a_base =
                    total_cost(&params, fieldrep_costmodel::ModelStrategy::None, setting, p);
                let a_ip = 100.0
                    * (total_cost(
                        &params,
                        fieldrep_costmodel::ModelStrategy::InPlace,
                        setting,
                        p,
                    ) - a_base)
                    / a_base;
                let a_sep = 100.0
                    * (total_cost(
                        &params,
                        fieldrep_costmodel::ModelStrategy::Separate,
                        setting,
                        p,
                    ) - a_base)
                    / a_base;
                println!("{p:>5.1} | {m_ip:>+10.1} {a_ip:>+10.1} | {m_sep:>+10.1} {a_sep:>+10.1}");
            }
            println!();
        }
    }
    println!("Negative % = replication cheaper than no replication. The measured");
    println!("curves should show the paper's shapes: in-place best at low P_up and");
    println!("degrading with P_up; separate flatter, winning beyond the crossover.");
}
