//! Continuous benchmark suite: runs the fixed measurement matrix (§6
//! read/update I/O across settings, sharing levels, and strategies,
//! propagation fan-out, EXPLAIN-ANALYZE model drift, and the Figure
//! 12/14 analytical cells) and writes a schema-versioned report for
//! `bench_gate` to diff against the previous run.
//!
//! Run: `cargo run --release -p fieldrep-bench --bin bench_suite -- \
//!         [--smoke] [--out PATH] [--run-id ID]`
//!
//! * default output: `BENCH_<YYYY-MM-DD>.json` in the current directory;
//! * `--smoke`: the seconds-scale CI matrix, which additionally
//!   self-tests the gate logic (a report must pass against itself, and
//!   an injected +50% I/O regression must fail) and exits nonzero if
//!   those checks break.

use fieldrep_bench::suite::{gate, run_suite, GateThresholds, SuiteConfig, SuiteReport};
use std::process::ExitCode;
use std::time::{SystemTime, UNIX_EPOCH};

/// `YYYY-MM-DD` from a Unix timestamp (civil-from-days, Howard Hinnant's
/// algorithm) — avoids a date-time dependency.
fn utc_date(secs: u64) -> String {
    let days = (secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

/// The gate self-test run in smoke mode: identical reports must pass,
/// an injected regression must fail. Returns an error description if
/// the gate logic itself is broken.
fn smoke_gate_check(report: &SuiteReport) -> Result<(), String> {
    let t = GateThresholds::default();
    let v = gate(report, report, &t);
    if !v.is_empty() {
        return Err(format!("self-comparison must pass, got {v:?}"));
    }
    let mut worse = report.clone();
    let p = worse
        .points
        .iter_mut()
        .find(|p| p.id.starts_with("io/"))
        .ok_or("no io/ point in smoke report")?;
    p.measured_io *= 1.5;
    if gate(report, &worse, &t).is_empty() {
        return Err("injected +50% I/O regression was not caught".into());
    }
    // Wall-clock gating: a synthetic 100 ms -> 130 ms slowdown (above the
    // noise floor) must be caught.
    let mut slow_old = report.clone();
    let mut slow_new = report.clone();
    let id = slow_old
        .points
        .iter()
        .find(|p| p.id.starts_with("io/"))
        .ok_or("no io/ point in smoke report")?
        .id
        .clone();
    slow_old
        .points
        .iter_mut()
        .find(|p| p.id == id)
        .unwrap()
        .wall_ms = 100.0;
    slow_new
        .points
        .iter_mut()
        .find(|p| p.id == id)
        .unwrap()
        .wall_ms = 130.0;
    if !gate(&slow_old, &slow_new, &t)
        .iter()
        .any(|v| v.contains("wall clock"))
    {
        return Err("injected +30% wall-clock regression was not caught".into());
    }
    let back = SuiteReport::parse(&report.to_json()).map_err(|e| format!("reparse: {e}"))?;
    if back.points != report.points {
        return Err("report did not survive a JSON round trip".into());
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut smoke = false;
    let mut out: Option<String> = None;
    let mut run_id: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = Some(args.next().expect("--out PATH")),
            "--run-id" => run_id = Some(args.next().expect("--run-id ID")),
            other => {
                eprintln!("unknown flag {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let cfg = if smoke {
        SuiteConfig::smoke()
    } else {
        SuiteConfig::full()
    };
    let now = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let run_id = run_id.unwrap_or_else(|| format!("local-{}", utc_date(now)));
    let out = out.unwrap_or_else(|| format!("BENCH_{}.json", utc_date(now)));

    println!(
        "=== bench_suite ({}) run_id={run_id} ===\n",
        if smoke { "smoke" } else { "full" }
    );
    let report = run_suite(&cfg, &run_id).expect("bench suite");

    println!(
        "{:<40} {:>10} {:>10} {:>8}",
        "point", "measured", "model", "drift%"
    );
    for p in &report.points {
        if p.id.starts_with("model/") {
            continue; // analytical cells are in the JSON, not the summary
        }
        println!(
            "{:<40} {:>10.1} {:>10.1} {:>+8.1}",
            p.id, p.measured_io, p.model_io, p.drift_pct
        );
    }

    // Batched I/O: wall clock and grouped-read calls per io/ point. Page
    // I/O is unchanged by batching; the win shows up as fewer read calls
    // (seek/syscall proxy) and lower wall time.
    println!(
        "\n--- Batched I/O ---\n{:<40} {:>10} {:>10} {:>10}",
        "point", "wall_ms", "calls", "pages/call"
    );
    for p in &report.points {
        if !p.id.starts_with("io/") {
            continue;
        }
        let per_call = if p.batch_io > 0.0 {
            p.measured_io / p.batch_io
        } else {
            0.0
        };
        println!(
            "{:<40} {:>10.2} {:>10.1} {:>10.2}",
            p.id, p.wall_ms, p.batch_io, per_call
        );
    }
    for line in &report.metrics {
        if line.contains("storage.disk.batch_len") || line.contains("storage.prefetch.") {
            println!("{line}");
        }
    }

    // Concurrency: snapshot-read / transactional-update throughput by
    // thread count (ops/s; scaling judged by the gate on capable hosts).
    println!(
        "\n--- Concurrency ---\n{:<40} {:>12} {:>10}",
        "point", "ops/s", "wall_ms"
    );
    for p in &report.points {
        if !p.id.starts_with("concurrency/") {
            continue;
        }
        if p.id == "concurrency/host/cpus" {
            println!("{:<40} {:>12.0} {:>10}", p.id, p.measured_io, "-");
        } else {
            println!("{:<40} {:>12.0} {:>10.1}", p.id, p.ops_per_sec, p.wall_ms);
        }
    }

    // Telemetry overhead: always-on pipeline (recorder + timeline tick)
    // vs. recorder disabled, min-of-reps on one fixed workload.
    let wall = |mode: &str| {
        report
            .points
            .iter()
            .find(|p| p.id == format!("overhead/telemetry/{mode}"))
            .map(|p| p.wall_ms)
    };
    if let (Some(on), Some(off)) = (wall("on"), wall("off")) {
        let pct = if off > 0.0 {
            100.0 * (on - off) / off
        } else {
            0.0
        };
        println!(
            "\n--- Telemetry overhead ---\non  {on:>8.2} ms\noff {off:>8.2} ms\ncost {pct:>+6.1}%"
        );
    }

    if smoke {
        if let Err(e) = smoke_gate_check(&report) {
            eprintln!("\nsmoke gate self-test FAILED: {e}");
            return ExitCode::FAILURE;
        }
        println!("\nsmoke gate self-test passed (self-diff clean, injected regression caught)");
    }

    if let Err(e) = std::fs::write(&out, report.to_json() + "\n") {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {} points to {out}", report.points.len());
    ExitCode::SUCCESS
}
