//! Regenerates **Figure 11**: percentage difference in `C_total` versus
//! update probability, *unclustered* indexes, four sharing levels
//! (f = 1, 10, 20, 50), read selectivities f_r ∈ {.001, .002, .005}.
//!
//! Run: `cargo run --release -p fieldrep-bench --bin fig11`

use fieldrep_bench::figures::render_percent_figure;
use fieldrep_costmodel::IndexSetting;

fn main() {
    println!("=== Figure 11: Results for Unclustered Indexes ===");
    println!("(negative % = replication is cheaper than no replication)\n");
    println!("{}", render_percent_figure(IndexSetting::Unclustered));
    println!("Paper's reading (§6.6): in-place wins below P_up ≈ 0.15 (15–45% savings);");
    println!("separate wins above ≈ 0.35 for f > 1 (10–30% savings); separate ≈ no");
    println!("replication at f = 1.");
}
