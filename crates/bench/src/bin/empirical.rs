//! Empirical validation: measured page I/O of the real engine vs. the
//! paper's analytical predictions, for every strategy and both index
//! settings, at the paper's parameters (|S| = 10 000, r = 100, s = 200,
//! k = 20, f_r = f_s = .001).
//!
//! Run: `cargo run --release -p fieldrep-bench --bin empirical [--full]`
//!
//! `--full` adds f = 50 (|R| = 500 000; takes a few extra minutes).

use fieldrep_bench::{avg_read_io, avg_update_io, build_workload, WorkloadSpec};
use fieldrep_catalog::Strategy;
use fieldrep_costmodel::{read_cost, update_cost, IndexSetting};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let sharings: &[usize] = if full { &[1, 10, 20, 50] } else { &[1, 10, 20] };
    let queries = 5;

    println!("=== Empirical validation: measured page I/O vs. analytical model ===");
    println!("|S| = 10,000, f_r = f_s = .001, {queries} queries averaged, cold pool\n");

    for setting in [IndexSetting::Unclustered, IndexSetting::Clustered] {
        println!("--- {setting:?} indexes ---");
        println!(
            "{:>3} {:<10} | {:>10} {:>10} {:>7} | {:>10} {:>10} {:>7}",
            "f", "strategy", "read meas", "read model", "ratio", "upd meas", "upd model", "ratio"
        );
        for &f in sharings {
            for strategy in [None, Some(Strategy::InPlace), Some(Strategy::Separate)] {
                let spec = WorkloadSpec::paper(f, setting, strategy);
                let params = spec.params();
                let model = spec.model_strategy();
                let mut w = build_workload(spec);
                let read_meas = avg_read_io(&mut w, queries);
                let upd_meas = avg_update_io(&mut w, queries);
                let read_model = read_cost(&params, model, setting).total();
                let upd_model = update_cost(&params, model, setting).total();
                println!(
                    "{:>3} {:<10} | {:>10.1} {:>10.1} {:>7.2} | {:>10.1} {:>10.1} {:>7.2}",
                    f,
                    match strategy {
                        None => "none",
                        Some(Strategy::InPlace) => "in-place",
                        Some(Strategy::Separate) => "separate",
                    },
                    read_meas,
                    read_model,
                    read_meas / read_model,
                    upd_meas,
                    upd_model,
                    upd_meas / upd_model,
                );
            }
        }
        println!();
    }
    println!("Interpretation: ratios near 1.0 mean the engine behaves as the §6 model");
    println!("predicts. Our objects carry slightly larger replication annotations than");
    println!("the model's idealised k bytes (see EXPERIMENTS.md), and B⁺-tree heights");
    println!("differ from m = 350, so small constant offsets are expected.");
}
