//! Empirical validation: measured page I/O of the real engine vs. the
//! paper's analytical predictions, for every strategy and both index
//! settings, at the paper's parameters (|S| = 10 000, r = 100, s = 200,
//! k = 20, f_r = f_s = .001).
//!
//! Run: `cargo run --release -p fieldrep-bench --bin empirical [--full]`
//!
//! `--full` adds f = 50 (|R| = 500 000; takes a few extra minutes).

use fieldrep_bench::{measure_cell, strategy_name, WorkloadSpec, ALL_STRATEGIES};
use fieldrep_costmodel::IndexSetting;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let sharings: &[usize] = if full { &[1, 10, 20, 50] } else { &[1, 10, 20] };
    let queries = 5;

    println!("=== Empirical validation: measured page I/O vs. analytical model ===");
    println!("|S| = 10,000, f_r = f_s = .001, {queries} queries averaged, cold pool\n");

    for setting in [IndexSetting::Unclustered, IndexSetting::Clustered] {
        println!("--- {setting:?} indexes ---");
        println!(
            "{:>3} {:<10} | {:>10} {:>10} {:>7} | {:>10} {:>10} {:>7}",
            "f", "strategy", "read meas", "read model", "ratio", "upd meas", "upd model", "ratio"
        );
        for &f in sharings {
            for strategy in ALL_STRATEGIES {
                let spec = WorkloadSpec::paper(f, setting, strategy);
                let (_, cell) = measure_cell(spec, queries).expect("measure cell");
                println!(
                    "{:>3} {:<10} | {:>10.1} {:>10.1} {:>7.2} | {:>10.1} {:>10.1} {:>7.2}",
                    f,
                    strategy_name(strategy),
                    cell.read_measured,
                    cell.read_model,
                    cell.read_measured / cell.read_model,
                    cell.update_measured,
                    cell.update_model,
                    cell.update_measured / cell.update_model,
                );
            }
        }
        println!();
    }
    println!("Interpretation: ratios near 1.0 mean the engine behaves as the §6 model");
    println!("predicts. Our objects carry slightly larger replication annotations than");
    println!("the model's idealised k bytes (see EXPERIMENTS.md), and B⁺-tree heights");
    println!("differ from m = 350, so small constant offsets are expected.");
}
