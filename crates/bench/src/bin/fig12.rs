//! Regenerates **Figure 12**: selected `C_read` / `C_update` values for
//! unclustered access at (f = 1, f_r = .002) and (f = 20, f_r = .002).
//!
//! Run: `cargo run --release -p fieldrep-bench --bin fig12`

use fieldrep_bench::figures::render_selected_values;
use fieldrep_costmodel::IndexSetting;

fn main() {
    println!("=== Figure 12: Selected Values for C_read and C_update (Unclustered) ===\n");
    print!("{}", render_selected_values(IndexSetting::Unclustered));
    println!("\nPaper's values:        |     43         22   |    691         22");
    println!("                       |     23         42   |    407        427");
    println!("                       |     41         42   |    509         42");
    println!("\n(The in-place f=1 C_update of 42 assumes the §4.3.1 link-object");
    println!("elimination; the printed equation alone gives ≈52 — see DESIGN.md.)");
}
