//! Regenerates **Figure 12**: selected `C_read` / `C_update` values for
//! unclustered access at (f = 1, f_r = .002) and (f = 20, f_r = .002).
//!
//! Run: `cargo run --release -p fieldrep-bench --bin fig12`

use fieldrep_costmodel::{selected_values, IndexSetting, ModelStrategy};

fn name(s: ModelStrategy) -> &'static str {
    match s {
        ModelStrategy::None => "no replication",
        ModelStrategy::InPlace => "in-place replication",
        ModelStrategy::Separate => "separate replication",
    }
}

fn main() {
    println!("=== Figure 12: Selected Values for C_read and C_update (Unclustered) ===\n");
    println!("{:<22} | f=1,f_r=.002        | f=20,f_r=.002", "");
    println!(
        "{:<22} | C_read   C_update   | C_read   C_update",
        "Strategy"
    );
    println!("{}", "-".repeat(68));
    let t1 = selected_values(IndexSetting::Unclustered, 1.0);
    let t20 = selected_values(IndexSetting::Unclustered, 20.0);
    for (a, b) in t1.iter().zip(&t20) {
        println!(
            "{:<22} | {:>6}   {:>8}   | {:>6}   {:>8}",
            name(a.strategy),
            a.c_read,
            a.c_update,
            b.c_read,
            b.c_update
        );
    }
    println!("\nPaper's values:        |     43         22   |    691         22");
    println!("                       |     23         42   |    407        427");
    println!("                       |     41         42   |    509         42");
    println!("\n(The in-place f=1 C_update of 42 assumes the §4.3.1 link-object");
    println!("elimination; the printed equation alone gives ≈52 — see DESIGN.md.)");
}
