//! Design-choice ablations (DESIGN.md per-experiment index):
//!
//! (a) §4.3.1 inline-link threshold: update-propagation I/O with link
//!     objects always materialised vs. inlined at small fan-in.
//! (b) §3.3.3 collapse paths: read I/O for a 2-level projection answered
//!     by (i) plain functional joins, (ii) a collapse path + 1 join,
//!     (iii) a full 2-level replica.
//!
//! Run: `cargo run --release -p fieldrep-bench --bin ablations`

use fieldrep_catalog::{Propagation, Strategy};
use fieldrep_core::{Database, DbConfig};
use fieldrep_model::{FieldType, TypeDef, Value};
use fieldrep_query::{Assign, Filter, ReadQuery, UpdateQuery};

fn build_two_level(
    strategy: Option<(&str, Strategy)>,
    inline_threshold: usize,
    n_emp: usize,
) -> Database {
    let mut db = Database::in_memory(DbConfig {
        pool_pages: 4096,
        inline_link_threshold: inline_threshold,
    });
    db.define_type(TypeDef::new(
        "ORG",
        vec![
            ("name", FieldType::Str),
            ("budget", FieldType::Int),
            ("pad", FieldType::Pad(80)),
        ],
    ))
    .unwrap();
    db.define_type(TypeDef::new(
        "DEPT",
        vec![
            ("name", FieldType::Str),
            ("org", FieldType::Ref("ORG".into())),
            ("pad", FieldType::Pad(100)),
        ],
    ))
    .unwrap();
    db.define_type(TypeDef::new(
        "EMP",
        vec![
            ("id", FieldType::Int),
            ("dept", FieldType::Ref("DEPT".into())),
            ("pad", FieldType::Pad(75)),
        ],
    ))
    .unwrap();
    db.create_set("Org", "ORG").unwrap();
    db.create_set("Dept", "DEPT").unwrap();
    db.create_set("Emp1", "EMP").unwrap();
    let orgs: Vec<_> = (0..20)
        .map(|i| {
            db.insert(
                "Org",
                vec![
                    Value::Str(format!("org{i:04}#0")),
                    Value::Int(i),
                    Value::Unit,
                ],
            )
            .unwrap()
        })
        .collect();
    let depts: Vec<_> = (0..200)
        .map(|i| {
            db.insert(
                "Dept",
                vec![
                    Value::Str(format!("dept{i}")),
                    Value::Ref(orgs[i % 20]),
                    Value::Unit,
                ],
            )
            .unwrap()
        })
        .collect();
    for i in 0..n_emp {
        db.insert(
            "Emp1",
            vec![
                Value::Int(i as i64),
                Value::Ref(depts[i % 200]),
                Value::Unit,
            ],
        )
        .unwrap();
    }
    db.create_index("Emp1.id", fieldrep_catalog::IndexKind::Unclustered)
        .unwrap();
    db.create_index("Org.budget", fieldrep_catalog::IndexKind::Unclustered)
        .unwrap();
    if let Some((path, s)) = strategy {
        db.replicate(path, s).unwrap();
    }
    db.flush_all().unwrap();
    db
}

fn measure<F: FnOnce(&mut Database)>(db: &mut Database, f: F) -> u64 {
    db.flush_all().unwrap();
    db.reset_profile();
    f(db);
    db.flush_all().unwrap();
    db.io_profile().total_io()
}

fn main() {
    println!("=== Ablation (a): inline-link threshold (§4.3.1) ===");
    println!("1-level path Emp1.dept.name at fan-in 2 (each dept referenced by two");
    println!("employees — the regime §4.3.1 targets); the update query renames 40");
    println!("depts, so propagation must traverse 40 link stores.\n");
    println!(
        "{:>10} | {:>14} | {:>15}",
        "threshold", "update I/O", "link-file pages"
    );
    for threshold in [0usize, 1, 2, 4] {
        let mut db = build_two_level(
            Some(("Emp1.dept.name", Strategy::InPlace)),
            threshold,
            400, // 400 emps over 200 depts → fan-in 2
        );
        db.create_index("Dept.name", fieldrep_catalog::IndexKind::Unclustered)
            .unwrap();
        let io = measure(&mut db, |db| {
            let res = UpdateQuery::on("Dept")
                .filter(Filter::Range {
                    path: "name".into(),
                    lo: Value::Str("dept0".into()),
                    hi: Value::Str("dept135".into()),
                })
                .assign("name", Assign::CycleStr(8))
                .run(db)
                .unwrap();
            assert!(res.updated >= 40, "updated {}", res.updated);
        });
        // Count link-file pages across all links.
        let link_files: Vec<_> = db.catalog().links().map(|l| l.file).collect();
        let pages: u32 = link_files
            .iter()
            .map(|f| db.sm().page_count(*f).unwrap())
            .sum();
        println!("{threshold:>10} | {io:>14} | {pages:>15}");
    }
    println!("\nAt threshold ≥ 2 every link object (2 OIDs) is inlined into its dept:");
    println!("the link file vanishes entirely. Total update I/O barely moves because");
    println!("the inlined OIDs enlarge the dept objects by almost exactly the space");
    println!("saved — which is the paper's point: 'the space required to store L's");
    println!("OID is the same as the space required to store x, so there is no");
    println!("reason not to make this optimization' (§4.3.1). The win is structural");
    println!("(no link file to maintain), not byte count.");

    println!("\n=== Ablation (b): collapse paths (§3.3.3) ===");
    println!("Read query: 60 employees by id range, projecting dept.org.name.\n");
    let variants: [(&str, Option<(&str, Strategy)>); 3] = [
        ("functional joins (baseline)", None),
        (
            "collapse path Emp1.dept.org",
            Some(("Emp1.dept.org", Strategy::InPlace)),
        ),
        (
            "full replica of dept.org.name",
            Some(("Emp1.dept.org.name", Strategy::InPlace)),
        ),
    ];
    println!("{:<32} | {:>10}", "projection strategy", "read I/O");
    for (label, strat) in variants {
        let mut db = build_two_level(strat, 0, 6000);
        let io = measure(&mut db, |db| {
            let res = ReadQuery::on("Emp1")
                .filter(Filter::Range {
                    path: "id".into(),
                    lo: Value::Int(0),
                    hi: Value::Int(59),
                })
                .project(["dept.org.name"])
                .run(db)
                .unwrap();
            assert_eq!(res.rows.len(), 60);
        });
        println!("{label:<32} | {io:>10}");
    }
    println!("\nThe collapse path removes one of the two joins; the full replica");
    println!("removes both (at higher update-propagation cost, per Figure 11).");

    // ---------------------------------------------------------------
    println!("\n=== Ablation (c): deferred propagation (§8 future work) ===");
    println!("One dept with 2000 employees; 5 separate rename queries (cold pool");
    println!("each, as in the §6 model). Eager pays the fan-out 5 times; deferred");
    println!("pays it once, at sync.\n");
    println!(
        "{:<10} | {:>12} | {:>12} | {:>12}",
        "mode", "5 updates", "sync", "total"
    );
    for (label, propagation) in [
        ("eager", Propagation::Eager),
        ("deferred", Propagation::Deferred),
    ] {
        let mut db = Database::in_memory(DbConfig::default());
        db.define_type(fieldrep_model::TypeDef::new(
            "DEPT",
            vec![
                ("name", fieldrep_model::FieldType::Str),
                ("pad", fieldrep_model::FieldType::Pad(100)),
            ],
        ))
        .unwrap();
        db.define_type(fieldrep_model::TypeDef::new(
            "EMP",
            vec![
                ("id", fieldrep_model::FieldType::Int),
                ("dept", fieldrep_model::FieldType::Ref("DEPT".into())),
                ("pad", fieldrep_model::FieldType::Pad(75)),
            ],
        ))
        .unwrap();
        db.create_set("Dept", "DEPT").unwrap();
        db.create_set("Emp1", "EMP").unwrap();
        let d = db
            .insert("Dept", vec![Value::Str("d#0".into()), Value::Unit])
            .unwrap();
        for i in 0..2000 {
            db.insert("Emp1", vec![Value::Int(i), Value::Ref(d), Value::Unit])
                .unwrap();
        }
        let path = db
            .replicate_with("Emp1.dept.name", Strategy::InPlace, propagation)
            .unwrap();

        // Each update is a separate query (cold pool), as in §6's model.
        let mut updates = 0u64;
        for i in 1..=5 {
            updates += measure(&mut db, |db| {
                db.update(d, &[("name", Value::Str(format!("d#{i}")))])
                    .unwrap();
            });
        }
        let sync = measure(&mut db, |db| {
            db.sync_path(path).unwrap();
        });
        println!(
            "{:<10} | {:>12} | {:>12} | {:>12}",
            label,
            updates,
            sync,
            updates + sync
        );
    }
    println!("\nDeferred batching collapses repeated updates into one propagation:");
    println!("'updates are not propagated until needed' (§8).");

    // ---------------------------------------------------------------
    println!("\n=== Ablation (d): collapsed inverted paths (§4.3.3) ===");
    println!("2-level path Emp1.dept.org.name, 1 org x 40 depts x 25 employees.");
    println!("Collapsing trades cheaper terminal propagation for costlier");
    println!("intermediate re-targets — exactly the paper's trade-off.\n");
    println!(
        "{:<12} | {:>16} | {:>20}",
        "form", "O.name update", "D.org move (1 dept)"
    );
    for collapsed in [false, true] {
        let mut db = build_two_level(None, 0, 0);
        // Re-populate: one org with 40 depts, 25 employees each; a spare
        // org to move a dept to.
        let o = db
            .insert(
                "Org",
                vec![Value::Str("big#0".into()), Value::Int(100), Value::Unit],
            )
            .unwrap();
        let spare = db
            .insert(
                "Org",
                vec![Value::Str("spare".into()), Value::Int(101), Value::Unit],
            )
            .unwrap();
        let depts: Vec<_> = (0..40)
            .map(|i| {
                db.insert(
                    "Dept",
                    vec![Value::Str(format!("dd{i}")), Value::Ref(o), Value::Unit],
                )
                .unwrap()
            })
            .collect();
        for i in 0..1000usize {
            db.insert(
                "Emp1",
                vec![
                    Value::Int(10_000 + i as i64),
                    Value::Ref(depts[i % 40]),
                    Value::Unit,
                ],
            )
            .unwrap();
        }
        if collapsed {
            db.replicate_collapsed("Emp1.dept.org.name", Propagation::Eager)
                .unwrap();
        } else {
            db.replicate("Emp1.dept.org.name", Strategy::InPlace)
                .unwrap();
        }
        let terminal_io = measure(&mut db, |db| {
            db.update(o, &[("name", Value::Str("big#1".into()))])
                .unwrap();
        });
        let move_io = measure(&mut db, |db| {
            db.update(depts[0], &[("org", Value::Ref(spare))]).unwrap();
        });
        println!(
            "{:<12} | {:>16} | {:>20}",
            if collapsed {
                "collapsed"
            } else {
                "uncollapsed"
            },
            terminal_io,
            move_io
        );
    }
    println!("\n§4.3.3: \"a collapsed path is more costly to maintain … [but] may");
    println!("still prove useful … particularly when reference paths are static.\"");
}
