//! Observability smoke check for `scripts/check.sh`: drive a tiny
//! workload with the always-on pipeline engaged, take two timeline
//! ticks, write the run header + timeline series + flight-recorder dump
//! as JSONL under `target/`, and validate the output — every line must
//! parse with the bench crate's JSON parser and the run header must
//! carry the expected `schema_version`. The read query runs with span
//! tracing on; its span tree is exported as a Chrome-trace/Perfetto
//! document and validated structurally (every `B` has a matching `E`,
//! timestamps are monotone per thread, stacks balance out). Prints the
//! `obs_report` summary and exits nonzero on any failure.
//!
//! Run: `cargo run --release -p fieldrep-bench --bin obs_smoke`

use fieldrep_bench::json::Json;
use fieldrep_bench::{build_workload, measure_update_query, profile_read_query, WorkloadSpec};
use fieldrep_catalog::Strategy;
use fieldrep_costmodel::IndexSetting;
use fieldrep_obs::{export, recorder, timeline};
use std::collections::HashMap;
use std::process::ExitCode;

const OUT_PATH: &str = "target/obs_smoke.jsonl";
const TRACE_PATH: &str = "target/obs_smoke.trace.json";

/// Structurally validate a Chrome-trace document: per thread, `B`/`E`
/// phases must nest like parentheses (an `E` closes the innermost open
/// `B` with the same name), timestamps must be non-decreasing, and every
/// stack must be empty at the end.
fn validate_chrome_trace(doc: &str) -> Result<usize, String> {
    let json = Json::parse(doc).map_err(|e| format!("chrome trace: {e}"))?;
    let events = json
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("chrome trace: missing traceEvents array")?;
    let mut stacks: HashMap<String, Vec<String>> = HashMap::new();
    let mut cursors: HashMap<String, f64> = HashMap::new();
    for (i, ev) in events.iter().enumerate() {
        let at = |k: &str| format!("event {i}: missing {k}");
        let name = ev.get("name").and_then(Json::as_str).ok_or(at("name"))?;
        let ph = ev.get("ph").and_then(Json::as_str).ok_or(at("ph"))?;
        let ts = ev.get("ts").and_then(Json::as_f64).ok_or(at("ts"))?;
        let tid = format!(
            "{}/{}",
            ev.get("pid").and_then(Json::as_f64).ok_or(at("pid"))?,
            ev.get("tid").and_then(Json::as_f64).ok_or(at("tid"))?
        );
        let cursor = cursors.entry(tid.clone()).or_insert(ts);
        if ts < *cursor {
            return Err(format!(
                "event {i} ({name}): ts {ts} goes backwards on tid {tid} (cursor {cursor})"
            ));
        }
        *cursor = ts;
        let stack = stacks.entry(tid.clone()).or_default();
        match ph {
            "B" => stack.push(name.to_string()),
            "E" => {
                let open = stack
                    .pop()
                    .ok_or(format!("event {i} ({name}): E with no open B on tid {tid}"))?;
                if open != name {
                    return Err(format!(
                        "event {i}: E({name}) closes B({open}) on tid {tid} — phases not balanced"
                    ));
                }
            }
            other => return Err(format!("event {i} ({name}): unexpected phase {other:?}")),
        }
    }
    for (tid, stack) in &stacks {
        if !stack.is_empty() {
            return Err(format!(
                "tid {tid}: {} span(s) never closed: {stack:?}",
                stack.len()
            ));
        }
    }
    if events.is_empty() {
        return Err("chrome trace has no events".into());
    }
    Ok(events.len())
}

fn run() -> Result<(), String> {
    recorder::set_enabled(true);

    // Tiny §6 workload: one read and one update query, a timeline tick
    // after each so the series has at least two points.
    let mut spec =
        WorkloadSpec::paper(2, IndexSetting::Unclustered, Some(Strategy::InPlace)).scaled(240);
    // Paper selectivities round to zero rows at this scale; raise them so
    // the queries touch rows and the propagation path actually runs.
    spec.read_sel = 0.02;
    spec.update_sel = 0.02;
    let mut w = build_workload(spec).map_err(|e| format!("build workload: {e}"))?;
    let profiled = profile_read_query(&mut w, 0).map_err(|e| format!("profile read: {e}"))?;
    timeline::global_tick();
    measure_update_query(&mut w, 0).map_err(|e| format!("measure update: {e}"))?;
    timeline::global_tick();

    let mut lines = vec![export::run_meta_jsonl("obs_smoke")];
    lines.extend(timeline::global_export_jsonl());
    lines.extend(recorder::dump_jsonl());

    // Every exported line must be valid JSON.
    for (i, line) in lines.iter().enumerate() {
        Json::parse(line).map_err(|e| format!("line {}: {e}: {line}", i + 1))?;
    }

    // The run header must carry the current JSONL schema version.
    let head = Json::parse(&lines[0]).map_err(|e| format!("run header: {e}"))?;
    if head.get("type").and_then(Json::as_str) != Some("run") {
        return Err(format!("first line is not a run header: {}", lines[0]));
    }
    let version = head
        .get("schema_version")
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("run header lacks schema_version: {}", lines[0]))?
        as u32;
    if version != export::JSONL_SCHEMA_VERSION {
        return Err(format!(
            "run header schema_version {version} != {}",
            export::JSONL_SCHEMA_VERSION
        ));
    }

    // The workload must actually have fed the pipeline.
    let ticks = lines
        .iter()
        .filter(|l| l.contains("\"type\":\"timeline\""))
        .count();
    if ticks < 2 {
        return Err(format!("expected >= 2 timeline ticks, got {ticks}"));
    }
    if !lines
        .iter()
        .any(|l| l.contains("\"type\":\"recorder_dump\""))
    {
        return Err("no recorder_dump header in the output".into());
    }
    if !lines
        .iter()
        .any(|l| l.contains("\"event\":\"span_exit\"") && l.contains("core.propagate"))
    {
        return Err("recorder captured no core.propagate span exit".into());
    }

    // The Chrome-trace exporter must produce a structurally valid
    // document from the profiled read's span tree.
    if profiled.spans.is_empty() {
        return Err("profiled read query produced no spans".into());
    }
    let trace = export::chrome_trace_json(&profiled.spans);
    let n_events = validate_chrome_trace(&trace)?;

    std::fs::create_dir_all("target").map_err(|e| format!("mkdir target: {e}"))?;
    std::fs::write(OUT_PATH, lines.join("\n") + "\n")
        .map_err(|e| format!("write {OUT_PATH}: {e}"))?;
    std::fs::write(TRACE_PATH, &trace).map_err(|e| format!("write {TRACE_PATH}: {e}"))?;

    print!("{}", timeline::global_report());
    println!(
        "obs_smoke: ok ({} JSONL line(s), schema v{version}, written to {OUT_PATH}; \
         Chrome trace with {n_events} event(s) validated, written to {TRACE_PATH})",
        lines.len()
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("obs_smoke: FAILED: {e}");
            ExitCode::FAILURE
        }
    }
}
