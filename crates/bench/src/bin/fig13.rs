//! Regenerates **Figure 13**: percentage difference in `C_total` versus
//! update probability, *clustered* indexes.
//!
//! Run: `cargo run --release -p fieldrep-bench --bin fig13`

use fieldrep_bench::figures::render_percent_figure;
use fieldrep_costmodel::IndexSetting;

fn main() {
    println!("=== Figure 13: Results for Clustered Indexes ===");
    println!("(negative % = replication is cheaper than no replication)\n");
    println!("{}", render_percent_figure(IndexSetting::Clustered));
    println!("Paper's reading (§6.8): in-place saves 55–90% below P_up ≈ 0.15;");
    println!("separate saves 25–70% over a wide range for f > 1.");
}
