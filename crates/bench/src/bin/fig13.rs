//! Regenerates **Figure 13**: percentage difference in `C_total` versus
//! update probability, *clustered* indexes.
//!
//! Run: `cargo run --release -p fieldrep-bench --bin fig13`

use fieldrep_costmodel::{figure_11_or_13, render_graph, IndexSetting};

fn main() {
    println!("=== Figure 13: Results for Clustered Indexes ===");
    println!("(negative % = replication is cheaper than no replication)\n");
    for g in figure_11_or_13(IndexSetting::Clustered, 20) {
        println!("{}", render_graph(&g, IndexSetting::Clustered));
    }
    println!("Paper's reading (§6.8): in-place saves 55–90% below P_up ≈ 0.15;");
    println!("separate saves 25–70% over a wide range for f > 1.");
}
