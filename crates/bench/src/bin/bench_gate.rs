//! Regression gate over two `bench_suite` reports: compares the newer
//! report's points against the older one and exits nonzero if measured
//! page I/O regressed beyond the threshold, a point disappeared, or
//! EXPLAIN-ANALYZE model drift exceeds its bound.
//!
//! Run: `cargo run --release -p fieldrep-bench --bin bench_gate -- \
//!         OLD.json NEW.json [--max-io-regress PCT] [--max-drift PCT] \
//!         [--max-wall-regress PCT] [--max-obs-overhead PCT] \
//!         [--min-read-scaling X]`
//!
//! Wall-clock gating only applies to points whose readings clear the
//! noise floor in both reports (and never against v1 baselines, which
//! carry no `wall_ms`); pass `--max-wall-regress 0` to disable it.
//! The telemetry-overhead check compares the new report's
//! `overhead/telemetry/on` and `…/off` wall readings against each other
//! (default limit 5%); `--max-obs-overhead 0` disables it.
//! The read-scaling check requires the new report's 4-thread snapshot
//! read throughput to be at least X times its 1-thread throughput
//! (default 2.0), but only when the producing host had ≥4 CPUs and both
//! readings cleared the noise floor; `--min-read-scaling 0` disables it.
//!
//! `scripts/bench_gate.sh` wires this to the two newest committed
//! `BENCH_*.json` snapshots.

use fieldrep_bench::suite::{gate, GateThresholds, SuiteReport};
use std::process::ExitCode;

fn load(path: &str) -> Result<SuiteReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    SuiteReport::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let mut files = Vec::new();
    let mut t = GateThresholds::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--max-io-regress" => {
                t.max_io_regress_pct = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--max-io-regress PCT");
            }
            "--max-drift" => {
                t.max_drift_pct = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--max-drift PCT");
            }
            "--max-wall-regress" => {
                t.max_wall_regress_pct = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--max-wall-regress PCT");
            }
            "--max-obs-overhead" => {
                t.max_obs_overhead_pct = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--max-obs-overhead PCT");
            }
            "--min-read-scaling" => {
                t.min_read_scaling = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--min-read-scaling X");
            }
            other => files.push(other.to_string()),
        }
    }
    if files.len() != 2 {
        eprintln!(
            "usage: bench_gate OLD.json NEW.json [--max-io-regress PCT] [--max-drift PCT] \
             [--max-wall-regress PCT] [--max-obs-overhead PCT] [--min-read-scaling X]"
        );
        return ExitCode::FAILURE;
    }
    let (old, new) = match (load(&files[0]), load(&files[1])) {
        (Ok(o), Ok(n)) => (o, n),
        (o, n) => {
            for r in [o.err(), n.err()].into_iter().flatten() {
                eprintln!("error: {r}");
            }
            return ExitCode::FAILURE;
        }
    };
    println!(
        "gate: {} (run {}) vs {} (run {}); limits: io +{:.0}%, drift ±{:.0}%, wall +{:.0}%, \
         telemetry overhead +{:.0}%, read scaling ≥{:.1}x",
        files[0],
        old.run_id,
        files[1],
        new.run_id,
        t.max_io_regress_pct,
        t.max_drift_pct,
        t.max_wall_regress_pct,
        t.max_obs_overhead_pct,
        t.min_read_scaling
    );
    let violations = gate(&old, &new, &t);
    if violations.is_empty() {
        println!("PASS: {} points compared, no regressions", old.points.len());
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("FAIL: {v}");
        }
        eprintln!("{} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}
