//! Path-index ablation (§3.3.4 / §7.2): associative lookups on the path
//! Emp1.dept.org.name through (a) a single B⁺-tree over replicated
//! values, vs. (b) a Gemstone-style multi-component path index
//! ("three B⁺-tree traversals").
//!
//! Run: `cargo run --release -p fieldrep-bench --bin pathindex_ablation`

use fieldrep_catalog::Strategy;
use fieldrep_core::{Database, DbConfig};
use fieldrep_model::{FieldType, TypeDef, Value};
use fieldrep_pathindex::{GemstonePathIndex, ReplicatedPathIndex};

fn build(n_orgs: usize, depts_per_org: usize, emps_per_dept: usize) -> Database {
    let mut db = Database::in_memory(DbConfig::default());
    db.define_type(TypeDef::new(
        "ORG",
        vec![("name", FieldType::Str), ("pad", FieldType::Pad(80))],
    ))
    .unwrap();
    db.define_type(TypeDef::new(
        "DEPT",
        vec![
            ("name", FieldType::Str),
            ("org", FieldType::Ref("ORG".into())),
            ("pad", FieldType::Pad(100)),
        ],
    ))
    .unwrap();
    db.define_type(TypeDef::new(
        "EMP",
        vec![
            ("id", FieldType::Int),
            ("dept", FieldType::Ref("DEPT".into())),
            ("pad", FieldType::Pad(75)),
        ],
    ))
    .unwrap();
    db.create_set("Org", "ORG").unwrap();
    db.create_set("Dept", "DEPT").unwrap();
    db.create_set("Emp1", "EMP").unwrap();
    let orgs: Vec<_> = (0..n_orgs)
        .map(|i| {
            db.insert("Org", vec![Value::Str(format!("org{i:05}")), Value::Unit])
                .unwrap()
        })
        .collect();
    let depts: Vec<_> = (0..n_orgs * depts_per_org)
        .map(|i| {
            db.insert(
                "Dept",
                vec![
                    Value::Str(format!("dept{i}")),
                    Value::Ref(orgs[i / depts_per_org]),
                    Value::Unit,
                ],
            )
            .unwrap()
        })
        .collect();
    for i in 0..depts.len() * emps_per_dept {
        db.insert(
            "Emp1",
            vec![
                Value::Int(i as i64),
                Value::Ref(depts[i % depts.len()]),
                Value::Unit,
            ],
        )
        .unwrap();
    }
    db
}

fn main() {
    println!("=== Path-index ablation: lookup I/O on Emp1.dept.org.name ===\n");
    println!(
        "{:>8} {:>8} | {:>16} {:>16} {:>8}",
        "orgs", "emps", "replicated-idx", "gemstone (3 trees)", "ratio"
    );
    for (n_orgs, depts_per_org, emps_per_dept) in [(50, 4, 10), (200, 5, 10), (500, 4, 15)] {
        let mut db = build(n_orgs, depts_per_org, emps_per_dept);
        db.replicate("Emp1.dept.org.name", Strategy::InPlace)
            .unwrap();
        let rep = ReplicatedPathIndex::build(&mut db, "Emp1.dept.org.name").unwrap();
        let gem = GemstonePathIndex::build(&mut db, "Emp1.dept.org.name").unwrap();
        let n_emps = n_orgs * depts_per_org * emps_per_dept;

        let probes: Vec<Value> = (0..20)
            .map(|i| Value::Str(format!("org{:05}", (i * 7) % n_orgs)))
            .collect();

        db.flush_all().unwrap();
        db.reset_profile();
        for v in &probes {
            let hits = rep.lookup(&mut db, v).unwrap();
            assert_eq!(hits.len(), depts_per_org * emps_per_dept);
        }
        let io_rep = db.io_profile().pages_read();

        db.flush_all().unwrap();
        db.reset_profile();
        for v in &probes {
            let hits = gem.lookup(&mut db, v).unwrap();
            assert_eq!(hits.len(), depts_per_org * emps_per_dept);
        }
        let io_gem = db.io_profile().pages_read();

        println!(
            "{:>8} {:>8} | {:>16} {:>18} {:>8.2}",
            n_orgs,
            n_emps,
            io_rep,
            io_gem,
            io_gem as f64 / io_rep as f64
        );
    }
    println!("\nThe paper (§3.3.4): a Gemstone-style lookup 'would involve traversing");
    println!("three B+ tree indexes' where the replicated-value index traverses one.");
}
