//! Trace-driven workload execution: the §6 query mix run *literally*.
//!
//! The paper evaluates `C_total = (1−P_up)·C_read + P_up·C_update` by
//! combining per-query costs analytically. This module instead draws a
//! random interleaved trace of read and update queries with update
//! probability `P_up`, executes it against the engine, and reports the
//! measured average I/O per query — the same quantity, observed rather
//! than derived.

use crate::{measure_read_query, measure_update_query, Workload};
use fieldrep_query::Result;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of executing a trace.
#[derive(Clone, Copy, Debug)]
pub struct TraceResult {
    /// Queries executed.
    pub queries: usize,
    /// Read queries among them.
    pub reads: usize,
    /// Update queries among them.
    pub updates: usize,
    /// Total page I/O.
    pub total_io: u64,
}

impl TraceResult {
    /// Measured average I/O per query — the empirical `C_total`.
    pub fn c_total(&self) -> f64 {
        self.total_io as f64 / self.queries as f64
    }
}

/// Execute `n_queries` against the workload, each independently chosen to
/// be an update with probability `p_update`, at rotating key offsets.
/// Every query runs against a cold buffer pool (the paper's accounting).
pub fn run_trace(
    w: &mut Workload,
    p_update: f64,
    n_queries: usize,
    seed: u64,
) -> Result<TraceResult> {
    assert!((0.0..=1.0).contains(&p_update));
    let mut rng = StdRng::seed_from_u64(seed);
    let read_span = (w.spec.read_sel * w.spec.r_count() as f64).round() as i64;
    let update_span = (w.spec.update_sel * w.spec.s_count as f64).round() as i64;
    let max_read_lo = (w.spec.r_count() as i64 - read_span).max(1);
    let max_update_lo = (w.spec.s_count as i64 - update_span).max(1);

    let mut result = TraceResult {
        queries: n_queries,
        reads: 0,
        updates: 0,
        total_io: 0,
    };
    for _ in 0..n_queries {
        if rng.gen_bool(p_update) {
            let lo = rng.gen_range(0..max_update_lo);
            result.total_io += measure_update_query(w, lo)?;
            result.updates += 1;
        } else {
            let lo = rng.gen_range(0..max_read_lo);
            result.total_io += measure_read_query(w, lo)?;
            result.reads += 1;
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_workload, WorkloadSpec};
    use fieldrep_catalog::Strategy;
    use fieldrep_costmodel::IndexSetting;

    #[test]
    fn trace_mixes_reads_and_updates() {
        let spec =
            WorkloadSpec::paper(2, IndexSetting::Unclustered, Some(Strategy::InPlace)).scaled(400);
        let mut w = build_workload(spec).unwrap();
        let r = run_trace(&mut w, 0.5, 20, 42).unwrap();
        assert_eq!(r.queries, 20);
        assert_eq!(r.reads + r.updates, 20);
        assert!(r.reads > 0 && r.updates > 0);
        assert!(r.c_total() > 0.0);
    }

    #[test]
    fn pure_read_and_pure_update_traces() {
        let spec = WorkloadSpec::paper(2, IndexSetting::Unclustered, None).scaled(400);
        let mut w = build_workload(spec).unwrap();
        let reads = run_trace(&mut w, 0.0, 5, 1).unwrap();
        assert_eq!(reads.updates, 0);
        let updates = run_trace(&mut w, 1.0, 5, 1).unwrap();
        assert_eq!(updates.reads, 0);
    }

    #[test]
    fn trace_c_total_interpolates_between_endpoints() {
        let spec =
            WorkloadSpec::paper(4, IndexSetting::Unclustered, Some(Strategy::Separate)).scaled(500);
        let mut w = build_workload(spec).unwrap();
        let r0 = run_trace(&mut w, 0.0, 8, 7).unwrap().c_total();
        let r1 = run_trace(&mut w, 1.0, 8, 7).unwrap().c_total();
        let mid = run_trace(&mut w, 0.5, 16, 7).unwrap().c_total();
        let (lo, hi) = (r0.min(r1), r0.max(r1));
        assert!(
            mid >= lo * 0.8 && mid <= hi * 1.2,
            "mixed trace ({mid:.1}) should fall between pure traces ({lo:.1}, {hi:.1})"
        );
    }
}
