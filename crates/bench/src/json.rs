//! A minimal JSON value type with a parser and renderer.
//!
//! The bench suite writes and re-reads its own `BENCH_*.json` reports
//! (for regression gating) without external crates, so this module
//! covers exactly the JSON subset those reports use: objects, arrays,
//! strings with `\"`/`\\`/`\n`/`\t`/`\u` escapes, finite numbers,
//! booleans, and null.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (held as `f64`; the suite's integers fit exactly).
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse(src: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render back to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(out, "{}", *n as i64).unwrap();
                } else {
                    write!(out, "{n}").unwrap();
                }
            }
            Json::Str(s) => {
                out.push('"');
                escape_into(s, out);
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_into(k, out);
                    out.push_str("\":");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Append `s` with JSON string escaping.
fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32).unwrap(),
            c => out.push(c),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            // Surrogates never appear in our reports.
                            s.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences are
                    // valid because the input was a &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8 in string")?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_a_report_shaped_document() {
        let src = r#"{"schema_version":1,"run_id":"ci-42","smoke":true,
            "points":[{"id":"io/unclustered/f1/none/read","measured_io":12,
            "drift_pct":-3.5},{"id":"x","measured_io":0.5,"drift_pct":0}],
            "note":null}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(v.get("schema_version").unwrap().as_f64(), Some(1.0));
        assert_eq!(v.get("run_id").unwrap().as_str(), Some("ci-42"));
        assert_eq!(v.get("smoke").unwrap().as_bool(), Some(true));
        let pts = v.get("points").unwrap().as_arr().unwrap();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[1].get("measured_io").unwrap().as_f64(), Some(0.5));
        assert_eq!(v.get("note"), Some(&Json::Null));
        // Render → parse is the identity on the value.
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let v = Json::Str("a\"b\\c\nd\tπ".into());
        let text = v.render();
        assert_eq!(text, "\"a\\\"b\\\\c\\nd\\tπ\"");
        assert_eq!(Json::parse(&text).unwrap(), v);
        assert_eq!(Json::parse(r#""Aé""#).unwrap(), Json::Str("Aé".into()));
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "\"abc", "1 2", "{'a':1}"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(42.0).render(), "42");
        assert_eq!(Json::Num(-7.25).render(), "-7.25");
    }
}
