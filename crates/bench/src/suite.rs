//! The continuous benchmark suite and its regression gate.
//!
//! [`run_suite`] executes a fixed measurement matrix — the §6 read and
//! update workloads across sharing levels, settings, and strategies,
//! plus propagation fan-out and EXPLAIN-ANALYZE model drift — and the
//! analytical Figure 12/14 reference cells, producing a schema-versioned
//! [`SuiteReport`] that `bench_suite` writes as `BENCH_<date>.json`.
//! [`gate`] diffs two reports point-by-point and reports violations
//! (I/O regressions beyond a threshold, model drift beyond a bound, or
//! vanished points), which `bench_gate` / `scripts/bench_gate.sh` turn
//! into a nonzero exit.

use crate::figures::selected_points;
use crate::json::Json;
use crate::{
    build_workload, measure_cell, measure_read_query, measure_update_query, profile_update_query,
    read_query, strategy_name, update_query, WorkloadSpec, ALL_STRATEGIES,
};
use fieldrep_catalog::Strategy;
use fieldrep_costmodel::{
    drift_pct, predict_update, AccessShape, IndexSetting, ModelStrategy, UpdateShape,
};
use fieldrep_obs::{export, names as obs_names, recorder, registry, slowlog, timeline};
use fieldrep_query::{explain_analyze_read, SysQuery};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Version of the `BENCH_*.json` document layout. Bump on any breaking
/// change to [`SuiteReport::to_json`]; [`SuiteReport::parse`] rejects
/// unknown versions so the gate never diffs incompatible reports.
///
/// v2 added `wall_ms` and `batch_io` per point (the batched-I/O fast
/// path's wall-clock and grouped-read-call telemetry). v1 documents are
/// still parsed, with those fields defaulting to 0 — which also disables
/// wall-clock gating against a v1 baseline.
///
/// v3 added `ops_per_sec` and the `concurrency/…` point family (the
/// multi-threaded snapshot-read/`update_txn` throughput sweep). v1 and
/// v2 documents still parse, with `ops_per_sec` defaulting to 0 — the
/// read-scaling gate only judges the *new* report, so old baselines
/// never trip it.
pub const BENCH_SCHEMA_VERSION: u32 = 3;

/// Wall-clock readings below this are considered noise and never gated.
pub const WALL_FLOOR_MS: f64 = 5.0;

/// What the suite measures.
#[derive(Clone, Debug)]
pub struct SuiteConfig {
    /// `|S|` per workload.
    pub s_count: usize,
    /// Sharing levels to sweep.
    pub sharings: Vec<usize>,
    /// Index settings to sweep.
    pub settings: Vec<IndexSetting>,
    /// Queries averaged per measured point.
    pub queries: usize,
    /// Read selectivity (the paper's `f_r`).
    pub read_sel: f64,
    /// Update selectivity (the paper's `f_s`).
    pub update_sel: f64,
    /// True for the fast CI variant.
    pub smoke: bool,
}

impl SuiteConfig {
    /// The full nightly matrix (a scaled-down |S| keeps the suite under
    /// a few minutes; the paper-scale run is `--bin empirical`).
    pub fn full() -> SuiteConfig {
        SuiteConfig {
            s_count: 2000,
            sharings: vec![1, 10, 20],
            settings: vec![IndexSetting::Unclustered, IndexSetting::Clustered],
            queries: 3,
            read_sel: 0.001,
            update_sel: 0.001,
            smoke: false,
        }
    }

    /// A seconds-scale variant for `scripts/check.sh`: tiny workloads,
    /// one setting, selectivities raised so every query touches rows.
    pub fn smoke() -> SuiteConfig {
        SuiteConfig {
            s_count: 240,
            sharings: vec![1, 3],
            settings: vec![IndexSetting::Unclustered],
            queries: 1,
            read_sel: 0.02,
            update_sel: 0.02,
            smoke: true,
        }
    }

    fn spec(
        &self,
        sharing: usize,
        setting: IndexSetting,
        strategy: crate::StrategyOpt,
    ) -> WorkloadSpec {
        let mut spec = WorkloadSpec::paper(sharing, setting, strategy).scaled(self.s_count);
        spec.read_sel = self.read_sel;
        spec.update_sel = self.update_sel;
        spec
    }
}

/// One benchmark point: a stable id, what was measured, what the model
/// predicted, and the drift between them.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchPoint {
    /// Stable identifier, e.g. `io/unclustered/f10/in-place/read`.
    pub id: String,
    /// Measured page I/O (for `model/…` points, the analytical value —
    /// so gating also catches accidental cost-model changes).
    pub measured_io: f64,
    /// Model-predicted page I/O.
    pub model_io: f64,
    /// `100·(measured − model)/model`.
    pub drift_pct: f64,
    /// Wall time of the measured queries, nanoseconds (0 for `model/…`).
    pub wall_nanos: u64,
    /// Wall time in milliseconds (same window as `wall_nanos`; kept as a
    /// separate field so gates and humans read one unit). 0 when the
    /// point has no wall measurement or came from a v1 document.
    pub wall_ms: f64,
    /// Disk read *calls* per query (grouped batch reads count once) —
    /// the syscall/seek proxy; `measured_io / batch_io` ≈ mean batch
    /// length. 0 for non-`io/` points and v1 documents.
    pub batch_io: f64,
    /// Operations per second, for `concurrency/…` throughput points.
    /// 0 for all other points and for pre-v3 documents.
    pub ops_per_sec: f64,
}

/// A full suite run, serialisable to/from `BENCH_*.json`.
#[derive(Clone, Debug)]
pub struct SuiteReport {
    /// [`BENCH_SCHEMA_VERSION`] at write time.
    pub schema_version: u32,
    /// Caller-supplied run identifier (CI job id, date, …).
    pub run_id: String,
    /// Seconds since the Unix epoch at write time.
    pub generated_unix: u64,
    /// True if produced by the smoke config.
    pub smoke: bool,
    /// All points, in matrix order.
    pub points: Vec<BenchPoint>,
    /// The observability registry snapshot after the run, as JSONL
    /// lines (includes the `costmodel.drift.*` gauges and the run
    /// header from [`export::run_meta_jsonl`]).
    pub metrics: Vec<String>,
}

fn setting_name(s: IndexSetting) -> &'static str {
    match s {
        IndexSetting::Unclustered => "unclustered",
        IndexSetting::Clustered => "clustered",
    }
}

/// Run the suite matrix. An engine error anywhere in the sweep is a
/// found bug, not a measurement problem — it fails the whole suite.
pub fn run_suite(cfg: &SuiteConfig, run_id: &str) -> Result<SuiteReport, String> {
    let mut points = Vec::new();

    // Analytical reference cells (Figures 12 and 14): pure model, so
    // any diff here means the cost model itself changed.
    for setting in [IndexSetting::Unclustered, IndexSetting::Clustered] {
        let fig = match setting {
            IndexSetting::Unclustered => "fig12",
            IndexSetting::Clustered => "fig14",
        };
        let (t1, t20) = selected_points(setting);
        for (f, table) in [(1, &t1), (20, &t20)] {
            for row in table {
                let strat = match row.strategy {
                    ModelStrategy::None => "none",
                    ModelStrategy::InPlace => "in-place",
                    ModelStrategy::Separate => "separate",
                };
                for (kind, v) in [("read", row.c_read), ("update", row.c_update)] {
                    points.push(BenchPoint {
                        id: format!("model/{fig}/f{f}/{strat}/{kind}"),
                        measured_io: v as f64,
                        model_io: v as f64,
                        drift_pct: 0.0,
                        wall_nanos: 0,
                        wall_ms: 0.0,
                        batch_io: 0.0,
                        ops_per_sec: 0.0,
                    });
                }
            }
        }
    }

    // Measured matrix.
    for &setting in &cfg.settings {
        for &sharing in &cfg.sharings {
            for strategy in ALL_STRATEGIES {
                let spec = cfg.spec(sharing, setting, strategy);
                let strat = strategy_name(strategy);
                let base = format!("io/{}/f{sharing}/{strat}", setting_name(setting));
                let (mut w, cell) = measure_cell(spec, cfg.queries).map_err(|e| e.to_string())?;
                points.push(BenchPoint {
                    id: format!("{base}/read"),
                    measured_io: cell.read_measured,
                    model_io: cell.read_model,
                    drift_pct: drift_pct(cell.read_model, cell.read_measured),
                    wall_nanos: cell.read_nanos,
                    wall_ms: cell.read_nanos as f64 / 1e6,
                    batch_io: cell.read_calls,
                    ops_per_sec: 0.0,
                });
                points.push(BenchPoint {
                    id: format!("{base}/update"),
                    measured_io: cell.update_measured,
                    model_io: cell.update_model,
                    drift_pct: drift_pct(cell.update_model, cell.update_measured),
                    wall_nanos: cell.update_nanos,
                    wall_ms: cell.update_nanos as f64 / 1e6,
                    batch_io: cell.update_calls,
                    ops_per_sec: 0.0,
                });

                // Propagation fan-out: the `core.propagate` slice of one
                // profiled update vs. the model's propagation term.
                if strategy.is_some() {
                    let run = profile_update_query(&mut w, 0).map_err(|e| e.to_string())?;
                    let measured = run
                        .profile
                        .ops
                        .iter()
                        .find(|op| op.name == "core.propagate")
                        .map(|op| op.io.disk_total() as f64)
                        .unwrap_or(0.0);
                    let preds = predict_update(
                        &w.spec.params(),
                        setting,
                        &UpdateShape {
                            access: AccessShape::IndexRange,
                            propagation: w.spec.model_strategy(),
                        },
                    );
                    let model = preds
                        .iter()
                        .find(|p| p.metric == "propagate")
                        .map(|p| p.pages)
                        .unwrap_or(0.0);
                    points.push(BenchPoint {
                        id: format!("propagation/{}/f{sharing}/{strat}", setting_name(setting)),
                        measured_io: measured,
                        model_io: model,
                        drift_pct: drift_pct(model, measured),
                        wall_nanos: run.profile.total_nanos as u64,
                        wall_ms: run.profile.total_nanos as f64 / 1e6,
                        batch_io: 0.0,
                        ops_per_sec: 0.0,
                    });
                }

                // EXPLAIN-ANALYZE conformance: total predicted vs.
                // measured I/O of one read query (records the
                // `costmodel.drift.*` gauges as a side effect).
                let q = read_query(&w, 0);
                let (e, res) = explain_analyze_read(&mut w.db, &q).map_err(|e| e.to_string())?;
                if let Some(f) = res.output_file {
                    w.db.sm().drop_file(f).ok();
                }
                points.push(BenchPoint {
                    id: format!("drift/{}/f{sharing}/{strat}/read", setting_name(setting)),
                    measured_io: e.measured_total.unwrap_or(0) as f64,
                    model_io: e.predicted_total,
                    drift_pct: e.total_drift().unwrap_or(0.0),
                    wall_nanos: 0,
                    wall_ms: 0.0,
                    batch_io: 0.0,
                    ops_per_sec: 0.0,
                });
            }
        }
    }

    // Telemetry overhead: the same workload with the always-on pipeline
    // engaged vs. the recorder disabled. Gated within one report (same
    // machine, same run), so the points carry only wall clock.
    let (on_ms, off_ms) = measure_overhead(cfg)?;
    for (mode, ms) in [("on", on_ms), ("off", off_ms)] {
        points.push(BenchPoint {
            id: format!("overhead/telemetry/{mode}"),
            measured_io: 0.0,
            model_io: 0.0,
            drift_pct: 0.0,
            wall_nanos: (ms * 1e6) as u64,
            wall_ms: ms,
            batch_io: 0.0,
            ops_per_sec: 0.0,
        });
    }

    // Introspection overhead: the slow-query log armed (recording every
    // statement) plus a monitoring client's sys.* scans, vs. the same
    // queries with the log disarmed. Gated within one report, like the
    // telemetry pair above.
    let (on_ms, off_ms) = measure_introspect_overhead(cfg)?;
    for (mode, ms) in [("on", on_ms), ("off", off_ms)] {
        points.push(BenchPoint {
            id: format!("overhead/introspect/{mode}"),
            measured_io: 0.0,
            model_io: 0.0,
            drift_pct: 0.0,
            wall_nanos: (ms * 1e6) as u64,
            wall_ms: ms,
            batch_io: 0.0,
            ops_per_sec: 0.0,
        });
    }

    // Multi-threaded throughput: snapshot readers and OID-ordered
    // transactional writers over one shared database (schema v3's
    // `concurrency/…` family). An engine error here is a found bug,
    // not a measurement problem — fail the suite loudly.
    let conc = if cfg.smoke {
        crate::concurrency::ConcurrencyConfig::smoke()
    } else {
        crate::concurrency::ConcurrencyConfig::full()
    };
    points.extend(crate::concurrency::run_concurrency(&conc)?);

    // Durability: the WAL on/off page-I/O pin (deterministic, gated
    // cross-run) and the fsync-bound group-commit throughput sweep
    // (under the gate-exempt `concurrency/` prefix). As above, an
    // engine error here is a found bug — fail the suite loudly.
    points.extend(crate::durability::run_durability(cfg.smoke)?);

    let mut metrics = vec![export::run_meta_jsonl(run_id)];
    metrics.extend(export::snapshot_jsonl(&registry().snapshot()));
    Ok(SuiteReport {
        schema_version: BENCH_SCHEMA_VERSION,
        run_id: run_id.to_string(),
        generated_unix: SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        smoke: cfg.smoke,
        points,
        metrics,
    })
}

/// Wall clock of the always-on telemetry pipeline vs. the recorder
/// disabled, as `(on_ms, off_ms)`: min over `reps` passes of one §6
/// read + update query on a fixed in-place workload, after a warmup
/// pass. The "on" mode additionally takes one timeline tick per pass —
/// the configuration the engine actually ships with.
fn measure_overhead(cfg: &SuiteConfig) -> Result<(f64, f64), String> {
    let sharing = cfg.sharings.last().copied().unwrap_or(1);
    let setting = cfg
        .settings
        .first()
        .copied()
        .unwrap_or(IndexSetting::Unclustered);
    let spec = cfg.spec(sharing, setting, Some(Strategy::InPlace));
    let mut w = build_workload(spec).map_err(|e| e.to_string())?;
    let reps = if cfg.smoke { 3 } else { 5 };
    let was_on = recorder::enabled();
    let mut best = |telemetry: bool| -> Result<f64, String> {
        recorder::set_enabled(telemetry);
        let mut min = f64::INFINITY;
        for rep in 0..=reps {
            let t0 = Instant::now();
            measure_read_query(&mut w, 0).map_err(|e| e.to_string())?;
            measure_update_query(&mut w, 0).map_err(|e| e.to_string())?;
            if telemetry {
                timeline::global_tick();
            }
            let ms = t0.elapsed().as_nanos() as f64 / 1e6;
            if rep > 0 {
                min = min.min(ms); // pass 0 is warmup
            }
        }
        Ok(min)
    };
    // "on" runs first so any residual cache warmth favours "off",
    // overstating rather than hiding the overhead.
    let on_ms = best(true)?;
    let off_ms = best(false)?;
    recorder::set_enabled(was_on);
    Ok((on_ms, off_ms))
}

/// Wall clock of the introspection subsystem armed vs. idle, as
/// `(on_ms, off_ms)`: min over `reps` passes of one §6 read + update
/// query on a fixed in-place workload, after a warmup pass. The "on"
/// mode arms the slow-query log at a threshold that records every
/// statement, observes each statement at its boundary (the `lang`
/// front-end's hook), and scans `sys.metrics` + `sys.pool` once per
/// pass — a monitoring client polling the engine. The "off" mode runs
/// the identical queries with the log disarmed and no scans.
fn measure_introspect_overhead(cfg: &SuiteConfig) -> Result<(f64, f64), String> {
    let sharing = cfg.sharings.last().copied().unwrap_or(1);
    let setting = cfg
        .settings
        .first()
        .copied()
        .unwrap_or(IndexSetting::Unclustered);
    let spec = cfg.spec(sharing, setting, Some(Strategy::InPlace));
    let mut w = build_workload(spec).map_err(|e| e.to_string())?;
    let reps = if cfg.smoke { 3 } else { 5 };
    let mut best = |introspect: bool| -> Result<f64, String> {
        if introspect {
            slowlog::set_thresholds(Some(0), None); // wall 0 ms: record everything
        } else {
            slowlog::set_off();
        }
        let mut min = f64::INFINITY;
        for rep in 0..=reps {
            let t0 = Instant::now();
            let q = read_query(&w, 0);
            w.db.flush_all().map_err(|e| e.to_string())?;
            w.db.reset_profile();
            let res = q.run(&mut w.db).map_err(|e| e.to_string())?;
            if introspect {
                w.db.observe_statement(
                    "suite read",
                    &res.plan.to_string(),
                    &res.profile,
                    res.rows.len() as u64,
                );
            }
            if let Some(f) = res.output_file {
                w.db.sm().drop_file(f).map_err(|e| e.to_string())?;
            }
            let uq = update_query(&w, 0);
            w.db.flush_all().map_err(|e| e.to_string())?;
            w.db.reset_profile();
            let ur = uq.run(&mut w.db).map_err(|e| e.to_string())?;
            if introspect {
                w.db.observe_statement(
                    "suite update",
                    &ur.plan.to_string(),
                    &ur.profile,
                    ur.updated as u64,
                );
                for table in [obs_names::SYS_METRICS, obs_names::SYS_POOL] {
                    SysQuery::on(table)
                        .run(&mut w.db)
                        .map_err(|e| e.to_string())?;
                }
            }
            let ms = t0.elapsed().as_nanos() as f64 / 1e6;
            if rep > 0 {
                min = min.min(ms); // pass 0 is warmup
            }
        }
        Ok(min)
    };
    // "on" first, so residual cache warmth favours "off" (overstates
    // rather than hides the overhead), matching `measure_overhead`.
    let on_ms = best(true)?;
    let off_ms = best(false)?;
    slowlog::set_off();
    slowlog::clear();
    Ok((on_ms, off_ms))
}

impl SuiteReport {
    /// Serialise to pretty-enough JSON (one point per line).
    pub fn to_json(&self) -> String {
        let points = Json::Arr(
            self.points
                .iter()
                .map(|p| {
                    Json::Obj(vec![
                        ("id".into(), Json::Str(p.id.clone())),
                        ("measured_io".into(), Json::Num(p.measured_io)),
                        ("model_io".into(), Json::Num(p.model_io)),
                        ("drift_pct".into(), Json::Num(p.drift_pct)),
                        ("wall_nanos".into(), Json::Num(p.wall_nanos as f64)),
                        ("wall_ms".into(), Json::Num(p.wall_ms)),
                        ("batch_io".into(), Json::Num(p.batch_io)),
                        ("ops_per_sec".into(), Json::Num(p.ops_per_sec)),
                    ])
                })
                .collect(),
        );
        let doc = Json::Obj(vec![
            (
                "schema_version".into(),
                Json::Num(self.schema_version as f64),
            ),
            ("run_id".into(), Json::Str(self.run_id.clone())),
            (
                "generated_unix".into(),
                Json::Num(self.generated_unix as f64),
            ),
            ("smoke".into(), Json::Bool(self.smoke)),
            ("points".into(), points),
            (
                "metrics".into(),
                Json::Arr(self.metrics.iter().cloned().map(Json::Str).collect()),
            ),
        ]);
        doc.render()
    }

    /// Parse a report written by [`SuiteReport::to_json`]. Accepts the
    /// current schema and every earlier one (v1 points lack `wall_ms` /
    /// `batch_io`, v1/v2 points lack `ops_per_sec`; missing fields
    /// default to 0, which exempts them from the corresponding gates).
    pub fn parse(src: &str) -> Result<SuiteReport, String> {
        let doc = Json::parse(src)?;
        let version = doc
            .get("schema_version")
            .and_then(Json::as_f64)
            .ok_or("missing schema_version")? as u32;
        if !(1..=BENCH_SCHEMA_VERSION).contains(&version) {
            return Err(format!(
                "schema_version {version} unsupported (expected 1..={BENCH_SCHEMA_VERSION})"
            ));
        }
        let num = |p: &Json, k: &str| -> Result<f64, String> {
            p.get(k)
                .and_then(Json::as_f64)
                .ok_or(format!("point missing {k}"))
        };
        let points = doc
            .get("points")
            .and_then(Json::as_arr)
            .ok_or("missing points")?
            .iter()
            .map(|p| {
                Ok(BenchPoint {
                    id: p
                        .get("id")
                        .and_then(Json::as_str)
                        .ok_or("point missing id")?
                        .to_string(),
                    measured_io: num(p, "measured_io")?,
                    model_io: num(p, "model_io")?,
                    drift_pct: num(p, "drift_pct")?,
                    wall_nanos: num(p, "wall_nanos")? as u64,
                    // v2 fields; absent in v1 documents.
                    wall_ms: p.get("wall_ms").and_then(Json::as_f64).unwrap_or(0.0),
                    batch_io: p.get("batch_io").and_then(Json::as_f64).unwrap_or(0.0),
                    // v3 field; absent in v1/v2 documents.
                    ops_per_sec: p.get("ops_per_sec").and_then(Json::as_f64).unwrap_or(0.0),
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(SuiteReport {
            schema_version: version,
            run_id: doc
                .get("run_id")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
            generated_unix: doc
                .get("generated_unix")
                .and_then(Json::as_f64)
                .unwrap_or(0.0) as u64,
            smoke: doc.get("smoke").and_then(Json::as_bool).unwrap_or(false),
            points,
            metrics: doc
                .get("metrics")
                .and_then(Json::as_arr)
                .map(|a| {
                    a.iter()
                        .filter_map(|v| v.as_str().map(str::to_string))
                        .collect()
                })
                .unwrap_or_default(),
        })
    }
}

/// Gate thresholds.
#[derive(Clone, Copy, Debug)]
pub struct GateThresholds {
    /// Maximum allowed measured-I/O increase vs. the previous run, %.
    pub max_io_regress_pct: f64,
    /// Maximum allowed |model drift| on `drift/…` points, %.
    pub max_drift_pct: f64,
    /// Maximum allowed wall-clock increase vs. the previous run, %.
    /// Only applied when both readings are at least [`WALL_FLOOR_MS`]
    /// (sub-floor timings are noise); `<= 0` disables wall gating.
    pub max_wall_regress_pct: f64,
    /// Maximum wall-clock cost of the always-on telemetry pipeline:
    /// `overhead/telemetry/on` vs. `…/off` **within the new report**
    /// (same machine, same run). Only applied when the "off" reading
    /// clears [`WALL_FLOOR_MS`]; `<= 0` disables the check.
    pub max_obs_overhead_pct: f64,
    /// Minimum `concurrency/read/t4` ÷ `concurrency/read/t1` throughput
    /// ratio **within the new report**: snapshot readers never block, so
    /// read throughput must scale with threads. Only applied when the
    /// producing host reported at least 4 CPUs (`concurrency/host/cpus`)
    /// and both readings ran long enough to clear [`WALL_FLOOR_MS`] — a
    /// 1-core CI box physically cannot scale and a sub-floor smoke run
    /// is noise. `<= 0` disables the check.
    pub min_read_scaling: f64,
}

impl Default for GateThresholds {
    fn default() -> Self {
        GateThresholds {
            max_io_regress_pct: 10.0,
            max_drift_pct: 60.0,
            max_wall_regress_pct: 15.0,
            max_obs_overhead_pct: 5.0,
            min_read_scaling: 2.0,
        }
    }
}

/// Diff `new` against `old`; returns human-readable violations (empty =
/// gate passes). Page I/O is deterministic and gated strictly; wall
/// clock is gated loosely (floor + wide threshold) because it is
/// machine-dependent, and not at all against v1 baselines (their
/// `wall_ms` parses as 0, below the floor).
pub fn gate(old: &SuiteReport, new: &SuiteReport, t: &GateThresholds) -> Vec<String> {
    let mut violations = Vec::new();
    for op in &old.points {
        let Some(np) = new.points.iter().find(|p| p.id == op.id) else {
            violations.push(format!("{}: point missing from new report", op.id));
            continue;
        };
        if op.id.starts_with("overhead/") || op.id.starts_with("concurrency/") {
            // Overhead and concurrency points are judged within the new
            // report below (on/off pairs; thread-scaling ratios); their
            // absolute readings are machine-dependent noise here.
            continue;
        }
        let regress = 100.0 * (np.measured_io - op.measured_io) / op.measured_io.max(1.0);
        if regress > t.max_io_regress_pct {
            violations.push(format!(
                "{}: measured I/O regressed {:.1}% ({:.1} -> {:.1} pages, limit {:.0}%)",
                op.id, regress, op.measured_io, np.measured_io, t.max_io_regress_pct
            ));
        }
        if t.max_wall_regress_pct > 0.0
            && op.wall_ms >= WALL_FLOOR_MS
            && np.wall_ms >= WALL_FLOOR_MS
        {
            let wall_regress = 100.0 * (np.wall_ms - op.wall_ms) / op.wall_ms;
            if wall_regress > t.max_wall_regress_pct {
                violations.push(format!(
                    "{}: wall clock regressed {:.1}% ({:.1} -> {:.1} ms, limit {:.0}%)",
                    op.id, wall_regress, op.wall_ms, np.wall_ms, t.max_wall_regress_pct
                ));
            }
        }
    }
    for np in &new.points {
        if np.id.starts_with("drift/") && np.drift_pct.abs() > t.max_drift_pct {
            violations.push(format!(
                "{}: model drift {:+.1}% exceeds ±{:.0}% (predicted {:.1}, measured {:.1})",
                np.id, np.drift_pct, t.max_drift_pct, np.model_io, np.measured_io
            ));
        }
    }
    if t.max_obs_overhead_pct > 0.0 {
        let wall = |id: &str| new.points.iter().find(|p| p.id == id).map(|p| p.wall_ms);
        for (kind, label) in [
            ("telemetry", "always-on telemetry"),
            ("introspect", "armed introspection"),
        ] {
            if let (Some(on), Some(off)) = (
                wall(&format!("overhead/{kind}/on")),
                wall(&format!("overhead/{kind}/off")),
            ) {
                if off >= WALL_FLOOR_MS {
                    let pct = 100.0 * (on - off) / off;
                    if pct > t.max_obs_overhead_pct {
                        violations.push(format!(
                            "overhead/{kind}: {label} costs {pct:+.1}% wall clock \
                             ({off:.1} -> {on:.1} ms, limit {:.0}%)",
                            t.max_obs_overhead_pct
                        ));
                    }
                }
            }
        }
    }
    if t.min_read_scaling > 0.0 {
        let find = |id: &str| new.points.iter().find(|p| p.id == id);
        let cpus = find("concurrency/host/cpus")
            .map(|p| p.measured_io)
            .unwrap_or(0.0);
        if let (Some(p1), Some(p4)) = (find("concurrency/read/t1"), find("concurrency/read/t4")) {
            if cpus >= 4.0
                && p1.wall_ms >= WALL_FLOOR_MS
                && p4.wall_ms >= WALL_FLOOR_MS
                && p1.ops_per_sec > 0.0
            {
                let scaling = p4.ops_per_sec / p1.ops_per_sec;
                if scaling < t.min_read_scaling {
                    violations.push(format!(
                        "concurrency/read: 4-thread snapshot reads scale only {scaling:.2}x over \
                         1 thread ({:.0} -> {:.0} ops/s on a {cpus:.0}-CPU host, minimum {:.1}x)",
                        p1.ops_per_sec, p4.ops_per_sec, t.min_read_scaling
                    ));
                }
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> SuiteReport {
        let mut cfg = SuiteConfig::smoke();
        cfg.sharings = vec![2];
        cfg.s_count = 180;
        let mut r = run_suite(&cfg, "test-run").unwrap();
        // The overhead pairs are measured live and judged *within* the
        // new report, so under parallel-test load they can spuriously
        // clear the noise floor and break emptiness assertions. Pin
        // them sub-floor here; the overhead-gate tests set their own
        // values explicitly.
        for p in &mut r.points {
            if p.id.starts_with("overhead/") {
                p.wall_ms = 1.0;
            }
        }
        r
    }

    #[test]
    fn suite_report_roundtrips_and_carries_drift_metrics() {
        let r = tiny_report();
        assert!(r.points.iter().any(|p| p.id.starts_with("io/")));
        assert!(r.points.iter().any(|p| p.id.starts_with("propagation/")));
        assert!(r.points.iter().any(|p| p.id.starts_with("drift/")));
        for kind in ["telemetry", "introspect"] {
            for mode in ["on", "off"] {
                let p = r
                    .points
                    .iter()
                    .find(|p| p.id == format!("overhead/{kind}/{mode}"))
                    .expect("overhead point");
                assert!(p.wall_ms > 0.0, "{}: wall must be measured", p.id);
            }
        }
        assert_eq!(
            r.points
                .iter()
                .filter(|p| p.id.starts_with("model/"))
                .count(),
            24,
            "2 figures x 2 sharing levels x 3 strategies x read+update"
        );
        let read_t1 = r
            .points
            .iter()
            .find(|p| p.id == "concurrency/read/t1")
            .expect("concurrency read point");
        assert!(read_t1.ops_per_sec > 0.0, "throughput must be measured");
        assert!(
            r.points.iter().any(|p| p.id == "concurrency/host/cpus"),
            "host parallelism must be recorded for the scaling gate"
        );
        assert!(
            r.points
                .iter()
                .any(|p| p.id.starts_with("concurrency/mixed/p30/")),
            "mixed-update sweep must be present"
        );
        assert!(r.metrics.iter().any(|l| l.contains("\"type\":\"run\"")));
        assert!(
            r.metrics.iter().any(|l| l.contains("costmodel.drift.")),
            "drift gauges must be exported: {:#?}",
            r.metrics
        );
        let back = SuiteReport::parse(&r.to_json()).unwrap();
        assert_eq!(back.points, r.points);
        assert_eq!(back.run_id, "test-run");
        assert!(back.smoke);
    }

    #[test]
    fn gate_passes_on_identical_reports_and_fails_on_injected_regression() {
        let r = tiny_report();
        let t = GateThresholds::default();
        assert!(gate(&r, &r, &t).is_empty());

        let mut worse = r.clone();
        let io = worse
            .points
            .iter_mut()
            .find(|p| p.id.starts_with("io/"))
            .unwrap();
        io.measured_io *= 1.5;
        let v = gate(&r, &worse, &t);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("regressed"), "{v:?}");

        let mut missing = r.clone();
        missing.points.retain(|p| !p.id.starts_with("drift/"));
        assert!(!gate(&r, &missing, &t).is_empty());
    }

    #[test]
    fn gate_flags_excess_drift_in_new_report() {
        let r = tiny_report();
        let mut drifted = r.clone();
        let d = drifted
            .points
            .iter_mut()
            .find(|p| p.id.starts_with("drift/"))
            .unwrap();
        d.drift_pct = 95.0;
        let v = gate(&r, &drifted, &GateThresholds::default());
        assert!(v.iter().any(|m| m.contains("model drift")), "{v:?}");
    }

    #[test]
    fn parse_rejects_other_schema_versions() {
        let r = tiny_report();
        let bumped = r
            .to_json()
            .replacen("\"schema_version\":3", "\"schema_version\":99", 1);
        assert!(SuiteReport::parse(&bumped).is_err());
        // Every released schema still parses.
        for old in ["1", "2"] {
            let back = r.to_json().replacen(
                "\"schema_version\":3",
                &format!("\"schema_version\":{old}"),
                1,
            );
            assert!(SuiteReport::parse(&back).is_ok(), "v{old} must parse");
        }
    }

    #[test]
    fn parse_accepts_v1_documents_with_wall_fields_defaulted() {
        // A v1 document: no wall_ms / batch_io on its points.
        let v1 = concat!(
            "{\"schema_version\":1,\"run_id\":\"old\",\"generated_unix\":1,",
            "\"smoke\":true,\"points\":[{\"id\":\"io/x/f1/none/read\",",
            "\"measured_io\":10,\"model_io\":9,\"drift_pct\":11.1,",
            "\"wall_nanos\":8000000}],\"metrics\":[]}"
        );
        let r = SuiteReport::parse(v1).unwrap();
        assert_eq!(r.schema_version, 1);
        assert_eq!(r.points.len(), 1);
        assert_eq!(r.points[0].wall_ms, 0.0);
        assert_eq!(r.points[0].batch_io, 0.0);
        // wall_ms 0 < WALL_FLOOR_MS: no wall gating against a v1 baseline,
        // even against an arbitrarily slow new report.
        let mut new = r.clone();
        new.points[0].wall_ms = 1e6;
        assert!(gate(&r, &new, &GateThresholds::default()).is_empty());
    }

    #[test]
    fn gate_flags_wall_clock_regression_above_floor_only() {
        let r = tiny_report();
        let mut old = r.clone();
        let mut new = r.clone();
        let id = old
            .points
            .iter()
            .find(|p| p.id.starts_with("io/"))
            .unwrap()
            .id
            .clone();
        let set = |rep: &mut SuiteReport, ms: f64| {
            rep.points.iter_mut().find(|p| p.id == id).unwrap().wall_ms = ms;
        };
        // 100 ms -> 130 ms: +30% > 15% limit.
        set(&mut old, 100.0);
        set(&mut new, 130.0);
        let v = gate(&old, &new, &GateThresholds::default());
        assert!(
            v.iter().any(|m| m.contains("wall clock regressed")),
            "{v:?}"
        );
        // Same ratio below the floor: noise, not gated.
        set(&mut old, 1.0);
        set(&mut new, 1.3);
        assert!(gate(&old, &new, &GateThresholds::default()).is_empty());
        // Threshold <= 0 disables wall gating entirely.
        set(&mut old, 100.0);
        set(&mut new, 130.0);
        let off = GateThresholds {
            max_wall_regress_pct: 0.0,
            ..GateThresholds::default()
        };
        assert!(gate(&old, &new, &off).is_empty());
    }

    #[test]
    fn read_scaling_gate_is_host_and_floor_guarded() {
        let r = tiny_report();
        let set = |rep: &mut SuiteReport, id: &str, ops: f64, ms: f64| {
            let p = rep.points.iter_mut().find(|p| p.id == id).unwrap();
            p.ops_per_sec = ops;
            p.wall_ms = ms;
            if id == "concurrency/host/cpus" {
                p.measured_io = ops;
            }
        };
        // An 8-CPU host whose 4-thread reads only reach 1.5x: caught.
        let mut flat = r.clone();
        set(&mut flat, "concurrency/host/cpus", 8.0, 0.0);
        set(&mut flat, "concurrency/read/t1", 100_000.0, 50.0);
        set(&mut flat, "concurrency/read/t4", 150_000.0, 40.0);
        let v = gate(&r, &flat, &GateThresholds::default());
        assert!(v.iter().any(|m| m.contains("scale only 1.50x")), "{v:?}");
        // 2.5x scaling on the same host: passes.
        let mut scaled = flat.clone();
        set(&mut scaled, "concurrency/read/t4", 250_000.0, 40.0);
        assert!(gate(&r, &scaled, &GateThresholds::default()).is_empty());
        // A 1-CPU host physically cannot scale: exempt.
        let mut small = flat.clone();
        set(&mut small, "concurrency/host/cpus", 1.0, 0.0);
        assert!(gate(&r, &small, &GateThresholds::default()).is_empty());
        // Sub-floor readings (the smoke config) are noise: exempt.
        let mut fast = flat.clone();
        set(&mut fast, "concurrency/read/t1", 100_000.0, 1.0);
        assert!(gate(&r, &fast, &GateThresholds::default()).is_empty());
        // Threshold <= 0 disables the check.
        let off = GateThresholds {
            min_read_scaling: 0.0,
            ..GateThresholds::default()
        };
        assert!(gate(&r, &flat, &off).is_empty());
        // Concurrency points are exempt from the old-vs-new wall
        // comparison (machine-dependent; judged within one run instead).
        let mut slow = r.clone();
        set(&mut slow, "concurrency/read/t1", 1.0, 1e6);
        assert!(gate(&r, &slow, &GateThresholds::default()).is_empty());
    }

    #[test]
    fn gate_flags_telemetry_overhead_within_the_new_report() {
        let r = tiny_report();
        let set = |rep: &mut SuiteReport, mode: &str, ms: f64| {
            rep.points
                .iter_mut()
                .find(|p| p.id == format!("overhead/telemetry/{mode}"))
                .unwrap()
                .wall_ms = ms;
        };
        // +10% overhead above the floor: caught at the default 5% limit.
        let mut costly = r.clone();
        set(&mut costly, "off", 100.0);
        set(&mut costly, "on", 110.0);
        let v = gate(&r, &costly, &GateThresholds::default());
        assert!(v.iter().any(|m| m.contains("always-on telemetry")), "{v:?}");
        // Overhead wall readings are exempt from the old-vs-new wall
        // comparison (they're compared within one run instead).
        assert_eq!(v.len(), 1, "{v:?}");
        // Same ratio below the noise floor: not gated.
        let mut tiny = r.clone();
        set(&mut tiny, "off", 1.0);
        set(&mut tiny, "on", 1.1);
        assert!(gate(&r, &tiny, &GateThresholds::default()).is_empty());
        // The introspection pair is gated the same way.
        let set_i = |rep: &mut SuiteReport, mode: &str, ms: f64| {
            rep.points
                .iter_mut()
                .find(|p| p.id == format!("overhead/introspect/{mode}"))
                .unwrap()
                .wall_ms = ms;
        };
        let mut probing = r.clone();
        set_i(&mut probing, "off", 100.0);
        set_i(&mut probing, "on", 110.0);
        let v = gate(&r, &probing, &GateThresholds::default());
        assert!(v.iter().any(|m| m.contains("armed introspection")), "{v:?}");
        // Threshold <= 0 disables the check.
        let off = GateThresholds {
            max_obs_overhead_pct: 0.0,
            ..GateThresholds::default()
        };
        assert!(gate(&r, &costly, &off).is_empty());
    }
}
