//! Durability benchmarks: what the write-ahead log costs.
//!
//! Two point families land in the suite report:
//!
//! * `durability/wal/{off,on}` — one seeded, single-threaded
//!   `update_txn` workload over a counted in-memory disk, first without
//!   and then with a WAL attached. `measured_io` is total page traffic
//!   (reads + writes + allocations) across the world build and the
//!   update loop; the pool is sized so nothing evicts, and the log is a
//!   separate byte stream, so the two readings must be **identical** —
//!   this is the suite's standing pin that commit logging and page
//!   checksums add zero page I/O to the hot path (the log's own volume
//!   is visible in `wal.bytes`, not here). The pair is gated cross-run
//!   like any deterministic point.
//! * `concurrency/group_commit/t<N>` — N committer threads updating
//!   disjoint departments over one file-backed database + log. Every
//!   commit must reach disk, but concurrent commits share fsyncs (group
//!   commit), so throughput per fsync rises with threads. The point
//!   carries `ops_per_sec`, plus the run's fsync count in `measured_io`
//!   and its coalesced-commit count in `batch_io`. It lives under the
//!   `concurrency/` prefix because fsync latency is a machine property:
//!   the cross-run gate ignores it.

use crate::concurrency::point;
use crate::suite::BenchPoint;
use fieldrep_catalog::{Propagation, Strategy};
use fieldrep_core::{Database, DbConfig};
use fieldrep_model::{FieldType, TypeDef, Value};
use fieldrep_storage::{remove_db_dir, FileDisk, FileWalStore, MemDisk, MemWalStore, Oid};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Shape of the durability sweep.
#[derive(Clone, Debug)]
pub struct DurabilityConfig {
    /// Single-threaded terminal updates in the WAL on/off pair.
    pub updates: usize,
    /// Thread counts for the group-commit runs.
    pub gc_threads: Vec<usize>,
    /// Commits per thread in the group-commit runs.
    pub gc_ops_per_thread: usize,
    /// RNG seed (per-thread streams derive from it).
    pub seed: u64,
}

impl DurabilityConfig {
    /// The nightly shape.
    pub fn full() -> DurabilityConfig {
        DurabilityConfig {
            updates: 1500,
            gc_threads: vec![1, 4],
            gc_ops_per_thread: 150,
            seed: 0xD0_D0,
        }
    }

    /// Seconds-scale variant for `scripts/check.sh` (fewer commits, so
    /// fewer real fsyncs).
    pub fn smoke() -> DurabilityConfig {
        DurabilityConfig {
            updates: 250,
            gc_threads: vec![1, 4],
            gc_ops_per_thread: 30,
            seed: 0xD0_D0,
        }
    }
}

fn db_cfg() -> DbConfig {
    DbConfig {
        pool_pages: 512,
        inline_link_threshold: 4,
    }
}

/// The Figure-1 world (ORG ← DEPT ← EMP, one replicated path per
/// strategy), built into an existing database so the same populate step
/// runs over every backend under test.
struct World {
    db: Database,
    orgs: Vec<Oid>,
    depts: Vec<Oid>,
}

fn populate(mut db: Database) -> Result<World, String> {
    let e = |e: fieldrep_core::DbError| format!("durability world: {e}");
    db.define_type(TypeDef::new(
        "ORG",
        vec![("name", FieldType::Str), ("budget", FieldType::Int)],
    ))
    .map_err(e)?;
    db.define_type(TypeDef::new(
        "DEPT",
        vec![
            ("name", FieldType::Str),
            ("budget", FieldType::Int),
            ("org", FieldType::Ref("ORG".into())),
        ],
    ))
    .map_err(e)?;
    db.define_type(TypeDef::new(
        "EMP",
        vec![
            ("name", FieldType::Str),
            ("salary", FieldType::Int),
            ("dept", FieldType::Ref("DEPT".into())),
        ],
    ))
    .map_err(e)?;
    db.create_set("Org", "ORG").map_err(e)?;
    db.create_set("Dept", "DEPT").map_err(e)?;
    db.create_set("Emp1", "EMP").map_err(e)?;
    let mut orgs = Vec::new();
    for i in 0..4 {
        orgs.push(
            db.insert(
                "Org",
                vec![Value::Str(format!("org{i}")), Value::Int(1000 + i)],
            )
            .map_err(e)?,
        );
    }
    let mut depts = Vec::new();
    for i in 0..16 {
        depts.push(
            db.insert(
                "Dept",
                vec![
                    Value::Str(format!("dept{i}")),
                    Value::Int(100 * i as i64),
                    Value::Ref(orgs[i % orgs.len()]),
                ],
            )
            .map_err(e)?,
        );
    }
    for i in 0..512 {
        db.insert(
            "Emp1",
            vec![
                Value::Str(format!("emp{i}")),
                Value::Int(i as i64),
                Value::Ref(depts[i % depts.len()]),
            ],
        )
        .map_err(e)?;
    }
    db.replicate("Emp1.dept.name", Strategy::InPlace)
        .map_err(e)?;
    db.replicate("Emp1.dept.budget", Strategy::Separate)
        .map_err(e)?;
    db.replicate_collapsed("Emp1.dept.org.name", Propagation::Eager)
        .map_err(e)?;
    Ok(World { db, orgs, depts })
}

/// The seeded single-threaded update loop: terminal dept/org updates
/// through `update_txn`, same mix as the concurrency sweep's writers.
fn update_loop(w: &World, ops: usize, seed: u64) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    for op in 0..ops {
        let r = match rng.gen_range(0..3u32) {
            0 => {
                let d = w.depts[rng.gen_range(0..w.depts.len())];
                w.db.update_txn(d, &[("name", Value::Str(format!("d-{op}")))])
            }
            1 => {
                let d = w.depts[rng.gen_range(0..w.depts.len())];
                w.db.update_txn(d, &[("budget", Value::Int(rng.gen_range(0..1_000_000)))])
            }
            _ => {
                let o = w.orgs[rng.gen_range(0..w.orgs.len())];
                w.db.update_txn(o, &[("name", Value::Str(format!("o-{op}")))])
            }
        };
        r.map_err(|e| format!("durability update {op}: {e}"))?;
    }
    Ok(())
}

/// The `durability/wal/{off,on}` pair. Both runs start from a fresh
/// counted [`MemDisk`]; the "on" run attaches a [`MemWalStore`] so the
/// commit path logs and "syncs" every transaction without real fsync
/// latency drowning the page-I/O signal.
fn run_wal_pair(cfg: &DurabilityConfig) -> Result<Vec<BenchPoint>, String> {
    let mut points = Vec::new();
    for mode in ["off", "on"] {
        let db = if mode == "on" {
            Database::with_disk_and_wal(
                Box::new(MemDisk::new()),
                Box::new(MemWalStore::new()),
                db_cfg(),
            )
            .map_err(|e| format!("durability wal-on database: {e}"))?
        } else {
            Database::in_memory(db_cfg())
        };
        db.reset_profile();
        let t0 = Instant::now();
        let w = populate(db)?;
        update_loop(&w, cfg.updates, cfg.seed)?;
        let ms = t0.elapsed().as_nanos() as f64 / 1e6;
        let prof = w.db.io_profile();
        if prof.evictions != 0 {
            return Err(format!(
                "durability/wal/{mode}: {} evictions — grow pool_pages so the \
                 page-I/O pin stays eviction-free",
                prof.evictions
            ));
        }
        let mut p = point(format!("durability/wal/{mode}"), cfg.updates, ms);
        p.measured_io = (prof.disk.reads + prof.disk.writes + prof.disk.allocations) as f64;
        points.push(p);
    }
    Ok(points)
}

/// One group-commit thread: commits over its own slice of the
/// departments (`index % stride == thread`), so threads contend only on
/// the log tail, never on object locks.
fn gc_worker(
    w: &World,
    thread: usize,
    stride: usize,
    ops: usize,
    seed: u64,
) -> Result<usize, String> {
    let mine: Vec<Oid> = w
        .depts
        .iter()
        .copied()
        .enumerate()
        .filter(|(i, _)| i % stride == thread)
        .map(|(_, d)| d)
        .collect();
    let mut rng = StdRng::seed_from_u64(seed ^ (thread as u64).wrapping_mul(0x9E37_79B9));
    for op in 0..ops {
        let d = mine[rng.gen_range(0..mine.len())];
        let r = if rng.gen_range(0..2u32) == 0 {
            w.db.update_txn(d, &[("name", Value::Str(format!("d{thread}-{op}")))])
        } else {
            w.db.update_txn(d, &[("budget", Value::Int(rng.gen_range(0..1_000_000)))])
        };
        r.map_err(|e| format!("group-commit thread {thread} op {op}: {e}"))?;
    }
    Ok(ops)
}

/// The `concurrency/group_commit/t<N>` sweep over a real file-backed
/// database + log in a scratch directory under the system temp dir
/// (removed afterwards).
fn run_group_commit(cfg: &DurabilityConfig) -> Result<Vec<BenchPoint>, String> {
    // Disambiguates scratch dirs when several suites run in one process
    // (the suite's own unit tests do exactly that, in parallel).
    static SCRATCH: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let es = |e: fieldrep_storage::StorageError| format!("group-commit scratch: {e}");
    let mut points = Vec::new();
    for &n in &cfg.gc_threads {
        let run = SCRATCH.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "fieldrep-group-commit-{}-{run}-t{n}",
            std::process::id()
        ));
        remove_db_dir(&dir).map_err(es)?;
        let db = Database::with_disk_and_wal(
            Box::new(FileDisk::open(&dir).map_err(es)?),
            Box::new(FileWalStore::open(&dir).map_err(es)?),
            db_cfg(),
        )
        .map_err(|e| format!("group-commit database: {e}"))?;
        let w = populate(db)?;
        let before = w.db.sm().wal_stats();
        let t0 = Instant::now();
        let total = std::thread::scope(|s| {
            let handles: Vec<_> = (0..n)
                .map(|t| {
                    let w = &w;
                    s.spawn(move || gc_worker(w, t, n, cfg.gc_ops_per_thread, cfg.seed))
                })
                .collect();
            let mut total = 0usize;
            for h in handles {
                total += h
                    .join()
                    .map_err(|_| "group-commit worker panicked".to_string())??;
            }
            Ok::<usize, String>(total)
        })?;
        let ms = t0.elapsed().as_nanos() as f64 / 1e6;
        let after = w.db.sm().wal_stats();
        let mut p = point(format!("concurrency/group_commit/t{n}"), total, ms);
        p.measured_io = (after.fsyncs - before.fsyncs) as f64;
        p.batch_io = (after.coalesced - before.coalesced) as f64;
        points.push(p);
        drop(w);
        remove_db_dir(&dir).map_err(es)?;
    }
    Ok(points)
}

/// Run the sweep; the WAL on/off pair first, then `group_commit/t<N>`
/// in thread order.
pub fn run_durability(smoke: bool) -> Result<Vec<BenchPoint>, String> {
    let cfg = if smoke {
        DurabilityConfig::smoke()
    } else {
        DurabilityConfig::full()
    };
    let mut points = run_wal_pair(&cfg)?;
    points.extend(run_group_commit(&cfg)?);
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wal_on_and_off_do_identical_page_io() {
        let pts = run_wal_pair(&DurabilityConfig::smoke()).unwrap();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].id, "durability/wal/off");
        assert_eq!(pts[1].id, "durability/wal/on");
        assert!(pts[0].measured_io > 0.0, "the pin must measure something");
        assert_eq!(
            pts[0].measured_io, pts[1].measured_io,
            "attaching a WAL changed page I/O"
        );
    }

    #[test]
    fn group_commit_points_carry_throughput_and_fsync_counts() {
        let mut cfg = DurabilityConfig::smoke();
        cfg.gc_threads = vec![2];
        cfg.gc_ops_per_thread = 10;
        let pts = run_group_commit(&cfg).unwrap();
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].id, "concurrency/group_commit/t2");
        assert!(pts[0].ops_per_sec > 0.0);
        // 20 durable commits need at least one fsync, and never more
        // than one per commit.
        assert!(pts[0].measured_io >= 1.0);
        assert!(pts[0].measured_io <= 20.0 + 1.0);
    }
}
