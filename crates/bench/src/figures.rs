//! Shared rendering for the figure binaries.
//!
//! Figures 11/13 (the `C_total` percent-difference graphs) and 12/14
//! (the selected `C_read`/`C_update` tables) differ only in the index
//! setting, so `fig11`…`fig14` are thin wrappers around these helpers.
//! `bench_suite` reuses [`selected_points`] to pin the same analytical
//! values into its report.

use fieldrep_costmodel::{
    figure_11_or_13, render_graph, selected_values, IndexSetting, ModelStrategy, TableRow,
};

/// Long-form strategy label used by the selected-values tables.
pub fn model_strategy_name(s: ModelStrategy) -> &'static str {
    match s {
        ModelStrategy::None => "no replication",
        ModelStrategy::InPlace => "in-place replication",
        ModelStrategy::Separate => "separate replication",
    }
}

/// The body of Figure 11 (unclustered) or 13 (clustered): one percent-
/// difference graph per sharing level.
pub fn render_percent_figure(setting: IndexSetting) -> String {
    figure_11_or_13(setting, 20)
        .iter()
        .map(|g| render_graph(g, setting))
        .collect::<Vec<_>>()
        .join("\n")
}

/// The analytical data behind Figures 12/14: selected values at
/// `(f = 1, f_r = .002)` and `(f = 20, f_r = .002)`.
pub fn selected_points(setting: IndexSetting) -> (Vec<TableRow>, Vec<TableRow>) {
    (
        selected_values(setting, 1.0),
        selected_values(setting, 20.0),
    )
}

/// The body of Figure 12 (unclustered) or 14 (clustered): the selected-
/// values table, strategies down the side, the two sharing levels across.
pub fn render_selected_values(setting: IndexSetting) -> String {
    let (t1, t20) = selected_points(setting);
    let mut out = String::new();
    out.push_str(&format!(
        "{:<22} | f=1,f_r=.002        | f=20,f_r=.002\n",
        ""
    ));
    out.push_str(&format!(
        "{:<22} | C_read   C_update   | C_read   C_update\n",
        "Strategy"
    ));
    out.push_str(&"-".repeat(68));
    out.push('\n');
    for (a, b) in t1.iter().zip(&t20) {
        out.push_str(&format!(
            "{:<22} | {:>6}   {:>8}   | {:>6}   {:>8}\n",
            model_strategy_name(a.strategy),
            a.c_read,
            a.c_update,
            b.c_read,
            b.c_update
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selected_values_table_carries_paper_reference_cells() {
        // Figure 12, f = 20: None 691/22, InPlace 407/427, Separate 509/42.
        let s = render_selected_values(IndexSetting::Unclustered);
        for cell in ["691", "407", "427", "509", "no replication"] {
            assert!(s.contains(cell), "missing {cell} in:\n{s}");
        }
    }

    #[test]
    fn percent_figures_render_one_graph_per_sharing_level() {
        let s = render_percent_figure(IndexSetting::Clustered);
        for f in ["f = 1", "f = 10", "f = 20", "f = 50"] {
            assert!(s.contains(f), "missing graph for {f}");
        }
    }
}
