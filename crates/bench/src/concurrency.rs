//! Multi-threaded throughput: snapshot readers and `update_txn` writers
//! over one shared database, swept across thread counts.
//!
//! This is the empirical side of the concurrency work: the §6 workloads
//! measure page I/O per query, while this module measures *operations
//! per second* as threads are added. Readers use the seqlock snapshot
//! protocol ([`Database::snapshot_path_values`]), writers the
//! OID-ordered lock closure ([`Database::update_txn`]); both are
//! wait-free for readers, so read throughput should scale with cores
//! until the buffer pool saturates.
//!
//! Three point families land in the suite report (schema v3):
//!
//! * `concurrency/host/cpus` — [`std::thread::available_parallelism`]
//!   at run time. The scaling gate consults this: a 1-core CI box
//!   physically cannot scale, so the gate only fires on hosts with at
//!   least four CPUs (the same spirit as the wall-clock noise floor).
//! * `concurrency/read/t<N>` — pure snapshot reads, N threads.
//! * `concurrency/mixed/p<P>/t<N>` — P% transactional terminal updates
//!   mixed into the reads (the paper's `P_up`), N threads.

use crate::suite::BenchPoint;
use fieldrep_catalog::{PathId, Propagation, Strategy};
use fieldrep_core::{Database, DbConfig};
use fieldrep_model::{FieldType, TypeDef, Value};
use fieldrep_storage::Oid;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Shape of the concurrency sweep.
#[derive(Clone, Debug)]
pub struct ConcurrencyConfig {
    /// Thread counts to sweep.
    pub threads: Vec<usize>,
    /// Employees (sources) in the shared world.
    pub emps: usize,
    /// Departments (terminals); fan-out is `emps / depts`.
    pub depts: usize,
    /// Snapshot reads per thread in the read-only runs.
    pub read_ops_per_thread: usize,
    /// Operations per thread in the mixed runs.
    pub mixed_ops_per_thread: usize,
    /// Update percentages for the mixed runs (the paper's `P_up`).
    pub update_pcts: Vec<u32>,
    /// RNG seed (per-thread streams derive from it).
    pub seed: u64,
}

impl ConcurrencyConfig {
    /// The nightly sweep: enough operations that the 1- and 4-thread
    /// read points clear the wall-clock floor and the scaling gate has
    /// signal.
    pub fn full() -> ConcurrencyConfig {
        ConcurrencyConfig {
            threads: vec![1, 2, 4, 8],
            emps: 512,
            depts: 16,
            read_ops_per_thread: 30_000,
            mixed_ops_per_thread: 6_000,
            update_pcts: vec![10, 30],
            seed: 0xC0C0,
        }
    }

    /// Seconds-scale variant for `scripts/check.sh`. Deliberately under
    /// the wall floor so the scaling gate never judges a smoke run.
    pub fn smoke() -> ConcurrencyConfig {
        ConcurrencyConfig {
            threads: vec![1, 2, 4],
            emps: 128,
            depts: 8,
            read_ops_per_thread: 2_000,
            mixed_ops_per_thread: 500,
            update_pcts: vec![10, 30],
            seed: 0xC0C0,
        }
    }
}

/// The shared world: the Figure-1 chain ORG ← DEPT ← EMP with one path
/// per strategy (`Emp.dept.name` in-place, `Emp.dept.budget` separate,
/// `Emp.dept.org.name` collapsed), so the sweep crosses every footprint
/// code path.
struct ConcWorld {
    db: Database,
    orgs: Vec<Oid>,
    depts: Vec<Oid>,
    emps: Vec<Oid>,
    paths: Vec<PathId>,
}

fn build_world(cfg: &ConcurrencyConfig) -> Result<ConcWorld, String> {
    let e = |e: fieldrep_core::DbError| format!("concurrency world: {e}");
    let mut db = Database::in_memory(DbConfig {
        pool_pages: 512,
        inline_link_threshold: 4,
    });
    db.define_type(TypeDef::new(
        "ORG",
        vec![("name", FieldType::Str), ("budget", FieldType::Int)],
    ))
    .map_err(e)?;
    db.define_type(TypeDef::new(
        "DEPT",
        vec![
            ("name", FieldType::Str),
            ("budget", FieldType::Int),
            ("org", FieldType::Ref("ORG".into())),
        ],
    ))
    .map_err(e)?;
    db.define_type(TypeDef::new(
        "EMP",
        vec![
            ("name", FieldType::Str),
            ("salary", FieldType::Int),
            ("dept", FieldType::Ref("DEPT".into())),
        ],
    ))
    .map_err(e)?;
    db.create_set("Org", "ORG").map_err(e)?;
    db.create_set("Dept", "DEPT").map_err(e)?;
    db.create_set("Emp1", "EMP").map_err(e)?;
    let mut orgs = Vec::new();
    for i in 0..4 {
        orgs.push(
            db.insert(
                "Org",
                vec![Value::Str(format!("org{i}")), Value::Int(1000 + i)],
            )
            .map_err(e)?,
        );
    }
    let mut depts = Vec::new();
    for i in 0..cfg.depts {
        depts.push(
            db.insert(
                "Dept",
                vec![
                    Value::Str(format!("dept{i}")),
                    Value::Int(100 * i as i64),
                    Value::Ref(orgs[i % orgs.len()]),
                ],
            )
            .map_err(e)?,
        );
    }
    let mut emps = Vec::new();
    for i in 0..cfg.emps {
        emps.push(
            db.insert(
                "Emp1",
                vec![
                    Value::Str(format!("emp{i}")),
                    Value::Int(i as i64),
                    Value::Ref(depts[i % depts.len()]),
                ],
            )
            .map_err(e)?,
        );
    }
    let paths = vec![
        db.replicate("Emp1.dept.name", Strategy::InPlace)
            .map_err(e)?,
        db.replicate("Emp1.dept.budget", Strategy::Separate)
            .map_err(e)?,
        db.replicate_collapsed("Emp1.dept.org.name", Propagation::Eager)
            .map_err(e)?,
    ];
    Ok(ConcWorld {
        db,
        orgs,
        depts,
        emps,
        paths,
    })
}

/// One thread's loop: `update_pct`% terminal updates through
/// `update_txn`, the rest snapshot path reads. Returns the operation
/// count on success.
fn worker(
    w: &ConcWorld,
    thread: usize,
    ops: usize,
    update_pct: u32,
    seed: u64,
) -> Result<usize, String> {
    let mut rng = StdRng::seed_from_u64(seed ^ (thread as u64).wrapping_mul(0x9E37_79B9));
    for op in 0..ops {
        if rng.gen_range(0..100u32) < update_pct {
            let r = match rng.gen_range(0..3u32) {
                0 => {
                    let d = w.depts[rng.gen_range(0..w.depts.len())];
                    w.db.update_txn(d, &[("name", Value::Str(format!("d{thread}-{op}")))])
                }
                1 => {
                    let d = w.depts[rng.gen_range(0..w.depts.len())];
                    w.db.update_txn(d, &[("budget", Value::Int(rng.gen_range(0..1_000_000)))])
                }
                _ => {
                    let o = w.orgs[rng.gen_range(0..w.orgs.len())];
                    w.db.update_txn(o, &[("name", Value::Str(format!("o{thread}-{op}")))])
                }
            };
            r.map_err(|e| format!("thread {thread} op {op} update: {e}"))?;
        } else {
            let s = w.emps[rng.gen_range(0..w.emps.len())];
            let p = w.paths[rng.gen_range(0..w.paths.len())];
            w.db.snapshot_path_values(s, p)
                .map_err(|e| format!("thread {thread} op {op} read: {e}"))?;
        }
    }
    Ok(ops)
}

/// Run `threads` workers and return `(total_ops, elapsed_ms)`.
fn run_mix(
    w: &ConcWorld,
    threads: usize,
    ops_per_thread: usize,
    update_pct: u32,
    seed: u64,
) -> Result<(usize, f64), String> {
    let t0 = Instant::now();
    let total = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| s.spawn(move || worker(w, t, ops_per_thread, update_pct, seed)))
            .collect();
        let mut total = 0usize;
        for h in handles {
            total += h
                .join()
                .map_err(|_| "concurrency worker panicked".to_string())??;
        }
        Ok::<usize, String>(total)
    })?;
    Ok((total, t0.elapsed().as_nanos() as f64 / 1e6))
}

/// A throughput-flavoured [`BenchPoint`]: wall clock plus `ops_per_sec`,
/// no modelled I/O. Shared with the durability sweep's group-commit
/// points (`crate::durability`).
pub(crate) fn point(id: String, ops: usize, wall_ms: f64) -> BenchPoint {
    BenchPoint {
        id,
        measured_io: 0.0,
        model_io: 0.0,
        drift_pct: 0.0,
        wall_nanos: (wall_ms * 1e6) as u64,
        wall_ms,
        batch_io: 0.0,
        ops_per_sec: if wall_ms > 0.0 {
            ops as f64 / (wall_ms / 1e3)
        } else {
            0.0
        },
    }
}

/// Run the sweep; points in matrix order (`host`, then `read/t<N>`,
/// then `mixed/p<P>/t<N>`).
pub fn run_concurrency(cfg: &ConcurrencyConfig) -> Result<Vec<BenchPoint>, String> {
    let w = build_world(cfg)?;
    // Warmup: fault every emp's page (and the replica pages) in once so
    // the timed runs measure concurrency, not first-touch I/O.
    for &e in &w.emps {
        for &p in &w.paths {
            w.db.snapshot_path_values(e, p)
                .map_err(|e| format!("warmup: {e}"))?;
        }
    }
    let cpus = std::thread::available_parallelism()
        .map(std::num::NonZero::get)
        .unwrap_or(1);
    let mut points = vec![point("concurrency/host/cpus".into(), 0, 0.0)];
    points[0].measured_io = cpus as f64;
    for &n in &cfg.threads {
        let (ops, ms) = run_mix(&w, n, cfg.read_ops_per_thread, 0, cfg.seed)?;
        points.push(point(format!("concurrency/read/t{n}"), ops, ms));
    }
    for &pct in &cfg.update_pcts {
        for &n in &cfg.threads {
            let (ops, ms) = run_mix(&w, n, cfg.mixed_ops_per_thread, pct, cfg.seed)?;
            points.push(point(format!("concurrency/mixed/p{pct}/t{n}"), ops, ms));
        }
    }
    Ok(points)
}
