//! Criterion bench: storage-manager substrate operations.

// `criterion_group!` expands to an undocumented harness fn.
#![allow(missing_docs)]

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fieldrep_storage::{HeapFile, StorageManager};

fn bench_heap(c: &mut Criterion) {
    c.bench_function("heap_insert_100B", |b| {
        let sm = StorageManager::in_memory(4096);
        let hf = HeapFile::create(&sm).unwrap();
        let payload = [7u8; 100];
        b.iter(|| black_box(hf.rec_insert(&sm, 1, &payload).unwrap()));
    });

    c.bench_function("heap_point_read_warm", |b| {
        let sm = StorageManager::in_memory(4096);
        let hf = HeapFile::create(&sm).unwrap();
        let oids: Vec<_> = (0..10_000)
            .map(|_| hf.rec_insert(&sm, 1, &[3u8; 100]).unwrap())
            .collect();
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 7919) % oids.len();
            black_box(hf.read(&sm, oids[i]).unwrap())
        });
    });

    c.bench_function("heap_update_same_size", |b| {
        let sm = StorageManager::in_memory(4096);
        let hf = HeapFile::create(&sm).unwrap();
        let oids: Vec<_> = (0..10_000)
            .map(|_| hf.rec_insert(&sm, 1, &[3u8; 100]).unwrap())
            .collect();
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 4391) % oids.len();
            hf.rec_update(&sm, oids[i], &[5u8; 100]).unwrap();
        });
    });

    c.bench_function("heap_scan_10k_objects", |b| {
        let sm = StorageManager::in_memory(4096);
        let hf = HeapFile::create(&sm).unwrap();
        for _ in 0..10_000 {
            hf.rec_insert(&sm, 1, &[3u8; 100]).unwrap();
        }
        b.iter(|| {
            let mut scan = hf.scan(&sm).unwrap();
            let mut n = 0u64;
            while scan.next_record().unwrap().is_some() {
                n += 1;
            }
            black_box(n)
        });
    });
}

fn bench_buffer_pool(c: &mut Criterion) {
    c.bench_function("pool_fetch_hit", |b| {
        let sm = StorageManager::in_memory(64);
        let f = sm.create_file().unwrap();
        let (pid, h) = sm.pool().new_page(f).unwrap();
        drop(h);
        b.iter(|| black_box(sm.pool().fetch(pid).unwrap()));
    });

    c.bench_function("pool_fetch_miss_evict", |b| {
        // Pool of 8 frames cycling over 64 pages: every fetch misses.
        let sm = StorageManager::in_memory(8);
        let f = sm.create_file().unwrap();
        let mut pids = vec![];
        for _ in 0..64 {
            let (pid, h) = sm.pool().new_page(f).unwrap();
            drop(h);
            pids.push(pid);
        }
        sm.flush_all().unwrap();
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 17) % pids.len();
            black_box(sm.pool().fetch(pids[i]).unwrap())
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(40);
    targets = bench_heap, bench_buffer_pool
}
criterion_main!(benches);
