//! Criterion bench: the analytical cost model itself (Figures 11–14 are
//! regenerated thousands of times during sweeps; this keeps that cheap).

// `criterion_group!` expands to an undocumented harness fn.
#![allow(missing_docs)]

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fieldrep_costmodel::{
    figure_11_or_13, selected_values, total_cost, yao, IndexSetting, ModelStrategy, Params,
};

fn bench_yao(c: &mut Criterion) {
    c.bench_function("yao_exact_400_picks", |b| {
        b.iter(|| yao(black_box(200_000.0), black_box(28.0), black_box(400.0)));
    });
}

fn bench_total_cost(c: &mut Criterion) {
    let p = Params::with_sharing(20.0);
    c.bench_function("total_cost_one_point", |b| {
        b.iter(|| {
            total_cost(
                black_box(&p),
                ModelStrategy::InPlace,
                IndexSetting::Unclustered,
                black_box(0.3),
            )
        });
    });
}

fn bench_figures(c: &mut Criterion) {
    c.bench_function("figure_11_full_sweep", |b| {
        b.iter(|| figure_11_or_13(IndexSetting::Unclustered, black_box(100)));
    });
    c.bench_function("figure_14_table", |b| {
        b.iter(|| selected_values(IndexSetting::Clustered, black_box(20.0)));
    });
}

criterion_group!(benches, bench_yao, bench_total_cost, bench_figures);
criterion_main!(benches);
