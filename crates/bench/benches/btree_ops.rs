//! Criterion bench: B⁺-tree substrate operations (the index costs inside
//! every §6 query).

// `criterion_group!` expands to an undocumented harness fn.
#![allow(missing_docs)]

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fieldrep_btree::{keys::encode_i64, BTreeIndex, Entry};
use fieldrep_storage::{FileId, Oid, StorageManager};

fn oid(n: u32) -> Oid {
    Oid::new(FileId(9), n / 64, (n % 64) as u16)
}

fn bench_insert(c: &mut Criterion) {
    c.bench_function("btree_insert_sequential", |b| {
        let sm = StorageManager::in_memory(4096);
        let idx = BTreeIndex::create(&sm).unwrap();
        let mut i: i64 = 0;
        b.iter(|| {
            idx.insert(&sm, &encode_i64(i), oid(i as u32)).unwrap();
            i += 1;
        });
    });
    c.bench_function("btree_insert_random", |b| {
        let sm = StorageManager::in_memory(4096);
        let idx = BTreeIndex::create(&sm).unwrap();
        let mut i: i64 = 0;
        b.iter(|| {
            let k = (i * 2654435761) % 100_000_000;
            idx.insert(&sm, &encode_i64(k), oid(i as u32)).unwrap();
            i += 1;
        });
    });
}

fn bench_lookup_and_range(c: &mut Criterion) {
    let sm = StorageManager::in_memory(8192);
    let entries: Vec<Entry> = (0..100_000i64)
        .map(|i| (encode_i64(i).to_vec(), oid(i as u32)))
        .collect();
    let idx = BTreeIndex::bulk_load(&sm, &entries, 1.0).unwrap();

    let mut i: i64 = 0;
    c.bench_function("btree_point_lookup_100k", |b| {
        b.iter(|| {
            i = (i + 7919) % 100_000;
            black_box(idx.lookup(&sm, &encode_i64(i)).unwrap())
        });
    });
    let mut i: i64 = 0;
    c.bench_function("btree_range_100_of_100k", |b| {
        b.iter(|| {
            i = (i + 4391) % 99_000;
            black_box(idx.range(&sm, &encode_i64(i), &encode_i64(i + 99)).unwrap())
        });
    });
}

fn bench_bulk_load(c: &mut Criterion) {
    let entries: Vec<Entry> = (0..50_000i64)
        .map(|i| (encode_i64(i).to_vec(), oid(i as u32)))
        .collect();
    c.bench_function("btree_bulk_load_50k", |b| {
        b.iter(|| {
            let sm = StorageManager::in_memory(8192);
            black_box(BTreeIndex::bulk_load(&sm, &entries, 1.0).unwrap())
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_insert, bench_lookup_and_range, bench_bulk_load
}
criterion_main!(benches);
