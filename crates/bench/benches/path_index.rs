//! Criterion bench: §3.3.4 path-index lookups — one B⁺-tree over
//! replicated values vs. the Gemstone-style multi-component traversal.

// `criterion_group!` expands to an undocumented harness fn.
#![allow(missing_docs)]

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fieldrep_catalog::Strategy;
use fieldrep_core::{Database, DbConfig};
use fieldrep_model::{FieldType, TypeDef, Value};
use fieldrep_pathindex::{GemstonePathIndex, ReplicatedPathIndex};

fn build() -> Database {
    let mut db = Database::in_memory(DbConfig::default());
    db.define_type(TypeDef::new("ORG", vec![("name", FieldType::Str)]))
        .unwrap();
    db.define_type(TypeDef::new(
        "DEPT",
        vec![
            ("name", FieldType::Str),
            ("org", FieldType::Ref("ORG".into())),
        ],
    ))
    .unwrap();
    db.define_type(TypeDef::new(
        "EMP",
        vec![
            ("id", FieldType::Int),
            ("dept", FieldType::Ref("DEPT".into())),
        ],
    ))
    .unwrap();
    db.create_set("Org", "ORG").unwrap();
    db.create_set("Dept", "DEPT").unwrap();
    db.create_set("Emp1", "EMP").unwrap();
    let orgs: Vec<_> = (0..200)
        .map(|i| {
            db.insert("Org", vec![Value::Str(format!("org{i:04}"))])
                .unwrap()
        })
        .collect();
    let depts: Vec<_> = (0..1000)
        .map(|i| {
            db.insert(
                "Dept",
                vec![Value::Str(format!("d{i}")), Value::Ref(orgs[i % 200])],
            )
            .unwrap()
        })
        .collect();
    for i in 0..10_000 {
        db.insert(
            "Emp1",
            vec![Value::Int(i as i64), Value::Ref(depts[i % 1000])],
        )
        .unwrap();
    }
    db
}

fn bench_lookups(c: &mut Criterion) {
    let mut db = build();
    db.replicate("Emp1.dept.org.name", Strategy::InPlace)
        .unwrap();
    let rep = ReplicatedPathIndex::build(&mut db, "Emp1.dept.org.name").unwrap();
    let gem = GemstonePathIndex::build(&mut db, "Emp1.dept.org.name").unwrap();

    let mut i = 0usize;
    c.bench_function("path_lookup_replicated_index", |b| {
        b.iter(|| {
            i = (i + 7) % 200;
            let v = Value::Str(format!("org{i:04}"));
            black_box(rep.lookup(&mut db, &v).unwrap())
        });
    });
    let mut i = 0usize;
    c.bench_function("path_lookup_gemstone_index", |b| {
        b.iter(|| {
            i = (i + 7) % 200;
            let v = Value::Str(format!("org{i:04}"));
            black_box(gem.lookup(&mut db, &v).unwrap())
        });
    });
}

criterion_group!(benches, bench_lookups);
criterion_main!(benches);
