//! Criterion bench: the "one-time cost to build" an inverted path
//! (§4.1.2) — `replicate` over an existing population, per strategy and
//! for the §4.3.3 collapsed form.

// `criterion_group!` expands to an undocumented harness fn.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fieldrep_catalog::{Propagation, Strategy};
use fieldrep_core::{Database, DbConfig};
use fieldrep_model::{FieldType, TypeDef, Value};

fn populated_db() -> Database {
    let mut db = Database::in_memory(DbConfig::default());
    db.define_type(TypeDef::new("ORG", vec![("name", FieldType::Str)]))
        .unwrap();
    db.define_type(TypeDef::new(
        "DEPT",
        vec![
            ("name", FieldType::Str),
            ("org", FieldType::Ref("ORG".into())),
        ],
    ))
    .unwrap();
    db.define_type(TypeDef::new(
        "EMP",
        vec![
            ("id", FieldType::Int),
            ("dept", FieldType::Ref("DEPT".into())),
        ],
    ))
    .unwrap();
    db.create_set("Org", "ORG").unwrap();
    db.create_set("Dept", "DEPT").unwrap();
    db.create_set("Emp1", "EMP").unwrap();
    let orgs: Vec<_> = (0..20)
        .map(|i| db.insert("Org", vec![Value::Str(format!("o{i}"))]).unwrap())
        .collect();
    let depts: Vec<_> = (0..400)
        .map(|i| {
            db.insert(
                "Dept",
                vec![Value::Str(format!("d{i}")), Value::Ref(orgs[i % 20])],
            )
            .unwrap()
        })
        .collect();
    for i in 0..8000usize {
        db.insert(
            "Emp1",
            vec![Value::Int(i as i64), Value::Ref(depts[i % 400])],
        )
        .unwrap();
    }
    db
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("replicate_build_8k_sources");
    group.sample_size(10);
    for (name, which) in [
        ("inplace_1level", 0),
        ("separate_1level", 1),
        ("inplace_2level", 2),
        ("collapsed_2level", 3),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &which, |b, &w| {
            b.iter_with_large_drop(|| {
                let mut db = populated_db();
                match w {
                    0 => db.replicate("Emp1.dept.name", Strategy::InPlace).unwrap(),
                    1 => db.replicate("Emp1.dept.name", Strategy::Separate).unwrap(),
                    2 => db
                        .replicate("Emp1.dept.org.name", Strategy::InPlace)
                        .unwrap(),
                    _ => db
                        .replicate_collapsed("Emp1.dept.org.name", Propagation::Eager)
                        .unwrap(),
                };
                db
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
