//! Criterion bench: cost of propagating one terminal-field update as the
//! sharing level grows — the mechanism behind Figure 11's in-place
//! breakdown (each update fans out to `f` source objects) vs. separate
//! replication's constant one-replica write.

// `criterion_group!` expands to an undocumented harness fn.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fieldrep_catalog::Strategy;
use fieldrep_core::{Database, DbConfig};
use fieldrep_model::{FieldType, TypeDef, Value};
use fieldrep_storage::Oid;

/// One dept referenced by `fan_in` employees.
fn build(fan_in: usize, strategy: Strategy, threshold: usize) -> (Database, Oid) {
    let mut db = Database::in_memory(DbConfig {
        pool_pages: 4096,
        inline_link_threshold: threshold,
    });
    db.define_type(TypeDef::new(
        "DEPT",
        vec![("name", FieldType::Str), ("pad", FieldType::Pad(100))],
    ))
    .unwrap();
    db.define_type(TypeDef::new(
        "EMP",
        vec![
            ("id", FieldType::Int),
            ("dept", FieldType::Ref("DEPT".into())),
            ("pad", FieldType::Pad(60)),
        ],
    ))
    .unwrap();
    db.create_set("Dept", "DEPT").unwrap();
    db.create_set("Emp1", "EMP").unwrap();
    let d = db
        .insert("Dept", vec![Value::Str("d#0".into()), Value::Unit])
        .unwrap();
    for i in 0..fan_in {
        db.insert(
            "Emp1",
            vec![Value::Int(i as i64), Value::Ref(d), Value::Unit],
        )
        .unwrap();
    }
    db.replicate("Emp1.dept.name", strategy).unwrap();
    (db, d)
}

fn bench_propagation(c: &mut Criterion) {
    let mut group = c.benchmark_group("terminal_update_propagation");
    for fan_in in [1usize, 16, 64, 256] {
        for (name, strat) in [
            ("inplace", Strategy::InPlace),
            ("separate", Strategy::Separate),
        ] {
            let (db, d) = build(fan_in, strat, 0);
            let mut tick = 0u64;
            group.bench_with_input(BenchmarkId::new(name, fan_in), &(), |b, _| {
                b.iter(|| {
                    tick += 1;
                    db.update(d, &[("name", Value::Str(format!("d#{}", tick % 8)))])
                        .unwrap();
                });
            });
        }
    }
    group.finish();
}

fn bench_inline_threshold(c: &mut Criterion) {
    // §4.3.1 ablation at fan-in 2: inline vs link-object form.
    let mut group = c.benchmark_group("propagation_inline_ablation");
    for (name, threshold) in [("link_objects", 0usize), ("inlined", 4)] {
        let (db, d) = build(2, Strategy::InPlace, threshold);
        let mut tick = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, _| {
            b.iter(|| {
                tick += 1;
                db.update(d, &[("name", Value::Str(format!("d#{}", tick % 8)))])
                    .unwrap();
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(40);
    targets = bench_propagation, bench_inline_threshold
}
criterion_main!(benches);
