//! Criterion bench: EXTRA-language parsing and end-to-end statement
//! execution.

// `criterion_group!` expands to an undocumented harness fn.
#![allow(missing_docs)]

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fieldrep_core::DbConfig;
use fieldrep_lang::{parse_script, Interpreter};

const SCRIPT: &str = r#"
define type ORG ( name: char[], budget: int );
define type DEPT ( name: char[], budget: int, org: ref ORG );
define type EMP ( name: char[], age: int, salary: int, dept: ref DEPT );
create Org: {own ref ORG};
create Dept: {own ref DEPT};
create Emp1: {own ref EMP};
replicate Emp1.dept.name;
retrieve (Emp1.name, Emp1.salary, Emp1.dept.name) where Emp1.salary > 100000;
replace (Dept.budget = 42) where Dept.budget between 0 and 10;
"#;

fn bench_parse(c: &mut Criterion) {
    c.bench_function("lang_parse_script", |b| {
        b.iter(|| black_box(parse_script(SCRIPT).unwrap()));
    });
}

fn bench_execute(c: &mut Criterion) {
    let mut it = Interpreter::new(DbConfig::default());
    it.run_script(
        r#"
        define type DEPT ( name: char[] );
        define type EMP ( name: char[], salary: int, dept: ref DEPT );
        create Dept: {own ref DEPT};
        create Emp1: {own ref EMP};
        insert Dept (name = "D") as $d;
        "#,
    )
    .unwrap();
    for i in 0..500 {
        it.execute(&format!(
            r#"insert Emp1 (name = "e{i}", salary = {}, dept = $d)"#,
            1000 + i
        ))
        .unwrap();
    }
    it.execute("replicate Emp1.dept.name").unwrap();
    c.bench_function("lang_execute_retrieve", |b| {
        b.iter(|| {
            black_box(
                it.execute("retrieve (Emp1.name, Emp1.dept.name) where Emp1.salary > 1400")
                    .unwrap(),
            )
        });
    });
}

criterion_group!(benches, bench_parse, bench_execute);
criterion_main!(benches);
