//! Criterion bench: wall-clock time of the paper's §6 read and update
//! queries on the real engine, per replication strategy (scaled-down
//! workload: |S| = 1000, f = 5; the I/O-level comparison lives in the
//! `empirical` binary).

// `criterion_group!` expands to an undocumented harness fn.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fieldrep_bench::{build_workload, measure_read_query, measure_update_query, WorkloadSpec};
use fieldrep_catalog::Strategy;
use fieldrep_costmodel::IndexSetting;

fn strategies() -> [(&'static str, Option<Strategy>); 3] {
    [
        ("none", None),
        ("inplace", Some(Strategy::InPlace)),
        ("separate", Some(Strategy::Separate)),
    ]
}

fn bench_read(c: &mut Criterion) {
    let mut group = c.benchmark_group("read_query");
    for (name, strat) in strategies() {
        let spec = WorkloadSpec::paper(5, IndexSetting::Unclustered, strat).scaled(1000);
        let mut w = build_workload(spec).expect("build workload");
        let mut lo = 0i64;
        group.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, _| {
            b.iter(|| {
                let io = measure_read_query(&mut w, lo % 4000).expect("read query");
                lo += 37;
                io
            });
        });
    }
    group.finish();
}

fn bench_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("update_query");
    group.sample_size(20);
    for (name, strat) in strategies() {
        let spec = WorkloadSpec::paper(5, IndexSetting::Unclustered, strat).scaled(1000);
        let mut w = build_workload(spec).expect("build workload");
        let mut lo = 0i64;
        group.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, _| {
            b.iter(|| {
                let io = measure_update_query(&mut w, lo % 900).expect("update query");
                lo += 13;
                io
            });
        });
    }
    group.finish();
}

fn bench_clustered_read(c: &mut Criterion) {
    let mut group = c.benchmark_group("read_query_clustered");
    for (name, strat) in strategies() {
        let spec = WorkloadSpec::paper(5, IndexSetting::Clustered, strat).scaled(1000);
        let mut w = build_workload(spec).expect("build workload");
        let mut lo = 0i64;
        group.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, _| {
            b.iter(|| {
                let io = measure_read_query(&mut w, lo % 4000).expect("read query");
                lo += 37;
                io
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_read, bench_update, bench_clustered_read
}
criterion_main!(benches);
