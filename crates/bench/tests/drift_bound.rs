//! Conformance bound: EXPLAIN ANALYZE on the §6 read workload must stay
//! within a generous drift envelope of the analytical model for every
//! replication strategy. The bound is deliberately loose — it catches
//! "the predictions became nonsense" regressions, not small constant
//! offsets (B⁺-tree heights, annotation bytes) the model ignores.

use fieldrep_bench::{build_workload, read_query, strategy_name, WorkloadSpec, ALL_STRATEGIES};
use fieldrep_costmodel::IndexSetting;
use fieldrep_query::explain_analyze_read;

#[test]
fn read_drift_stays_bounded_for_every_strategy() {
    for strategy in ALL_STRATEGIES {
        let spec = WorkloadSpec::paper(10, IndexSetting::Unclustered, strategy).scaled(2000);
        let mut w = build_workload(spec).expect("build workload");
        let q = read_query(&w, 0);
        let (e, res) = explain_analyze_read(&mut w.db, &q).unwrap();
        if let Some(f) = res.output_file {
            w.db.sm().drop_file(f).unwrap();
        }
        let drift = e.total_drift().expect("analyze measures I/O");
        assert!(
            drift.abs() <= 60.0,
            "{}: total drift {drift:+.1}% (predicted {:.1}, measured {:?})",
            strategy_name(strategy),
            e.predicted_total,
            e.measured_total
        );
        // Per-operator: the dominant predicted operators must also be
        // measured as dominant (no prediction attached to the wrong op).
        let fetchy: f64 = e
            .rows
            .iter()
            .filter(|r| r.predicted > 1.0)
            .map(|r| r.measured.unwrap() as f64)
            .sum();
        let total = e.measured_total.unwrap() as f64;
        assert!(
            fetchy >= 0.5 * total,
            "{}: operators predicted >1 page carry only {fetchy}/{total} measured pages",
            strategy_name(strategy)
        );
    }
}
