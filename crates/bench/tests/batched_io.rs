//! Acceptance test for the batched I/O fast path (ISSUE 3).
//!
//! Figure 12's unclustered update workload at fan-out `f ≥ 8`: after an
//! update to a replicated terminal field, in-place propagation must cost
//! `ceil(f / objects-per-page)` source-page reads plus a short path
//! overhead (terminal page, link-object page) — i.e. the `Yao(f)` page
//! count the cost model charges, not `f` round trips — and the source
//! pages must arrive through grouped (batched) disk reads.
//!
//! Runs in its own integration-test binary so the process-wide
//! `storage.disk.batch_len` histogram deltas it asserts on are not
//! perturbed by unrelated tests.

use fieldrep_catalog::Strategy;
use fieldrep_core::{Database, DbConfig};
use fieldrep_model::{FieldType, TypeDef, Value};
use fieldrep_obs::metrics::registry;
use fieldrep_storage::PageId;

/// Fan-out: how many source objects share the one terminal.
const FANOUT: usize = 64;

#[test]
fn inplace_propagation_reads_pages_not_objects_via_grouped_batches() {
    let mut db = Database::in_memory(DbConfig {
        pool_pages: 256,
        inline_link_threshold: 2,
    });
    db.define_type(TypeDef::new(
        "STYPE",
        vec![
            ("repfield", FieldType::Str),
            ("field_s", FieldType::Int),
            ("pad", FieldType::Pad(171)),
        ],
    ))
    .unwrap();
    db.define_type(TypeDef::new(
        "RTYPE",
        vec![
            ("sref", FieldType::Ref("STYPE".into())),
            ("field_r", FieldType::Int),
            ("pad", FieldType::Pad(83)),
        ],
    ))
    .unwrap();
    db.create_set("S", "STYPE").unwrap();
    db.create_set("R", "RTYPE").unwrap();

    let s = db
        .insert(
            "S",
            vec![
                Value::Str("rep0000000000#00#0".into()),
                Value::Int(0),
                Value::Unit,
            ],
        )
        .unwrap();

    // Replicate BEFORE inserting the R objects: each is then born with
    // its hidden replicated value, so no record ever grows or forwards
    // and the R file stays densely packed in insertion (physical) order.
    let path = db.replicate("R.sref.repfield", Strategy::InPlace).unwrap();

    let mut r_oids = Vec::with_capacity(FANOUT);
    for i in 0..FANOUT {
        r_oids.push(
            db.insert("R", vec![Value::Ref(s), Value::Int(i as i64), Value::Unit])
                .unwrap(),
        );
    }

    // The paper's page-count bound: f objects on ceil(f / objects-per-page)
    // contiguous pages.
    let mut src_pages: Vec<PageId> = r_oids.iter().map(fieldrep_storage::Oid::page_id).collect();
    src_pages.dedup();
    assert!(
        src_pages.len() < FANOUT / 8,
        "sources must be page-clustered for the bound to be meaningful \
         ({} pages for {FANOUT} objects)",
        src_pages.len()
    );

    let batch_len = registry().histogram("storage.disk.batch_len", &[1, 2, 4, 8, 16, 32, 64, 128]);
    db.flush_all().unwrap();
    db.reset_profile();
    let batches_before = batch_len.count();

    // The Figure 12 update: rewrite the replicated terminal field (same
    // encoded length, so source objects don't grow).
    db.update(s, &[("repfield", Value::Str("rep0000000000#00#1".into()))])
        .unwrap();

    let prof = db.io_profile();
    // Path overhead: the terminal's own page plus the link-object page(s),
    // with slack of 2 for layout variance.
    let path_len = 2 + 2;
    assert!(
        prof.disk.reads <= (src_pages.len() + path_len) as u64,
        "propagation at f={FANOUT} must read ~one I/O per source page \
         (pages={}, reads={}, profile={prof})",
        src_pages.len(),
        prof.disk.reads
    );
    // Grouped reads: the contiguous source run arrives in a handful of
    // read calls, not one call per page (let alone per object).
    assert!(
        prof.disk.read_calls <= 5,
        "expected grouped read calls, got {} ({prof})",
        prof.disk.read_calls
    );
    assert!(
        prof.disk.read_calls < prof.disk.reads,
        "at least one call must have moved multiple pages ({prof})"
    );
    assert!(
        batch_len.count() > batches_before,
        "the batched read path must have recorded batch_len samples"
    );

    // And the propagation must actually have happened, everywhere.
    for &r in &r_oids {
        assert_eq!(
            db.path_values(r, path).unwrap(),
            Some(vec![Value::Str("rep0000000000#00#1".into())]),
            "replicated value refreshed on {r}"
        );
    }
}
