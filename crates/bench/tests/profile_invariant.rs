//! End-to-end invariant: the per-operator I/O attribution produced by
//! the executor's [`Profile`] must sum *exactly* to the raw buffer-pool
//! counters over the same window, for read and update queries alike,
//! under every replication strategy.
//!
//! This is the property that makes `trace_run --profile` trustworthy:
//! no page read or write escapes attribution, and none is counted
//! twice.

use fieldrep_bench::{
    build_workload, io_counts_of, profile_read_query, profile_update_query, ProfiledRun,
    WorkloadSpec,
};
use fieldrep_catalog::Strategy;
use fieldrep_costmodel::IndexSetting;

const STRATEGIES: [Option<Strategy>; 3] = [None, Some(Strategy::InPlace), Some(Strategy::Separate)];

fn check_invariant(run: &ProfiledRun) {
    let raw = io_counts_of(&run.raw);
    assert_eq!(
        run.profile.ops_io_sum(),
        raw,
        "{}: sum of per-operator I/O != raw pool counters",
        run.label
    );
    assert_eq!(
        run.profile.total_io, raw,
        "{}: profile total != raw pool counters",
        run.label
    );
    assert!(
        !raw.is_zero(),
        "{}: a cold-pool query must do some I/O",
        run.label
    );
}

#[test]
fn read_query_operator_io_sums_to_raw_totals() {
    for strat in STRATEGIES {
        let mut w =
            build_workload(WorkloadSpec::paper(10, IndexSetting::Unclustered, strat).scaled(500))
                .expect("build workload");
        let run = profile_read_query(&mut w, 3).expect("profiled read");
        assert!(run.rows > 0, "read returned rows");
        check_invariant(&run);
        // The profile must attribute I/O to real operators, not just
        // lump everything into the residual.
        assert!(
            run.profile
                .ops
                .iter()
                .any(|op| { op.name.starts_with("access:") && !op.io.is_zero() }),
            "access operator should carry I/O"
        );
    }
}

#[test]
fn update_query_operator_io_sums_to_raw_totals() {
    for strat in STRATEGIES {
        let mut w =
            build_workload(WorkloadSpec::paper(10, IndexSetting::Unclustered, strat).scaled(500))
                .expect("build workload");
        let run = profile_update_query(&mut w, 3).expect("profiled update");
        assert!(run.rows > 0, "update touched objects");
        check_invariant(&run);
        if strat.is_some() {
            // Replication maintenance is carved out of "apply" into its
            // own operator; it must be present and must carry the
            // propagation fan-out I/O.
            let prop = run
                .profile
                .ops
                .iter()
                .find(|op| op.name == "core.propagate")
                .expect("update profile has a core.propagate operator");
            assert!(!prop.io.is_zero(), "propagation performs I/O");
        }
    }
}

#[test]
fn profiled_runs_capture_span_trees() {
    let mut w = build_workload(
        WorkloadSpec::paper(10, IndexSetting::Unclustered, Some(Strategy::InPlace)).scaled(500),
    )
    .expect("build workload");
    let read = profile_read_query(&mut w, 0).expect("profiled read");
    let root = read
        .spans
        .iter()
        .find(|s| s.name == "query.read")
        .expect("read run records a query.read root span");
    assert!(
        root.find("btree.range").is_some(),
        "access nests btree span"
    );
    assert_eq!(root.io, io_counts_of(&read.raw), "root span sees all I/O");

    let update = profile_update_query(&mut w, 0).expect("profiled update");
    let root = update
        .spans
        .iter()
        .find(|s| s.name == "query.update")
        .expect("update run records a query.update root span");
    assert!(
        root.find("core.propagate").is_some(),
        "update span tree includes propagation"
    );
}
