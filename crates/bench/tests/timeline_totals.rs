//! Acceptance for the metrics timeline: over a window bracketed by two
//! global ticks, the `storage.*` counter deltas must sum *exactly* to
//! the raw buffer-pool totals the database measured over the same
//! window — the timeline is a faithful resampling of the engine's I/O,
//! not an approximation.
//!
//! Kept as a single-test file: the global registry and timeline are
//! process-wide, so this test owns its process.

use fieldrep_bench::{build_workload, io_counts_of, read_query, update_query, WorkloadSpec};
use fieldrep_catalog::Strategy;
use fieldrep_costmodel::IndexSetting;
use fieldrep_obs::{names, timeline};

#[test]
fn timeline_storage_deltas_sum_exactly_to_pool_totals() {
    let mut spec =
        WorkloadSpec::paper(2, IndexSetting::Unclustered, Some(Strategy::InPlace)).scaled(300);
    spec.read_sel = 0.02;
    spec.update_sel = 0.02;
    let mut w = build_workload(spec).expect("build workload");

    // Baseline tick after the build settles, so the measured window is
    // exactly [baseline tick, final tick].
    w.db.flush_all().unwrap();
    w.db.reset_profile();
    timeline::global_tick();

    let rq = read_query(&w, 0);
    let res = rq.run(&mut w.db).expect("read query");
    assert!(!res.rows.is_empty(), "window must contain real work");
    let uq = update_query(&w, 0);
    let ur = uq.run(&mut w.db).expect("update query");
    assert!(ur.updated > 0, "window must contain update ripples");
    w.db.flush_all().unwrap();

    let expect = io_counts_of(&w.db.io_profile());
    timeline::global_tick();

    let got = timeline::with_global(|t| {
        let last = t.ticks().last().expect("final tick retained");
        [
            last.counter_delta(names::STORAGE_DISK_READS),
            last.counter_delta(names::STORAGE_DISK_WRITES),
            last.counter_delta(names::STORAGE_DISK_ALLOCS),
            last.counter_delta(names::STORAGE_POOL_HITS),
            last.counter_delta(names::STORAGE_POOL_MISSES),
            last.counter_delta(names::STORAGE_POOL_EVICTIONS),
        ]
    });
    let want = [
        expect.disk_reads,
        expect.disk_writes,
        expect.disk_allocs,
        expect.pool_hits,
        expect.pool_misses,
        expect.evictions,
    ];
    assert!(
        want.iter().sum::<u64>() > 0,
        "the window must have measured some I/O"
    );
    assert_eq!(
        got, want,
        "timeline deltas (reads, writes, allocs, hits, misses, evictions) \
         must equal the raw pool counters exactly"
    );

    if let Some(f) = res.output_file {
        w.db.sm().drop_file(f).ok();
    }
}
