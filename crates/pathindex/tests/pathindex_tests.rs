//! Path-index tests: both designs agree with ground truth, and the
//! Gemstone design costs more I/O per lookup (the §3.3.4 claim).

use fieldrep_catalog::Strategy;
use fieldrep_core::{Database, DbConfig};
use fieldrep_model::{FieldType, TypeDef, Value};
use fieldrep_pathindex::{GemstonePathIndex, ReplicatedPathIndex};
use fieldrep_storage::Oid;

fn setup() -> (Database, Vec<Oid>, Vec<Oid>, Vec<Oid>) {
    let mut db = Database::in_memory(DbConfig::default());
    db.define_type(TypeDef::new("ORG", vec![("name", FieldType::Str)]))
        .unwrap();
    db.define_type(TypeDef::new(
        "DEPT",
        vec![
            ("name", FieldType::Str),
            ("org", FieldType::Ref("ORG".into())),
        ],
    ))
    .unwrap();
    db.define_type(TypeDef::new(
        "EMP",
        vec![
            ("name", FieldType::Str),
            ("dept", FieldType::Ref("DEPT".into())),
        ],
    ))
    .unwrap();
    db.create_set("Org", "ORG").unwrap();
    db.create_set("Dept", "DEPT").unwrap();
    db.create_set("Emp1", "EMP").unwrap();
    let orgs: Vec<Oid> = (0..3)
        .map(|i| {
            db.insert("Org", vec![Value::Str(format!("org{i}"))])
                .unwrap()
        })
        .collect();
    let depts: Vec<Oid> = (0..6)
        .map(|i| {
            db.insert(
                "Dept",
                vec![Value::Str(format!("dept{i}")), Value::Ref(orgs[i % 3])],
            )
            .unwrap()
        })
        .collect();
    let emps: Vec<Oid> = (0..60)
        .map(|i| {
            db.insert(
                "Emp1",
                vec![Value::Str(format!("emp{i}")), Value::Ref(depts[i % 6])],
            )
            .unwrap()
        })
        .collect();
    (db, orgs, depts, emps)
}

/// Ground truth by brute-force dereference.
fn expected(db: &mut Database, emps: &[Oid], org_name: &str) -> Vec<Oid> {
    let mut out: Vec<Oid> = emps
        .iter()
        .filter(|&&e| {
            db.deref_path(e, "dept.org.name").unwrap() == Some(vec![Value::Str(org_name.into())])
        })
        .copied()
        .collect();
    out.sort_unstable();
    out
}

#[test]
fn gemstone_lookup_matches_ground_truth() {
    let (mut db, _, _, emps) = setup();
    let g = GemstonePathIndex::build(&mut db, "Emp1.dept.org.name").unwrap();
    assert_eq!(g.component_count(), 3); // the paper's "three B+ tree" claim
    for name in ["org0", "org1", "org2"] {
        let mut hits = g.lookup(&mut db, &Value::Str(name.into())).unwrap();
        hits.sort_unstable();
        assert_eq!(hits, expected(&mut db, &emps, name), "{name}");
    }
    assert!(g
        .lookup(&mut db, &Value::Str("nope".into()))
        .unwrap()
        .is_empty());
}

#[test]
fn replicated_index_matches_gemstone() {
    let (mut db, _, _, _) = setup();
    db.replicate("Emp1.dept.org.name", Strategy::InPlace)
        .unwrap();
    let r = ReplicatedPathIndex::build(&mut db, "Emp1.dept.org.name").unwrap();
    let g = GemstonePathIndex::build(&mut db, "Emp1.dept.org.name").unwrap();
    for name in ["org0", "org1", "org2"] {
        let v = Value::Str(name.into());
        let mut a = r.lookup(&mut db, &v).unwrap();
        let mut b = g.lookup(&mut db, &v).unwrap();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "{name}");
    }
}

#[test]
fn replicated_index_range() {
    let (mut db, _, _, _) = setup();
    db.replicate("Emp1.dept.org.name", Strategy::InPlace)
        .unwrap();
    let r = ReplicatedPathIndex::build(&mut db, "Emp1.dept.org.name").unwrap();
    let hits = r
        .range(
            &mut db,
            &Value::Str("org0".into()),
            &Value::Str("org1".into()),
        )
        .unwrap();
    assert_eq!(hits.len(), 40); // orgs 0 and 1 → 2/3 of 60 employees
}

#[test]
fn gemstone_component_lookup_is_associative() {
    // §7.2: "we can ask whether the DEPT objects with OIDs x through y are
    // referenced by Emp1, and this can be done without accessing the Dept
    // set".
    let (mut db, _, depts, _) = setup();
    let g = GemstonePathIndex::build(&mut db, "Emp1.dept.org.name").unwrap();
    // Component 2 maps DEPT oids → EMP oids.
    let mut sorted = depts.clone();
    sorted.sort_unstable();
    let lo = sorted[0].to_bytes();
    let hi = sorted[2].to_bytes();
    let hits = g.component_lookup(&mut db, 2, &lo, &hi).unwrap();
    // Three depts → 10 employees each.
    assert_eq!(hits.len(), 30);
}

#[test]
fn gemstone_reindex_source() {
    let (mut db, _, depts, emps) = setup();
    let g = GemstonePathIndex::build(&mut db, "Emp1.dept.org.name").unwrap();
    // Move emp0 from dept0 (org0) to dept1 (org1).
    let e = emps[0];
    let old_org = db
        .deref_path(e, "dept.org")
        .unwrap()
        .map(|v| v[0].as_ref_oid().unwrap());
    let old_chain = vec![Some(e), Some(depts[0]), old_org];
    db.update(e, &[("dept", Value::Ref(depts[1]))]).unwrap();
    let new_org = db
        .deref_path(e, "dept.org")
        .unwrap()
        .map(|v| v[0].as_ref_oid().unwrap());
    let new_chain = vec![Some(e), Some(depts[1]), new_org];
    g.reindex_source(
        &mut db,
        &old_chain,
        Some(&Value::Str("org0".into())),
        &new_chain,
        Some(&Value::Str("org1".into())),
    )
    .unwrap();
    let hits = g.lookup(&mut db, &Value::Str("org1".into())).unwrap();
    assert!(hits.contains(&e));
    let hits0 = g.lookup(&mut db, &Value::Str("org0".into())).unwrap();
    assert!(!hits0.contains(&e));
}

#[test]
fn gemstone_lookup_costs_more_io_than_replicated_index() {
    let (mut db, _, _, _) = setup();
    db.replicate("Emp1.dept.org.name", Strategy::InPlace)
        .unwrap();
    let r = ReplicatedPathIndex::build(&mut db, "Emp1.dept.org.name").unwrap();
    let g = GemstonePathIndex::build(&mut db, "Emp1.dept.org.name").unwrap();
    let v = Value::Str("org0".into());

    db.flush_all().unwrap();
    db.reset_io();
    r.lookup(&mut db, &v).unwrap();
    let io_r = db.io_profile().pages_read();

    db.flush_all().unwrap();
    db.reset_io();
    g.lookup(&mut db, &v).unwrap();
    let io_g = db.io_profile().pages_read();

    assert!(
        io_g > io_r,
        "gemstone ({io_g} reads) should cost more than the replicated index ({io_r} reads)"
    );
}
