//! # fieldrep-pathindex
//!
//! Path-index implementations for the §3.3.4 / §7.2 comparison:
//!
//! * [`ReplicatedPathIndex`] — the paper's proposal: replicate the path,
//!   then `build btree on Emp1.dept.org.name` over the replicated values
//!   stored in the source objects. An associative lookup traverses **one**
//!   B⁺-tree and maps values directly to source objects.
//! * [`GemstonePathIndex`] — the \[Maie86a\] design the paper compares
//!   against: the inverted path is kept as a chain of *index components*,
//!   each a B⁺-tree. A lookup on an n-hop path traverses **n + 1**
//!   B⁺-trees (for `Emp1.dept.org.name`: values→ORG, ORG→DEPT,
//!   DEPT→EMP), roughly doubling I/O per level but needing no replicated
//!   data. Its advantage (noted in §7.2) is associative access to the
//!   links themselves, which we expose as
//!   [`GemstonePathIndex::component_lookup`].

use fieldrep_btree::BTreeIndex;
use fieldrep_catalog::IndexKind;
use fieldrep_core::{value_key, Database, DbError};
use fieldrep_model::Value;
use fieldrep_storage::Oid;

/// Result alias.
pub type Result<T> = std::result::Result<T, DbError>;

/// The paper's replicated-value path index: a thin wrapper that creates
/// (and queries) a B⁺-tree over in-place replicated values.
pub struct ReplicatedPathIndex {
    tree: BTreeIndex,
    /// The dotted path this index serves.
    pub path: String,
}

impl ReplicatedPathIndex {
    /// Build over an already-replicated in-place path (see
    /// `Database::replicate`).
    pub fn build(db: &mut Database, dotted_path: &str) -> Result<ReplicatedPathIndex> {
        let idx = db.create_index(dotted_path, IndexKind::Unclustered)?;
        let file = db.catalog().index(idx).file;
        Ok(ReplicatedPathIndex {
            tree: BTreeIndex::open(file),
            path: dotted_path.to_string(),
        })
    }

    /// Source objects whose path value equals `v` — one B⁺-tree
    /// traversal.
    pub fn lookup(&self, db: &mut Database, v: &Value) -> Result<Vec<Oid>> {
        Ok(self.tree.lookup(db.sm(), &value_key(v))?)
    }

    /// Source objects whose path value lies in `[lo, hi]`.
    pub fn range(&self, db: &mut Database, lo: &Value, hi: &Value) -> Result<Vec<Oid>> {
        Ok(self
            .tree
            .range(db.sm(), &value_key(lo), &value_key(hi))?
            .into_iter()
            .map(|(_, o)| o)
            .collect())
    }
}

/// A Gemstone-style multi-component path index \[Maie86a\].
///
/// `components[0]` maps terminal field values to terminal-object OIDs;
/// `components[i]` (i ≥ 1) maps an object OID at distance `i − 1` from
/// the terminal to the OIDs of the objects referencing it along the
/// path. Lookups chain through all components.
pub struct GemstonePathIndex {
    /// Ref-field hops of the indexed path.
    hops: Vec<usize>,
    terminal_field: usize,
    components: Vec<BTreeIndex>,
    /// The dotted path this index serves.
    pub path: String,
}

impl GemstonePathIndex {
    /// Build the component trees from the current database state.
    ///
    /// Unlike [`ReplicatedPathIndex`], no replication path is required:
    /// this is the alternative that *avoids* storing replicated values.
    pub fn build(db: &mut Database, dotted_path: &str) -> Result<GemstonePathIndex> {
        let resolved = db.catalog().resolve_path_str(dotted_path)?;
        if resolved.hops.is_empty() {
            return Err(DbError::Unsupported(
                "a path index needs at least one reference hop".into(),
            ));
        }
        let terminal_field = resolved.terminal_fields[0];
        let set = db.catalog().set(resolved.set).clone();

        // Walk every source chain once, collecting component entries.
        let n = resolved.hops.len();
        // entries[0]: (terminal value key, terminal oid)
        // entries[i≥1]: (target oid key, member oid)
        let mut entries: Vec<Vec<(Vec<u8>, Oid)>> = vec![Vec::new(); n + 1];
        let sources = db.scan_set(&set.name)?;
        for src in sources {
            let mut chain = vec![src];
            let mut cur = src;
            let mut complete = true;
            for &hop in &resolved.hops {
                let obj = db.get(cur)?;
                match &obj.values[hop] {
                    Value::Ref(o) if !o.is_null() => {
                        chain.push(*o);
                        cur = *o;
                    }
                    _ => {
                        complete = false;
                        break;
                    }
                }
            }
            if !complete {
                continue;
            }
            let terminal = *chain.last().unwrap();
            let tobj = db.get(terminal)?;
            entries[0].push((value_key(&tobj.values[terminal_field]), terminal));
            // Component i ≥ 1 inverts hop n−i.
            for i in 1..=n {
                let target = chain[n - i + 1];
                let member = chain[n - i];
                entries[i].push((target.to_bytes().to_vec(), member));
            }
        }

        let mut components = Vec::with_capacity(n + 1);
        for mut es in entries {
            es.sort();
            es.dedup();
            components.push(BTreeIndex::bulk_load(db.sm(), &es, 1.0)?);
        }
        Ok(GemstonePathIndex {
            hops: resolved.hops,
            terminal_field,
            components,
            path: dotted_path.to_string(),
        })
    }

    /// Number of B⁺-trees a lookup traverses (`hops + 1`).
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// Source objects whose path value equals `v` — traverses every
    /// component tree (the cost the paper contrasts with its own design).
    pub fn lookup(&self, db: &mut Database, v: &Value) -> Result<Vec<Oid>> {
        let mut frontier: Vec<Oid> = self.components[0].lookup(db.sm(), &value_key(v))?;
        for comp in &self.components[1..] {
            let mut next = Vec::new();
            for oid in &frontier {
                next.extend(comp.lookup(db.sm(), &oid.to_bytes())?);
            }
            next.sort_unstable();
            next.dedup();
            frontier = next;
        }
        Ok(frontier)
    }

    /// The §7.2 advantage of the Gemstone design: associative access to a
    /// single component, e.g. "which DEPT objects (with OIDs in `[lo,
    /// hi]`) are referenced along the path" — without touching the data
    /// sets. `component` 0 is the value component; `i ≥ 1` inverts hop
    /// `hops − i`.
    pub fn component_lookup(
        &self,
        db: &mut Database,
        component: usize,
        lo: &[u8],
        hi: &[u8],
    ) -> Result<Vec<(Vec<u8>, Oid)>> {
        Ok(self.components[component].range(db.sm(), lo, hi)?)
    }

    /// Incremental maintenance: re-index one source object after its
    /// chain changed. The Gemstone design must touch up to `n + 1` trees;
    /// implemented as delete-old + insert-new per changed component
    /// entry.
    pub fn reindex_source(
        &self,
        db: &mut Database,
        old_chain: &[Option<Oid>],
        old_terminal_value: Option<&Value>,
        new_chain: &[Option<Oid>],
        new_terminal_value: Option<&Value>,
    ) -> Result<()> {
        let n = self.hops.len();
        let entry = |chain: &[Option<Oid>], i: usize| -> Option<(Vec<u8>, Oid)> {
            let target = chain.get(n - i + 1).copied().flatten()?;
            let member = chain.get(n - i).copied().flatten()?;
            Some((target.to_bytes().to_vec(), member))
        };
        for i in 1..=n {
            let old = entry(old_chain, i);
            let new = entry(new_chain, i);
            if old == new {
                continue;
            }
            if let Some((k, m)) = old {
                self.components[i].delete(db.sm(), &k, m)?;
            }
            if let Some((k, m)) = new {
                // Shared entries may already exist (another source keeps
                // the same link pair); tolerate duplicates.
                let _ = self.components[i].insert(db.sm(), &k, m);
            }
        }
        // Terminal value component.
        let old_t = old_chain.last().copied().flatten();
        let new_t = new_chain.last().copied().flatten();
        if old_t != new_t || old_terminal_value.map(value_key) != new_terminal_value.map(value_key)
        {
            if let (Some(t), Some(v)) = (old_t, old_terminal_value) {
                self.components[0].delete(db.sm(), &value_key(v), t)?;
            }
            if let (Some(t), Some(v)) = (new_t, new_terminal_value) {
                let _ = self.components[0].insert(db.sm(), &value_key(v), t);
            }
        }
        Ok(())
    }

    /// Field index of the terminal value within the terminal type.
    pub fn terminal_field(&self) -> usize {
        self.terminal_field
    }
}
