//! # fieldrep-model
//!
//! The EXTRA-subset data model assumed by the paper (§2): type
//! definitions with scalar and *reference attributes*, runtime values,
//! the binary object encoding (including the hidden annotations that
//! field replication attaches to objects), and reference-path syntax.
//!
//! This crate is pure — it performs no I/O. Types here are consumed by
//! the catalog (schema resolution), the replication engine (annotation
//! maintenance) and the query processor (projection/selection).

pub mod error;
pub mod object;
pub mod path;
pub mod types;
pub mod value;

pub use error::ModelError;
pub use object::{Annotation, Object};
pub use path::PathExpr;
pub use types::{FieldDef, FieldType, TypeDef, TypeId};
pub use value::Value;
