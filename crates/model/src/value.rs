//! Runtime values and their self-describing binary encoding.

use crate::error::ModelError;
use crate::types::FieldType;
use fieldrep_storage::Oid;
use std::fmt;

/// A runtime value of one field.
#[derive(Clone, PartialEq, Debug)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// String.
    Str(String),
    /// Reference: an OID (possibly [`Oid::NULL`] for an unset reference).
    Ref(Oid),
    /// The value of a `Pad` field (contents are immaterial).
    Unit,
}

impl Value {
    /// Does this value inhabit `ftype`?
    pub fn matches(&self, ftype: &FieldType) -> bool {
        matches!(
            (self, ftype),
            (Value::Int(_), FieldType::Int)
                | (Value::Float(_), FieldType::Float)
                | (Value::Str(_), FieldType::Str)
                | (Value::Ref(_), FieldType::Ref(_))
                | (Value::Unit, FieldType::Pad(_))
        )
    }

    /// The OID inside a `Ref`, or an error.
    pub fn as_ref_oid(&self) -> Result<Oid, ModelError> {
        match self {
            Value::Ref(o) => Ok(*o),
            other => Err(ModelError::TypeMismatch {
                expected: "ref".into(),
                got: other.kind_name().into(),
            }),
        }
    }

    /// The integer inside an `Int`, or an error.
    pub fn as_int(&self) -> Result<i64, ModelError> {
        match self {
            Value::Int(v) => Ok(*v),
            other => Err(ModelError::TypeMismatch {
                expected: "int".into(),
                got: other.kind_name().into(),
            }),
        }
    }

    /// The string inside a `Str`, or an error.
    pub fn as_str(&self) -> Result<&str, ModelError> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(ModelError::TypeMismatch {
                expected: "str".into(),
                got: other.kind_name().into(),
            }),
        }
    }

    /// Human-readable kind name.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
            Value::Ref(_) => "ref",
            Value::Unit => "unit",
        }
    }

    /// Append the self-describing encoding of this value to `out`.
    ///
    /// Self-describing values are used where no schema is in scope: hidden
    /// replica fields and the shared replica objects of separate
    /// replication.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Value::Int(v) => {
                out.push(1);
                out.extend_from_slice(&v.to_le_bytes());
            }
            Value::Float(v) => {
                out.push(2);
                out.extend_from_slice(&v.to_le_bytes());
            }
            Value::Str(s) => {
                out.push(3);
                let b = s.as_bytes();
                assert!(b.len() <= u16::MAX as usize, "string too long");
                out.extend_from_slice(&(b.len() as u16).to_le_bytes());
                out.extend_from_slice(b);
            }
            Value::Ref(o) => {
                out.push(4);
                out.extend_from_slice(&o.to_bytes());
            }
            Value::Unit => out.push(5),
        }
    }

    /// Self-describing encoding as a fresh vector.
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::new();
        self.encode_into(&mut v);
        v
    }

    /// Decode one self-describing value; returns it and the bytes consumed.
    pub fn decode(b: &[u8]) -> Result<(Value, usize), ModelError> {
        let tag = *b.first().ok_or(ModelError::Truncated)?;
        match tag {
            1 => {
                let v = i64::from_le_bytes(
                    b.get(1..9)
                        .ok_or(ModelError::Truncated)?
                        .try_into()
                        .unwrap(),
                );
                Ok((Value::Int(v), 9))
            }
            2 => {
                let v = f64::from_le_bytes(
                    b.get(1..9)
                        .ok_or(ModelError::Truncated)?
                        .try_into()
                        .unwrap(),
                );
                Ok((Value::Float(v), 9))
            }
            3 => {
                let len = u16::from_le_bytes(
                    b.get(1..3)
                        .ok_or(ModelError::Truncated)?
                        .try_into()
                        .unwrap(),
                ) as usize;
                let bytes = b.get(3..3 + len).ok_or(ModelError::Truncated)?;
                let s = std::str::from_utf8(bytes)
                    .map_err(|_| ModelError::BadEncoding("non-UTF-8 string".into()))?;
                Ok((Value::Str(s.to_string()), 3 + len))
            }
            4 => {
                let o = Oid::from_bytes(b.get(1..9).ok_or(ModelError::Truncated)?);
                Ok((Value::Ref(o), 9))
            }
            5 => Ok((Value::Unit, 1)),
            other => Err(ModelError::BadEncoding(format!("bad value tag {other}"))),
        }
    }

    /// Encode a list of values (used for replica objects in separate
    /// replication, which hold one value per replicated field).
    pub fn encode_list(values: &[Value]) -> Vec<u8> {
        let mut out = Vec::new();
        assert!(values.len() <= u8::MAX as usize);
        out.push(values.len() as u8);
        for v in values {
            v.encode_into(&mut out);
        }
        out
    }

    /// Decode a list produced by [`Value::encode_list`].
    pub fn decode_list(b: &[u8]) -> Result<Vec<Value>, ModelError> {
        let n = *b.first().ok_or(ModelError::Truncated)? as usize;
        let mut off = 1;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let (v, used) = Value::decode(&b[off..])?;
            off += used;
            out.push(v);
        }
        Ok(out)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Ref(o) => write!(f, "@{o}"),
            Value::Unit => write!(f, "()"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fieldrep_storage::FileId;

    #[test]
    fn roundtrip_all_kinds() {
        let vals = vec![
            Value::Int(-42),
            Value::Float(2.75),
            Value::Str("héllo".into()),
            Value::Ref(Oid::new(FileId(2), 9, 1)),
            Value::Ref(Oid::NULL),
            Value::Unit,
        ];
        for v in &vals {
            let enc = v.encode();
            let (back, used) = Value::decode(&enc).unwrap();
            assert_eq!(&back, v);
            assert_eq!(used, enc.len());
        }
        let list = Value::encode_list(&vals);
        assert_eq!(Value::decode_list(&list).unwrap(), vals);
    }

    #[test]
    fn type_checking() {
        assert!(Value::Int(1).matches(&FieldType::Int));
        assert!(!Value::Int(1).matches(&FieldType::Str));
        assert!(Value::Ref(Oid::NULL).matches(&FieldType::Ref("X".into())));
        assert!(Value::Unit.matches(&FieldType::Pad(10)));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(5).as_int().unwrap(), 5);
        assert!(Value::Str("x".into()).as_int().is_err());
        assert_eq!(Value::Str("x".into()).as_str().unwrap(), "x");
        assert!(Value::Int(1).as_ref_oid().is_err());
    }

    #[test]
    fn truncated_decode_fails() {
        let enc = Value::Str("hello".into()).encode();
        assert!(Value::decode(&enc[..3]).is_err());
        assert!(Value::decode(&[]).is_err());
        assert!(Value::decode(&[99]).is_err());
    }
}
