//! Object representation and on-disk encoding.
//!
//! An [`Object`] is the in-memory form of one stored object: its base
//! field values (laid out by its [`TypeDef`]) plus *annotations* — the
//! hidden, engine-managed extras that field replication attaches to
//! objects:
//!
//! * [`Annotation::ReplicaValue`] — an in-place hidden field holding a
//!   replicated value ("objects in Emp1 can be thought of as having a
//!   'hidden' field in which a replicated value for dept.name is stored",
//!   §3.1). The paper handles the structural change through subtyping
//!   (§4); our encoding appends a trailer section, which is the same idea
//!   at the byte level.
//! * [`Annotation::LinkRef`] / [`Annotation::InlineLink`] — the
//!   `(link-OID, link-ID)` pairs stored in each object that lies on a
//!   replication path (§4.1.3). `InlineLink` is the §4.3.1 optimization:
//!   when a link object would hold only a few OIDs it is eliminated and
//!   the OIDs are stored directly in the referencing object.
//! * [`Annotation::ReplicaRef`] — separate replication's hidden reference
//!   from a source object to its shared replica object in `S'` (§5).
//! * [`Annotation::ReplicaAnchor`] — separate replication's bookkeeping on
//!   the *target* object: the OID of its replica object plus a reference
//!   count ("O1 contains R1's OID, a reference count for R1, and a tag…",
//!   §5.2).
//!
//! On-disk layout of an object payload:
//!
//! ```text
//! [base fields, schema order] [annotation count u8] [annotations…]
//! ```

use crate::error::ModelError;
use crate::types::{FieldType, TypeDef, TypeId};
use crate::value::Value;
use fieldrep_storage::Oid;

/// Hidden, engine-managed data carried by an object (see module docs).
#[derive(Clone, PartialEq, Debug)]
pub enum Annotation {
    /// In-place replication: hidden replicated values for path `path`
    /// (one value per replicated terminal field, in catalog field order —
    /// a plain field path has one, an `.all` path has several).
    ReplicaValue {
        /// Replication-path id (catalog-assigned).
        path: u16,
        /// The replicated values.
        values: Vec<Value>,
    },
    /// This object lies on link `link` of some replication path(s); its
    /// link object is at `oid`.
    LinkRef {
        /// Link id (catalog-assigned, shared across paths with a common
        /// prefix, §4.1.4).
        link: u8,
        /// OID of the link object.
        oid: Oid,
    },
    /// §4.3.1 optimization: the link object was eliminated and its OIDs
    /// are stored inline.
    InlineLink {
        /// Link id.
        link: u8,
        /// Referencing objects' OIDs, kept sorted.
        oids: Vec<Oid>,
    },
    /// Separate replication: this source object reads the values for path
    /// group `group` from the shared replica object at `oid`.
    ReplicaRef {
        /// Path-group id (one `S'` file per source set and target set pair).
        group: u16,
        /// OID of the shared replica object in `S'`.
        oid: Oid,
    },
    /// Separate replication: this *target* object's values are replicated
    /// into the replica object at `oid`, currently shared by `refcount`
    /// source objects.
    ReplicaAnchor {
        /// Path-group id.
        group: u16,
        /// OID of the replica object in `S'`.
        oid: Oid,
        /// Number of source objects sharing it.
        refcount: u32,
    },
    /// §4.3.3 collapsed inverted paths: this object is an *intermediate*
    /// of a collapsed path. Its own link object no longer exists (that is
    /// the point of collapsing); the marker lets the engine detect that
    /// updates to this object's reference attribute must move tagged
    /// entries between the terminal objects' collapsed link stores.
    CollapsedVia {
        /// The collapsed link's id.
        link: u8,
    },
}

impl Annotation {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Annotation::ReplicaValue { path, values } => {
                out.push(1);
                out.extend_from_slice(&path.to_le_bytes());
                out.extend_from_slice(&Value::encode_list(values));
            }
            Annotation::LinkRef { link, oid } => {
                out.push(2);
                out.push(*link);
                out.extend_from_slice(&oid.to_bytes());
            }
            Annotation::InlineLink { link, oids } => {
                out.push(3);
                out.push(*link);
                assert!(oids.len() <= u16::MAX as usize);
                out.extend_from_slice(&(oids.len() as u16).to_le_bytes());
                for o in oids {
                    out.extend_from_slice(&o.to_bytes());
                }
            }
            Annotation::ReplicaRef { group, oid } => {
                out.push(4);
                out.extend_from_slice(&group.to_le_bytes());
                out.extend_from_slice(&oid.to_bytes());
            }
            Annotation::ReplicaAnchor {
                group,
                oid,
                refcount,
            } => {
                out.push(5);
                out.extend_from_slice(&group.to_le_bytes());
                out.extend_from_slice(&oid.to_bytes());
                out.extend_from_slice(&refcount.to_le_bytes());
            }
            Annotation::CollapsedVia { link } => {
                out.push(6);
                out.push(*link);
            }
        }
    }

    fn decode(b: &[u8]) -> Result<(Annotation, usize), ModelError> {
        let tag = *b.first().ok_or(ModelError::Truncated)?;
        match tag {
            1 => {
                let path = u16::from_le_bytes(
                    b.get(1..3)
                        .ok_or(ModelError::Truncated)?
                        .try_into()
                        .unwrap(),
                );
                let body = b.get(3..).ok_or(ModelError::Truncated)?;
                let values = Value::decode_list(body)?;
                let used: usize = 1 + values.iter().map(|v| v.encode().len()).sum::<usize>();
                Ok((Annotation::ReplicaValue { path, values }, 3 + used))
            }
            2 => {
                let link = *b.get(1).ok_or(ModelError::Truncated)?;
                let oid = Oid::from_bytes(b.get(2..10).ok_or(ModelError::Truncated)?);
                Ok((Annotation::LinkRef { link, oid }, 10))
            }
            3 => {
                let link = *b.get(1).ok_or(ModelError::Truncated)?;
                let n = u16::from_le_bytes(
                    b.get(2..4)
                        .ok_or(ModelError::Truncated)?
                        .try_into()
                        .unwrap(),
                ) as usize;
                let mut oids = Vec::with_capacity(n);
                let mut off = 4;
                for _ in 0..n {
                    oids.push(Oid::from_bytes(
                        b.get(off..off + 8).ok_or(ModelError::Truncated)?,
                    ));
                    off += 8;
                }
                Ok((Annotation::InlineLink { link, oids }, off))
            }
            4 => {
                let group = u16::from_le_bytes(
                    b.get(1..3)
                        .ok_or(ModelError::Truncated)?
                        .try_into()
                        .unwrap(),
                );
                let oid = Oid::from_bytes(b.get(3..11).ok_or(ModelError::Truncated)?);
                Ok((Annotation::ReplicaRef { group, oid }, 11))
            }
            5 => {
                let group = u16::from_le_bytes(
                    b.get(1..3)
                        .ok_or(ModelError::Truncated)?
                        .try_into()
                        .unwrap(),
                );
                let oid = Oid::from_bytes(b.get(3..11).ok_or(ModelError::Truncated)?);
                let refcount = u32::from_le_bytes(
                    b.get(11..15)
                        .ok_or(ModelError::Truncated)?
                        .try_into()
                        .unwrap(),
                );
                Ok((
                    Annotation::ReplicaAnchor {
                        group,
                        oid,
                        refcount,
                    },
                    15,
                ))
            }
            6 => {
                let link = *b.get(1).ok_or(ModelError::Truncated)?;
                Ok((Annotation::CollapsedVia { link }, 2))
            }
            other => Err(ModelError::BadEncoding(format!(
                "bad annotation tag {other}"
            ))),
        }
    }
}

/// An object: typed base values plus hidden annotations.
#[derive(Clone, PartialEq, Debug)]
pub struct Object {
    /// The object's type (its record-header type tag).
    pub type_id: TypeId,
    /// Base field values, in schema order.
    pub values: Vec<Value>,
    /// Hidden engine-managed annotations.
    pub annotations: Vec<Annotation>,
}

impl Object {
    /// Construct an object, type-checking each value against `def`.
    pub fn new(type_id: TypeId, def: &TypeDef, values: Vec<Value>) -> Result<Object, ModelError> {
        if values.len() != def.fields.len() {
            return Err(ModelError::BadEncoding(format!(
                "type {} has {} fields, got {} values",
                def.name,
                def.fields.len(),
                values.len()
            )));
        }
        for (v, f) in values.iter().zip(&def.fields) {
            if !v.matches(&f.ftype) {
                return Err(ModelError::TypeMismatch {
                    expected: format!("{:?} for field {}", f.ftype, f.name),
                    got: v.kind_name().into(),
                });
            }
        }
        Ok(Object {
            type_id,
            values,
            annotations: Vec::new(),
        })
    }

    /// Get a base field value by name.
    pub fn get<'a>(&'a self, def: &TypeDef, name: &str) -> Result<&'a Value, ModelError> {
        let idx = def
            .field_index(name)
            .ok_or_else(|| ModelError::NoSuchField(name.into()))?;
        Ok(&self.values[idx])
    }

    /// Set a base field value by name (type-checked).
    pub fn set(&mut self, def: &TypeDef, name: &str, value: Value) -> Result<(), ModelError> {
        let idx = def
            .field_index(name)
            .ok_or_else(|| ModelError::NoSuchField(name.into()))?;
        if !value.matches(&def.fields[idx].ftype) {
            return Err(ModelError::TypeMismatch {
                expected: format!("{:?}", def.fields[idx].ftype),
                got: value.kind_name().into(),
            });
        }
        self.values[idx] = value;
        Ok(())
    }

    /// The hidden replicated values for replication path `path`, if any.
    pub fn replica_values(&self, path: u16) -> Option<&[Value]> {
        self.annotations.iter().find_map(|a| match a {
            Annotation::ReplicaValue { path: p, values } if *p == path => Some(values.as_slice()),
            _ => None,
        })
    }

    /// Set (insert or overwrite) the hidden replicated values for `path`.
    pub fn set_replica_values(&mut self, path: u16, values: Vec<Value>) {
        for a in &mut self.annotations {
            if let Annotation::ReplicaValue { path: p, values: v } = a {
                if *p == path {
                    *v = values;
                    return;
                }
            }
        }
        self.annotations
            .push(Annotation::ReplicaValue { path, values });
    }

    /// Remove the hidden replicated value for `path` (if present).
    pub fn clear_replica_value(&mut self, path: u16) {
        self.annotations
            .retain(|a| !matches!(a, Annotation::ReplicaValue { path: p, .. } if *p == path));
    }

    /// Encode to the on-disk payload format.
    pub fn encode(&self, def: &TypeDef) -> Vec<u8> {
        let mut out = Vec::with_capacity(def.min_encoded_size() + 16);
        for (v, f) in self.values.iter().zip(&def.fields) {
            match (v, &f.ftype) {
                (Value::Int(x), FieldType::Int) => out.extend_from_slice(&x.to_le_bytes()),
                (Value::Float(x), FieldType::Float) => out.extend_from_slice(&x.to_le_bytes()),
                (Value::Str(s), FieldType::Str) => {
                    let b = s.as_bytes();
                    assert!(b.len() <= u16::MAX as usize);
                    out.extend_from_slice(&(b.len() as u16).to_le_bytes());
                    out.extend_from_slice(b);
                }
                (Value::Ref(o), FieldType::Ref(_)) => out.extend_from_slice(&o.to_bytes()),
                (Value::Unit, FieldType::Pad(n)) => {
                    out.extend(std::iter::repeat_n(0u8, *n as usize));
                }
                (v, t) => panic!("value {v:?} does not match field type {t:?}"),
            }
        }
        assert!(self.annotations.len() <= u8::MAX as usize);
        out.push(self.annotations.len() as u8);
        for a in &self.annotations {
            a.encode_into(&mut out);
        }
        out
    }

    /// Decode an object payload (inverse of [`Object::encode`]).
    pub fn decode(type_id: TypeId, def: &TypeDef, b: &[u8]) -> Result<Object, ModelError> {
        let mut off = 0;
        let mut values = Vec::with_capacity(def.fields.len());
        for f in &def.fields {
            match &f.ftype {
                FieldType::Int => {
                    let v = i64::from_le_bytes(
                        b.get(off..off + 8)
                            .ok_or(ModelError::Truncated)?
                            .try_into()
                            .unwrap(),
                    );
                    off += 8;
                    values.push(Value::Int(v));
                }
                FieldType::Float => {
                    let v = f64::from_le_bytes(
                        b.get(off..off + 8)
                            .ok_or(ModelError::Truncated)?
                            .try_into()
                            .unwrap(),
                    );
                    off += 8;
                    values.push(Value::Float(v));
                }
                FieldType::Str => {
                    let len = u16::from_le_bytes(
                        b.get(off..off + 2)
                            .ok_or(ModelError::Truncated)?
                            .try_into()
                            .unwrap(),
                    ) as usize;
                    off += 2;
                    let bytes = b.get(off..off + len).ok_or(ModelError::Truncated)?;
                    off += len;
                    values.push(Value::Str(
                        std::str::from_utf8(bytes)
                            .map_err(|_| ModelError::BadEncoding("non-UTF-8 string".into()))?
                            .to_string(),
                    ));
                }
                FieldType::Ref(_) => {
                    let o = Oid::from_bytes(b.get(off..off + 8).ok_or(ModelError::Truncated)?);
                    off += 8;
                    values.push(Value::Ref(o));
                }
                FieldType::Pad(n) => {
                    off += *n as usize;
                    if off > b.len() {
                        return Err(ModelError::Truncated);
                    }
                    values.push(Value::Unit);
                }
            }
        }
        let n_ann = *b.get(off).ok_or(ModelError::Truncated)? as usize;
        off += 1;
        let mut annotations = Vec::with_capacity(n_ann);
        for _ in 0..n_ann {
            let (a, used) = Annotation::decode(&b[off..])?;
            off += used;
            annotations.push(a);
        }
        Ok(Object {
            type_id,
            values,
            annotations,
        })
    }

    /// Size of the encoded payload.
    pub fn encoded_len(&self, def: &TypeDef) -> usize {
        self.encode(def).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fieldrep_storage::FileId;

    fn emp_type() -> TypeDef {
        TypeDef::new(
            "EMP",
            vec![
                ("name", FieldType::Str),
                ("age", FieldType::Int),
                ("salary", FieldType::Int),
                ("dept", FieldType::Ref("DEPT".into())),
                ("pad", FieldType::Pad(10)),
            ],
        )
    }

    fn sample() -> (TypeDef, Object) {
        let def = emp_type();
        let obj = Object::new(
            TypeId(3),
            &def,
            vec![
                Value::Str("Alice".into()),
                Value::Int(34),
                Value::Int(120_000),
                Value::Ref(Oid::new(FileId(1), 2, 3)),
                Value::Unit,
            ],
        )
        .unwrap();
        (def, obj)
    }

    #[test]
    fn roundtrip_base() {
        let (def, obj) = sample();
        let enc = obj.encode(&def);
        let back = Object::decode(TypeId(3), &def, &enc).unwrap();
        assert_eq!(back, obj);
        // Encoded size: 2+5 (str) + 8 + 8 + 8 + 10 (pad) + 1 (ann count).
        assert_eq!(enc.len(), 7 + 8 + 8 + 8 + 10 + 1);
    }

    #[test]
    fn roundtrip_with_annotations() {
        let (def, mut obj) = sample();
        obj.set_replica_values(4, vec![Value::Str("Sales".into()), Value::Int(7)]);
        obj.annotations.push(Annotation::LinkRef {
            link: 1,
            oid: Oid::new(FileId(5), 6, 7),
        });
        obj.annotations.push(Annotation::InlineLink {
            link: 2,
            oids: vec![Oid::new(FileId(1), 1, 1), Oid::new(FileId(1), 2, 2)],
        });
        obj.annotations.push(Annotation::ReplicaRef {
            group: 9,
            oid: Oid::new(FileId(8), 0, 0),
        });
        obj.annotations.push(Annotation::ReplicaAnchor {
            group: 9,
            oid: Oid::new(FileId(8), 0, 1),
            refcount: 17,
        });
        obj.annotations.push(Annotation::CollapsedVia { link: 5 });
        let enc = obj.encode(&def);
        let back = Object::decode(TypeId(3), &def, &enc).unwrap();
        assert_eq!(back, obj);
        assert_eq!(
            back.replica_values(4).unwrap(),
            &[Value::Str("Sales".into()), Value::Int(7)]
        );
        assert_eq!(back.replica_values(5), None);
    }

    #[test]
    fn replica_value_set_overwrite_clear() {
        let (_, mut obj) = sample();
        obj.set_replica_values(1, vec![Value::Int(10)]);
        obj.set_replica_values(1, vec![Value::Int(20)]);
        assert_eq!(obj.replica_values(1).unwrap(), &[Value::Int(20)]);
        assert_eq!(
            obj.annotations
                .iter()
                .filter(|a| matches!(a, Annotation::ReplicaValue { .. }))
                .count(),
            1
        );
        obj.clear_replica_value(1);
        assert_eq!(obj.replica_values(1), None);
    }

    #[test]
    fn new_type_checks() {
        let def = emp_type();
        // Wrong arity.
        assert!(Object::new(TypeId(3), &def, vec![Value::Int(1)]).is_err());
        // Wrong type.
        let r = Object::new(
            TypeId(3),
            &def,
            vec![
                Value::Int(1), // should be Str
                Value::Int(2),
                Value::Int(3),
                Value::Ref(Oid::NULL),
                Value::Unit,
            ],
        );
        assert!(matches!(r, Err(ModelError::TypeMismatch { .. })));
    }

    #[test]
    fn get_set() {
        let (def, mut obj) = sample();
        assert_eq!(obj.get(&def, "salary").unwrap(), &Value::Int(120_000));
        obj.set(&def, "salary", Value::Int(1)).unwrap();
        assert_eq!(obj.get(&def, "salary").unwrap(), &Value::Int(1));
        assert!(obj.set(&def, "salary", Value::Str("no".into())).is_err());
        assert!(obj.get(&def, "bogus").is_err());
        assert!(matches!(
            obj.get(&def, "bogus"),
            Err(ModelError::NoSuchField(_))
        ));
    }

    #[test]
    fn decode_truncated() {
        let (def, obj) = sample();
        let enc = obj.encode(&def);
        for cut in [0, 5, 10, enc.len() - 1] {
            assert!(Object::decode(TypeId(3), &def, &enc[..cut]).is_err());
        }
    }

    #[test]
    fn pad_sizes_objects_to_target() {
        // The benchmark harness relies on Pad to hit the paper's r = 100.
        let def = TypeDef::new(
            "RTYPE",
            vec![
                ("sref", FieldType::Ref("STYPE".into())),
                ("field_r", FieldType::Int),
                ("pad", FieldType::Pad(83)),
            ],
        );
        let obj = Object::new(
            TypeId(1),
            &def,
            vec![Value::Ref(Oid::NULL), Value::Int(0), Value::Unit],
        )
        .unwrap();
        assert_eq!(obj.encoded_len(&def), 100);
    }
}
