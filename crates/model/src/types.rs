//! Type definitions — the `define type` part of the EXTRA schema language
//! (§2.1, Figure 1 of the paper).

use std::fmt;

/// Identifier assigned to a type by the catalog; doubles as the 2-byte
/// type tag stored in every object's record header (§2.2).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TypeId(pub u16);

impl fmt::Display for TypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// The type of a single field.
#[derive(Clone, PartialEq, Debug)]
pub enum FieldType {
    /// 64-bit signed integer (`int`).
    Int,
    /// 64-bit float.
    Float,
    /// Variable-length string (`char[]`).
    Str,
    /// Reference attribute (`ref T`): holds the OID of an object of the
    /// named type. This is the construct field replication is built on.
    Ref(String),
    /// Fixed-width opaque padding. Used by the benchmark harness to size
    /// objects to the paper's `r`/`s`/`t` byte counts ("various fields…"
    /// in the §6 schema).
    Pad(u16),
}

impl FieldType {
    /// True for `Ref(_)`.
    pub fn is_ref(&self) -> bool {
        matches!(self, FieldType::Ref(_))
    }

    /// Encoded size of a value of this type, if fixed.
    pub fn fixed_size(&self) -> Option<usize> {
        match self {
            FieldType::Int | FieldType::Float | FieldType::Ref(_) => Some(8),
            FieldType::Pad(n) => Some(*n as usize),
            FieldType::Str => None,
        }
    }
}

/// One named field in a type definition.
#[derive(Clone, PartialEq, Debug)]
pub struct FieldDef {
    /// Field name, unique within the type.
    pub name: String,
    /// Field type.
    pub ftype: FieldType,
}

/// A type definition: an ordered list of named fields.
#[derive(Clone, PartialEq, Debug)]
pub struct TypeDef {
    /// Type name, e.g. `"EMP"`.
    pub name: String,
    /// Ordered fields.
    pub fields: Vec<FieldDef>,
}

impl TypeDef {
    /// Build a type definition from `(name, type)` pairs.
    ///
    /// # Panics
    /// Panics on duplicate field names (a schema authoring error).
    pub fn new(name: impl Into<String>, fields: Vec<(impl Into<String>, FieldType)>) -> TypeDef {
        let fields: Vec<FieldDef> = fields
            .into_iter()
            .map(|(n, t)| FieldDef {
                name: n.into(),
                ftype: t,
            })
            .collect();
        for (i, f) in fields.iter().enumerate() {
            assert!(
                !fields[..i].iter().any(|g| g.name == f.name),
                "duplicate field name {:?}",
                f.name
            );
        }
        TypeDef {
            name: name.into(),
            fields,
        }
    }

    /// Index of the field called `name`.
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// The field called `name`.
    pub fn field(&self, name: &str) -> Option<&FieldDef> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Minimum encoded size of the base (non-annotation) part of an object
    /// of this type, counting strings as empty.
    pub fn min_encoded_size(&self) -> usize {
        self.fields
            .iter()
            .map(|f| f.ftype.fixed_size().unwrap_or(2))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_lookup() {
        let t = TypeDef::new(
            "EMP",
            vec![
                ("name", FieldType::Str),
                ("age", FieldType::Int),
                ("salary", FieldType::Int),
                ("dept", FieldType::Ref("DEPT".into())),
            ],
        );
        assert_eq!(t.field_index("salary"), Some(2));
        assert_eq!(t.field_index("nope"), None);
        assert!(t.field("dept").unwrap().ftype.is_ref());
    }

    #[test]
    #[should_panic(expected = "duplicate field")]
    fn duplicate_fields_rejected() {
        TypeDef::new("X", vec![("a", FieldType::Int), ("a", FieldType::Int)]);
    }

    #[test]
    fn sizes() {
        assert_eq!(FieldType::Int.fixed_size(), Some(8));
        assert_eq!(FieldType::Pad(72).fixed_size(), Some(72));
        assert_eq!(FieldType::Str.fixed_size(), None);
        let t = TypeDef::new(
            "S",
            vec![
                ("a", FieldType::Int),
                ("pad", FieldType::Pad(20)),
                ("s", FieldType::Str),
            ],
        );
        assert_eq!(t.min_encoded_size(), 8 + 20 + 2);
    }
}
