//! Errors raised by the data-model layer.

use std::fmt;

/// Errors from value/object encoding, decoding, and path parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A buffer ended before a complete value/object could be decoded.
    Truncated,
    /// Malformed bytes (bad tag, non-UTF-8 string, …).
    BadEncoding(String),
    /// A value does not match the field type it was assigned to.
    TypeMismatch {
        /// Expected kind.
        expected: String,
        /// Actual kind.
        got: String,
    },
    /// An unknown field name was referenced.
    NoSuchField(String),
    /// A reference path failed to parse.
    BadPath(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Truncated => write!(f, "truncated encoding"),
            ModelError::BadEncoding(m) => write!(f, "bad encoding: {m}"),
            ModelError::TypeMismatch { expected, got } => {
                write!(f, "type mismatch: expected {expected}, got {got}")
            }
            ModelError::NoSuchField(n) => write!(f, "no such field: {n}"),
            ModelError::BadPath(p) => write!(f, "bad reference path: {p}"),
        }
    }
}

impl std::error::Error for ModelError {}
