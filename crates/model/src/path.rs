//! Reference-path expressions.
//!
//! A path like `Emp1.dept.org.name` names a set (`Emp1`), a chain of
//! reference attributes (`dept`, `org`), and a terminal. This module does
//! the purely syntactic part — splitting and validating; the catalog
//! resolves segments against type definitions and decides whether the
//! terminal is a scalar field, `all` (full object replication, §3.3.1), or
//! a reference attribute (a collapse path, §3.3.3).

use crate::error::ModelError;

/// A syntactically parsed reference path: `set.seg1.seg2.…`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PathExpr {
    /// The named set the path starts from.
    pub set: String,
    /// The remaining dotted segments, in order. The last segment may be a
    /// field name, a reference attribute, or the keyword `all`.
    pub segments: Vec<String>,
}

fn valid_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().unwrap().is_ascii_alphabetic()
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

impl PathExpr {
    /// Parse a dotted path. At least one segment after the set is required.
    pub fn parse(s: &str) -> Result<PathExpr, ModelError> {
        let parts: Vec<&str> = s.split('.').collect();
        if parts.len() < 2 {
            return Err(ModelError::BadPath(format!(
                "{s:?}: need at least set.segment"
            )));
        }
        for p in &parts {
            if !valid_ident(p) {
                return Err(ModelError::BadPath(format!("{s:?}: bad segment {p:?}")));
            }
        }
        Ok(PathExpr {
            set: parts[0].to_string(),
            segments: parts[1..]
                .iter()
                .map(std::string::ToString::to_string)
                .collect(),
        })
    }

    /// True if the terminal segment is the keyword `all` (full object
    /// replication).
    pub fn is_all(&self) -> bool {
        self.segments.last().map(String::as_str) == Some("all")
    }

    /// Render back to dotted syntax.
    pub fn dotted(&self) -> String {
        let mut s = self.set.clone();
        for seg in &self.segments {
            s.push('.');
            s.push_str(seg);
        }
        s
    }
}

impl std::fmt::Display for PathExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.dotted())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple() {
        let p = PathExpr::parse("Emp1.dept.name").unwrap();
        assert_eq!(p.set, "Emp1");
        assert_eq!(p.segments, vec!["dept", "name"]);
        assert!(!p.is_all());
        assert_eq!(p.to_string(), "Emp1.dept.name");
    }

    #[test]
    fn parse_all() {
        let p = PathExpr::parse("Emp1.dept.all").unwrap();
        assert!(p.is_all());
    }

    #[test]
    fn parse_deep() {
        let p = PathExpr::parse("Emp1.dept.org.name").unwrap();
        assert_eq!(p.segments.len(), 3);
    }

    #[test]
    fn parse_errors() {
        assert!(PathExpr::parse("Emp1").is_err());
        assert!(PathExpr::parse("Emp1..name").is_err());
        assert!(PathExpr::parse("Emp1.9dept").is_err());
        assert!(PathExpr::parse("").is_err());
        assert!(PathExpr::parse("Emp1.dept name").is_err());
    }
}
