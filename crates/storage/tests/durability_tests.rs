//! End-to-end durability tests: checksum verification through the
//! buffer pool, and WAL-backed crash survival at the storage level.

use fieldrep_storage::{
    FileDisk, HeapFile, MemDisk, MemWalStore, StorageError, StorageManager, PAGE_SIZE,
};
use std::path::{Path, PathBuf};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fieldrep-dur-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Flip one byte of `page` in the raw on-disk file `f<N>.pages`.
fn corrupt_byte(dir: &Path, file: u64, page: u64, offset: u64) {
    let path = dir.join(format!("f{file}.pages"));
    let mut bytes = std::fs::read(&path).unwrap();
    let at = (page * PAGE_SIZE as u64 + offset) as usize;
    bytes[at] ^= 0xFF;
    std::fs::write(&path, bytes).unwrap();
}

#[test]
fn corrupt_page_surfaces_as_checksum_mismatch_through_the_pool() {
    let dir = temp_dir("crc");
    let oid;
    {
        let sm = StorageManager::new(Box::new(FileDisk::open(&dir).unwrap()), 8);
        let hf = HeapFile::create(&sm).unwrap();
        oid = hf.rec_insert(&sm, 7, b"precious payload").unwrap();
        sm.flush_all().unwrap();
    }
    // Flip a data byte behind the engine's back.
    corrupt_byte(&dir, 0, 0, 100);
    let sm = StorageManager::new(Box::new(FileDisk::open(&dir).unwrap()), 8);
    let hf = HeapFile::open(fieldrep_storage::FileId(0));
    let err = hf.read(&sm, oid).unwrap_err();
    assert!(
        matches!(err, StorageError::ChecksumMismatch(_)),
        "expected a clean checksum error, got: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_page_is_caught_on_the_batched_read_path() {
    let dir = temp_dir("crc-batch");
    let mut pids = Vec::new();
    {
        let sm = StorageManager::new(Box::new(FileDisk::open(&dir).unwrap()), 16);
        let hf = HeapFile::create(&sm).unwrap();
        // Fill several pages so a batched run exists.
        for i in 0..600u32 {
            hf.rec_insert(&sm, 1, &i.to_le_bytes().repeat(8)).unwrap();
        }
        let pages = sm.page_count(fieldrep_storage::FileId(0)).unwrap();
        assert!(pages >= 3, "need a multi-page run, got {pages}");
        for p in 0..pages {
            pids.push(fieldrep_storage::PageId::new(
                fieldrep_storage::FileId(0),
                p,
            ));
        }
        sm.flush_all().unwrap();
    }
    corrupt_byte(&dir, 0, 1, 2000); // second page of the run
    let sm = StorageManager::new(Box::new(FileDisk::open(&dir).unwrap()), 16);
    let err = match sm.get_pages_batch(&pids) {
        Ok(_) => panic!("batched read over a corrupt page must fail"),
        Err(e) => e,
    };
    assert!(
        matches!(err, StorageError::ChecksumMismatch(p) if p.page == 1),
        "batched read must name the corrupt page, got: {err}"
    );
    // The pool stays usable: the undamaged first page still reads.
    sm.pool().fetch(pids[0]).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_then_reopen_needs_no_replay() {
    let store = MemWalStore::new();
    let disk_probe;
    {
        let sm = StorageManager::new_with_wal(Box::new(MemDisk::new()), Box::new(store.clone()), 8)
            .unwrap();
        let hf = HeapFile::create(&sm).unwrap();
        hf.rec_insert(&sm, 1, b"checkpointed").unwrap();
        sm.checkpoint().unwrap();
        assert_eq!(sm.wal_stats().last_lsn, sm.wal_stats().durable_lsn);
        disk_probe = sm.wal_stats().last_lsn;
    }
    assert!(disk_probe >= 1);
    // The log was truncated at checkpoint: a fresh open replays nothing.
    let sm2 =
        StorageManager::new_with_wal(Box::new(MemDisk::new()), Box::new(store.clone()), 8).unwrap();
    let r = sm2.recovery_report();
    assert_eq!(r.replayed_pages, 0, "clean shutdown leaves nothing to redo");
    // Only the checkpoint marker survives in the scanned prefix.
    assert!(r.scanned_records <= 1);
}
