//! Storage-layer edge cases: buffer-pool behaviour under pressure, tiny
//! records and forwarding stubs, I/O accounting, error formatting.

use fieldrep_storage::{
    HeapFile, IoStats, StorageError, StorageManager, MAX_RECORD_PAYLOAD, MIN_RECORD_PAYLOAD,
    PAGE_SIZE,
};

#[test]
fn tiny_records_can_always_be_forwarded() {
    // Records smaller than a forwarding stub (8-byte payload) must still
    // be forwardable — the MIN_RECORD_PAYLOAD reservation guarantees it.
    let sm = StorageManager::in_memory(64);
    let hf = HeapFile::create(&sm).unwrap();
    let mut oids = Vec::new();
    // Fill a page with 1-byte records.
    loop {
        let oid = hf.rec_insert(&sm, 1, &[7u8]).unwrap();
        if oid.page > 0 {
            break;
        }
        oids.push(oid);
    }
    // Grow every page-0 record far beyond the page: each needs a stub.
    for &oid in &oids {
        hf.rec_update(&sm, oid, &[9u8; 300]).unwrap();
    }
    for &oid in &oids {
        assert_eq!(hf.read(&sm, oid).unwrap().1, vec![9u8; 300]);
    }
    const _: () = assert!(MIN_RECORD_PAYLOAD >= 8);
}

#[test]
fn zero_length_payload_roundtrip() {
    let sm = StorageManager::in_memory(16);
    let hf = HeapFile::create(&sm).unwrap();
    let oid = hf.rec_insert(&sm, 3, &[]).unwrap();
    assert_eq!(hf.read(&sm, oid).unwrap(), (3, vec![]));
    hf.rec_update(&sm, oid, &[]).unwrap();
    assert_eq!(hf.read(&sm, oid).unwrap().1, Vec::<u8>::new());
    hf.rec_delete(&sm, oid).unwrap();
}

#[test]
fn max_payload_roundtrip_through_heap() {
    let sm = StorageManager::in_memory(16);
    let hf = HeapFile::create(&sm).unwrap();
    let big = vec![0x5A; MAX_RECORD_PAYLOAD];
    let oid = hf.rec_insert(&sm, 2, &big).unwrap();
    assert_eq!(hf.read(&sm, oid).unwrap().1, big);
    // One byte more is rejected cleanly.
    let too_big = vec![0u8; MAX_RECORD_PAYLOAD + 1];
    assert!(matches!(
        hf.rec_insert(&sm, 2, &too_big),
        Err(StorageError::RecordTooLarge { .. })
    ));
}

#[test]
fn per_query_io_accounting_with_cold_pool() {
    let sm = StorageManager::in_memory(256);
    let hf = HeapFile::create(&sm).unwrap();
    // 10 pages of 100-byte records.
    let mut oids = Vec::new();
    for _ in 0..330 {
        oids.push(hf.rec_insert(&sm, 1, &[1u8; 100]).unwrap());
    }
    sm.flush_all().unwrap();
    sm.reset_io();

    // Read one record from each of 10 pages: exactly 10 physical reads.
    for p in 0..10u32 {
        let oid = oids.iter().find(|o| o.page == p).unwrap();
        hf.read(&sm, *oid).unwrap();
    }
    let prof = sm.io_profile();
    assert_eq!(prof.pages_read(), 10);
    assert_eq!(prof.pool_misses, 10);
    assert_eq!(prof.pages_written(), 0);

    // Re-reading is free (buffered).
    for p in 0..10u32 {
        let oid = oids.iter().find(|o| o.page == p).unwrap();
        hf.read(&sm, *oid).unwrap();
    }
    let prof = sm.io_profile();
    assert_eq!(prof.pages_read(), 10, "second pass came from the pool");
    assert_eq!(prof.pool_hits, 10);

    // Updating 5 records on one page then flushing writes exactly 1 page.
    sm.reset_io();
    for oid in oids.iter().filter(|o| o.page == 3).take(5) {
        hf.rec_update(&sm, *oid, &[2u8; 100]).unwrap();
    }
    sm.flush_all().unwrap();
    let prof = sm.io_profile();
    assert_eq!(prof.pages_written(), 1);
}

#[test]
fn pool_thrashing_still_correct() {
    // A 4-frame pool over a 40-page file: heavy eviction, no data loss.
    let sm = StorageManager::in_memory(4);
    let hf = HeapFile::create(&sm).unwrap();
    let mut oids = Vec::new();
    for i in 0..1320u32 {
        oids.push(hf.rec_insert(&sm, 1, &i.to_le_bytes().repeat(25)).unwrap());
    }
    for (i, oid) in oids.iter().enumerate().step_by(31) {
        let (_, body) = hf.read(&sm, *oid).unwrap();
        assert_eq!(body, (i as u32).to_le_bytes().repeat(25));
    }
    let prof = sm.io_profile();
    assert!(prof.evictions > 0, "the pool actually thrashed");
}

#[test]
fn error_messages_are_informative() {
    let sm = StorageManager::in_memory(8);
    let hf = HeapFile::create(&sm).unwrap();
    let oid = hf.rec_insert(&sm, 1, b"x").unwrap();
    hf.rec_delete(&sm, oid).unwrap();
    let err = hf.read(&sm, oid).unwrap_err();
    let msg = format!("{err}");
    assert!(msg.contains("does not name a live record"), "{msg}");

    let stats = IoStats::default();
    assert_eq!(
        format!("{stats}"),
        "reads=0 (calls=0) writes=0 allocs=0 syncs=0"
    );
}

#[test]
fn interleaved_files_do_not_interfere() {
    let sm = StorageManager::in_memory(64);
    let a = HeapFile::create(&sm).unwrap();
    let b = HeapFile::create(&sm).unwrap();
    let mut pairs = Vec::new();
    for i in 0..500u32 {
        let oa = a.rec_insert(&sm, 1, &i.to_le_bytes()).unwrap();
        let ob = b.rec_insert(&sm, 2, &(i * 2).to_le_bytes()).unwrap();
        pairs.push((oa, ob, i));
    }
    sm.drop_file(a.file).unwrap();
    // B survives A's destruction fully intact.
    for (_, ob, i) in &pairs {
        assert_eq!(b.read(&sm, *ob).unwrap().1, (i * 2).to_le_bytes());
    }
    assert_eq!(b.count(&sm).unwrap(), 500);
}

#[test]
fn page_size_constants_consistent() {
    assert_eq!(PAGE_SIZE, 4096);
    const _: () = assert!(MAX_RECORD_PAYLOAD < PAGE_SIZE);
}
