//! Property tests: the slotted page and the heap file must behave like an
//! in-memory map from handle → payload under arbitrary operation sequences
//! (DESIGN.md invariant 4).

use fieldrep_storage::{
    HeapFile, PageKind, PageMut, RecordFlags, RecordHeader, StorageManager, PAGE_SIZE,
};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Clone, Debug)]
enum PageOp {
    Insert(Vec<u8>),
    Delete(usize),
    Update(usize, Vec<u8>),
}

fn page_op() -> impl Strategy<Value = PageOp> {
    prop_oneof![
        3 => proptest::collection::vec(any::<u8>(), 0..300).prop_map(PageOp::Insert),
        1 => (0..64usize).prop_map(PageOp::Delete),
        2 => ((0..64usize), proptest::collection::vec(any::<u8>(), 0..300))
            .prop_map(|(i, p)| PageOp::Update(i, p)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random insert/delete/update sequences on one page track a model map.
    #[test]
    fn slotted_page_matches_model(ops in proptest::collection::vec(page_op(), 1..120)) {
        let mut buf = vec![0u8; PAGE_SIZE];
        let mut pg = PageMut::new(&mut buf);
        pg.init(PageKind::Heap);
        let hdr = RecordHeader { type_tag: 7, flags: RecordFlags::Normal };

        // model: slot -> payload
        let mut model: HashMap<u16, Vec<u8>> = HashMap::new();
        let mut live: Vec<u16> = Vec::new();

        for op in ops {
            match op {
                PageOp::Insert(p) => {
                    if let Some(slot) = pg.insert(hdr, &p).unwrap() {
                        prop_assert!(!model.contains_key(&slot), "slot reused while live");
                        model.insert(slot, p);
                        live.push(slot);
                    } else {
                        // A refusal must mean the page truly lacks room.
                        prop_assert!(!pg.view().can_fit(p.len()));
                    }
                }
                PageOp::Delete(i) => {
                    if live.is_empty() { continue; }
                    let slot = live.remove(i % live.len());
                    pg.delete(slot).unwrap();
                    model.remove(&slot);
                }
                PageOp::Update(i, p) => {
                    if live.is_empty() { continue; }
                    let slot = live[i % live.len()];
                    if pg.update(slot, hdr, &p).unwrap() {
                        model.insert(slot, p);
                    }
                    // A false return leaves the record unchanged; model keeps old.
                }
            }
            // Full check after every op.
            let v = pg.view();
            prop_assert_eq!(v.live_records() as usize, model.len());
            for (&slot, payload) in &model {
                let (h, got) = v.record(slot).unwrap();
                prop_assert_eq!(h.type_tag, 7);
                prop_assert_eq!(got, &payload[..]);
            }
        }
    }
}

#[derive(Clone, Debug)]
enum HeapOp {
    Insert(u8, u16), // fill byte, length
    Delete(usize),
    Update(usize, u8, u16), // fill byte, new length (may force forwarding)
}

fn heap_op() -> impl Strategy<Value = HeapOp> {
    prop_oneof![
        3 => (any::<u8>(), 1..400u16).prop_map(|(b, l)| HeapOp::Insert(b, l)),
        1 => (0..1000usize).prop_map(HeapOp::Delete),
        3 => ((0..1000usize), any::<u8>(), 1..1500u16).prop_map(|(i, b, l)| HeapOp::Update(i, b, l)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Heap files keep OIDs stable (through forwarding) and scans complete.
    #[test]
    fn heap_file_matches_model(ops in proptest::collection::vec(heap_op(), 1..150)) {
        let sm = StorageManager::in_memory(256);
        let hf = HeapFile::create(&sm).unwrap();
        let mut model: Vec<(fieldrep_storage::Oid, Vec<u8>)> = Vec::new();

        for op in ops {
            match op {
                HeapOp::Insert(b, l) => {
                    let payload = vec![b; l as usize];
                    let oid = hf.rec_insert(&sm, 9, &payload).unwrap();
                    model.push((oid, payload));
                }
                HeapOp::Delete(i) => {
                    if model.is_empty() { continue; }
                    let (oid, _) = model.remove(i % model.len());
                    hf.rec_delete(&sm, oid).unwrap();
                    prop_assert!(hf.read(&sm, oid).is_err());
                }
                HeapOp::Update(i, b, l) => {
                    if model.is_empty() { continue; }
                    let idx = i % model.len();
                    let payload = vec![b; l as usize];
                    let oid = model[idx].0;
                    hf.rec_update(&sm, oid, &payload).unwrap();
                    model[idx].1 = payload;
                }
            }
        }

        // Point reads.
        for (oid, payload) in &model {
            let (tag, got) = hf.read(&sm, *oid).unwrap();
            prop_assert_eq!(tag, 9);
            prop_assert_eq!(&got, payload);
        }
        // Scan sees exactly the live set, each once.
        let mut seen: HashMap<fieldrep_storage::Oid, Vec<u8>> = HashMap::new();
        let mut scan = hf.scan(&sm).unwrap();
        while let Some((oid, tag, body)) = scan.next_record().unwrap() {
            prop_assert_eq!(tag, 9);
            prop_assert!(seen.insert(oid, body).is_none());
        }
        prop_assert_eq!(seen.len(), model.len());
        for (oid, payload) in &model {
            prop_assert_eq!(&seen[oid], payload);
        }

        // Cold restart: flush, then everything still reads back.
        sm.flush_all().unwrap();
        for (oid, payload) in &model {
            prop_assert_eq!(&hf.read(&sm, *oid).unwrap().1, payload);
        }
    }
}
