//! Runtime (debug-build) assertion of the declared global lock order.
//!
//! This is the dynamic mirror of the lint's static registry
//! (`fieldrep-lint`'s `locks::LOCKS`) and the DESIGN.md §9 table: every
//! named engine lock has a **rank**, and a thread may only acquire a
//! lock of strictly higher rank than anything it already holds. Equal
//! rank is allowed for *reentrant* families (the per-OID seqlock table
//! and the frame latches), which order their members internally.
//! Because the declared order is total, any would-be wait-for cycle
//! must contain an edge that violates it — so a run that never trips
//! these asserts never deadlocked *and never could have* on the
//! instrumented locks, whatever the interleaving.
//!
//! Debug builds keep a thread-local stack of `(rank, name)` entries and
//! `debug_assert!` on out-of-order acquisition; release builds compile
//! the whole thing to nothing ([`Held`] becomes a ZST and the
//! constructors are empty inline fns).
//!
//! Acquisition sites call [`acquired`] (or [`acquired_try`] for
//! non-blocking probes, which cannot deadlock and therefore skip the
//! order assert — but still record the hold, because a successfully
//! try-acquired lock constrains later blocking acquisitions like any
//! other) and keep the returned [`Held`] token alive exactly as long
//! as the guard it describes.

/// Rank of the transaction layer's index maintenance guard.
pub const TXN_INDEX_GUARD: u8 = 10;
/// Rank of the per-OID seqlock write-lock family (reentrant: members
/// are acquired in sorted OID order via `lock_sorted`).
pub const OID_SEQLOCK: u8 = 20;
/// Rank of the WAL apply section.
pub const WAL_APPLY: u8 = 30;
/// Rank of the buffer-pool metadata mutex.
pub const POOL_CORE: u8 = 40;
/// Rank of the buffer-frame page latches (reentrant: multi-frame work
/// goes through the ordered batch helper).
pub const FRAME_DATA: u8 = 50;
/// Rank of the group-commit leader lock.
pub const WAL_SYNC: u8 = 60;
/// Rank of the WAL append lock (`WalInner`).
pub const WAL_APPEND: u8 = 70;

#[cfg(debug_assertions)]
mod imp {
    use std::cell::{Cell, RefCell};

    thread_local! {
        /// Ranks this thread currently holds, in acquisition order.
        static HELD: RefCell<Vec<(u8, &'static str)>> = const { RefCell::new(Vec::new()) };
        /// Nesting depth of ordered-batch scopes (see [`frame_batch_exempt`]).
        static BATCH_EXEMPT: Cell<u32> = const { Cell::new(0) };
    }

    /// RAII marker for the ordered batch helper's dynamic extent: while
    /// alive, held [`super::FRAME_DATA`] entries are exempt from the
    /// order assert. A live frame latch pins its frame, so a `PoolCore`
    /// holder can never wait on it (eviction skips pinned frames) — the
    /// batch helper may therefore re-enter the pool beneath live
    /// latches without risking a cycle. This mirrors the L4 lint
    /// exception and `lockcheck::BatchScope` in `storage::buffer`.
    pub struct BatchExempt {
        _private: (),
    }

    /// Enter the ordered-batch exemption (see [`BatchExempt`]).
    pub fn frame_batch_exempt() -> BatchExempt {
        BATCH_EXEMPT.with(|c| c.set(c.get() + 1));
        BatchExempt { _private: () }
    }

    impl Drop for BatchExempt {
        fn drop(&mut self) {
            BATCH_EXEMPT.with(|c| c.set(c.get() - 1));
        }
    }

    /// RAII token recording one held lock; dropping it releases the
    /// rank from the thread's stack.
    #[must_use = "bind the order token for as long as the lock guard lives"]
    pub struct Held {
        rank: u8,
    }

    /// Record a blocking acquisition, asserting the declared order: the
    /// new rank must exceed every rank already held (equal allowed only
    /// for reentrant families).
    pub fn acquired(rank: u8, reentrant: bool, name: &'static str) -> Held {
        HELD.with(|h| {
            let mut h = h.borrow_mut();
            // Assert against the *maximum* held rank, not the top of
            // the stack: try-acquires may push out of order, and guards
            // need not drop LIFO.
            let exempt_frames = BATCH_EXEMPT.with(Cell::get) > 0;
            if let Some(&(top, top_name)) = h
                .iter()
                .filter(|&&(r, _)| !(exempt_frames && r == super::FRAME_DATA))
                .max_by_key(|&&(r, _)| r)
            {
                debug_assert!(
                    top < rank || (top == rank && reentrant),
                    "lock-order violation: acquiring {name} (rank {rank}) while \
                     {top_name} (rank {top}) is held — the declared global order \
                     (DESIGN.md §9, lint rule L5) requires strictly increasing \
                     ranks on every thread"
                );
            }
            h.push((rank, name));
        });
        Held { rank }
    }

    /// Record a *successful* non-blocking acquisition. Try-locks cannot
    /// deadlock, so no order assert — but the hold is tracked so later
    /// blocking acquisitions are checked against it.
    pub fn acquired_try(rank: u8, name: &'static str) -> Held {
        HELD.with(|h| h.borrow_mut().push((rank, name)));
        Held { rank }
    }

    impl Drop for Held {
        fn drop(&mut self) {
            HELD.with(|h| {
                let mut h = h.borrow_mut();
                // Guards need not drop LIFO (`drop(inner)` can precede
                // a leader guard bound earlier): remove the most recent
                // entry of this token's rank, wherever it sits.
                if let Some(pos) = h.iter().rposition(|&(r, _)| r == self.rank) {
                    h.remove(pos);
                }
            });
        }
    }
}

#[cfg(not(debug_assertions))]
mod imp {
    /// Release-build stand-in: a ZST with no drop glue.
    pub struct Held {}

    /// Release-build stand-in for the ordered-batch exemption marker.
    pub struct BatchExempt {}

    /// Release-build no-op (see the `debug_assertions` twin).
    #[inline(always)]
    pub fn acquired(_rank: u8, _reentrant: bool, _name: &'static str) -> Held {
        Held {}
    }

    /// Release-build no-op (see the `debug_assertions` twin).
    #[inline(always)]
    pub fn acquired_try(_rank: u8, _name: &'static str) -> Held {
        Held {}
    }

    /// Release-build no-op (see the `debug_assertions` twin).
    #[inline(always)]
    pub fn frame_batch_exempt() -> BatchExempt {
        BatchExempt {}
    }
}

pub use imp::{acquired, acquired_try, frame_batch_exempt, BatchExempt, Held};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upward_acquisition_is_clean() {
        let _a = acquired(TXN_INDEX_GUARD, false, "TxnIndexGuard");
        let _b = acquired(WAL_APPLY, false, "WalApply");
        let _c = acquired(WAL_APPEND, false, "WalAppend");
    }

    #[test]
    fn reentrant_family_allows_equal_rank() {
        let _a = acquired(OID_SEQLOCK, true, "OidSeqlock");
        let _b = acquired(OID_SEQLOCK, true, "OidSeqlock");
    }

    #[test]
    fn release_unwinds_out_of_order() {
        let a = acquired(WAL_SYNC, false, "WalSync");
        let b = acquired(WAL_APPEND, false, "WalAppend");
        // Dropping the *inner* guard first (the checkpoint shape) must
        // leave the outer hold intact and consistent.
        drop(b);
        let _c = acquired(WAL_APPEND, false, "WalAppend");
        drop(a);
    }

    #[test]
    #[should_panic(expected = "lock-order violation")]
    #[cfg(debug_assertions)]
    fn downward_acquisition_trips() {
        let _a = acquired(WAL_APPEND, false, "WalAppend");
        let _b = acquired(POOL_CORE, false, "PoolCore");
    }

    #[test]
    #[cfg(debug_assertions)]
    fn try_acquire_skips_the_assert_but_constrains_later() {
        // Holding PoolCore, try-probing the (lower-ranked) apply
        // section is legal — that is the eviction path's exact shape.
        let _core = acquired(POOL_CORE, false, "PoolCore");
        let _probe = acquired_try(WAL_APPLY, "WalApply");
        // FrameData above both is still fine.
        let _frame = acquired(FRAME_DATA, true, "FrameData");
    }
}
