//! Disk managers: the physical page store.
//!
//! Two backends are provided. [`MemDisk`] keeps pages in memory and is used
//! by tests and by the I/O-counting simulation benchmarks (the paper's
//! evaluation is in units of page I/O, not seconds, so a counted in-memory
//! disk reproduces it faithfully). [`FileDisk`] stores each file as a real
//! file on the local filesystem for durability-flavoured runs.

use crate::error::{Result, StorageError};
use crate::oid::{FileId, PageId};
use crate::page::PAGE_SIZE;
use crate::stats::IoStats;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;

/// Abstraction over the physical page store.
///
/// All methods address whole 4 KiB pages; the buffer pool above never does
/// partial transfers. Implementations count reads/writes/allocations in an
/// [`IoStats`] that the benchmark harness samples.
pub trait DiskManager: Send {
    /// Create a new empty file and return its id.
    fn create_file(&mut self) -> Result<FileId>;
    /// Remove a file and release its pages.
    fn drop_file(&mut self, file: FileId) -> Result<()>;
    /// Append one zeroed page to `file`, returning its id.
    ///
    /// Allocation is not counted as a read or a write; the buffer pool
    /// materialises new pages directly in memory and writes them back on
    /// eviction/flush (which *is* counted).
    fn allocate_page(&mut self, file: FileId) -> Result<PageId>;
    /// Number of allocated pages in `file`.
    fn page_count(&self, file: FileId) -> Result<u32>;
    /// Read page `pid` into `buf`.
    fn read_page(&mut self, pid: PageId, buf: &mut [u8; PAGE_SIZE]) -> Result<()>;
    /// Read `bufs.len()` *adjacent* pages starting at `first` — the
    /// grouped transfer behind [`BufferPool::get_pages_batch`]
    /// (see [`crate::BufferPool`]): one call moves a whole sorted run.
    ///
    /// Backends override this to issue the run as a single seek +
    /// vectored read; the default falls back to per-page reads. Either
    /// way every page is still counted in [`IoStats::reads`], so batched
    /// and unbatched paths report identical page-I/O totals; only
    /// [`IoStats::read_calls`] differs.
    fn read_pages(&mut self, first: PageId, bufs: &mut [&mut [u8; PAGE_SIZE]]) -> Result<()> {
        for (i, buf) in bufs.iter_mut().enumerate() {
            self.read_page(PageId::new(first.file, first.page + i as u32), buf)?;
        }
        Ok(())
    }
    /// Write `buf` to page `pid`.
    fn write_page(&mut self, pid: PageId, buf: &[u8; PAGE_SIZE]) -> Result<()>;
    /// Durability barrier: every previously written page must survive a
    /// crash after this returns. [`FileDisk`] issues `fsync` on every
    /// open file; [`MemDisk`] only counts the call (memory survives
    /// nothing). Counted in [`IoStats::syncs`].
    fn sync(&mut self) -> Result<()>;
    /// Physical I/O counters since the last reset.
    fn stats(&self) -> IoStats;
    /// Reset the physical I/O counters.
    fn reset_stats(&mut self);
}

/// In-memory disk manager. Pages live in `Vec`s; every access is still
/// counted so simulations report exact page-I/O numbers.
pub struct MemDisk {
    files: BTreeMap<FileId, Vec<Box<[u8; PAGE_SIZE]>>>,
    next_file: u16,
    stats: IoStats,
}

impl MemDisk {
    /// Create an empty in-memory disk.
    pub fn new() -> Self {
        MemDisk {
            files: BTreeMap::new(),
            next_file: 0,
            stats: IoStats::default(),
        }
    }
}

impl Default for MemDisk {
    fn default() -> Self {
        Self::new()
    }
}

impl DiskManager for MemDisk {
    fn create_file(&mut self) -> Result<FileId> {
        let id = FileId(self.next_file);
        self.next_file = self
            .next_file
            .checked_add(1)
            .expect("file id space exhausted");
        self.files.insert(id, Vec::new());
        Ok(id)
    }

    fn drop_file(&mut self, file: FileId) -> Result<()> {
        self.files
            .remove(&file)
            .map(|_| ())
            .ok_or(StorageError::FileNotFound(file))
    }

    fn allocate_page(&mut self, file: FileId) -> Result<PageId> {
        let pages = self
            .files
            .get_mut(&file)
            .ok_or(StorageError::FileNotFound(file))?;
        let page_no = u32::try_from(pages.len()).expect("file larger than 2^32 pages");
        pages.push(Box::new([0u8; PAGE_SIZE]));
        self.stats.allocations += 1;
        Ok(PageId::new(file, page_no))
    }

    fn page_count(&self, file: FileId) -> Result<u32> {
        self.files
            .get(&file)
            .map(|p| p.len() as u32)
            .ok_or(StorageError::FileNotFound(file))
    }

    fn read_page(&mut self, pid: PageId, buf: &mut [u8; PAGE_SIZE]) -> Result<()> {
        let pages = self
            .files
            .get(&pid.file)
            .ok_or(StorageError::FileNotFound(pid.file))?;
        let page = pages
            .get(pid.page as usize)
            .ok_or(StorageError::PageOutOfBounds(pid))?;
        buf.copy_from_slice(&page[..]);
        self.stats.reads += 1;
        self.stats.read_calls += 1;
        Ok(())
    }

    fn read_pages(&mut self, first: PageId, bufs: &mut [&mut [u8; PAGE_SIZE]]) -> Result<()> {
        let pages = self
            .files
            .get(&first.file)
            .ok_or(StorageError::FileNotFound(first.file))?;
        let last = first.page as usize + bufs.len().saturating_sub(1);
        if bufs.is_empty() {
            return Ok(());
        }
        if last >= pages.len() {
            return Err(StorageError::PageOutOfBounds(PageId::new(
                first.file,
                last as u32,
            )));
        }
        for (i, buf) in bufs.iter_mut().enumerate() {
            buf.copy_from_slice(&pages[first.page as usize + i][..]);
        }
        // n page transfers, one grouped call — the in-memory analogue of
        // a single-seek vectored read.
        self.stats.reads += bufs.len() as u64;
        self.stats.read_calls += 1;
        Ok(())
    }

    fn write_page(&mut self, pid: PageId, buf: &[u8; PAGE_SIZE]) -> Result<()> {
        let pages = self
            .files
            .get_mut(&pid.file)
            .ok_or(StorageError::FileNotFound(pid.file))?;
        let page = pages
            .get_mut(pid.page as usize)
            .ok_or(StorageError::PageOutOfBounds(pid))?;
        page.copy_from_slice(buf);
        self.stats.writes += 1;
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        self.stats.syncs += 1;
        Ok(())
    }

    fn stats(&self) -> IoStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

/// File-backed disk manager: each database file is one file named
/// `f<NNN>.pages` inside a directory.
pub struct FileDisk {
    dir: PathBuf,
    files: BTreeMap<FileId, OpenFile>,
    next_file: u16,
    stats: IoStats,
}

struct OpenFile {
    handle: File,
    pages: u32,
}

impl FileDisk {
    /// Open (or create) a disk rooted at `dir`. Existing `f*.pages` files in
    /// the directory are reopened with their page counts derived from file
    /// length.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut files = BTreeMap::new();
        let mut next_file: u16 = 0;
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(num) = name
                .strip_prefix('f')
                .and_then(|rest| rest.strip_suffix(".pages"))
            {
                if let Ok(id) = num.parse::<u16>() {
                    let handle = OpenOptions::new()
                        .read(true)
                        .write(true)
                        .open(entry.path())?;
                    let len = handle.metadata()?.len();
                    let pages = (len / PAGE_SIZE as u64) as u32;
                    files.insert(FileId(id), OpenFile { handle, pages });
                    next_file = next_file.max(id.saturating_add(1));
                }
            }
        }
        Ok(FileDisk {
            dir,
            files,
            next_file,
            stats: IoStats::default(),
        })
    }

    fn path_for(&self, file: FileId) -> PathBuf {
        self.dir.join(format!("f{}.pages", file.0))
    }
}

impl DiskManager for FileDisk {
    fn create_file(&mut self) -> Result<FileId> {
        let id = FileId(self.next_file);
        self.next_file = self
            .next_file
            .checked_add(1)
            .expect("file id space exhausted");
        let handle = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(self.path_for(id))?;
        self.files.insert(id, OpenFile { handle, pages: 0 });
        Ok(id)
    }

    fn drop_file(&mut self, file: FileId) -> Result<()> {
        self.files
            .remove(&file)
            .ok_or(StorageError::FileNotFound(file))?;
        std::fs::remove_file(self.path_for(file))?;
        Ok(())
    }

    fn allocate_page(&mut self, file: FileId) -> Result<PageId> {
        let of = self
            .files
            .get_mut(&file)
            .ok_or(StorageError::FileNotFound(file))?;
        let page_no = of.pages;
        of.pages += 1;
        of.handle.set_len(u64::from(of.pages) * PAGE_SIZE as u64)?;
        self.stats.allocations += 1;
        Ok(PageId::new(file, page_no))
    }

    fn page_count(&self, file: FileId) -> Result<u32> {
        self.files
            .get(&file)
            .map(|f| f.pages)
            .ok_or(StorageError::FileNotFound(file))
    }

    fn read_page(&mut self, pid: PageId, buf: &mut [u8; PAGE_SIZE]) -> Result<()> {
        let of = self
            .files
            .get_mut(&pid.file)
            .ok_or(StorageError::FileNotFound(pid.file))?;
        if pid.page >= of.pages {
            return Err(StorageError::PageOutOfBounds(pid));
        }
        of.handle
            .seek(SeekFrom::Start(u64::from(pid.page) * PAGE_SIZE as u64))?;
        of.handle.read_exact(&mut buf[..])?;
        self.stats.reads += 1;
        self.stats.read_calls += 1;
        Ok(())
    }

    fn read_pages(&mut self, first: PageId, bufs: &mut [&mut [u8; PAGE_SIZE]]) -> Result<()> {
        if bufs.is_empty() {
            return Ok(());
        }
        let of = self
            .files
            .get_mut(&first.file)
            .ok_or(StorageError::FileNotFound(first.file))?;
        let last = u64::from(first.page) + bufs.len() as u64 - 1;
        if last >= u64::from(of.pages) {
            return Err(StorageError::PageOutOfBounds(PageId::new(
                first.file,
                last as u32,
            )));
        }
        of.handle
            .seek(SeekFrom::Start(u64::from(first.page) * PAGE_SIZE as u64))?;
        // One vectored read for the whole run; a short read (the kernel
        // may split large vectors) falls back to per-page reads at
        // explicit offsets for the remainder.
        let mut slices: Vec<std::io::IoSliceMut<'_>> = bufs
            .iter_mut()
            .map(|b| std::io::IoSliceMut::new(&mut b[..]))
            .collect();
        let n = of.handle.read_vectored(&mut slices)?;
        let done_pages = n / PAGE_SIZE;
        if n % PAGE_SIZE != 0 || done_pages < bufs.len() {
            for (i, buf) in bufs.iter_mut().enumerate().skip(done_pages) {
                let page = first.page + i as u32;
                of.handle
                    .seek(SeekFrom::Start(u64::from(page) * PAGE_SIZE as u64))?;
                of.handle.read_exact(&mut buf[..])?;
            }
        }
        self.stats.reads += bufs.len() as u64;
        self.stats.read_calls += 1;
        Ok(())
    }

    fn write_page(&mut self, pid: PageId, buf: &[u8; PAGE_SIZE]) -> Result<()> {
        let of = self
            .files
            .get_mut(&pid.file)
            .ok_or(StorageError::FileNotFound(pid.file))?;
        if pid.page >= of.pages {
            return Err(StorageError::PageOutOfBounds(pid));
        }
        of.handle
            .seek(SeekFrom::Start(u64::from(pid.page) * PAGE_SIZE as u64))?;
        of.handle.write_all(&buf[..])?;
        self.stats.writes += 1;
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        for of in self.files.values() {
            of.handle.sync_all()?;
        }
        self.stats.syncs += 1;
        Ok(())
    }

    fn stats(&self) -> IoStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

/// Remove an on-disk database directory — the `f*.pages` files written by
/// [`FileDisk`], any `wal.log` written by [`crate::FileWalStore`], and the
/// directory itself. A missing directory is not an error. This lives here
/// (rather than in callers) because the storage crate owns the on-disk
/// layout and is the only crate allowed raw filesystem access.
pub fn remove_db_dir(dir: impl AsRef<std::path::Path>) -> Result<()> {
    match std::fs::remove_dir_all(dir.as_ref()) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e.into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(disk: &mut dyn DiskManager) {
        let f = disk.create_file().unwrap();
        assert_eq!(disk.page_count(f).unwrap(), 0);
        let p0 = disk.allocate_page(f).unwrap();
        let p1 = disk.allocate_page(f).unwrap();
        assert_eq!(p0.page, 0);
        assert_eq!(p1.page, 1);
        assert_eq!(disk.page_count(f).unwrap(), 2);

        let mut buf = [0u8; PAGE_SIZE];
        buf[0] = 0xAB;
        buf[PAGE_SIZE - 1] = 0xCD;
        disk.write_page(p1, &buf).unwrap();

        let mut back = [0u8; PAGE_SIZE];
        disk.read_page(p1, &mut back).unwrap();
        assert_eq!(back[0], 0xAB);
        assert_eq!(back[PAGE_SIZE - 1], 0xCD);

        disk.read_page(p0, &mut back).unwrap();
        assert!(back.iter().all(|&b| b == 0), "fresh pages are zeroed");

        let bad = PageId::new(f, 99);
        assert!(matches!(
            disk.read_page(bad, &mut back),
            Err(StorageError::PageOutOfBounds(_))
        ));

        let s = disk.stats();
        assert_eq!(s.reads, 2); // the out-of-bounds read fails before counting
        assert_eq!(s.writes, 1);
        assert_eq!(s.allocations, 2);

        disk.drop_file(f).unwrap();
        assert!(matches!(
            disk.page_count(f),
            Err(StorageError::FileNotFound(_))
        ));
    }

    #[test]
    fn mem_disk_basics() {
        let mut d = MemDisk::new();
        exercise(&mut d);
    }

    #[test]
    fn file_disk_basics() {
        let dir = std::env::temp_dir().join(format!("fieldrep-disk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut d = FileDisk::open(&dir).unwrap();
            exercise(&mut d);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_disk_reopen_preserves_pages() {
        let dir = std::env::temp_dir().join(format!("fieldrep-disk-re-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (f, pid) = {
            let mut d = FileDisk::open(&dir).unwrap();
            let f = d.create_file().unwrap();
            let pid = d.allocate_page(f).unwrap();
            let mut buf = [0u8; PAGE_SIZE];
            buf[7] = 77;
            d.write_page(pid, &buf).unwrap();
            (f, pid)
        };
        {
            let mut d = FileDisk::open(&dir).unwrap();
            assert_eq!(d.page_count(f).unwrap(), 1);
            let mut buf = [0u8; PAGE_SIZE];
            d.read_page(pid, &mut buf).unwrap();
            assert_eq!(buf[7], 77);
            // New files must not collide with reopened ids.
            let g = d.create_file().unwrap();
            assert_ne!(g, f);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn exercise_batch(disk: &mut dyn DiskManager) {
        let f = disk.create_file().unwrap();
        let mut pids = vec![];
        for i in 0..4u8 {
            let p = disk.allocate_page(f).unwrap();
            let mut buf = [0u8; PAGE_SIZE];
            buf[0] = i + 1;
            disk.write_page(p, &buf).unwrap();
            pids.push(p);
        }
        disk.reset_stats();
        let mut storage = vec![[0u8; PAGE_SIZE]; 4];
        let mut bufs: Vec<&mut [u8; PAGE_SIZE]> = storage.iter_mut().collect();
        disk.read_pages(pids[0], &mut bufs).unwrap();
        for (i, buf) in storage.iter().enumerate() {
            assert_eq!(buf[0], i as u8 + 1, "page {i} of the run");
        }
        let s = disk.stats();
        assert_eq!(s.reads, 4, "every page of the run is counted");
        assert_eq!(s.read_calls, 1, "but the run is one grouped call");

        // A run extending past EOF fails without touching the counters.
        let mut storage = vec![[0u8; PAGE_SIZE]; 3];
        let mut bufs: Vec<&mut [u8; PAGE_SIZE]> = storage.iter_mut().collect();
        assert!(matches!(
            disk.read_pages(PageId::new(f, 2), &mut bufs),
            Err(StorageError::PageOutOfBounds(_))
        ));
        assert_eq!(disk.stats().reads, 4);
    }

    #[test]
    fn mem_disk_batch_reads() {
        let mut d = MemDisk::new();
        exercise_batch(&mut d);
    }

    #[test]
    fn file_disk_batch_reads() {
        let dir = std::env::temp_dir().join(format!("fieldrep-disk-b-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut d = FileDisk::open(&dir).unwrap();
            exercise_batch(&mut d);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Regression for the durability gap: `FileDisk` wrote pages but
    /// never issued a durability barrier. `sync` must succeed on both
    /// backends and be counted, so callers (the WAL, checkpoints) can
    /// assert their barrier actually ran.
    #[test]
    fn sync_is_counted_on_both_backends() {
        let mut m = MemDisk::new();
        let f = m.create_file().unwrap();
        let p = m.allocate_page(f).unwrap();
        m.write_page(p, &[1u8; PAGE_SIZE]).unwrap();
        m.sync().unwrap();
        m.sync().unwrap();
        assert_eq!(m.stats().syncs, 2);

        let dir = std::env::temp_dir().join(format!("fieldrep-disk-sync-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut d = FileDisk::open(&dir).unwrap();
            let f = d.create_file().unwrap();
            let p = d.allocate_page(f).unwrap();
            d.write_page(p, &[2u8; PAGE_SIZE]).unwrap();
            d.sync().unwrap();
            assert_eq!(d.stats().syncs, 1);
            // The barrier really hits the filesystem: the data is visible
            // through an independent handle immediately after.
            let mut back = [0u8; PAGE_SIZE];
            let mut d2 = FileDisk::open(&dir).unwrap();
            d2.read_page(p, &mut back).unwrap();
            assert_eq!(back[0], 2);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_reset() {
        let mut d = MemDisk::new();
        let f = d.create_file().unwrap();
        let p = d.allocate_page(f).unwrap();
        let buf = [0u8; PAGE_SIZE];
        d.write_page(p, &buf).unwrap();
        assert_ne!(d.stats(), IoStats::default());
        d.reset_stats();
        assert_eq!(d.stats(), IoStats::default());
    }
}
