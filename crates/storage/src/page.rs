//! Slotted-page layout.
//!
//! Every page is 4096 bytes:
//!
//! ```text
//! +--------------------+----------------------+........+------------------+
//! | page header (40 B) | slot array (4 B/slot)|  free  | records (grow up)|
//! +--------------------+----------------------+........+------------------+
//! 0                   40                free_start   free_end          4096
//! ```
//!
//! * 40 bytes of page header leave **B = 4056** bytes for user data, the
//!   value the paper takes from the EXODUS storage manager (Figure 10).
//! * Each record costs a 4-byte slot plus a 16-byte record header, i.e.
//!   **h = 20** bytes of per-object overhead — again the paper's value. A
//!   page therefore holds `⌊B / (h + r)⌋` objects of `r` payload bytes,
//!   exactly the `O_r` of the cost model.
//! * Slot numbers are never reused for *different* objects while a page is
//!   live and the slot array never shrinks, so physical OIDs stay stable.
//! * Records that must move (they outgrew their page) leave a
//!   [`RecordFlags::Forward`] stub holding the target OID; the target
//!   record is marked [`RecordFlags::Moved`] so scans do not report it
//!   twice.

use crate::error::{Result, StorageError};
use crate::oid::Oid;

/// Total page size in bytes.
pub const PAGE_SIZE: usize = 4096;
/// Bytes reserved for the page header.
pub const PAGE_HEADER_SIZE: usize = 40;
/// Bytes available to user data per page — the paper's `B`.
pub const USER_BYTES_PER_PAGE: usize = PAGE_SIZE - PAGE_HEADER_SIZE; // 4056
/// Bytes per slot-array entry.
pub const SLOT_SIZE: usize = 4;
/// Bytes per record header stored in front of each record payload.
pub const RECORD_HEADER_SIZE: usize = 16;
/// Per-object storage overhead — the paper's `h` (slot + record header).
pub const OBJECT_OVERHEAD: usize = SLOT_SIZE + RECORD_HEADER_SIZE; // 20
/// Largest payload a single page can store.
pub const MAX_RECORD_PAYLOAD: usize = USER_BYTES_PER_PAGE - OBJECT_OVERHEAD;
/// Smallest payload allocation. Every record reserves at least 8 payload
/// bytes so that it can always be replaced *in place* by a forwarding stub
/// (whose payload is one 8-byte OID) when it outgrows its page.
pub const MIN_RECORD_PAYLOAD: usize = 8;

const MAGIC: u16 = 0xF1DB;

// Header field offsets.
const OFF_MAGIC: usize = 0;
const OFF_KIND: usize = 2;
const OFF_VERSION: usize = 3;
const OFF_SLOT_COUNT: usize = 4;
const OFF_FREE_END: usize = 6;
const OFF_FRAG: usize = 8;
const OFF_LIVE: usize = 10;
const OFF_NEXT_PAGE: usize = 12;
// 16..28 hold the durability header (LSN + CRC32, below); 28..40 stay
// reserved. All of 16..40 is invisible to the slotted-page logic, so
// `B = 4056` and the paper's cost model are unaffected.

/// Byte offset of the page LSN (u64 LE): the WAL position of the last
/// commit record covering this page image. `0` = never logged.
pub const OFF_PAGE_LSN: usize = 16;
/// Byte offset of the page CRC32 (u32 LE), computed over the whole 4096
/// bytes with these four bytes zeroed. `0` = unchecksummed (legacy page);
/// a computed CRC of 0 is stored as 1.
pub const OFF_PAGE_CRC: usize = 24;

/// What a page is used for. Stored in the header so that corruption and
/// cross-use bugs are caught early.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum PageKind {
    /// Unformatted page.
    Free = 0,
    /// Heap-file data page holding object records.
    Heap = 1,
    /// B⁺-tree interior node.
    BTreeInternal = 2,
    /// B⁺-tree leaf node.
    BTreeLeaf = 3,
    /// Index/file metadata page.
    Meta = 4,
}

impl PageKind {
    fn from_u8(v: u8) -> Option<PageKind> {
        Some(match v {
            0 => PageKind::Free,
            1 => PageKind::Heap,
            2 => PageKind::BTreeInternal,
            3 => PageKind::BTreeLeaf,
            4 => PageKind::Meta,
            _ => return None,
        })
    }
}

/// Per-record flags kept in the record header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum RecordFlags {
    /// An ordinary record.
    Normal = 0,
    /// A forwarding stub: the payload is the 8-byte OID of the record's new
    /// home. Reads through the original OID follow the stub.
    Forward = 1,
    /// A record that was moved here by forwarding. Physical scans skip it
    /// (it is reported through its original OID instead).
    Moved = 2,
}

impl RecordFlags {
    fn from_u8(v: u8) -> Option<RecordFlags> {
        Some(match v {
            0 => RecordFlags::Normal,
            1 => RecordFlags::Forward,
            2 => RecordFlags::Moved,
            _ => return None,
        })
    }
}

/// The 16-byte header stored in front of every record payload.
///
/// Only four bytes are semantically live; the remaining twelve are reserved
/// (a recoverable system would keep an LSN and lock metadata there) and
/// exist so the per-object overhead equals the paper's `h = 20`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RecordHeader {
    /// Type tag identifying the object's type (§2.2: "every object contains
    /// a type-tag"). Figure 10 sizes it at 2 bytes.
    pub type_tag: u16,
    /// Record state.
    pub flags: RecordFlags,
}

impl RecordHeader {
    fn write(self, buf: &mut [u8], payload_len: u16) {
        buf[..RECORD_HEADER_SIZE].fill(0);
        buf[0..2].copy_from_slice(&self.type_tag.to_le_bytes());
        buf[2] = self.flags as u8;
        buf[4..6].copy_from_slice(&payload_len.to_le_bytes());
    }

    fn read(buf: &[u8]) -> Result<(RecordHeader, u16)> {
        let type_tag = u16::from_le_bytes([buf[0], buf[1]]);
        let flags = RecordFlags::from_u8(buf[2])
            .ok_or_else(|| StorageError::Corrupt(format!("bad record flags {}", buf[2])))?;
        let payload_len = u16::from_le_bytes([buf[4], buf[5]]);
        Ok((RecordHeader { type_tag, flags }, payload_len))
    }
}

/// Bytes a record with `payload_len` payload actually occupies on the page
/// (header plus the minimum-allocation rule).
fn alloc_len(payload_len: usize) -> usize {
    RECORD_HEADER_SIZE + payload_len.max(MIN_RECORD_PAYLOAD)
}

fn get_u16(data: &[u8], off: usize) -> u16 {
    u16::from_le_bytes([data[off], data[off + 1]])
}

fn put_u16(data: &mut [u8], off: usize, v: u16) {
    data[off..off + 2].copy_from_slice(&v.to_le_bytes());
}

fn get_u32(data: &[u8], off: usize) -> u32 {
    u32::from_le_bytes([data[off], data[off + 1], data[off + 2], data[off + 3]])
}

fn put_u32(data: &mut [u8], off: usize, v: u32) {
    data[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

/// Read-only view of a slotted page.
#[derive(Clone, Copy)]
pub struct PageView<'a> {
    data: &'a [u8],
}

impl<'a> PageView<'a> {
    /// Wrap a raw page buffer. The buffer must be `PAGE_SIZE` bytes.
    pub fn new(data: &'a [u8]) -> Self {
        debug_assert_eq!(data.len(), PAGE_SIZE);
        PageView { data }
    }

    /// True if the page has been formatted (magic number present).
    pub fn is_formatted(&self) -> bool {
        get_u16(self.data, OFF_MAGIC) == MAGIC
    }

    /// The page's kind.
    pub fn kind(&self) -> Result<PageKind> {
        PageKind::from_u8(self.data[OFF_KIND])
            .ok_or_else(|| StorageError::Corrupt(format!("bad page kind {}", self.data[OFF_KIND])))
    }

    /// Number of slot-array entries (live + free).
    pub fn slot_count(&self) -> u16 {
        get_u16(self.data, OFF_SLOT_COUNT)
    }

    /// Number of live records on the page.
    pub fn live_records(&self) -> u16 {
        get_u16(self.data, OFF_LIVE)
    }

    /// Next-page pointer used for file chaining by some page owners
    /// (`u32::MAX` = none).
    pub fn next_page(&self) -> Option<u32> {
        let v = get_u32(self.data, OFF_NEXT_PAGE);
        (v != u32::MAX).then_some(v)
    }

    fn slot(&self, idx: u16) -> (u16, u16) {
        let off = PAGE_HEADER_SIZE + SLOT_SIZE * idx as usize;
        (get_u16(self.data, off), get_u16(self.data, off + 2))
    }

    fn free_end(&self) -> u16 {
        get_u16(self.data, OFF_FREE_END)
    }

    fn frag_bytes(&self) -> u16 {
        get_u16(self.data, OFF_FRAG)
    }

    /// End of the slot array == start of the free hole.
    fn free_start(&self) -> usize {
        PAGE_HEADER_SIZE + SLOT_SIZE * self.slot_count() as usize
    }

    /// Contiguous free bytes (between the slot array and the record area).
    pub fn contiguous_free(&self) -> usize {
        self.free_end() as usize - self.free_start()
    }

    /// Total reclaimable free bytes, counting fragmentation that a
    /// compaction would recover. Does not include the cost of a new slot.
    pub fn total_free(&self) -> usize {
        self.contiguous_free() + self.frag_bytes() as usize
    }

    /// Whether a record with `payload_len` bytes can be placed on this page
    /// (possibly after compaction), accounting for slot reuse.
    pub fn can_fit(&self, payload_len: usize) -> bool {
        let record = alloc_len(payload_len);
        let slot_cost = if self.has_free_slot() { 0 } else { SLOT_SIZE };
        self.total_free() >= record + slot_cost
    }

    fn has_free_slot(&self) -> bool {
        (0..self.slot_count()).any(|i| {
            let (off, len) = self.slot(i);
            off == 0 && len == 0
        })
    }

    /// Fetch the record in `slot`, returning its header and payload, or
    /// `None` if the slot is empty/deleted or out of range.
    pub fn record(&self, slot: u16) -> Option<(RecordHeader, &'a [u8])> {
        if slot >= self.slot_count() {
            return None;
        }
        let (off, len) = self.slot(slot);
        if off == 0 && len == 0 {
            return None;
        }
        let off = off as usize;
        let len = len as usize;
        let (hdr, payload_len) =
            RecordHeader::read(&self.data[off..off + RECORD_HEADER_SIZE]).ok()?;
        debug_assert!(RECORD_HEADER_SIZE + payload_len as usize <= len);
        let start = off + RECORD_HEADER_SIZE;
        Some((hdr, &self.data[start..start + payload_len as usize]))
    }

    /// Iterate over the live records on the page in slot order, yielding
    /// `(slot, header, payload)`.
    pub fn records(&self) -> impl Iterator<Item = (u16, RecordHeader, &'a [u8])> + '_ {
        let n = self.slot_count();
        let view = *self;
        (0..n).filter_map(move |s| view.record(s).map(|(h, p)| (s, h, p)))
    }
}

/// Mutable access to a slotted page.
pub struct PageMut<'a> {
    data: &'a mut [u8],
}

impl<'a> PageMut<'a> {
    /// Wrap a raw page buffer for mutation. The buffer must be `PAGE_SIZE`
    /// bytes.
    pub fn new(data: &'a mut [u8]) -> Self {
        debug_assert_eq!(data.len(), PAGE_SIZE);
        PageMut { data }
    }

    /// Read-only view of the same page.
    pub fn view(&self) -> PageView<'_> {
        PageView::new(self.data)
    }

    /// Format the page: write the header and mark the whole record area
    /// free.
    pub fn init(&mut self, kind: PageKind) {
        self.data.fill(0);
        put_u16(self.data, OFF_MAGIC, MAGIC);
        self.data[OFF_KIND] = kind as u8;
        self.data[OFF_VERSION] = 1;
        put_u16(self.data, OFF_SLOT_COUNT, 0);
        put_u16(self.data, OFF_FREE_END, PAGE_SIZE as u16);
        put_u16(self.data, OFF_FRAG, 0);
        put_u16(self.data, OFF_LIVE, 0);
        put_u32(self.data, OFF_NEXT_PAGE, u32::MAX);
    }

    /// Set the next-page pointer (`None` clears it).
    pub fn set_next_page(&mut self, next: Option<u32>) {
        put_u32(self.data, OFF_NEXT_PAGE, next.unwrap_or(u32::MAX));
    }

    fn set_slot(&mut self, idx: u16, off: u16, len: u16) {
        let o = PAGE_HEADER_SIZE + SLOT_SIZE * idx as usize;
        put_u16(self.data, o, off);
        put_u16(self.data, o + 2, len);
    }

    /// Insert a record, returning its slot number.
    ///
    /// Fails with [`StorageError::RecordTooLarge`] if the payload can never
    /// fit a page, and returns `Ok(None)` if this particular page lacks
    /// space (the caller then tries another page).
    pub fn insert(&mut self, header: RecordHeader, payload: &[u8]) -> Result<Option<u16>> {
        if payload.len() > MAX_RECORD_PAYLOAD {
            return Err(StorageError::RecordTooLarge {
                size: payload.len(),
                max: MAX_RECORD_PAYLOAD,
            });
        }
        let v = self.view();
        if !v.can_fit(payload.len()) {
            return Ok(None);
        }
        let record_len = alloc_len(payload.len());

        // Pick a slot: reuse a free one or append.
        let slot = {
            let v = self.view();
            (0..v.slot_count()).find(|&i| {
                let (off, len) = v.slot(i);
                off == 0 && len == 0
            })
        };
        let (slot, new_slot) = match slot {
            Some(s) => (s, false),
            None => (self.view().slot_count(), true),
        };

        // Ensure contiguous room (compact if fragmentation holds the space).
        let needed = record_len + if new_slot { SLOT_SIZE } else { 0 };
        if self.view().contiguous_free() < needed {
            self.compact();
        }
        debug_assert!(self.view().contiguous_free() >= needed);

        if new_slot {
            let n = self.view().slot_count();
            put_u16(self.data, OFF_SLOT_COUNT, n + 1);
            self.set_slot(slot, 0, 0);
        }

        let free_end = self.view().free_end() as usize;
        let off = free_end - record_len;
        header.write(
            &mut self.data[off..off + RECORD_HEADER_SIZE],
            payload.len() as u16,
        );
        let start = off + RECORD_HEADER_SIZE;
        self.data[start..start + payload.len()].copy_from_slice(payload);
        put_u16(self.data, OFF_FREE_END, off as u16);
        self.set_slot(slot, off as u16, record_len as u16);
        let live = self.view().live_records();
        put_u16(self.data, OFF_LIVE, live + 1);
        Ok(Some(slot))
    }

    /// Delete the record in `slot`. The slot entry becomes free (reusable),
    /// the record bytes become fragmentation.
    pub fn delete(&mut self, slot: u16) -> Result<()> {
        let v = self.view();
        if slot >= v.slot_count() {
            return Err(StorageError::Corrupt(format!("delete of bad slot {slot}")));
        }
        let (off, len) = v.slot(slot);
        if off == 0 && len == 0 {
            return Err(StorageError::Corrupt(format!(
                "delete of already-free slot {slot}"
            )));
        }
        let frag = v.frag_bytes() + len;
        put_u16(self.data, OFF_FRAG, frag);
        self.set_slot(slot, 0, 0);
        let live = self.view().live_records();
        put_u16(self.data, OFF_LIVE, live - 1);
        Ok(())
    }

    /// Replace the record in `slot` with a new header/payload.
    ///
    /// Returns `Ok(true)` on success; `Ok(false)` if the new payload does
    /// not fit on this page even after compaction (the caller must forward
    /// the record elsewhere).
    pub fn update(&mut self, slot: u16, header: RecordHeader, payload: &[u8]) -> Result<bool> {
        if payload.len() > MAX_RECORD_PAYLOAD {
            return Err(StorageError::RecordTooLarge {
                size: payload.len(),
                max: MAX_RECORD_PAYLOAD,
            });
        }
        let v = self.view();
        if slot >= v.slot_count() {
            return Err(StorageError::Corrupt(format!("update of bad slot {slot}")));
        }
        let (off, len) = v.slot(slot);
        if off == 0 && len == 0 {
            return Err(StorageError::Corrupt(format!("update of free slot {slot}")));
        }
        let new_len = alloc_len(payload.len());
        if new_len <= len as usize {
            // Shrink or same size: rewrite in place, tail becomes frag.
            let off = off as usize;
            header.write(
                &mut self.data[off..off + RECORD_HEADER_SIZE],
                payload.len() as u16,
            );
            let start = off + RECORD_HEADER_SIZE;
            self.data[start..start + payload.len()].copy_from_slice(payload);
            if new_len < len as usize {
                let frag = self.view().frag_bytes() + (len as usize - new_len) as u16;
                put_u16(self.data, OFF_FRAG, frag);
                self.set_slot(slot, off as u16, new_len as u16);
            }
            return Ok(true);
        }
        // Growing: free old space, then place anew if possible.
        let grow = new_len - len as usize;
        if self.view().total_free() < grow {
            return Ok(false);
        }
        // Tombstone old location into fragmentation.
        let frag = self.view().frag_bytes() + len;
        put_u16(self.data, OFF_FRAG, frag);
        self.set_slot(slot, 0, 0);
        if self.view().contiguous_free() < new_len {
            self.compact();
        }
        let free_end = self.view().free_end() as usize;
        let off = free_end - new_len;
        header.write(
            &mut self.data[off..off + RECORD_HEADER_SIZE],
            payload.len() as u16,
        );
        let start = off + RECORD_HEADER_SIZE;
        self.data[start..start + payload.len()].copy_from_slice(payload);
        put_u16(self.data, OFF_FREE_END, off as u16);
        self.set_slot(slot, off as u16, new_len as u16);
        Ok(true)
    }

    /// Rewrite only the flags byte of a record header (used to mark stubs
    /// and moved records without copying payloads).
    pub fn set_record_flags(&mut self, slot: u16, flags: RecordFlags) -> Result<()> {
        let v = self.view();
        let (off, len) = v.slot(slot);
        if slot >= v.slot_count() || (off == 0 && len == 0) {
            return Err(StorageError::Corrupt(format!(
                "flag set on bad slot {slot}"
            )));
        }
        self.data[off as usize + 2] = flags as u8;
        Ok(())
    }

    /// Slide all live records to the end of the page, eliminating
    /// fragmentation. Slot numbers (and therefore OIDs) are unchanged.
    pub fn compact(&mut self) {
        let n = self.view().slot_count();
        // Collect live (slot, off, len), sort by offset descending, repack
        // from the page end.
        let mut live: Vec<(u16, u16, u16)> = (0..n)
            .filter_map(|s| {
                let (off, len) = self.view().slot(s);
                (!(off == 0 && len == 0)).then_some((s, off, len))
            })
            .collect();
        live.sort_by_key(|e| std::cmp::Reverse(e.1));
        let mut dest = PAGE_SIZE;
        for (slot, off, len) in live {
            let off = off as usize;
            let len = len as usize;
            dest -= len;
            self.data.copy_within(off..off + len, dest);
            self.set_slot(slot, dest as u16, len as u16);
        }
        put_u16(self.data, OFF_FREE_END, dest as u16);
        put_u16(self.data, OFF_FRAG, 0);
    }

    /// Insert a forwarding stub in `slot` pointing at `target`.
    pub fn write_forward_stub(&mut self, slot: u16, type_tag: u16, target: Oid) -> Result<()> {
        let hdr = RecordHeader {
            type_tag,
            flags: RecordFlags::Forward,
        };
        let ok = self.update(slot, hdr, &target.to_bytes())?;
        if !ok {
            // A stub payload is 8 bytes; any record we are replacing is at
            // least RECORD_HEADER_SIZE long, so this cannot happen.
            return Err(StorageError::Corrupt(
                "forward stub did not fit in place of existing record".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oid::FileId;

    fn fresh() -> Vec<u8> {
        let mut buf = vec![0u8; PAGE_SIZE];
        PageMut::new(&mut buf).init(PageKind::Heap);
        buf
    }

    fn hdr(tag: u16) -> RecordHeader {
        RecordHeader {
            type_tag: tag,
            flags: RecordFlags::Normal,
        }
    }

    #[test]
    fn objects_per_page_matches_cost_model() {
        // The paper: O_r = floor(B / (h + r)). For r = 100: 4056/120 = 33.
        let mut buf = fresh();
        let mut pg = PageMut::new(&mut buf);
        let payload = [7u8; 100];
        let mut n = 0;
        while pg.insert(hdr(1), &payload).unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 33);
    }

    #[test]
    fn insert_read_roundtrip() {
        let mut buf = fresh();
        let mut pg = PageMut::new(&mut buf);
        let s0 = pg.insert(hdr(5), b"hello").unwrap().unwrap();
        let s1 = pg.insert(hdr(6), b"world!").unwrap().unwrap();
        let v = pg.view();
        let (h0, p0) = v.record(s0).unwrap();
        assert_eq!(h0.type_tag, 5);
        assert_eq!(p0, b"hello");
        let (h1, p1) = v.record(s1).unwrap();
        assert_eq!(h1.type_tag, 6);
        assert_eq!(p1, b"world!");
        assert_eq!(v.live_records(), 2);
    }

    #[test]
    fn delete_frees_slot_and_space() {
        let mut buf = fresh();
        let mut pg = PageMut::new(&mut buf);
        let s0 = pg.insert(hdr(1), &[0u8; 50]).unwrap().unwrap();
        let free_before = pg.view().total_free();
        pg.delete(s0).unwrap();
        assert!(pg.view().record(s0).is_none());
        assert_eq!(
            pg.view().total_free(),
            free_before + 50 + RECORD_HEADER_SIZE
        );
        // Slot is reused by the next insert.
        let s1 = pg.insert(hdr(2), &[1u8; 10]).unwrap().unwrap();
        assert_eq!(s1, s0);
        // Double delete is an error.
        let s2 = pg.insert(hdr(3), &[2u8; 10]).unwrap().unwrap();
        pg.delete(s2).unwrap();
        assert!(pg.delete(s2).is_err());
    }

    #[test]
    fn update_in_place_and_grow() {
        let mut buf = fresh();
        let mut pg = PageMut::new(&mut buf);
        let s = pg.insert(hdr(1), &[1u8; 40]).unwrap().unwrap();
        // Same size.
        assert!(pg.update(s, hdr(1), &[2u8; 40]).unwrap());
        assert_eq!(pg.view().record(s).unwrap().1, &[2u8; 40][..]);
        // Shrink.
        assert!(pg.update(s, hdr(1), &[3u8; 10]).unwrap());
        assert_eq!(pg.view().record(s).unwrap().1, &[3u8; 10][..]);
        // Grow within page.
        assert!(pg.update(s, hdr(1), &[4u8; 200]).unwrap());
        assert_eq!(pg.view().record(s).unwrap().1, &[4u8; 200][..]);
    }

    #[test]
    fn update_grow_fails_when_page_full() {
        let mut buf = fresh();
        let mut pg = PageMut::new(&mut buf);
        // Fill the page with 100-byte records.
        let mut slots = vec![];
        while let Some(s) = pg.insert(hdr(1), &[9u8; 100]).unwrap() {
            slots.push(s);
        }
        // Growing one to 300 bytes cannot fit.
        assert!(!pg.update(slots[0], hdr(1), &[1u8; 300]).unwrap());
        // Record is untouched.
        assert_eq!(pg.view().record(slots[0]).unwrap().1, &[9u8; 100][..]);
    }

    #[test]
    fn compaction_recovers_fragmentation() {
        let mut buf = fresh();
        let mut pg = PageMut::new(&mut buf);
        let mut slots = vec![];
        while let Some(s) = pg.insert(hdr(1), &[8u8; 100]).unwrap() {
            slots.push(s);
        }
        // Delete every other record: plenty of total space, all fragmented.
        for s in slots.iter().step_by(2) {
            pg.delete(*s).unwrap();
        }
        assert!(pg.view().can_fit(500));
        let s = pg.insert(hdr(2), &[5u8; 500]).unwrap();
        assert!(s.is_some(), "insert after implicit compaction");
        // Survivors unharmed.
        for s in slots.iter().skip(1).step_by(2) {
            assert_eq!(pg.view().record(*s).unwrap().1, &[8u8; 100][..]);
        }
    }

    #[test]
    fn record_too_large_is_an_error() {
        let mut buf = fresh();
        let mut pg = PageMut::new(&mut buf);
        let big = vec![0u8; MAX_RECORD_PAYLOAD + 1];
        assert!(matches!(
            pg.insert(hdr(1), &big),
            Err(StorageError::RecordTooLarge { .. })
        ));
        let s = pg.insert(hdr(1), &[0u8; 4]).unwrap().unwrap();
        assert!(matches!(
            pg.update(s, hdr(1), &big),
            Err(StorageError::RecordTooLarge { .. })
        ));
    }

    #[test]
    fn max_payload_record_fits_alone() {
        let mut buf = fresh();
        let mut pg = PageMut::new(&mut buf);
        let big = vec![3u8; MAX_RECORD_PAYLOAD];
        let s = pg.insert(hdr(1), &big).unwrap().unwrap();
        assert_eq!(pg.view().record(s).unwrap().1, &big[..]);
        assert!(pg.insert(hdr(1), &[0u8; 1]).unwrap().is_none());
    }

    #[test]
    fn forward_stub_roundtrip() {
        let mut buf = fresh();
        let mut pg = PageMut::new(&mut buf);
        let s = pg.insert(hdr(9), &[1u8; 64]).unwrap().unwrap();
        let target = Oid::new(FileId(3), 17, 4);
        pg.write_forward_stub(s, 9, target).unwrap();
        let (h, p) = pg.view().record(s).unwrap();
        assert_eq!(h.flags, RecordFlags::Forward);
        assert_eq!(Oid::from_bytes(p), target);
    }

    #[test]
    fn records_iterator_skips_deleted() {
        let mut buf = fresh();
        let mut pg = PageMut::new(&mut buf);
        let a = pg.insert(hdr(1), b"a").unwrap().unwrap();
        let _b = pg.insert(hdr(1), b"b").unwrap().unwrap();
        let c = pg.insert(hdr(1), b"c").unwrap().unwrap();
        pg.delete(a).unwrap();
        pg.delete(c).unwrap();
        let v = pg.view();
        let all: Vec<_> = v.records().map(|(s, _, p)| (s, p.to_vec())).collect();
        assert_eq!(all, vec![(1u16, b"b".to_vec())]);
    }

    #[test]
    fn next_page_pointer() {
        let mut buf = fresh();
        let mut pg = PageMut::new(&mut buf);
        assert_eq!(pg.view().next_page(), None);
        pg.set_next_page(Some(42));
        assert_eq!(pg.view().next_page(), Some(42));
        pg.set_next_page(None);
        assert_eq!(pg.view().next_page(), None);
    }
}
