//! Physical object identifiers.
//!
//! The paper (§2.2, Figure 10) assumes 8-byte, *physically based* OIDs as in
//! EXODUS: an OID names the disk location of an object. We encode
//! `(file: u16, page: u32, slot: u16)` in exactly 8 bytes. Because OIDs are
//! physical, "keeping OIDs in sorted order … allows us to propagate updates
//! in clustered order" (§4.1) — sorting OIDs sorts by page.

use std::fmt;

/// Identifier of a disk file (one named set, index, or link file).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FileId(pub u16);

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F{}", self.0)
    }
}

/// Identifier of one 4 KiB page within a file.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PageId {
    /// The containing file.
    pub file: FileId,
    /// Zero-based page number within the file.
    pub page: u32,
}

impl PageId {
    /// Construct a page id.
    pub fn new(file: FileId, page: u32) -> Self {
        PageId { file, page }
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:P{}", self.file, self.page)
    }
}

/// An 8-byte physical object identifier: file, page, and slot.
///
/// `Ord` sorts by (file, page, slot), i.e. by physical location; the
/// replication engine relies on this to visit link objects and propagate
/// updates in clustered order (§4.1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Oid {
    /// The containing file.
    pub file: FileId,
    /// Page number within the file.
    pub page: u32,
    /// Slot number within the page.
    pub slot: u16,
}

/// Number of bytes in a serialized OID (Figure 10: `sizeof(OID) = 8`).
pub const OID_BYTES: usize = 8;

impl Oid {
    /// The distinguished null OID (used for unset reference attributes).
    /// File `u16::MAX` is never allocated by any disk manager.
    pub const NULL: Oid = Oid {
        file: FileId(u16::MAX),
        page: u32::MAX,
        slot: u16::MAX,
    };

    /// Construct an OID.
    pub fn new(file: FileId, page: u32, slot: u16) -> Self {
        Oid { file, page, slot }
    }

    /// True if this is [`Oid::NULL`].
    pub fn is_null(&self) -> bool {
        *self == Oid::NULL
    }

    /// The page this OID lives on.
    pub fn page_id(&self) -> PageId {
        PageId {
            file: self.file,
            page: self.page,
        }
    }

    /// Serialize to the fixed 8-byte on-disk form (big-endian, so that a
    /// bytewise sort equals physical order).
    pub fn to_bytes(self) -> [u8; OID_BYTES] {
        let mut b = [0u8; OID_BYTES];
        b[0..2].copy_from_slice(&self.file.0.to_be_bytes());
        b[2..6].copy_from_slice(&self.page.to_be_bytes());
        b[6..8].copy_from_slice(&self.slot.to_be_bytes());
        b
    }

    /// Deserialize from the 8-byte on-disk form.
    pub fn from_bytes(b: &[u8]) -> Self {
        debug_assert!(b.len() >= OID_BYTES);
        Oid {
            file: FileId(u16::from_be_bytes([b[0], b[1]])),
            page: u32::from_be_bytes([b[2], b[3], b[4], b[5]]),
            slot: u16::from_be_bytes([b[6], b[7]]),
        }
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "NULL-OID")
        } else {
            write!(f, "{}:P{}:S{}", self.file, self.page, self.slot)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oid_roundtrip() {
        let o = Oid::new(FileId(7), 123_456, 42);
        assert_eq!(Oid::from_bytes(&o.to_bytes()), o);
        assert_eq!(Oid::from_bytes(&Oid::NULL.to_bytes()), Oid::NULL);
    }

    #[test]
    fn oid_byte_order_matches_physical_order() {
        // Sorting serialized OIDs bytewise must equal sorting Oids.
        let a = Oid::new(FileId(1), 2, 300);
        let b = Oid::new(FileId(1), 3, 0);
        let c = Oid::new(FileId(2), 0, 0);
        assert!(a < b && b < c);
        assert!(a.to_bytes() < b.to_bytes());
        assert!(b.to_bytes() < c.to_bytes());
    }

    #[test]
    fn null_oid() {
        assert!(Oid::NULL.is_null());
        assert!(!Oid::new(FileId(0), 0, 0).is_null());
    }
}
