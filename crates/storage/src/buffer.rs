//! Buffer pool with clock eviction and pinned page handles.
//!
//! Pages are served through [`PageHandle`]s. A handle pins its frame: the
//! clock hand skips pinned frames, so on-page references stay valid while a
//! caller holds the handle. Handles are cheap `Arc` clones; dropping the
//! last clone unpins the frame.
//!
//! The pool tracks hits, misses, and eviction write-backs. Together with
//! the disk manager's physical counters this is the complete I/O profile
//! the benchmark harness reports.

use crate::disk::DiskManager;
use crate::error::{Result, StorageError};
use crate::oid::{FileId, PageId};
use crate::page::PAGE_SIZE;
use crate::stats::IoProfile;
use fieldrep_obs::io as obs_io;
use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;

/// A page buffer: the unit the pool caches.
pub type PageBuf = Box<[u8; PAGE_SIZE]>;

struct FrameInner {
    data: RwLock<PageBuf>,
    dirty: AtomicBool,
    pins: AtomicU32,
}

/// A pinned reference to a buffered page.
///
/// While any clone of the handle is alive the page cannot be evicted.
/// Reading goes through [`PageHandle::data`]; writing through
/// [`PageHandle::data_mut`], which also marks the frame dirty so the pool
/// writes it back on eviction or flush.
pub struct PageHandle {
    inner: Arc<FrameInner>,
    /// The page this handle refers to (for diagnostics).
    pub pid: PageId,
}

impl PageHandle {
    /// Shared read access to the page bytes.
    pub fn data(&self) -> RwLockReadGuard<'_, PageBuf> {
        self.inner.data.read()
    }

    /// Exclusive write access; marks the page dirty.
    pub fn data_mut(&self) -> RwLockWriteGuard<'_, PageBuf> {
        self.inner.dirty.store(true, Ordering::Relaxed);
        self.inner.data.write()
    }
}

impl Clone for PageHandle {
    fn clone(&self) -> Self {
        self.inner.pins.fetch_add(1, Ordering::Relaxed);
        PageHandle {
            inner: Arc::clone(&self.inner),
            pid: self.pid,
        }
    }
}

impl Drop for PageHandle {
    fn drop(&mut self) {
        self.inner.pins.fetch_sub(1, Ordering::Relaxed);
    }
}

struct Frame {
    inner: Arc<FrameInner>,
    pid: Option<PageId>,
    referenced: bool,
}

/// The buffer pool: a fixed set of frames over a [`DiskManager`].
pub struct BufferPool {
    frames: Vec<Frame>,
    map: HashMap<PageId, usize>,
    clock: usize,
    disk: Box<dyn DiskManager>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl BufferPool {
    /// Create a pool of `capacity` frames over `disk`.
    pub fn new(disk: Box<dyn DiskManager>, capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        let frames = (0..capacity)
            .map(|_| Frame {
                inner: Arc::new(FrameInner {
                    data: RwLock::new(Box::new([0u8; PAGE_SIZE])),
                    dirty: AtomicBool::new(false),
                    pins: AtomicU32::new(0),
                }),
                pid: None,
                referenced: false,
            })
            .collect();
        BufferPool {
            frames,
            map: HashMap::new(),
            clock: 0,
            disk,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Number of frames.
    pub fn capacity(&self) -> usize {
        self.frames.len()
    }

    /// Create a file on the backing disk.
    pub fn create_file(&mut self) -> Result<FileId> {
        self.disk.create_file()
    }

    /// Drop a file: discard its buffered pages (without write-back) and
    /// remove it from disk.
    pub fn drop_file(&mut self, file: FileId) -> Result<()> {
        let victims: Vec<PageId> = self
            .map
            .keys()
            .filter(|p| p.file == file)
            .copied()
            .collect();
        for pid in victims {
            let idx = self.map.remove(&pid).expect("victim was in map");
            let f = &mut self.frames[idx];
            f.pid = None;
            f.referenced = false;
            f.inner.dirty.store(false, Ordering::Relaxed);
        }
        self.disk.drop_file(file)
    }

    /// Number of pages in a file.
    pub fn page_count(&self, file: FileId) -> Result<u32> {
        self.disk.page_count(file)
    }

    /// Allocate a fresh page in `file` and return a pinned, formatted-blank
    /// (zeroed) handle to it. The page is dirty from birth so it reaches
    /// disk on flush.
    pub fn new_page(&mut self, file: FileId) -> Result<(PageId, PageHandle)> {
        let pid = self.disk.allocate_page(file)?;
        obs_io::record_disk_alloc();
        let idx = self.find_victim()?;
        self.install(idx, pid, None)?;
        let h = self.handle(idx, pid);
        h.inner.dirty.store(true, Ordering::Relaxed);
        Ok((pid, h))
    }

    /// Fetch page `pid`, reading it from disk on a miss.
    pub fn fetch(&mut self, pid: PageId) -> Result<PageHandle> {
        if let Some(&idx) = self.map.get(&pid) {
            self.hits += 1;
            obs_io::record_pool_hit();
            self.frames[idx].referenced = true;
            return Ok(self.handle(idx, pid));
        }
        self.misses += 1;
        obs_io::record_pool_miss();
        let idx = self.find_victim()?;
        self.install(idx, pid, Some(()))?;
        Ok(self.handle(idx, pid))
    }

    fn handle(&self, idx: usize, pid: PageId) -> PageHandle {
        let inner = Arc::clone(&self.frames[idx].inner);
        inner.pins.fetch_add(1, Ordering::Relaxed);
        PageHandle { inner, pid }
    }

    /// Clock sweep for an unpinned frame; evicts (writing back if dirty).
    fn find_victim(&mut self) -> Result<usize> {
        let n = self.frames.len();
        // Two full sweeps: the first clears reference bits, the second
        // takes the first unpinned frame.
        for _ in 0..2 * n {
            let idx = self.clock;
            self.clock = (self.clock + 1) % n;
            let frame = &mut self.frames[idx];
            if frame.inner.pins.load(Ordering::Relaxed) > 0 {
                continue;
            }
            if frame.referenced {
                frame.referenced = false;
                continue;
            }
            // Victim found: write back if needed.
            if let Some(old) = frame.pid.take() {
                if frame.inner.dirty.swap(false, Ordering::Relaxed) {
                    let data = frame.inner.data.read();
                    self.disk.write_page(old, &data)?;
                    self.evictions += 1;
                    obs_io::record_disk_write();
                    obs_io::record_eviction();
                }
                self.map.remove(&old);
            }
            return Ok(idx);
        }
        Err(StorageError::BufferExhausted)
    }

    /// Put `pid` into frame `idx`; `read` = Some(()) loads from disk,
    /// `None` zero-fills (fresh page).
    fn install(&mut self, idx: usize, pid: PageId, read: Option<()>) -> Result<()> {
        {
            let frame = &self.frames[idx];
            let mut data = frame.inner.data.write();
            match read {
                Some(()) => {
                    self.disk.read_page(pid, &mut data)?;
                    obs_io::record_disk_read();
                }
                None => data.fill(0),
            }
            frame.inner.dirty.store(false, Ordering::Relaxed);
        }
        self.frames[idx].pid = Some(pid);
        self.frames[idx].referenced = true;
        self.map.insert(pid, idx);
        Ok(())
    }

    /// Write back one page if buffered and dirty.
    pub fn flush_page(&mut self, pid: PageId) -> Result<()> {
        if let Some(&idx) = self.map.get(&pid) {
            let frame = &self.frames[idx];
            if frame.inner.dirty.swap(false, Ordering::Relaxed) {
                let data = frame.inner.data.read();
                self.disk.write_page(pid, &data)?;
                obs_io::record_disk_write();
            }
        }
        Ok(())
    }

    /// Write back all dirty pages and drop every unpinned frame's contents,
    /// leaving the pool cold. Fails if a page is still pinned.
    pub fn flush_all(&mut self) -> Result<()> {
        for idx in 0..self.frames.len() {
            let frame = &self.frames[idx];
            if frame.pid.is_none() {
                continue;
            }
            if frame.inner.pins.load(Ordering::Relaxed) > 0 {
                return Err(StorageError::BufferExhausted);
            }
            let pid = frame.pid.unwrap();
            if frame.inner.dirty.swap(false, Ordering::Relaxed) {
                let data = frame.inner.data.read();
                self.disk.write_page(pid, &data)?;
                obs_io::record_disk_write();
            }
            self.map.remove(&pid);
            self.frames[idx].pid = None;
            self.frames[idx].referenced = false;
        }
        Ok(())
    }

    /// Combined disk + pool statistics.
    pub fn io_profile(&self) -> IoProfile {
        IoProfile {
            disk: self.disk.stats(),
            pool_hits: self.hits,
            pool_misses: self.misses,
            evictions: self.evictions,
        }
    }

    /// Reset the **whole** I/O profile — disk counters (reads, writes,
    /// allocations) and pool counters (hits, misses, evictions) together.
    ///
    /// This is the single reset used for cold-pool accounting: resetting
    /// the disk and pool counters separately lets them drift out of a
    /// common baseline, which silently skews measured hit ratios.
    pub fn reset_profile(&mut self) {
        self.disk.reset_stats();
        self.hits = 0;
        self.misses = 0;
        self.evictions = 0;
    }

    /// Reset both disk and pool counters. Alias of
    /// [`BufferPool::reset_profile`], kept for existing call sites.
    pub fn reset_io(&mut self) {
        self.reset_profile();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    fn pool(cap: usize) -> BufferPool {
        BufferPool::new(Box::new(MemDisk::new()), cap)
    }

    #[test]
    fn fetch_hits_after_first_read() {
        let mut bp = pool(4);
        let f = bp.create_file().unwrap();
        let (pid, h) = bp.new_page(f).unwrap();
        h.data_mut()[0] = 42;
        drop(h);
        bp.flush_all().unwrap();

        let h = bp.fetch(pid).unwrap();
        assert_eq!(h.data()[0], 42);
        drop(h);
        let h = bp.fetch(pid).unwrap();
        drop(h);
        let prof = bp.io_profile();
        assert_eq!(prof.pool_misses, 1);
        assert_eq!(prof.pool_hits, 1);
        assert_eq!(prof.disk.reads, 1);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let mut bp = pool(2);
        let f = bp.create_file().unwrap();
        let mut pids = vec![];
        for i in 0..5u8 {
            let (pid, h) = bp.new_page(f).unwrap();
            h.data_mut()[0] = i;
            pids.push(pid);
        }
        // All five pages must read back with their bytes even though the
        // pool only has two frames.
        for (i, pid) in pids.iter().enumerate() {
            let h = bp.fetch(*pid).unwrap();
            assert_eq!(h.data()[0], i as u8, "page {i}");
        }
    }

    #[test]
    fn pinned_pages_are_not_evicted() {
        let mut bp = pool(2);
        let f = bp.create_file().unwrap();
        let (pid0, h0) = bp.new_page(f).unwrap();
        h0.data_mut()[0] = 99;
        // Fill the other frame repeatedly; pid0 must survive because h0
        // is pinned.
        for _ in 0..3 {
            let (_, h) = bp.new_page(f).unwrap();
            h.data_mut()[1] = 1;
        }
        assert_eq!(h0.data()[0], 99);
        assert_eq!(h0.pid, pid0);
    }

    #[test]
    fn pool_exhaustion_errors() {
        let mut bp = pool(2);
        let f = bp.create_file().unwrap();
        let (_, _h0) = bp.new_page(f).unwrap();
        let (_, _h1) = bp.new_page(f).unwrap();
        assert!(matches!(bp.new_page(f), Err(StorageError::BufferExhausted)));
    }

    #[test]
    fn flush_all_leaves_pool_cold() {
        let mut bp = pool(4);
        let f = bp.create_file().unwrap();
        let (pid, h) = bp.new_page(f).unwrap();
        h.data_mut()[3] = 7;
        drop(h);
        bp.flush_all().unwrap();
        bp.reset_io();
        let h = bp.fetch(pid).unwrap();
        assert_eq!(h.data()[3], 7);
        drop(h);
        let prof = bp.io_profile();
        assert_eq!(prof.pool_misses, 1, "pool was cold after flush_all");
        assert_eq!(prof.disk.reads, 1);
    }

    #[test]
    fn drop_file_discards_buffered_pages() {
        let mut bp = pool(4);
        let f = bp.create_file().unwrap();
        let (pid, h) = bp.new_page(f).unwrap();
        h.data_mut()[0] = 1;
        drop(h);
        bp.drop_file(f).unwrap();
        assert!(bp.fetch(pid).is_err());
    }

    #[test]
    fn handle_clone_keeps_pin() {
        let mut bp = pool(2);
        let f = bp.create_file().unwrap();
        let (_, h) = bp.new_page(f).unwrap();
        let h2 = h.clone();
        drop(h);
        // Still pinned via h2: filling the pool leaves one frame usable.
        let (_, _a) = bp.new_page(f).unwrap();
        assert!(matches!(bp.new_page(f), Err(StorageError::BufferExhausted)));
        drop(h2);
        assert!(bp.new_page(f).is_ok());
    }
}
