//! Sharded buffer pool with clock eviction, pinned page handles, and a
//! batched read fast path.
//!
//! Pages are served through [`PageHandle`]s. A handle pins its frame: the
//! clock hand skips pinned frames, so on-page references stay valid while a
//! caller holds the handle. Handles are cheap `Arc` clones; dropping the
//! last clone unpins the frame.
//!
//! The frame array is split into **shards** selected by a multiplicative
//! hash of the page id. Each shard has its own clock hand and resident-page
//! map, so victim searches and lookups touch only a fraction of the pool;
//! hit/miss/eviction counters are lock-free atomics. A shard whose frames
//! are all pinned *steals* a victim from the next shard (counted by the
//! `storage.pool.shard_contention` metric), which preserves the invariant
//! that an allocation only fails when every frame in the pool is pinned.
//!
//! [`BufferPool::get_pages_batch`] is the batched fast path the paper's
//! sorted link objects make possible (§4.1.3): a sorted page-id run is
//! split into maximal adjacent runs and each run is moved with one
//! [`DiskManager::read_pages`] call (single seek / vectored read). The
//! [`BufferPool::prefetch`] hint reads pages ahead without pinning them;
//! `storage.prefetch.{issued,hit}` track how often the hint paid off.
//!
//! The pool tracks hits, misses, and eviction write-backs. Together with
//! the disk manager's physical counters this is the complete I/O profile
//! the benchmark harness reports. Batched and per-page paths record the
//! identical per-page events, so page-I/O totals are independent of the
//! access path; only the grouped-call count (`IoStats::read_calls`) and
//! the `storage.disk.batch_len` histogram reveal the batching.
//!
//! # Concurrency
//!
//! The pool is shared (`&self` everywhere): all frame *metadata* — the
//! resident maps, clock hands, victim selection, and the disk manager —
//! lives behind one [`Mutex<PoolCore>`]. Keeping that state under a single
//! lock makes every single-threaded run take exactly the eviction
//! decisions and count exactly the I/O events the pre-concurrency pool
//! did (the bit-identical page-I/O invariant the bench gate enforces).
//! Page *bytes* stay parallel: the core mutex is released before the
//! caller touches data, and reads/writes go through each frame's own
//! `RwLock<PageBuf>`, so concurrent readers of distinct (or the same)
//! resident pages never serialize on the pool. The lock order is
//! `PoolCore` → frame data, and the pool only data-locks unpinned frames
//! (eviction, install) or freshly claimed ones (`read_run`), so a caller
//! holding a pinned page's guard can never deadlock against the pool.
//!
//! With a WAL attached the order grows a head: **apply section →
//! `PoolCore`**. Flushes take the apply section before the core lock
//! (write-back autocommits unlogged pages, which must not observe a
//! half-applied operation), while eviction — which runs *inside* the
//! core lock — only probes the section non-blockingly: a dirty
//! unlogged frame is simply not an eviction victim while a writer is
//! in flight (no-steal for open operations; see `sweep_shard`).

use crate::checksum;
use crate::disk::DiskManager;
use crate::error::{Result, StorageError};
use crate::lockorder;
use crate::oid::{FileId, PageId};
use crate::page::PAGE_SIZE;
use crate::stats::IoProfile;
use crate::wal::Wal;
use fieldrep_obs::{io as obs_io, metrics, names as obs_names};
use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// A page buffer: the unit the pool caches.
pub type PageBuf = Box<[u8; PAGE_SIZE]>;

/// Shards per pool (capped by the frame count: a pool never has more
/// shards than frames).
const DEFAULT_SHARDS: usize = 8;

/// Cap on one grouped disk read, in pages (256 KiB): bounds the frames a
/// single batch pins and the size of a vectored transfer.
const MAX_BATCH_RUN: usize = 64;

/// Process-wide pool instruments, registered once in the obs registry.
struct PoolMetrics {
    /// `storage.pool.shard_contention`: victim searches that had to steal
    /// a frame from a non-home shard.
    shard_contention: Arc<metrics::Counter>,
    /// `storage.prefetch.issued`: pages read ahead by [`BufferPool::prefetch`].
    prefetch_issued: Arc<metrics::Counter>,
    /// `storage.prefetch.hit`: fetches served from a still-resident
    /// prefetched frame (first touch only).
    prefetch_hit: Arc<metrics::Counter>,
    /// `storage.disk.batch_len`: pages per grouped disk read.
    batch_len: Arc<metrics::Histogram>,
    /// `storage.checksum.failures`: pages that failed CRC verification
    /// on read.
    checksum_failures: Arc<metrics::Counter>,
}

fn pool_metrics() -> &'static PoolMetrics {
    static METRICS: OnceLock<PoolMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = metrics::registry();
        PoolMetrics {
            shard_contention: r.counter(obs_names::STORAGE_POOL_SHARD_CONTENTION),
            prefetch_issued: r.counter(obs_names::STORAGE_PREFETCH_ISSUED),
            prefetch_hit: r.counter(obs_names::STORAGE_PREFETCH_HIT),
            batch_len: r.histogram(
                obs_names::STORAGE_DISK_BATCH_LEN,
                &[1, 2, 4, 8, 16, 32, 64, 128],
            ),
            checksum_failures: r.counter(obs_names::STORAGE_CHECKSUM_FAILURES),
        }
    })
}

// ---- Debug-build lock discipline ----------------------------------------
//
// The pool's deadlock-freedom argument is simple: a thread holds at most
// one page write guard at a time, except inside the ordered batch helper
// ([`BufferPool::get_pages_batch`] → `read_run`), which locks only
// freshly claimed victim frames in sorted page order from a single site.
// These thread-local counters enforce the "at most one, or batched" half
// in debug builds; release builds compile the checks away.
#[cfg(debug_assertions)]
mod lockcheck {
    use std::cell::Cell;

    thread_local! {
        /// Live write guards handed out by `PageHandle::data_mut` on this
        /// thread.
        static LIVE_WRITE_GUARDS: Cell<usize> = const { Cell::new(0) };
        /// Whether this thread is inside the ordered batch helper.
        static IN_ORDERED_BATCH: Cell<bool> = const { Cell::new(false) };
    }

    pub(super) fn guard_acquired() {
        LIVE_WRITE_GUARDS.with(|c| c.set(c.get() + 1));
    }

    pub(super) fn guard_released() {
        LIVE_WRITE_GUARDS.with(|c| c.set(c.get().saturating_sub(1)));
    }

    /// Trip (debug builds) if a frame lock is about to be taken while a
    /// page write guard is live outside the ordered batch helper.
    pub(super) fn check_frame_acquire(op: &str) {
        let live = LIVE_WRITE_GUARDS.with(Cell::get);
        let batched = IN_ORDERED_BATCH.with(Cell::get);
        debug_assert!(
            live == 0 || batched,
            "lock discipline: {op} while {live} page write guard(s) are live \
             on this thread; route multi-page work through \
             BufferPool::get_pages_batch (the ordered batch helper) or drop \
             the guard first"
        );
    }

    /// RAII marker for the ordered batch helper's dynamic extent.
    pub(super) struct BatchScope {
        prev: bool,
    }

    impl BatchScope {
        pub(super) fn enter() -> BatchScope {
            BatchScope {
                prev: IN_ORDERED_BATCH.with(|c| c.replace(true)),
            }
        }
    }

    impl Drop for BatchScope {
        fn drop(&mut self) {
            IN_ORDERED_BATCH.with(|c| c.set(self.prev));
        }
    }
}

/// Runtime lock-order token for the pool metadata mutex (rank
/// [`lockorder::POOL_CORE`]); bound right before each `core.lock()`.
fn core_order() -> lockorder::Held {
    lockorder::acquired(lockorder::POOL_CORE, false, "PoolCore")
}

struct FrameInner {
    data: RwLock<PageBuf>,
    dirty: AtomicBool,
    pins: AtomicU32,
    /// Dirty but not yet covered by any WAL record. Set with `dirty`,
    /// cleared when a commit logs the page (or the write-back path
    /// autocommits it). Meaningless when the pool has no WAL.
    unlogged: AtomicBool,
    /// LSN of the last commit record covering this page's image; the
    /// steal rule requires it durable before write-back.
    lsn: AtomicU64,
}

/// Write guard over a page's bytes, returned by [`PageHandle::data_mut`].
///
/// Dereferences to the page buffer. Debug builds count live guards per
/// thread to enforce the pool's lock discipline (see the lint's L4 rule).
pub struct PageWriteGuard<'a> {
    guard: RwLockWriteGuard<'a, PageBuf>,
    _order: lockorder::Held,
}

impl std::ops::Deref for PageWriteGuard<'_> {
    type Target = PageBuf;
    fn deref(&self) -> &PageBuf {
        &self.guard
    }
}

impl std::ops::DerefMut for PageWriteGuard<'_> {
    fn deref_mut(&mut self) -> &mut PageBuf {
        &mut self.guard
    }
}

#[cfg(debug_assertions)]
impl Drop for PageWriteGuard<'_> {
    fn drop(&mut self) {
        lockcheck::guard_released();
    }
}

/// A pinned reference to a buffered page.
///
/// While any clone of the handle is alive the page cannot be evicted.
/// Reading goes through [`PageHandle::data`]; writing through
/// [`PageHandle::data_mut`], which also marks the frame dirty so the pool
/// writes it back on eviction or flush.
pub struct PageHandle {
    inner: Arc<FrameInner>,
    /// The page this handle refers to (for diagnostics).
    pub pid: PageId,
}

impl PageHandle {
    /// Shared read access to the page bytes.
    pub fn data(&self) -> RwLockReadGuard<'_, PageBuf> {
        self.inner.data.read()
    }

    /// Exclusive write access; marks the page dirty.
    pub fn data_mut(&self) -> PageWriteGuard<'_> {
        // Frame latches are a reentrant rank family: multi-frame work
        // goes through the ordered batch helper (checked separately by
        // the guard counters below).
        let order = lockorder::acquired(lockorder::FRAME_DATA, true, "FrameData");
        let guard = self.inner.data.write();
        #[cfg(debug_assertions)]
        lockcheck::guard_acquired();
        // The dirty store must come *after* lock acquisition: flagging
        // first would let a flush racing with a still-blocked writer
        // count a spurious write-back for a page that hasn't changed.
        self.inner.dirty.store(true, Ordering::Relaxed);
        self.inner.unlogged.store(true, Ordering::Relaxed);
        PageWriteGuard {
            guard,
            _order: order,
        }
    }

    /// Whether the frame is currently marked dirty (write-back pending).
    pub fn is_dirty(&self) -> bool {
        self.inner.dirty.load(Ordering::Relaxed)
    }
}

impl Clone for PageHandle {
    fn clone(&self) -> Self {
        self.inner.pins.fetch_add(1, Ordering::Relaxed);
        PageHandle {
            inner: Arc::clone(&self.inner),
            pid: self.pid,
        }
    }
}

impl Drop for PageHandle {
    fn drop(&mut self) {
        self.inner.pins.fetch_sub(1, Ordering::Relaxed);
    }
}

struct Frame {
    inner: Arc<FrameInner>,
    pid: Option<PageId>,
    referenced: bool,
    /// Set when the frame was filled by [`BufferPool::prefetch`] and not
    /// yet touched by a fetch (drives `storage.prefetch.hit`).
    prefetched: bool,
}

/// One shard: a contiguous frame range with its own clock hand and
/// resident-page map. Pages hash to a *home* shard; a frame stolen from
/// another shard is still registered in the home shard's map.
struct Shard {
    /// First frame index owned by this shard.
    start: usize,
    /// Number of frames owned.
    len: usize,
    /// Clock hand, as a global frame index within `start..start + len`.
    clock: usize,
    /// Resident pages whose home is this shard → global frame index.
    map: HashMap<PageId, usize>,
}

/// The home shard of a page id under `n` shards (multiplicative hash).
fn home_shard(pid: PageId, n: usize) -> usize {
    let h = ((pid.file.0 as u64) << 32) ^ (pid.page as u64);
    let h = h.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (((h >> 32) as usize) * n) >> 32
}

/// The buffer pool: a fixed set of frames over a [`DiskManager`],
/// partitioned into hash-selected shards.
///
/// All methods take `&self`: frame metadata and the disk live behind one
/// internal mutex (see the module docs), while page bytes are accessed in
/// parallel through the per-frame locks of the returned [`PageHandle`]s.
pub struct BufferPool {
    core: Mutex<PoolCore>,
    /// The WAL, if durability is enabled (fixed at construction;
    /// readable without locking).
    wal: Option<Arc<Wal>>,
    /// Frame count (fixed at construction; readable without locking).
    capacity: usize,
    /// Shard count (fixed at construction; readable without locking).
    shard_count: usize,
}

/// All lock-protected pool state: frames, shards, counters, and the disk.
struct PoolCore {
    frames: Vec<Frame>,
    shards: Vec<Shard>,
    disk: Box<dyn DiskManager>,
    wal: Option<Arc<Wal>>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Write one frame's bytes back to `pid`, enforcing the WAL steal rule
/// and stamping the durability header (LSN + CRC) into a copy — the
/// resident frame bytes are never mutated, so concurrent readers under
/// the frame's read lock see a stable image.
fn write_back_frame(
    disk: &mut dyn DiskManager,
    wal: Option<&Wal>,
    pid: PageId,
    inner: &FrameInner,
) -> Result<()> {
    let mut copy: PageBuf = inner.data.read().clone();
    let lsn = match wal {
        Some(w) => {
            if inner.unlogged.swap(false, Ordering::Relaxed) {
                // No transaction logged this page: log it now as a
                // single-page implicit transaction (made durable inside)
                // so the WAL invariant holds for every write-back.
                match w.autocommit_page(pid, &copy) {
                    Ok(lsn) => {
                        inner.lsn.store(lsn, Ordering::Relaxed);
                        lsn
                    }
                    Err(e) => {
                        inner.unlogged.store(true, Ordering::Relaxed);
                        return Err(e);
                    }
                }
            } else {
                // The steal rule: covering log records must be durable
                // before the page image may overwrite its disk home.
                let lsn = inner.lsn.load(Ordering::Relaxed);
                w.ensure_durable(lsn)?;
                lsn
            }
        }
        None => inner.lsn.load(Ordering::Relaxed),
    };
    checksum::stamp(&mut copy, lsn);
    disk.write_page(pid, &copy)
}

impl BufferPool {
    /// Create a pool of `capacity` frames over `disk`, with no WAL.
    pub fn new(disk: Box<dyn DiskManager>, capacity: usize) -> Self {
        Self::new_with_wal(disk, capacity, None)
    }

    /// Create a pool of `capacity` frames over `disk`. When `wal` is
    /// given, every write-back enforces the steal rule (log records
    /// durable first; unlogged dirty pages are autocommitted inline).
    pub fn new_with_wal(
        disk: Box<dyn DiskManager>,
        capacity: usize,
        wal: Option<Arc<Wal>>,
    ) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        let frames = (0..capacity)
            .map(|_| Frame {
                inner: Arc::new(FrameInner {
                    data: RwLock::new(Box::new([0u8; PAGE_SIZE])),
                    dirty: AtomicBool::new(false),
                    pins: AtomicU32::new(0),
                    unlogged: AtomicBool::new(false),
                    lsn: AtomicU64::new(0),
                }),
                pid: None,
                referenced: false,
                prefetched: false,
            })
            .collect();
        let n = DEFAULT_SHARDS.min(capacity);
        let (base, rem) = (capacity / n, capacity % n);
        let mut shards = Vec::with_capacity(n);
        let mut start = 0;
        for i in 0..n {
            let len = base + usize::from(i < rem);
            shards.push(Shard {
                start,
                len,
                clock: start,
                map: HashMap::new(),
            });
            start += len;
        }
        BufferPool {
            core: Mutex::new(PoolCore {
                frames,
                shards,
                disk,
                wal: wal.clone(),
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
            wal,
            capacity,
            shard_count: n,
        }
    }

    /// The pool's WAL, if durability is enabled.
    pub fn wal(&self) -> Option<&Arc<Wal>> {
        self.wal.as_ref()
    }

    /// Issue a durability barrier on the backing disk (fsync every data
    /// file on a [`crate::FileDisk`]).
    pub fn sync_disk(&self) -> Result<()> {
        let _o = core_order();
        self.core.lock().disk.sync()
    }

    /// Log the current set of dirty-but-unlogged pages as one committed
    /// transaction and return its commit LSN (`None` when the pool has
    /// no WAL or the commit touched no pages). The caller must hold the
    /// WAL's serialized apply section, and *every* engine write path
    /// must run inside that section — then the swept frames are the
    /// committing transaction's write set plus, possibly, leftover
    /// pages of already-*completed* unlogged operations (safe to fold
    /// into this commit; they were applied in full and would otherwise
    /// be autocommitted at eviction). No half-applied operation's page
    /// can ever be captured. Does **not** fsync — pass the LSN to
    /// [`Wal::sync_to`] so concurrent commits group-commit.
    pub fn log_txn_commit(&self) -> Result<Option<u64>> {
        let Some(wal) = self.wal.as_ref() else {
            return Ok(None);
        };
        // Pin the write set under the pool lock so none of it can be
        // evicted (and its frame reused) between the scan and the
        // snapshot below.
        let mut handles: Vec<PageHandle> = Vec::new();
        {
            let _o = core_order();
            let core = self.core.lock();
            for (idx, f) in core.frames.iter().enumerate() {
                if let Some(pid) = f.pid {
                    if f.inner.dirty.load(Ordering::Relaxed)
                        && f.inner.unlogged.load(Ordering::Relaxed)
                    {
                        handles.push(core.handle(idx, pid));
                    }
                }
            }
        }
        if handles.is_empty() {
            return Ok(None);
        }
        handles.sort_by_key(|h| h.pid);
        let images: Vec<(PageId, PageBuf)> = handles
            .iter()
            .map(|h| (h.pid, h.inner.data.read().clone()))
            .collect();
        let refs: Vec<(PageId, &[u8; PAGE_SIZE])> =
            images.iter().map(|(pid, b)| (*pid, &**b)).collect();
        let txn = wal.begin_txn();
        let lsn = wal.append_commit(txn, &refs)?;
        for h in &handles {
            h.inner.lsn.store(lsn, Ordering::Relaxed);
            h.inner.unlogged.store(false, Ordering::Relaxed);
        }
        Ok(Some(lsn))
    }

    /// Number of frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of shards the frame array is partitioned into.
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// The home shard of a page id (multiplicative hash; exposed so the
    /// distribution can be property-tested).
    pub fn shard_of(&self, pid: PageId) -> usize {
        home_shard(pid, self.shard_count)
    }

    /// Create a file on the backing disk.
    pub fn create_file(&self) -> Result<FileId> {
        let _o = core_order();
        self.core.lock().disk.create_file()
    }

    /// Drop a file: discard its buffered pages (without write-back) and
    /// remove it from disk.
    pub fn drop_file(&self, file: FileId) -> Result<()> {
        let _o = core_order();
        self.core.lock().drop_file(file)
    }

    /// Number of pages in a file.
    pub fn page_count(&self, file: FileId) -> Result<u32> {
        let _o = core_order();
        self.core.lock().disk.page_count(file)
    }

    /// Allocate a fresh page in `file` and return a pinned, formatted-blank
    /// (zeroed) handle to it. The page is dirty from birth so it reaches
    /// disk on flush.
    pub fn new_page(&self, file: FileId) -> Result<(PageId, PageHandle)> {
        #[cfg(debug_assertions)]
        lockcheck::check_frame_acquire("BufferPool::new_page");
        let _o = core_order();
        self.core.lock().new_page(file)
    }

    /// Fetch page `pid`, reading it from disk on a miss.
    pub fn fetch(&self, pid: PageId) -> Result<PageHandle> {
        #[cfg(debug_assertions)]
        lockcheck::check_frame_acquire("BufferPool::fetch");
        let _o = core_order();
        self.core.lock().fetch(pid)
    }

    /// Fetch a set of pages with grouped disk reads: the distinct page
    /// ids are sorted into physical order, resident pages are pinned as
    /// hits, and each maximal run of adjacent missing pages is moved with
    /// one [`DiskManager::read_pages`] call. Returns one pinned handle
    /// per *input* id, in input order (duplicates get handle clones).
    ///
    /// Every page of the batch stays pinned until its returned handle is
    /// dropped, so batches are bounded by pool capacity; callers with
    /// large sorted runs chunk them (see `oid_page_chunks` in the crate
    /// root).
    pub fn get_pages_batch(&self, pids: &[PageId]) -> Result<Vec<PageHandle>> {
        if pids.is_empty() {
            return Ok(Vec::new());
        }
        // This *is* the ordered batch helper: frame locks below are taken
        // in sorted page order from a single site, so a caller-held write
        // guard cannot form a cycle with them.
        #[cfg(debug_assertions)]
        let _batch = lockcheck::BatchScope::enter();
        let _exempt = lockorder::frame_batch_exempt();
        let _o = core_order();
        self.core.lock().get_pages_batch(pids)
    }

    /// Read-ahead hint: load the given pages into the pool (grouped like
    /// [`BufferPool::get_pages_batch`]) **without** pinning them. Pages
    /// already resident are skipped with no counter effect, so issuing a
    /// prefetch never changes page-I/O totals relative to fetching the
    /// pages directly — it only turns the later fetch into a hit.
    pub fn prefetch(&self, pids: &[PageId]) -> Result<()> {
        #[cfg(debug_assertions)]
        lockcheck::check_frame_acquire("BufferPool::prefetch");
        #[cfg(debug_assertions)]
        let _batch = lockcheck::BatchScope::enter();
        let _exempt = lockorder::frame_batch_exempt();
        let _o = core_order();
        self.core.lock().prefetch(pids)
    }

    /// Write back one page if buffered and dirty.
    pub fn flush_page(&self, pid: PageId) -> Result<()> {
        // Unlogged dirty pages are autocommitted at write-back, so
        // exclude in-flight writers (apply-section holders): a flush
        // must never make half an operation durable. Lock order is
        // apply → core (eviction inside core only *probes* apply).
        let _apply = self.wal.as_ref().map(|w| w.apply_lock());
        let _o = core_order();
        self.core.lock().flush_page(pid)
    }

    /// Write back all dirty pages and drop every unpinned frame's contents,
    /// leaving the pool cold. Fails if a page is still pinned.
    pub fn flush_all(&self) -> Result<()> {
        // See flush_page for why the apply section is held.
        let _apply = self.wal.as_ref().map(|w| w.apply_lock());
        let _o = core_order();
        self.core.lock().flush_all()
    }

    /// Combined disk + pool statistics.
    pub fn io_profile(&self) -> IoProfile {
        let _o = core_order();
        let core = self.core.lock();
        IoProfile {
            disk: core.disk.stats(),
            pool_hits: core.hits,
            pool_misses: core.misses,
            evictions: core.evictions,
        }
    }

    /// Reset the **whole** I/O profile — disk counters (reads, writes,
    /// allocations) and pool counters (hits, misses, evictions) together.
    ///
    /// This is the single reset used for cold-pool accounting: resetting
    /// the disk and pool counters separately lets them drift out of a
    /// common baseline, which silently skews measured hit ratios.
    pub fn reset_profile(&self) {
        let _o = core_order();
        let mut core = self.core.lock();
        core.disk.reset_stats();
        core.hits = 0;
        core.misses = 0;
        core.evictions = 0;
    }

    /// Reset both disk and pool counters. Alias of
    /// [`BufferPool::reset_profile`], kept for existing call sites.
    pub fn reset_io(&self) {
        self.reset_profile();
    }

    /// Point-in-time per-shard state, for the `sys.pool` virtual table.
    ///
    /// Reads only in-memory frame flags — no page I/O — so introspection
    /// queries cannot perturb the pool counters they report on.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        let _o = core_order();
        self.core.lock().shard_stats()
    }
}

impl PoolCore {
    fn shard_of(&self, pid: PageId) -> usize {
        home_shard(pid, self.shards.len())
    }

    fn drop_file(&mut self, file: FileId) -> Result<()> {
        for s in 0..self.shards.len() {
            let victims: Vec<PageId> = self.shards[s]
                .map
                .keys()
                .filter(|p| p.file == file)
                .copied()
                .collect();
            for pid in victims {
                let idx = self.shards[s].map.remove(&pid).expect("victim was in map");
                let f = &mut self.frames[idx];
                debug_assert!(
                    f.inner.pins.load(Ordering::Relaxed) == 0,
                    "pin leak: dropping {file:?} while its page {pid:?} is \
                     still pinned"
                );
                f.pid = None;
                f.referenced = false;
                f.prefetched = false;
                f.inner.dirty.store(false, Ordering::Relaxed);
            }
        }
        self.disk.drop_file(file)
    }

    fn new_page(&mut self, file: FileId) -> Result<(PageId, PageHandle)> {
        let pid = self.disk.allocate_page(file)?;
        obs_io::record_disk_alloc();
        let idx = self.find_victim(self.shard_of(pid))?;
        self.install(idx, pid, false)?;
        let h = self.handle(idx, pid);
        h.inner.dirty.store(true, Ordering::Relaxed);
        h.inner.unlogged.store(true, Ordering::Relaxed);
        Ok((pid, h))
    }

    fn fetch(&mut self, pid: PageId) -> Result<PageHandle> {
        let home = self.shard_of(pid);
        if let Some(&idx) = self.shards[home].map.get(&pid) {
            self.hits += 1;
            obs_io::record_pool_hit();
            self.note_prefetch_hit(idx);
            self.frames[idx].referenced = true;
            return Ok(self.handle(idx, pid));
        }
        self.misses += 1;
        obs_io::record_pool_miss();
        let idx = self.find_victim(home)?;
        self.install(idx, pid, true)?;
        Ok(self.handle(idx, pid))
    }

    fn get_pages_batch(&mut self, pids: &[PageId]) -> Result<Vec<PageHandle>> {
        let mut uniq: Vec<PageId> = pids.to_vec();
        uniq.sort_unstable();
        uniq.dedup();
        let mut got: HashMap<PageId, PageHandle> = HashMap::with_capacity(uniq.len());
        let mut missing: Vec<PageId> = Vec::new();
        for &pid in &uniq {
            let home = self.shard_of(pid);
            if let Some(&idx) = self.shards[home].map.get(&pid) {
                self.hits += 1;
                obs_io::record_pool_hit();
                self.note_prefetch_hit(idx);
                self.frames[idx].referenced = true;
                got.insert(pid, self.handle(idx, pid));
            } else {
                missing.push(pid);
            }
        }
        let max_run = self.max_batch_run();
        let mut i = 0;
        while i < missing.len() {
            let mut j = i + 1;
            while j < missing.len()
                && j - i < max_run
                && missing[j].file == missing[i].file
                && missing[j].page == missing[j - 1].page + 1
            {
                j += 1;
            }
            let handles = self.read_run(&missing[i..j], false)?;
            for (pid, h) in missing[i..j].iter().zip(handles) {
                got.insert(*pid, h);
            }
            i = j;
        }
        Ok(pids.iter().map(|p| got[p].clone()).collect())
    }

    fn prefetch(&mut self, pids: &[PageId]) -> Result<()> {
        let mut missing: Vec<PageId> = pids.to_vec();
        missing.sort_unstable();
        missing.dedup();
        missing.retain(|p| {
            let home = self.shard_of(*p);
            !self.shards[home].map.contains_key(p)
        });
        if missing.is_empty() {
            return Ok(());
        }
        pool_metrics().prefetch_issued.add(missing.len() as u64);
        let max_run = self.max_batch_run();
        let mut i = 0;
        while i < missing.len() {
            let mut j = i + 1;
            while j < missing.len()
                && j - i < max_run
                && missing[j].file == missing[i].file
                && missing[j].page == missing[j - 1].page + 1
            {
                j += 1;
            }
            let handles = self.read_run(&missing[i..j], true)?;
            drop(handles);
            i = j;
        }
        Ok(())
    }

    fn max_batch_run(&self) -> usize {
        (self.frames.len() / 2).clamp(1, MAX_BATCH_RUN)
    }

    /// Install and read one adjacent run of missing pages: pin a victim
    /// frame per page, then fill them all with a single grouped disk
    /// read. On any error the partially-installed run is rolled back.
    fn read_run(&mut self, run: &[PageId], prefetched: bool) -> Result<Vec<PageHandle>> {
        let mut idxs: Vec<usize> = Vec::with_capacity(run.len());
        let mut handles: Vec<PageHandle> = Vec::with_capacity(run.len());
        for &pid in run {
            let home = self.shard_of(pid);
            let idx = match self.find_victim(home) {
                Ok(i) => i,
                Err(e) => {
                    drop(handles);
                    self.uninstall_run(&idxs);
                    return Err(e);
                }
            };
            self.frames[idx].pid = Some(pid);
            self.frames[idx].referenced = true;
            self.frames[idx].prefetched = prefetched;
            self.shards[home].map.insert(pid, idx);
            handles.push(self.handle(idx, pid));
            idxs.push(idx);
        }
        let res = {
            let mut guards: Vec<RwLockWriteGuard<'_, PageBuf>> =
                handles.iter().map(|h| h.inner.data.write()).collect();
            let mut bufs: Vec<&mut [u8; PAGE_SIZE]> =
                guards.iter_mut().map(|g| &mut ***g).collect();
            self.disk.read_pages(run[0], &mut bufs).and_then(|()| {
                let mut lsns = Vec::with_capacity(bufs.len());
                for (i, buf) in bufs.iter().enumerate() {
                    if !checksum::verify(buf) {
                        pool_metrics().checksum_failures.inc();
                        return Err(StorageError::ChecksumMismatch(run[i]));
                    }
                    lsns.push(checksum::read_lsn(buf));
                }
                Ok(lsns)
            })
        };
        match res {
            Ok(lsns) => {
                for (h, lsn) in handles.iter().zip(lsns) {
                    h.inner.dirty.store(false, Ordering::Relaxed);
                    h.inner.unlogged.store(false, Ordering::Relaxed);
                    h.inner.lsn.store(lsn, Ordering::Relaxed);
                }
                self.misses += run.len() as u64;
                for _ in run {
                    obs_io::record_pool_miss();
                    obs_io::record_disk_read();
                }
                pool_metrics().batch_len.record(run.len() as u64);
                Ok(handles)
            }
            Err(e) => {
                drop(handles);
                self.uninstall_run(&idxs);
                Err(e)
            }
        }
    }

    /// Roll back frames claimed by a failed batch: clear their page ids
    /// and home-map entries. Callers drop the pinning handles first.
    fn uninstall_run(&mut self, idxs: &[usize]) {
        for &idx in idxs {
            debug_assert!(
                self.frames[idx].inner.pins.load(Ordering::Relaxed) == 0,
                "pin leak: rolling back batch frame {idx} while it is still \
                 pinned; callers must drop the run's handles before \
                 uninstall_run"
            );
            if let Some(pid) = self.frames[idx].pid.take() {
                let home = self.shard_of(pid);
                self.shards[home].map.remove(&pid);
            }
            self.frames[idx].referenced = false;
            self.frames[idx].prefetched = false;
        }
    }

    fn note_prefetch_hit(&mut self, idx: usize) {
        if self.frames[idx].prefetched {
            self.frames[idx].prefetched = false;
            pool_metrics().prefetch_hit.inc();
        }
    }

    fn handle(&self, idx: usize, pid: PageId) -> PageHandle {
        let inner = Arc::clone(&self.frames[idx].inner);
        inner.pins.fetch_add(1, Ordering::Relaxed);
        PageHandle { inner, pid }
    }

    /// Find an unpinned frame, sweeping the home shard's clock first and
    /// stealing from the other shards in order if every home frame is
    /// pinned. Fails only when all frames in the pool are pinned.
    fn find_victim(&mut self, home: usize) -> Result<usize> {
        let n = self.shards.len();
        for step in 0..n {
            let s = (home + step) % n;
            if let Some(idx) = self.sweep_shard(s)? {
                if step > 0 {
                    pool_metrics().shard_contention.inc();
                }
                return Ok(idx);
            }
        }
        Err(StorageError::BufferExhausted)
    }

    /// One clock sweep over shard `s`: two full rounds (the first clears
    /// reference bits, the second takes the first unpinned frame),
    /// evicting the victim's current page (with write-back if dirty).
    fn sweep_shard(&mut self, s: usize) -> Result<Option<usize>> {
        let (start, len) = (self.shards[s].start, self.shards[s].len);
        if len == 0 {
            return Ok(None);
        }
        for _ in 0..2 * len {
            let idx = self.shards[s].clock;
            self.shards[s].clock = start + (idx + 1 - start) % len;
            if self.frames[idx].inner.pins.load(Ordering::Relaxed) > 0 {
                continue;
            }
            if self.frames[idx].referenced {
                self.frames[idx].referenced = false;
                continue;
            }
            // Victim found: write back if needed, then unregister.
            if let Some(old) = self.frames[idx].pid {
                let inner = Arc::clone(&self.frames[idx].inner);
                let dirty = inner.dirty.load(Ordering::Relaxed);
                let unlogged = inner.unlogged.load(Ordering::Relaxed);
                let _apply = match self.wal.as_deref() {
                    Some(w) if dirty && unlogged => {
                        // No-steal for open operations: writing this
                        // page back would autocommit it, but a writer
                        // inside the apply section may have dirtied it
                        // mid-operation — making it durable now would
                        // commit half an operation (there is no undo).
                        // Probe the section without blocking (an
                        // apply-section holder may be waiting for the
                        // pool lock we hold); if a writer is in flight,
                        // the frame is not a victim. It becomes
                        // evictable once the operation finishes or a
                        // commit logs the page.
                        match w.try_apply_lock() {
                            Some(g) => Some(g),
                            None => continue,
                        }
                    }
                    _ => None,
                };
                if inner.dirty.swap(false, Ordering::Relaxed) {
                    if let Err(e) =
                        write_back_frame(self.disk.as_mut(), self.wal.as_deref(), old, &inner)
                    {
                        // Failed write-back must leave the page dirty:
                        // treating it as clean would silently drop its
                        // modifications at the next eviction.
                        inner.dirty.store(true, Ordering::Relaxed);
                        return Err(e);
                    }
                    self.evictions += 1;
                    obs_io::record_disk_write();
                    obs_io::record_eviction();
                }
                let old_home = self.shard_of(old);
                self.shards[old_home].map.remove(&old);
                self.frames[idx].pid = None;
            }
            self.frames[idx].prefetched = false;
            return Ok(Some(idx));
        }
        Ok(None)
    }

    /// Put `pid` into frame `idx`; `read` loads from disk, otherwise the
    /// frame is zero-filled (fresh page).
    fn install(&mut self, idx: usize, pid: PageId, read: bool) -> Result<()> {
        {
            let inner = Arc::clone(&self.frames[idx].inner);
            let mut data = inner.data.write();
            if read {
                self.disk.read_page(pid, &mut data)?;
                obs_io::record_disk_read();
                if !checksum::verify(&data) {
                    pool_metrics().checksum_failures.inc();
                    return Err(StorageError::ChecksumMismatch(pid));
                }
                inner
                    .lsn
                    .store(checksum::read_lsn(&data), Ordering::Relaxed);
            } else {
                data.fill(0);
                inner.lsn.store(0, Ordering::Relaxed);
            }
            inner.dirty.store(false, Ordering::Relaxed);
            inner.unlogged.store(false, Ordering::Relaxed);
        }
        self.frames[idx].pid = Some(pid);
        self.frames[idx].referenced = true;
        self.frames[idx].prefetched = false;
        let home = self.shard_of(pid);
        self.shards[home].map.insert(pid, idx);
        Ok(())
    }

    fn flush_page(&mut self, pid: PageId) -> Result<()> {
        let home = self.shard_of(pid);
        if let Some(&idx) = self.shards[home].map.get(&pid) {
            let inner = Arc::clone(&self.frames[idx].inner);
            if inner.dirty.swap(false, Ordering::Relaxed) {
                if let Err(e) =
                    write_back_frame(self.disk.as_mut(), self.wal.as_deref(), pid, &inner)
                {
                    inner.dirty.store(true, Ordering::Relaxed);
                    return Err(e);
                }
                obs_io::record_disk_write();
            }
        }
        Ok(())
    }

    fn flush_all(&mut self) -> Result<()> {
        for idx in 0..self.frames.len() {
            let frame = &self.frames[idx];
            if frame.pid.is_none() {
                continue;
            }
            if frame.inner.pins.load(Ordering::Relaxed) > 0 {
                return Err(StorageError::BufferExhausted);
            }
            let pid = frame.pid.unwrap();
            let inner = Arc::clone(&frame.inner);
            if inner.dirty.swap(false, Ordering::Relaxed) {
                if let Err(e) =
                    write_back_frame(self.disk.as_mut(), self.wal.as_deref(), pid, &inner)
                {
                    inner.dirty.store(true, Ordering::Relaxed);
                    return Err(e);
                }
                obs_io::record_disk_write();
            }
            let home = self.shard_of(pid);
            self.shards[home].map.remove(&pid);
            self.frames[idx].pid = None;
            self.frames[idx].referenced = false;
            self.frames[idx].prefetched = false;
        }
        Ok(())
    }

    fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, shard)| {
                let frames = &self.frames[shard.start..shard.start + shard.len];
                ShardStats {
                    shard: i,
                    frames: shard.len,
                    resident: shard.map.len(),
                    dirty: frames
                        .iter()
                        .filter(|f| f.pid.is_some() && f.inner.dirty.load(Ordering::Relaxed))
                        .count(),
                    pinned: frames
                        .iter()
                        .filter(|f| f.inner.pins.load(Ordering::Relaxed) > 0)
                        .count(),
                }
            })
            .collect()
    }
}

/// Point-in-time state of one buffer-pool shard (see
/// [`BufferPool::shard_stats`]).
#[derive(Clone, Copy, Debug)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Frames the shard owns.
    pub frames: usize,
    /// Resident pages whose *home* is this shard (a stolen frame counts
    /// toward the page's home shard, not the frame's physical shard).
    pub resident: usize,
    /// Physically-owned frames currently marked dirty.
    pub dirty: usize,
    /// Physically-owned frames currently pinned.
    pub pinned: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    fn pool(cap: usize) -> BufferPool {
        BufferPool::new(Box::new(MemDisk::new()), cap)
    }

    #[test]
    fn fetch_hits_after_first_read() {
        let bp = pool(4);
        let f = bp.create_file().unwrap();
        let (pid, h) = bp.new_page(f).unwrap();
        h.data_mut()[0] = 42;
        drop(h);
        bp.flush_all().unwrap();

        let h = bp.fetch(pid).unwrap();
        assert_eq!(h.data()[0], 42);
        drop(h);
        let h = bp.fetch(pid).unwrap();
        drop(h);
        let prof = bp.io_profile();
        assert_eq!(prof.pool_misses, 1);
        assert_eq!(prof.pool_hits, 1);
        assert_eq!(prof.disk.reads, 1);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let bp = pool(2);
        let f = bp.create_file().unwrap();
        let mut pids = vec![];
        for i in 0..5u8 {
            let (pid, h) = bp.new_page(f).unwrap();
            h.data_mut()[0] = i;
            pids.push(pid);
        }
        // All five pages must read back with their bytes even though the
        // pool only has two frames.
        for (i, pid) in pids.iter().enumerate() {
            let h = bp.fetch(*pid).unwrap();
            assert_eq!(h.data()[0], i as u8, "page {i}");
        }
    }

    #[test]
    fn pinned_pages_are_not_evicted() {
        let bp = pool(2);
        let f = bp.create_file().unwrap();
        let (pid0, h0) = bp.new_page(f).unwrap();
        h0.data_mut()[0] = 99;
        // Fill the other frame repeatedly; pid0 must survive because h0
        // is pinned.
        for _ in 0..3 {
            let (_, h) = bp.new_page(f).unwrap();
            h.data_mut()[1] = 1;
        }
        assert_eq!(h0.data()[0], 99);
        assert_eq!(h0.pid, pid0);
    }

    #[test]
    fn shard_stats_track_residency_dirt_and_pins() {
        let bp = pool(8);
        let f = bp.create_file().unwrap();
        let stats = bp.shard_stats();
        assert_eq!(stats.len(), bp.shard_count());
        assert_eq!(
            stats.iter().map(|s| s.frames).sum::<usize>(),
            bp.capacity(),
            "shards partition the frame array"
        );
        assert!(stats.iter().all(|s| s.resident == 0 && s.dirty == 0));

        let (pid, h) = bp.new_page(f).unwrap();
        h.data_mut()[0] = 1;
        let stats = bp.shard_stats();
        assert_eq!(stats.iter().map(|s| s.resident).sum::<usize>(), 1);
        assert_eq!(stats.iter().map(|s| s.dirty).sum::<usize>(), 1);
        assert_eq!(stats.iter().map(|s| s.pinned).sum::<usize>(), 1);
        assert_eq!(stats[bp.shard_of(pid)].resident, 1);

        drop(h);
        bp.flush_all().unwrap();
        let stats = bp.shard_stats();
        assert!(
            stats
                .iter()
                .all(|s| s.resident == 0 && s.dirty == 0 && s.pinned == 0),
            "flush_all leaves every shard cold"
        );
    }

    #[test]
    fn pool_exhaustion_errors() {
        let bp = pool(2);
        let f = bp.create_file().unwrap();
        let (_, _h0) = bp.new_page(f).unwrap();
        let (_, _h1) = bp.new_page(f).unwrap();
        assert!(matches!(bp.new_page(f), Err(StorageError::BufferExhausted)));
    }

    #[test]
    fn flush_all_leaves_pool_cold() {
        let bp = pool(4);
        let f = bp.create_file().unwrap();
        let (pid, h) = bp.new_page(f).unwrap();
        h.data_mut()[3] = 7;
        drop(h);
        bp.flush_all().unwrap();
        bp.reset_io();
        let h = bp.fetch(pid).unwrap();
        assert_eq!(h.data()[3], 7);
        drop(h);
        let prof = bp.io_profile();
        assert_eq!(prof.pool_misses, 1, "pool was cold after flush_all");
        assert_eq!(prof.disk.reads, 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "lock discipline")]
    fn out_of_order_frame_acquire_is_caught_in_debug() {
        let bp = pool(4);
        let f = bp.create_file().unwrap();
        let (_, h0) = bp.new_page(f).unwrap();
        let (p1, h1) = bp.new_page(f).unwrap();
        drop(h1);
        let _guard = h0.data_mut();
        // A second frame acquisition with the write guard live, outside
        // the ordered batch helper, must trip the debug check.
        let _ = bp.fetch(p1);
    }

    #[test]
    fn ordered_batch_with_live_guard_is_allowed() {
        let bp = pool(8);
        let f = bp.create_file().unwrap();
        let mut pids = vec![];
        for i in 0..3u8 {
            let (pid, h) = bp.new_page(f).unwrap();
            h.data_mut()[0] = i;
            pids.push(pid);
        }
        bp.flush_all().unwrap();
        let h0 = bp.fetch(pids[0]).unwrap();
        let guard = h0.data_mut();
        // Batched (sorted, single-site) acquisition is the sanctioned way
        // to touch more frames while a write guard is live; the two cold
        // pages below go through read_run's grouped locking.
        let hs = bp.get_pages_batch(&[pids[1], pids[2]]).unwrap();
        assert_eq!(hs[0].data()[0], 1);
        assert_eq!(hs[1].data()[0], 2);
        drop(guard);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "pin leak")]
    fn drop_file_with_pinned_page_is_caught_in_debug() {
        let bp = pool(4);
        let f = bp.create_file().unwrap();
        let (_pid, _h) = bp.new_page(f).unwrap();
        let _ = bp.drop_file(f);
    }

    #[test]
    fn drop_file_discards_buffered_pages() {
        let bp = pool(4);
        let f = bp.create_file().unwrap();
        let (pid, h) = bp.new_page(f).unwrap();
        h.data_mut()[0] = 1;
        drop(h);
        bp.drop_file(f).unwrap();
        assert!(bp.fetch(pid).is_err());
    }

    #[test]
    fn handle_clone_keeps_pin() {
        let bp = pool(2);
        let f = bp.create_file().unwrap();
        let (_, h) = bp.new_page(f).unwrap();
        let h2 = h.clone();
        drop(h);
        // Still pinned via h2: filling the pool leaves one frame usable.
        let (_, _a) = bp.new_page(f).unwrap();
        assert!(matches!(bp.new_page(f), Err(StorageError::BufferExhausted)));
        drop(h2);
        assert!(bp.new_page(f).is_ok());
    }

    /// Regression test for the `data_mut` ordering bug: the dirty flag
    /// must not be set while the writer is still blocked behind a read
    /// lock — a flush in that window would count a spurious write-back.
    #[test]
    fn data_mut_marks_dirty_only_after_acquiring_the_lock() {
        let bp = pool(2);
        let f = bp.create_file().unwrap();
        let (pid, h) = bp.new_page(f).unwrap();
        drop(h);
        bp.flush_all().unwrap();
        let h = bp.fetch(pid).unwrap();
        assert!(!h.is_dirty(), "freshly fetched page is clean");

        let guard = h.data();
        let h2 = h.clone();
        let writer = std::thread::spawn(move || {
            let mut g = h2.data_mut(); // blocks until the reader drops
            g[0] = 1;
        });
        // Give the writer ample time to reach (and block on) the lock.
        std::thread::sleep(std::time::Duration::from_millis(100));
        assert!(
            !h.is_dirty(),
            "page must not be dirty while the writer is still blocked"
        );
        drop(guard);
        writer.join().unwrap();
        assert!(h.is_dirty(), "page is dirty once the write completed");
    }

    /// Satellite coverage: the clock must route around many concurrently
    /// pinned frames (across shards) and only fail when every frame is
    /// pinned.
    #[test]
    fn clock_evicts_around_concurrently_pinned_frames() {
        let bp = pool(8);
        let f = bp.create_file().unwrap();
        // Pin six pages; their contents must survive arbitrary churn.
        let pinned: Vec<(PageId, PageHandle)> = (0..6u8)
            .map(|i| {
                let (pid, h) = bp.new_page(f).unwrap();
                h.data_mut()[0] = 0xA0 + i;
                (pid, h)
            })
            .collect();
        // Churn 20 pages through the two unpinned frames.
        let mut churned = vec![];
        for i in 0..20u8 {
            let (pid, h) = bp.new_page(f).unwrap();
            h.data_mut()[0] = i;
            churned.push(pid);
        }
        for (i, (pid, h)) in pinned.iter().enumerate() {
            assert_eq!(h.data()[0], 0xA0 + i as u8);
            assert_eq!(h.pid, *pid);
        }
        // Everything churned is still readable from disk.
        for (i, pid) in churned.iter().enumerate() {
            let h = bp.fetch(*pid).unwrap();
            assert_eq!(h.data()[0], i as u8);
        }
        // Pin the remaining frames: the pool must now be exhausted...
        let _more: Vec<PageHandle> = (0..2).map(|_| bp.new_page(f).unwrap().1).collect();
        assert!(matches!(bp.new_page(f), Err(StorageError::BufferExhausted)));
        // ...and recover as soon as one pin is released.
        drop(pinned);
        assert!(bp.new_page(f).is_ok());
    }

    #[test]
    fn batch_fetch_groups_adjacent_pages_into_one_read_call() {
        // Pool large enough that the 10-page run fits one grouped read
        // (runs are capped at capacity / 2).
        let bp = pool(32);
        let f = bp.create_file().unwrap();
        let mut pids = vec![];
        for i in 0..10u8 {
            let (pid, h) = bp.new_page(f).unwrap();
            h.data_mut()[0] = i;
            pids.push(pid);
        }
        bp.flush_all().unwrap();
        bp.reset_profile();

        let handles = bp.get_pages_batch(&pids).unwrap();
        for (i, h) in handles.iter().enumerate() {
            assert_eq!(h.data()[0], i as u8);
        }
        let prof = bp.io_profile();
        assert_eq!(prof.disk.reads, 10, "every page transferred");
        assert_eq!(prof.pool_misses, 10);
        assert_eq!(
            prof.disk.read_calls, 1,
            "one adjacent run = one grouped read call"
        );
        drop(handles);

        // A second batch is all hits: no further disk traffic.
        let handles = bp.get_pages_batch(&pids).unwrap();
        let prof = bp.io_profile();
        assert_eq!(prof.disk.reads, 10);
        assert_eq!(prof.pool_hits, 10);
        drop(handles);
    }

    #[test]
    fn batch_fetch_splits_non_adjacent_pages_into_runs() {
        let bp = pool(16);
        let f = bp.create_file().unwrap();
        let mut pids = vec![];
        for i in 0..8u8 {
            let (pid, h) = bp.new_page(f).unwrap();
            h.data_mut()[0] = i;
            pids.push(pid);
        }
        bp.flush_all().unwrap();
        bp.reset_profile();
        // Pages 0,1,2 and 5,6 — two runs with a gap.
        let want = [pids[0], pids[1], pids[2], pids[5], pids[6]];
        let handles = bp.get_pages_batch(&want).unwrap();
        for (h, pid) in handles.iter().zip(&want) {
            assert_eq!(h.pid, *pid);
        }
        let prof = bp.io_profile();
        assert_eq!(prof.disk.reads, 5);
        assert_eq!(prof.disk.read_calls, 2, "two adjacent runs");
    }

    #[test]
    fn prefetch_turns_later_fetches_into_hits_without_extra_io() {
        let bp = pool(16);
        let f = bp.create_file().unwrap();
        let mut pids = vec![];
        for i in 0..4u8 {
            let (pid, h) = bp.new_page(f).unwrap();
            h.data_mut()[0] = i;
            pids.push(pid);
        }
        bp.flush_all().unwrap();
        bp.reset_profile();

        bp.prefetch(&pids).unwrap();
        let prof = bp.io_profile();
        assert_eq!(prof.disk.reads, 4);
        assert_eq!(prof.disk.read_calls, 1);
        assert_eq!(prof.pool_misses, 4, "prefetch counts the misses it absorbs");

        for (i, pid) in pids.iter().enumerate() {
            let h = bp.fetch(*pid).unwrap();
            assert_eq!(h.data()[0], i as u8);
        }
        let prof = bp.io_profile();
        assert_eq!(prof.disk.reads, 4, "no re-reads: all fetches hit");
        assert_eq!(prof.pool_hits, 4);

        // Prefetching resident pages is a no-op.
        bp.prefetch(&pids).unwrap();
        assert_eq!(bp.io_profile().disk.reads, 4);
    }

    /// Satellite property test: hashing 10k sequential page ids must land
    /// every shard within 2x of the mean occupancy.
    #[test]
    fn shard_distribution_is_uniform_within_2x_of_mean() {
        let bp = pool(64); // 8 shards
        let mut counts = vec![0usize; bp.shard_count()];
        for p in 0..10_000u32 {
            counts[bp.shard_of(PageId::new(FileId(1), p))] += 1;
        }
        let mean = 10_000 / counts.len();
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                c * 2 >= mean && c <= mean * 2,
                "shard {s} occupancy {c} outside 2x of mean {mean}"
            );
        }
    }

    #[test]
    fn shards_partition_all_frames() {
        for cap in [1, 2, 3, 7, 8, 9, 64] {
            let bp = pool(cap);
            assert_eq!(bp.shard_count(), cap.min(8));
            // shard_of always lands in range.
            for p in 0..100 {
                let s = bp.shard_of(PageId::new(FileId(3), p));
                assert!(s < bp.shard_count());
            }
        }
    }

    /// Regression test for the atomicity hole: eviction must not
    /// autocommit a dirty-but-unlogged page while a writer is inside
    /// the WAL apply section — that page may be a half-applied
    /// operation's, and redo-only logging has no undo for it. Such
    /// frames are simply not eviction victims until the section is
    /// free.
    #[test]
    fn eviction_skips_unlogged_dirty_pages_while_apply_section_is_held() {
        use crate::wal::{MemWalStore, Wal};
        let wal = Arc::new(Wal::new(Box::new(MemWalStore::new()), 1));
        let bp = BufferPool::new_with_wal(Box::new(MemDisk::new()), 2, Some(Arc::clone(&wal)));
        let f = bp.create_file().unwrap();
        for i in 0..2u8 {
            let (_, h) = bp.new_page(f).unwrap();
            h.data_mut()[0] = i;
        }
        // Both frames are dirty + unlogged and unpinned. With a writer
        // "in flight" (apply section held), neither may be stolen.
        let apply = wal.apply_lock();
        assert!(
            matches!(bp.new_page(f), Err(StorageError::BufferExhausted)),
            "no-steal: unlogged dirty frames are unevictable mid-operation"
        );
        assert_eq!(wal.stats().autocommits, 0, "nothing was made durable");
        drop(apply);
        // Section free: eviction may autocommit and proceed.
        let (_, h) = bp.new_page(f).unwrap();
        h.data_mut()[0] = 9;
        assert!(wal.stats().autocommits >= 1);
    }

    /// Regression test for the lost-write bug: a failed write-back must
    /// leave the page marked dirty, or its modifications are silently
    /// dropped by the next (successful) eviction or flush.
    #[test]
    fn failed_write_back_leaves_the_page_dirty() {
        use crate::fault::{FaultDisk, FaultPlan};
        let disk = FaultDisk::new(
            MemDisk::new(),
            FaultPlan {
                torn_write_at: Some(1),
                ..FaultPlan::default()
            },
        );
        let bp = BufferPool::new(Box::new(disk), 4);
        let f = bp.create_file().unwrap();
        let (pid, h) = bp.new_page(f).unwrap();
        h.data_mut()[100] = 0xEE;
        assert!(bp.flush_page(pid).is_err(), "injected torn write");
        assert!(
            h.is_dirty(),
            "failed write-back must restore the dirty flag"
        );
        // The fault fires once: the retry writes the full page, and the
        // bytes survive a cold re-read (checksum intact).
        bp.flush_page(pid).unwrap();
        assert!(!h.is_dirty());
        drop(h);
        bp.flush_all().unwrap();
        let h = bp.fetch(pid).unwrap();
        assert_eq!(h.data()[100], 0xEE);
    }

    /// Same lost-write regression on the WAL autocommit path: a failed
    /// autocommit restores both `dirty` and `unlogged`.
    #[test]
    fn failed_autocommit_restores_dirty_and_unlogged() {
        use crate::wal::fault::FaultWal;
        use crate::wal::{MemWalStore, Wal};
        let wal = Arc::new(Wal::new(
            Box::new(FaultWal::new(MemWalStore::new()).cut_after(0)),
            1,
        ));
        let bp = BufferPool::new_with_wal(Box::new(MemDisk::new()), 4, Some(wal));
        let f = bp.create_file().unwrap();
        let (pid, h) = bp.new_page(f).unwrap();
        h.data_mut()[7] = 1;
        drop(h);
        assert!(bp.flush_page(pid).is_err(), "autocommit append dies");
        let dirty: usize = bp.shard_stats().iter().map(|s| s.dirty).sum();
        assert_eq!(dirty, 1, "page still pending write-back after the failure");
    }

    /// The pool is shared: concurrent fetches of disjoint and overlapping
    /// pages from many threads return consistent bytes, and the counters
    /// sum to the work done.
    #[test]
    fn concurrent_fetches_are_consistent() {
        let bp = std::sync::Arc::new(pool(64));
        let f = bp.create_file().unwrap();
        let mut pids = vec![];
        for i in 0..16u8 {
            let (pid, h) = bp.new_page(f).unwrap();
            h.data_mut()[0] = i;
            pids.push(pid);
        }
        bp.flush_all().unwrap();
        bp.reset_profile();

        let threads: Vec<_> = (0..8)
            .map(|t| {
                let bp = std::sync::Arc::clone(&bp);
                let pids = pids.clone();
                std::thread::spawn(move || {
                    for round in 0..50 {
                        let i = (t * 7 + round * 3) % pids.len();
                        let h = bp.fetch(pids[i]).unwrap();
                        assert_eq!(h.data()[0], i as u8);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let prof = bp.io_profile();
        assert_eq!(prof.pool_hits + prof.pool_misses, 8 * 50);
        assert_eq!(prof.disk.reads, prof.pool_misses);
    }
}
