//! Fault-injecting [`DiskManager`] wrapper.
//!
//! Wraps any disk manager and injects three failure modes at seeded
//! operation counts, so crash/corruption tests (and the future chaos
//! harness, ROADMAP item 3) can deterministically provoke them:
//!
//! * **torn page write** — the N-th `write_page` transfers only the
//!   first half of the page, then fails (a crash mid-sector-run);
//! * **read error** — the N-th page read fails with an I/O error;
//! * **sync failure** — the N-th `sync` fails (full disk, dying drive).
//!
//! Counts are cumulative across the wrapper's lifetime and each armed
//! fault fires once.

use crate::disk::DiskManager;
use crate::error::Result;
use crate::oid::{FileId, PageId};
use crate::page::PAGE_SIZE;
use crate::stats::IoStats;

/// Deterministic fault plan: `Some(n)` arms the fault at the n-th
/// matching operation (1-based).
#[derive(Clone, Copy, Default, Debug)]
pub struct FaultPlan {
    /// Tear the n-th page write (half the page reaches disk, then error).
    pub torn_write_at: Option<u64>,
    /// Fail the n-th page read (`read_page` or any page of `read_pages`).
    pub read_error_at: Option<u64>,
    /// Fail the n-th durability barrier.
    pub sync_error_at: Option<u64>,
}

/// A [`DiskManager`] that executes a [`FaultPlan`] over an inner disk.
pub struct FaultDisk<D: DiskManager> {
    inner: D,
    plan: FaultPlan,
    writes_seen: u64,
    reads_seen: u64,
    syncs_seen: u64,
    fired: Vec<&'static str>,
}

impl<D: DiskManager> FaultDisk<D> {
    /// Wrap `inner` with the given plan.
    pub fn new(inner: D, plan: FaultPlan) -> Self {
        FaultDisk {
            inner,
            plan,
            writes_seen: 0,
            reads_seen: 0,
            syncs_seen: 0,
            fired: Vec::new(),
        }
    }

    /// Which faults have fired, in order (`"torn_write"`, `"read_error"`,
    /// `"sync_error"`).
    pub fn fired(&self) -> &[&'static str] {
        &self.fired
    }

    /// The wrapped disk (e.g. to inspect pages after a fault).
    pub fn inner_mut(&mut self) -> &mut D {
        &mut self.inner
    }
}

fn injected(what: &str) -> crate::error::StorageError {
    std::io::Error::other(format!("injected disk fault: {what}")).into()
}

impl<D: DiskManager> DiskManager for FaultDisk<D> {
    fn create_file(&mut self) -> Result<FileId> {
        self.inner.create_file()
    }

    fn drop_file(&mut self, file: FileId) -> Result<()> {
        self.inner.drop_file(file)
    }

    fn allocate_page(&mut self, file: FileId) -> Result<PageId> {
        self.inner.allocate_page(file)
    }

    fn page_count(&self, file: FileId) -> Result<u32> {
        self.inner.page_count(file)
    }

    fn read_page(&mut self, pid: PageId, buf: &mut [u8; PAGE_SIZE]) -> Result<()> {
        self.reads_seen += 1;
        if self.plan.read_error_at == Some(self.reads_seen) {
            self.fired.push("read_error");
            return Err(injected("read"));
        }
        self.inner.read_page(pid, buf)
    }

    fn read_pages(&mut self, first: PageId, bufs: &mut [&mut [u8; PAGE_SIZE]]) -> Result<()> {
        if let Some(at) = self.plan.read_error_at {
            let lo = self.reads_seen + 1;
            let hi = self.reads_seen + bufs.len() as u64;
            self.reads_seen = hi;
            if (lo..=hi).contains(&at) {
                self.fired.push("read_error");
                return Err(injected("batched read"));
            }
        } else {
            self.reads_seen += bufs.len() as u64;
        }
        self.inner.read_pages(first, bufs)
    }

    fn write_page(&mut self, pid: PageId, buf: &[u8; PAGE_SIZE]) -> Result<()> {
        self.writes_seen += 1;
        if self.plan.torn_write_at == Some(self.writes_seen) {
            // Transfer only the front half: read-modify-write the page so
            // the tail keeps its *old* bytes, exactly what a crash
            // between sector runs leaves behind.
            let mut torn = [0u8; PAGE_SIZE];
            let _ = self.inner.read_page(pid, &mut torn);
            torn[..PAGE_SIZE / 2].copy_from_slice(&buf[..PAGE_SIZE / 2]);
            self.inner.write_page(pid, &torn)?;
            self.fired.push("torn_write");
            return Err(injected("torn write"));
        }
        self.inner.write_page(pid, buf)
    }

    fn sync(&mut self) -> Result<()> {
        self.syncs_seen += 1;
        if self.plan.sync_error_at == Some(self.syncs_seen) {
            self.fired.push("sync_error");
            return Err(injected("sync"));
        }
        self.inner.sync()
    }

    fn stats(&self) -> IoStats {
        self.inner.stats()
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    #[test]
    fn torn_write_leaves_half_old_half_new() {
        let mut d = FaultDisk::new(
            MemDisk::new(),
            FaultPlan {
                torn_write_at: Some(2),
                ..FaultPlan::default()
            },
        );
        let f = d.create_file().unwrap();
        let p = d.allocate_page(f).unwrap();
        d.write_page(p, &[0xAA; PAGE_SIZE]).unwrap(); // write 1: clean
        assert!(d.write_page(p, &[0xBB; PAGE_SIZE]).is_err()); // write 2: torn
        assert_eq!(d.fired(), &["torn_write"]);
        let mut buf = [0u8; PAGE_SIZE];
        d.read_page(p, &mut buf).unwrap();
        assert_eq!(buf[0], 0xBB, "front half is the new image");
        assert_eq!(buf[PAGE_SIZE - 1], 0xAA, "tail kept the old image");
    }

    #[test]
    fn read_error_fires_once_at_the_seeded_count() {
        let mut d = FaultDisk::new(
            MemDisk::new(),
            FaultPlan {
                read_error_at: Some(2),
                ..FaultPlan::default()
            },
        );
        let f = d.create_file().unwrap();
        let p = d.allocate_page(f).unwrap();
        let mut buf = [0u8; PAGE_SIZE];
        d.read_page(p, &mut buf).unwrap();
        assert!(d.read_page(p, &mut buf).is_err());
        d.read_page(p, &mut buf).unwrap();
    }

    #[test]
    fn sync_error_fires_at_the_seeded_count() {
        let mut d = FaultDisk::new(
            MemDisk::new(),
            FaultPlan {
                sync_error_at: Some(1),
                ..FaultPlan::default()
            },
        );
        assert!(d.sync().is_err());
        d.sync().unwrap();
    }
}
