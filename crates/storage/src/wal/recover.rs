//! Redo-only crash recovery.
//!
//! [`recover`] runs before the buffer pool exists, directly against the
//! disk manager and the raw log store:
//!
//! 1. scan the log, keeping the longest valid prefix (the torn tail a
//!    crash left mid-append is discarded — it can only contain records
//!    of transactions whose `Commit` never became durable);
//! 2. collect the set of committed transaction ids;
//! 3. replay every committed transaction's page after-images in log
//!    order (recreating files and extending them as needed — a crash
//!    can lose file metadata that was never synced);
//! 4. sync the data files, then reset the log.
//!
//! Replay is idempotent: images are whole pages, applied in LSN order,
//! so running recovery twice (or crashing *during* recovery) converges
//! to the same state.

use super::record::{scan, WalRecord};
use super::store::WalStore;
use crate::checksum;
use crate::disk::DiskManager;
use crate::error::{Result, StorageError};
use crate::oid::FileId;
use fieldrep_obs::{metrics, names as obs_names};
use std::collections::BTreeSet;

/// What [`recover`] found and did.
#[derive(Clone, Copy, Default, Debug)]
pub struct RecoveryReport {
    /// Valid records scanned from the log.
    pub scanned_records: usize,
    /// Torn-tail bytes discarded.
    pub truncated_bytes: u64,
    /// Committed transactions replayed.
    pub committed_txns: usize,
    /// Page images written back to the data files.
    pub replayed_pages: u64,
    /// Highest LSN seen in the valid prefix (the next WAL epoch starts
    /// above this).
    pub last_lsn: u64,
}

/// Make sure `file` exists on `disk`, creating intermediate files if the
/// crash lost unsynced file metadata. File ids are sequential, so we
/// create until the target id appears.
fn ensure_file(disk: &mut dyn DiskManager, file: FileId) -> Result<()> {
    loop {
        match disk.page_count(file) {
            Ok(_) => return Ok(()),
            Err(StorageError::FileNotFound(_)) => {
                let created = disk.create_file()?;
                if created.0 > file.0 {
                    // The id space already moved past the target: the
                    // file was dropped after being logged. Nothing sound
                    // can be replayed into it.
                    return Err(StorageError::Corrupt(format!(
                        "recovery cannot recreate dropped file {file}"
                    )));
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// Scan `store`, replay committed transactions onto `disk`, sync, and
/// reset the log. See the module docs for the protocol.
pub fn recover(disk: &mut dyn DiskManager, store: &mut dyn WalStore) -> Result<RecoveryReport> {
    let bytes = store.wal_read_all()?;
    let scanned = scan(&bytes);
    let mut report = RecoveryReport {
        scanned_records: scanned.entries.len(),
        truncated_bytes: bytes.len() as u64 - scanned.valid_len,
        ..RecoveryReport::default()
    };
    report.last_lsn = scanned.entries.last().map(|e| e.lsn).unwrap_or(0);

    let committed: BTreeSet<u64> = scanned
        .entries
        .iter()
        .filter_map(|e| match e.rec {
            WalRecord::Commit { txn } => Some(txn),
            _ => None,
        })
        .collect();
    report.committed_txns = committed.len();

    if !committed.is_empty() {
        for e in &scanned.entries {
            let WalRecord::PageImage { txn, page, image } = &e.rec else {
                continue;
            };
            if !committed.contains(txn) {
                continue;
            }
            ensure_file(disk, page.file)?;
            while disk.page_count(page.file)? <= page.page {
                disk.allocate_page(page.file)?;
            }
            let mut img = *image.clone();
            checksum::stamp(&mut img, e.lsn);
            disk.write_page(*page, &img)?;
            report.replayed_pages += 1;
        }
        disk.sync()?;
    }
    // Everything the log promised is on disk; start a fresh epoch.
    store.wal_truncate(0)?;
    store.wal_sync()?;

    let r = metrics::registry();
    r.counter(obs_names::WAL_RECOVERIES).inc();
    r.counter(obs_names::WAL_REPLAYED_PAGES)
        .add(report.replayed_pages);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;
    use crate::oid::PageId;
    use crate::page::PAGE_SIZE;
    use crate::wal::store::MemWalStore;
    use crate::wal::Wal;

    fn img(b: u8) -> Box<[u8; PAGE_SIZE]> {
        Box::new([b; PAGE_SIZE])
    }

    #[test]
    fn committed_images_are_replayed_and_uncommitted_dropped() {
        let mut disk = MemDisk::new();
        let f = disk.create_file().unwrap();
        let p0 = disk.allocate_page(f).unwrap();
        let p1 = disk.allocate_page(f).unwrap();

        let store = MemWalStore::new();
        let wal = Wal::new(Box::new(store.clone()), 1);
        // Committed txn covering p0.
        let t1 = wal.begin_txn();
        let committed_img = img(0xAA);
        let lsn = wal.append_commit(t1, &[(p0, &committed_img)]).unwrap();
        wal.sync_to(lsn).unwrap();
        // Uncommitted txn covering p1: append Begin+PageImage by hand,
        // no Commit (a crash between apply and commit).
        let torn_img = img(0xBB);
        let mut tail = crate::wal::record::encode(lsn + 1, &WalRecord::Begin { txn: 99 });
        tail.extend_from_slice(&crate::wal::record::encode(
            lsn + 2,
            &WalRecord::PageImage {
                txn: 99,
                page: p1,
                image: torn_img,
            },
        ));
        let mut s = store.clone();
        use crate::wal::store::WalStore as _;
        s.wal_append(&tail).unwrap();

        let mut s2 = store.clone();
        let report = recover(&mut disk, &mut s2).unwrap();
        assert_eq!(report.committed_txns, 1);
        assert_eq!(report.replayed_pages, 1);
        assert_eq!(report.last_lsn, lsn + 2);

        let mut buf = [0u8; PAGE_SIZE];
        disk.read_page(p0, &mut buf).unwrap();
        assert_eq!(buf[100], 0xAA, "committed image replayed");
        assert!(crate::checksum::verify(&buf), "replayed page is stamped");
        disk.read_page(p1, &mut buf).unwrap();
        assert_eq!(buf[100], 0, "uncommitted image NOT replayed");

        assert_eq!(s2.wal_len().unwrap(), 0, "log reset after recovery");
        assert!(disk.stats().syncs >= 1, "data files synced");
    }

    #[test]
    fn torn_tail_is_truncated() {
        let mut disk = MemDisk::new();
        let f = disk.create_file().unwrap();
        let p0 = disk.allocate_page(f).unwrap();
        let store = MemWalStore::new();
        let wal = Wal::new(Box::new(store.clone()), 1);
        let whole = img(0x77);
        let lsn = wal.append_commit(wal.begin_txn(), &[(p0, &whole)]).unwrap();
        wal.sync_to(lsn).unwrap();
        // Tear the log mid-frame.
        use crate::wal::store::WalStore as _;
        let mut s = store.clone();
        let full = s.wal_len().unwrap();
        s.wal_append(&[0x5A; 13]).unwrap();
        let report = recover(&mut disk, &mut s).unwrap();
        assert_eq!(report.truncated_bytes, 13);
        assert_eq!(report.replayed_pages, 1);
        let _ = full;
    }

    #[test]
    fn replay_recreates_missing_files_and_pages() {
        // The crash lost the data file entirely: replay must recreate
        // file 0 and extend it to hold page 2.
        let store = MemWalStore::new();
        let wal = Wal::new(Box::new(store.clone()), 1);
        let pid = PageId::new(FileId(0), 2);
        let image = img(0x5C);
        let lsn = wal
            .append_commit(wal.begin_txn(), &[(pid, &image)])
            .unwrap();
        wal.sync_to(lsn).unwrap();

        let mut disk = MemDisk::new(); // fresh: no files at all
        let mut s = store.clone();
        let report = recover(&mut disk, &mut s).unwrap();
        assert_eq!(report.replayed_pages, 1);
        assert_eq!(disk.page_count(FileId(0)).unwrap(), 3);
        let mut buf = [0u8; PAGE_SIZE];
        disk.read_page(pid, &mut buf).unwrap();
        assert_eq!(buf[50], 0x5C);
    }

    #[test]
    fn recovery_is_idempotent() {
        let mut disk = MemDisk::new();
        let f = disk.create_file().unwrap();
        let p0 = disk.allocate_page(f).unwrap();
        let store = MemWalStore::new();
        let wal = Wal::new(Box::new(store.clone()), 1);
        let image = img(0x42);
        let lsn = wal.append_commit(wal.begin_txn(), &[(p0, &image)]).unwrap();
        wal.sync_to(lsn).unwrap();
        let saved = store.snapshot();

        let mut s = store.clone();
        recover(&mut disk, &mut s).unwrap();
        let mut first = [0u8; PAGE_SIZE];
        disk.read_page(p0, &mut first).unwrap();

        // Crash during recovery: the log is back, run it again.
        use crate::wal::store::WalStore as _;
        s.wal_truncate(0).unwrap();
        s.wal_append(&saved).unwrap();
        recover(&mut disk, &mut s).unwrap();
        let mut second = [0u8; PAGE_SIZE];
        disk.read_page(p0, &mut second).unwrap();
        assert_eq!(first, second);
    }
}
