//! WAL byte stores.
//!
//! The log itself is just an append-only byte stream; [`WalStore`]
//! abstracts where those bytes live so the same [`Wal`](super::Wal) and
//! recovery logic run over memory (tests, I/O-counted simulation) and a
//! real file. Method names are deliberately distinctive (`wal_*`): lint
//! L1 confines calls to them to this module tree, the WAL-layer analogue
//! of the `DiskManager` layering rule.

use crate::error::Result;
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::Arc;

/// Append-only byte store backing the write-ahead log.
pub trait WalStore: Send {
    /// Append `bytes` at the end of the log.
    fn wal_append(&mut self, bytes: &[u8]) -> Result<()>;
    /// Durability barrier: every appended byte must survive a crash.
    fn wal_sync(&mut self) -> Result<()>;
    /// Read the entire log.
    fn wal_read_all(&mut self) -> Result<Vec<u8>>;
    /// Truncate the log to `len` bytes (drop a torn tail, or reset to 0
    /// at a checkpoint).
    fn wal_truncate(&mut self, len: u64) -> Result<()>;
    /// Current log length in bytes.
    fn wal_len(&mut self) -> Result<u64>;
    /// A durability-barrier handle over the same log, usable
    /// concurrently with appends through this store (see [`WalSyncer`]).
    fn wal_syncer(&self) -> Box<dyn WalSyncer>;
}

/// Durability-barrier handle decoupled from the append path.
///
/// The group-commit leader fsyncs through this handle while other
/// committers keep appending under the log's append lock — holding
/// that lock across the fsync would serialize every append behind it
/// and defeat the pipelining group commit exists for. A barrier issued
/// through the handle covers every byte appended *before* it began;
/// bytes appended while the barrier is in flight may or may not be
/// covered (callers snapshot their watermark first).
pub trait WalSyncer: Send + Sync {
    /// Issue the durability barrier.
    fn wal_sync_now(&self) -> Result<()>;
}

/// No-op syncer for stores whose bytes are already "durable" (memory).
struct NopSyncer;

impl WalSyncer for NopSyncer {
    fn wal_sync_now(&self) -> Result<()> {
        Ok(())
    }
}

/// In-memory log over a shared buffer. Clones share the same bytes, so a
/// test can "crash" one engine (drop it) and hand the surviving log to a
/// fresh one — the memory analogue of reopening the log file.
#[derive(Clone, Default)]
pub struct MemWalStore {
    buf: Arc<Mutex<Vec<u8>>>,
}

impl MemWalStore {
    /// A fresh, empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes currently in the log (test inspection).
    pub fn snapshot(&self) -> Vec<u8> {
        self.buf.lock().clone()
    }
}

impl WalStore for MemWalStore {
    fn wal_append(&mut self, bytes: &[u8]) -> Result<()> {
        self.buf.lock().extend_from_slice(bytes);
        Ok(())
    }

    fn wal_sync(&mut self) -> Result<()> {
        Ok(())
    }

    fn wal_read_all(&mut self) -> Result<Vec<u8>> {
        Ok(self.buf.lock().clone())
    }

    fn wal_truncate(&mut self, len: u64) -> Result<()> {
        self.buf.lock().truncate(len as usize);
        Ok(())
    }

    fn wal_len(&mut self) -> Result<u64> {
        Ok(self.buf.lock().len() as u64)
    }

    fn wal_syncer(&self) -> Box<dyn WalSyncer> {
        Box::new(NopSyncer)
    }
}

/// File-backed log: a single `wal.log` file, appended with `write_all`
/// and made durable with `sync_data`.
pub struct FileWalStore {
    path: PathBuf,
    handle: File,
    /// Duplicate descriptor for [`WalSyncer`]: `fsync` is per-inode, so
    /// a barrier through the duplicate covers appends via `handle`.
    sync_dup: Arc<File>,
    len: u64,
}

/// File-backed [`WalSyncer`]: `sync_data` on a duplicate descriptor.
struct FileSyncer(Arc<File>);

impl WalSyncer for FileSyncer {
    fn wal_sync_now(&self) -> Result<()> {
        self.0.sync_data()?;
        Ok(())
    }
}

impl FileWalStore {
    /// Open (or create) the log at `dir/wal.log`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join("wal.log");
        let handle = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let sync_dup = Arc::new(handle.try_clone()?);
        let len = handle.metadata()?.len();
        Ok(FileWalStore {
            path,
            handle,
            sync_dup,
            len,
        })
    }

    /// Path of the underlying log file.
    pub fn path(&self) -> &PathBuf {
        &self.path
    }
}

impl WalStore for FileWalStore {
    fn wal_append(&mut self, bytes: &[u8]) -> Result<()> {
        self.handle.seek(SeekFrom::Start(self.len))?;
        self.handle.write_all(bytes)?;
        self.len += bytes.len() as u64;
        Ok(())
    }

    fn wal_sync(&mut self) -> Result<()> {
        self.handle.sync_data()?;
        Ok(())
    }

    fn wal_read_all(&mut self) -> Result<Vec<u8>> {
        self.handle.seek(SeekFrom::Start(0))?;
        let mut buf = Vec::with_capacity(self.len as usize);
        self.handle.read_to_end(&mut buf)?;
        Ok(buf)
    }

    fn wal_truncate(&mut self, len: u64) -> Result<()> {
        self.handle.set_len(len)?;
        self.len = len;
        Ok(())
    }

    fn wal_len(&mut self) -> Result<u64> {
        Ok(self.len)
    }

    fn wal_syncer(&self) -> Box<dyn WalSyncer> {
        Box::new(FileSyncer(Arc::clone(&self.sync_dup)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_store_roundtrip_and_shared_clones() {
        let mut a = MemWalStore::new();
        let mut b = a.clone();
        a.wal_append(b"hello ").unwrap();
        b.wal_append(b"world").unwrap();
        assert_eq!(a.wal_read_all().unwrap(), b"hello world");
        assert_eq!(a.wal_len().unwrap(), 11);
        a.wal_truncate(5).unwrap();
        assert_eq!(b.wal_read_all().unwrap(), b"hello");
    }

    #[test]
    fn file_store_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("fieldrep-walstore-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut s = FileWalStore::open(&dir).unwrap();
            s.wal_append(b"abcdef").unwrap();
            s.wal_sync().unwrap();
        }
        {
            let mut s = FileWalStore::open(&dir).unwrap();
            assert_eq!(s.wal_len().unwrap(), 6);
            assert_eq!(s.wal_read_all().unwrap(), b"abcdef");
            s.wal_truncate(3).unwrap();
            s.wal_append(b"XY").unwrap();
            assert_eq!(s.wal_read_all().unwrap(), b"abcXY");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
