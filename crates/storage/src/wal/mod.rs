//! Redo-only write-ahead log (ARIES-lite).
//!
//! The durability design is deliberately lean — full-page physical
//! redo logging with no undo, in the spirit of the paper's "replicas
//! are derived data" stance (and Darmont's advocacy for simplicity):
//!
//! * A transaction's pages are applied in the buffer pool first; at
//!   commit, the *after-images* of every page it dirtied are appended
//!   as one `Begin / PageImage* / Commit` group and fsynced. There is
//!   nothing to undo because nothing unlogged ever overwrites a
//!   committed on-disk page:
//! * **the steal rule**: the buffer pool may evict a dirty page only
//!   after the page's covering log records are durable
//!   ([`Wal::ensure_durable`]). A dirty page no transaction has logged
//!   yet is logged inline as a single-page implicit transaction
//!   ([`Wal::autocommit_page`]) before it is written — but only when
//!   no writer is inside the apply section (checked with
//!   [`Wal::try_apply_lock`]): a page an in-flight operation dirtied
//!   must not become durable before that operation commits, so the
//!   pool treats it as unevictable instead (**no-steal** for open
//!   operations' pages).
//! * **Group commit**: concurrent committers share fsyncs. A committer
//!   whose commit LSN is already durable returns without syncing
//!   (counted in `wal.group_commit.coalesced`); otherwise it elects
//!   itself leader and one `fsync` covers every record appended so
//!   far. The leader fsyncs through a [`WalSyncer`] handle with the
//!   append lock *released*, so followers keep appending (and so keep
//!   feeding the next leader's barrier) while the fsync is in flight.
//! * **Recovery** ([`recover`]) scans the log, discards the torn tail,
//!   replays every committed transaction's images, syncs the data
//!   files, and resets the log.
//!
//! The serialized *apply section* ([`Wal::apply_lock`]) is held by
//! **every** engine write path — `update_txn` across apply+log, and
//! the non-transactional DML paths (`insert`/`update`/`delete`/
//! deferred-propagation sync) across their whole multi-page operation —
//! so the log never interleaves two operations' images and a commit's
//! dirty-page sweep can only ever see *completed* operations' pages.
//! The fsync happens **outside** it, which is what lets back-to-back
//! commits coalesce.

pub mod fault;
pub mod record;
pub mod recover;
pub mod store;

pub use record::{WalEntry, WalRecord};
pub use recover::{recover, RecoveryReport};
pub use store::{FileWalStore, MemWalStore, WalStore, WalSyncer};

use crate::error::Result;
use crate::lockorder;
use crate::oid::PageId;
use crate::page::PAGE_SIZE;
use fieldrep_obs::{metrics, names as obs_names};
use parking_lot::{Mutex, MutexGuard};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Process-wide WAL instruments, registered once in the obs registry.
struct WalMetrics {
    appends: Arc<metrics::Counter>,
    fsyncs: Arc<metrics::Counter>,
    bytes: Arc<metrics::Counter>,
    coalesced: Arc<metrics::Counter>,
    autocommits: Arc<metrics::Counter>,
}

fn wal_metrics() -> &'static WalMetrics {
    static METRICS: OnceLock<WalMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = metrics::registry();
        WalMetrics {
            appends: r.counter(obs_names::WAL_APPENDS),
            fsyncs: r.counter(obs_names::WAL_FSYNCS),
            bytes: r.counter(obs_names::WAL_BYTES),
            coalesced: r.counter(obs_names::WAL_GROUP_COMMIT_COALESCED),
            autocommits: r.counter(obs_names::WAL_AUTOCOMMITS),
        }
    })
}

/// Guard for the serialized apply section ([`Wal::apply_lock`]);
/// carries the runtime lock-order token alongside the mutex guard.
pub struct ApplyGuard<'a> {
    _guard: MutexGuard<'a, ()>,
    _order: lockorder::Held,
}

struct WalInner {
    store: Box<dyn WalStore>,
    /// Next LSN to assign.
    next_lsn: u64,
    /// Highest LSN appended to the store.
    appended: u64,
}

/// The write-ahead log. All methods take `&self`; the log is shared by
/// the buffer pool (steal gating, autocommit) and the transaction layer
/// (commit logging) through one `Arc`.
pub struct Wal {
    inner: Mutex<WalInner>,
    /// Durability barrier decoupled from the append lock: the
    /// group-commit leader fsyncs through this so followers keep
    /// appending while the barrier is in flight.
    syncer: Box<dyn store::WalSyncer>,
    /// Highest LSN known fsynced.
    durable: AtomicU64,
    /// Group-commit leader election: at most one fsync in flight.
    sync_lock: Mutex<()>,
    /// The serialized apply section (see module docs).
    apply: Mutex<()>,
    next_txn: AtomicU64,
    // Snapshot counters mirrored into obs metrics.
    appends: AtomicU64,
    fsyncs: AtomicU64,
    bytes: AtomicU64,
    coalesced: AtomicU64,
    autocommits: AtomicU64,
}

/// Point-in-time WAL counters (the `sys.wal` rows).
#[derive(Clone, Copy, Default, Debug)]
pub struct WalStats {
    /// Last LSN assigned (0 = nothing logged yet).
    pub last_lsn: u64,
    /// Highest LSN known durable.
    pub durable_lsn: u64,
    /// Records appended.
    pub appends: u64,
    /// Fsyncs issued on the log.
    pub fsyncs: u64,
    /// Bytes appended.
    pub bytes: u64,
    /// Commits that found their LSN already durable (group commit).
    pub coalesced: u64,
    /// Single-page implicit transactions logged at eviction/flush.
    pub autocommits: u64,
}

impl Wal {
    /// Wrap `store`, assigning LSNs from `start_lsn` (≥ 1). Callers run
    /// [`recover`] first and pass `report.last_lsn + 1` so the LSN space
    /// stays monotone across restarts.
    pub fn new(store: Box<dyn WalStore>, start_lsn: u64) -> Wal {
        let start = start_lsn.max(1);
        let syncer = store.wal_syncer();
        Wal {
            inner: Mutex::new(WalInner {
                store,
                next_lsn: start,
                appended: start - 1,
            }),
            syncer,
            durable: AtomicU64::new(start - 1),
            sync_lock: Mutex::new(()),
            apply: Mutex::new(()),
            next_txn: AtomicU64::new(0),
            appends: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            autocommits: AtomicU64::new(0),
        }
    }

    /// Enter the serialized apply section. Every engine write path
    /// holds this across its whole multi-page operation (`update_txn`
    /// additionally across commit logging), so the log never
    /// interleaves two operations' page images and a commit's
    /// dirty-page sweep only ever sees completed operations' pages;
    /// it is released before the fsync.
    pub fn apply_lock(&self) -> ApplyGuard<'_> {
        let order = lockorder::acquired(lockorder::WAL_APPLY, false, "WalApply");
        ApplyGuard {
            _guard: self.apply.lock(),
            _order: order,
        }
    }

    /// Non-blocking probe of the apply section, used by the buffer
    /// pool's eviction path: an unlogged dirty victim may be
    /// autocommitted only while no writer is inside the section
    /// (otherwise the page might be a half-applied operation's, and
    /// making it durable would violate atomicity — the pool skips it
    /// instead). Must be non-blocking because eviction runs under the
    /// pool lock, which an apply-section holder may be waiting for.
    pub fn try_apply_lock(&self) -> Option<ApplyGuard<'_>> {
        self.apply.try_lock().map(|g| ApplyGuard {
            _guard: g,
            _order: lockorder::acquired_try(lockorder::WAL_APPLY, "WalApply"),
        })
    }

    /// Allocate a WAL-local transaction id.
    pub fn begin_txn(&self) -> u64 {
        self.next_txn.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Append `Begin / PageImage* / Commit` for `txn` as one contiguous
    /// group and return the commit LSN. Does **not** fsync — call
    /// [`Wal::sync_to`] with the returned LSN (that is what group
    /// commit coalesces).
    pub fn append_commit(&self, txn: u64, pages: &[(PageId, &[u8; PAGE_SIZE])]) -> Result<u64> {
        let _append_order = lockorder::acquired(lockorder::WAL_APPEND, false, "WalAppend");
        let mut inner = self.inner.lock();
        let mut buf = Vec::with_capacity((record::MAX_PAYLOAD + 8) * (pages.len() + 2));
        let mut lsn = inner.next_lsn;
        buf.extend_from_slice(&record::encode(lsn, &WalRecord::Begin { txn }));
        lsn += 1;
        for (pid, image) in pages {
            buf.extend_from_slice(&record::encode(
                lsn,
                &WalRecord::PageImage {
                    txn,
                    page: *pid,
                    image: Box::new(**image),
                },
            ));
            lsn += 1;
        }
        let commit_lsn = lsn;
        buf.extend_from_slice(&record::encode(commit_lsn, &WalRecord::Commit { txn }));
        inner.store.wal_append(&buf)?;
        inner.next_lsn = commit_lsn + 1;
        inner.appended = commit_lsn;
        drop(inner);
        let records = pages.len() as u64 + 2;
        self.appends.fetch_add(records, Ordering::Relaxed);
        self.bytes.fetch_add(buf.len() as u64, Ordering::Relaxed);
        let m = wal_metrics();
        m.appends.add(records);
        m.bytes.add(buf.len() as u64);
        Ok(commit_lsn)
    }

    /// Make every record up to `lsn` durable. The group-commit path: a
    /// caller whose LSN is already durable returns immediately
    /// (coalesced); otherwise one leader fsyncs on behalf of everything
    /// appended so far.
    pub fn sync_to(&self, lsn: u64) -> Result<()> {
        if self.durable.load(Ordering::Acquire) >= lsn {
            self.coalesced.fetch_add(1, Ordering::Relaxed);
            wal_metrics().coalesced.inc();
            return Ok(());
        }
        let _leader_order = lockorder::acquired(lockorder::WAL_SYNC, false, "WalSync");
        let _leader = self.sync_lock.lock();
        if self.durable.load(Ordering::Acquire) >= lsn {
            // A leader that ran while we waited covered our records.
            self.coalesced.fetch_add(1, Ordering::Relaxed);
            wal_metrics().coalesced.inc();
            return Ok(());
        }
        // Snapshot the appended watermark, then fsync with the append
        // lock *released*: the barrier covers everything appended before
        // it began (`covered`), and followers keep appending — into the
        // next leader's barrier — instead of queueing behind this one.
        let covered = {
            let _o = lockorder::acquired(lockorder::WAL_APPEND, false, "WalAppend");
            self.inner.lock().appended
        };
        self.syncer.wal_sync_now()?;
        self.durable.fetch_max(covered, Ordering::AcqRel);
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        wal_metrics().fsyncs.inc();
        Ok(())
    }

    /// Steal-rule gate: alias of [`Wal::sync_to`], named for the buffer
    /// pool's call site (no dirty page reaches disk before its log
    /// records).
    pub fn ensure_durable(&self, lsn: u64) -> Result<()> {
        self.sync_to(lsn)
    }

    /// Log one dirty-but-unlogged page as a single-page implicit
    /// transaction and make it durable. The buffer pool calls this
    /// before writing back a page no transaction has logged (bulk
    /// loads, non-transactional DML) — the WAL rule holds everywhere.
    pub fn autocommit_page(&self, pid: PageId, image: &[u8; PAGE_SIZE]) -> Result<u64> {
        let txn = self.begin_txn();
        let lsn = self.append_commit(txn, &[(pid, image)])?;
        self.sync_to(lsn)?;
        self.autocommits.fetch_add(1, Ordering::Relaxed);
        wal_metrics().autocommits.inc();
        Ok(lsn)
    }

    /// Checkpoint: the caller has flushed and synced every data page, so
    /// the log's history is dead weight — truncate it and write a fresh
    /// `Checkpoint` marker (durable) as the new epoch's first record.
    pub fn checkpoint_truncate(&self) -> Result<()> {
        let _leader_order = lockorder::acquired(lockorder::WAL_SYNC, false, "WalSync");
        let _leader = self.sync_lock.lock();
        // Truncate + append the marker under the append lock, but fsync
        // through the dup'd syncer fd *after* dropping it: an fsync
        // inside the `inner` critical section would serialise every
        // committer behind the disk (the group-commit bug shape, lint
        // L6). Concurrent appends that land before the sync are merely
        // synced early, and `lsn` is monotone so `fetch_max` is correct.
        let lsn = {
            let _o = lockorder::acquired(lockorder::WAL_APPEND, false, "WalAppend");
            let mut inner = self.inner.lock();
            inner.store.wal_truncate(0)?;
            let lsn = inner.next_lsn;
            let frame = record::encode(lsn, &WalRecord::Checkpoint);
            inner.store.wal_append(&frame)?;
            inner.next_lsn = lsn + 1;
            inner.appended = lsn;
            lsn
        };
        self.syncer.wal_sync_now()?;
        self.durable.fetch_max(lsn, Ordering::AcqRel);
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        wal_metrics().fsyncs.inc();
        Ok(())
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> WalStats {
        let (last_lsn, _) = {
            let _o = lockorder::acquired(lockorder::WAL_APPEND, false, "WalAppend");
            let inner = self.inner.lock();
            (inner.next_lsn - 1, inner.appended)
        };
        WalStats {
            last_lsn,
            durable_lsn: self.durable.load(Ordering::Acquire),
            appends: self.appends.load(Ordering::Relaxed),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            autocommits: self.autocommits.load(Ordering::Relaxed),
        }
    }

    /// Current log length in bytes (test/introspection support).
    pub fn log_len(&self) -> Result<u64> {
        let _o = lockorder::acquired(lockorder::WAL_APPEND, false, "WalAppend");
        self.inner.lock().store.wal_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oid::FileId;

    fn page(b: u8) -> Box<[u8; PAGE_SIZE]> {
        Box::new([b; PAGE_SIZE])
    }

    #[test]
    fn commit_group_appends_and_syncs() {
        let store = MemWalStore::new();
        let wal = Wal::new(Box::new(store.clone()), 1);
        let txn = wal.begin_txn();
        let img = page(0x11);
        let lsn = wal
            .append_commit(txn, &[(PageId::new(FileId(1), 0), &img)])
            .unwrap();
        assert_eq!(lsn, 3, "Begin=1, PageImage=2, Commit=3");
        wal.sync_to(lsn).unwrap();
        let s = wal.stats();
        assert_eq!(s.appends, 3);
        assert_eq!(s.durable_lsn, 3);
        assert_eq!(s.fsyncs, 1);

        let scanned = record::scan(&store.snapshot());
        assert_eq!(scanned.entries.len(), 3);
        assert!(matches!(scanned.entries[2].rec, WalRecord::Commit { .. }));
    }

    #[test]
    fn already_durable_commits_coalesce() {
        let wal = Wal::new(Box::new(MemWalStore::new()), 1);
        let img = page(0x22);
        let a = wal
            .append_commit(wal.begin_txn(), &[(PageId::new(FileId(1), 0), &img)])
            .unwrap();
        let b = wal
            .append_commit(wal.begin_txn(), &[(PageId::new(FileId(1), 1), &img)])
            .unwrap();
        // Syncing the later commit first covers the earlier one: its
        // sync_to is a pure coalesce, no second fsync.
        wal.sync_to(b).unwrap();
        wal.sync_to(a).unwrap();
        let s = wal.stats();
        assert_eq!(s.fsyncs, 1);
        assert_eq!(s.coalesced, 1);
    }

    #[test]
    fn checkpoint_resets_the_log_but_not_the_lsn_space() {
        let store = MemWalStore::new();
        let wal = Wal::new(Box::new(store.clone()), 1);
        let img = page(0x33);
        let lsn = wal
            .append_commit(wal.begin_txn(), &[(PageId::new(FileId(0), 0), &img)])
            .unwrap();
        wal.sync_to(lsn).unwrap();
        wal.checkpoint_truncate().unwrap();
        let scanned = record::scan(&store.snapshot());
        assert_eq!(scanned.entries.len(), 1, "only the checkpoint marker");
        assert_eq!(scanned.entries[0].rec, WalRecord::Checkpoint);
        assert!(scanned.entries[0].lsn > lsn, "LSNs keep rising");
    }

    /// Regression test for the group-commit pipelining bug: the leader
    /// used to hold the append lock across the fsync, so every
    /// concurrent `append_commit` queued behind the barrier. With the
    /// [`WalSyncer`] split, an append must complete while a sync is
    /// blocked in flight (this test deadlocks otherwise).
    #[test]
    fn appends_proceed_while_a_sync_is_in_flight() {
        use std::sync::{Condvar, Mutex as StdMutex};

        #[derive(Default)]
        struct Gate {
            state: StdMutex<(bool, bool)>, // (sync entered, gate open)
            cv: Condvar,
        }

        struct GateSyncer(Arc<Gate>);
        impl store::WalSyncer for GateSyncer {
            fn wal_sync_now(&self) -> Result<()> {
                let mut st = self.0.state.lock().expect("gate poisoned");
                st.0 = true;
                self.0.cv.notify_all();
                while !st.1 {
                    st = self.0.cv.wait(st).expect("gate poisoned");
                }
                Ok(())
            }
        }

        struct SlowSyncStore {
            inner: MemWalStore,
            gate: Arc<Gate>,
        }
        impl WalStore for SlowSyncStore {
            fn wal_append(&mut self, bytes: &[u8]) -> Result<()> {
                self.inner.wal_append(bytes)
            }
            fn wal_sync(&mut self) -> Result<()> {
                self.inner.wal_sync()
            }
            fn wal_read_all(&mut self) -> Result<Vec<u8>> {
                self.inner.wal_read_all()
            }
            fn wal_truncate(&mut self, len: u64) -> Result<()> {
                self.inner.wal_truncate(len)
            }
            fn wal_len(&mut self) -> Result<u64> {
                self.inner.wal_len()
            }
            fn wal_syncer(&self) -> Box<dyn store::WalSyncer> {
                Box::new(GateSyncer(Arc::clone(&self.gate)))
            }
        }

        let gate = Arc::new(Gate::default());
        let wal = Arc::new(Wal::new(
            Box::new(SlowSyncStore {
                inner: MemWalStore::new(),
                gate: Arc::clone(&gate),
            }),
            1,
        ));
        let img = page(0x44);
        let a = wal
            .append_commit(wal.begin_txn(), &[(PageId::new(FileId(1), 0), &img)])
            .unwrap();
        let leader = {
            let wal = Arc::clone(&wal);
            std::thread::spawn(move || wal.sync_to(a).unwrap())
        };
        {
            let mut st = gate.state.lock().expect("gate poisoned");
            while !st.0 {
                st = gate.cv.wait(st).expect("gate poisoned");
            }
        }
        // Leader is parked inside the barrier: a follower append must
        // still complete, and the in-flight barrier must not cover it.
        let b = wal
            .append_commit(wal.begin_txn(), &[(PageId::new(FileId(1), 1), &img)])
            .unwrap();
        assert_eq!(wal.stats().durable_lsn, 0, "barrier not finished yet");
        {
            let mut st = gate.state.lock().expect("gate poisoned");
            st.1 = true;
            gate.cv.notify_all();
        }
        leader.join().unwrap();
        let s = wal.stats();
        assert!(s.durable_lsn >= a, "barrier covered the pre-sync append");
        assert!(
            s.durable_lsn < b,
            "bytes appended mid-barrier are not claimed"
        );
        wal.sync_to(b).unwrap();
        assert!(wal.stats().durable_lsn >= b);
    }

    #[test]
    fn group_commit_coalesces_across_threads() {
        let wal = Arc::new(Wal::new(Box::new(MemWalStore::new()), 1));
        let threads = 8;
        let per = 20;
        std::thread::scope(|s| {
            for t in 0..threads {
                let wal = Arc::clone(&wal);
                s.spawn(move || {
                    let img = page(t as u8);
                    for i in 0..per {
                        let lsn = wal
                            .append_commit(
                                wal.begin_txn(),
                                &[(PageId::new(FileId(1), (t * per + i) as u32), &img)],
                            )
                            .unwrap();
                        wal.sync_to(lsn).unwrap();
                    }
                });
            }
        });
        let s = wal.stats();
        assert_eq!(s.appends, (threads * per * 3) as u64);
        assert_eq!(s.durable_lsn, s.last_lsn);
        assert_eq!(
            s.fsyncs + s.coalesced,
            (threads * per) as u64,
            "every commit either fsynced or coalesced"
        );
    }
}
