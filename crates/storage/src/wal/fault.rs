//! Fault-injecting [`WalStore`] wrapper: short (torn) appends at a
//! seeded byte offset, the log-side counterpart of
//! [`crate::fault::FaultDisk`]. Used by the crash tests and available
//! to the future chaos harness (ROADMAP item 3).

use super::store::{WalStore, WalSyncer};
use crate::error::Result;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Wraps a [`WalStore`]; once the cumulative appended byte count would
/// cross `cut_at`, the append is written only up to the cut and fails —
/// every later append fails outright. This models a crash mid-`write`:
/// a prefix of the frame reaches the log, the rest never does.
pub struct FaultWal<S: WalStore> {
    inner: S,
    appended: u64,
    cut_at: Option<u64>,
    /// Shared with syncer handles, which must also die once the fault
    /// has fired (a crashed process fsyncs nothing).
    tripped: Arc<AtomicBool>,
}

impl<S: WalStore> FaultWal<S> {
    /// Wrap `inner` with no fault armed.
    pub fn new(inner: S) -> Self {
        FaultWal {
            inner,
            appended: 0,
            cut_at: None,
            tripped: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Arm a short write: appends die once `cut_at` cumulative bytes
    /// have been appended through this wrapper.
    pub fn cut_after(mut self, cut_at: u64) -> Self {
        self.cut_at = Some(cut_at);
        self
    }

    /// Whether the armed fault has fired.
    pub fn tripped(&self) -> bool {
        self.tripped.load(Ordering::Relaxed)
    }

    fn trip(&self) {
        self.tripped.store(true, Ordering::Relaxed);
    }
}

fn crashed() -> crate::error::StorageError {
    std::io::Error::other("injected WAL crash: short append").into()
}

/// Syncer twin of [`FaultWal`]: refuses barriers once the fault fired.
struct FaultSyncer {
    tripped: Arc<AtomicBool>,
    inner: Box<dyn WalSyncer>,
}

impl WalSyncer for FaultSyncer {
    fn wal_sync_now(&self) -> Result<()> {
        if self.tripped.load(Ordering::Relaxed) {
            return Err(crashed());
        }
        self.inner.wal_sync_now()
    }
}

impl<S: WalStore> WalStore for FaultWal<S> {
    fn wal_append(&mut self, bytes: &[u8]) -> Result<()> {
        if self.tripped() {
            return Err(crashed());
        }
        if let Some(cut) = self.cut_at {
            if self.appended + bytes.len() as u64 > cut {
                let keep = cut.saturating_sub(self.appended) as usize;
                self.inner.wal_append(&bytes[..keep])?;
                self.appended += keep as u64;
                self.trip();
                return Err(crashed());
            }
        }
        self.inner.wal_append(bytes)?;
        self.appended += bytes.len() as u64;
        Ok(())
    }

    fn wal_sync(&mut self) -> Result<()> {
        if self.tripped() {
            return Err(crashed());
        }
        self.inner.wal_sync()
    }

    fn wal_read_all(&mut self) -> Result<Vec<u8>> {
        self.inner.wal_read_all()
    }

    fn wal_truncate(&mut self, len: u64) -> Result<()> {
        if self.tripped() {
            return Err(crashed());
        }
        self.inner.wal_truncate(len)
    }

    fn wal_len(&mut self) -> Result<u64> {
        self.inner.wal_len()
    }

    fn wal_syncer(&self) -> Box<dyn WalSyncer> {
        Box::new(FaultSyncer {
            tripped: Arc::clone(&self.tripped),
            inner: self.inner.wal_syncer(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::store::MemWalStore;

    #[test]
    fn short_append_leaves_a_prefix_then_fails_everything() {
        let shared = MemWalStore::new();
        let mut w = FaultWal::new(shared.clone()).cut_after(10);
        w.wal_append(b"12345678").unwrap();
        assert!(w.wal_append(b"ABCDEF").is_err(), "crosses the cut");
        assert!(w.tripped());
        assert_eq!(shared.snapshot(), b"12345678AB", "prefix reached the log");
        assert!(w.wal_append(b"x").is_err());
        assert!(w.wal_sync().is_err());
    }

    #[test]
    fn syncer_handle_sees_the_trip() {
        let mut w = FaultWal::new(MemWalStore::new()).cut_after(4);
        let syncer = w.wal_syncer();
        syncer.wal_sync_now().unwrap();
        assert!(w.wal_append(b"123456").is_err());
        assert!(
            syncer.wal_sync_now().is_err(),
            "a barrier through a pre-existing handle fails after the crash"
        );
    }
}
