//! WAL record codec.
//!
//! The log is a sequence of length-prefixed, CRC-guarded frames:
//!
//! ```text
//! +--------------+--------------+------------------------+
//! | len: u32 LE  | crc32: u32 LE| payload (len bytes)    |
//! +--------------+--------------+------------------------+
//! ```
//!
//! The payload starts with a one-byte record kind and the record's LSN,
//! followed by kind-specific fields. [`scan`] walks the stream from the
//! start and stops at the first frame that is incomplete, oversized, or
//! fails its CRC — everything after that point is a torn tail written
//! during the crash and is discarded (redo-only logging never needs it:
//! a torn tail can only contain records of uncommitted transactions).

use crate::checksum::crc32;
use crate::oid::{FileId, PageId};
use crate::page::PAGE_SIZE;

/// One decoded log record.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WalRecord {
    /// Transaction `txn` starts.
    Begin {
        /// WAL-local transaction id.
        txn: u64,
    },
    /// Full after-image of one page written by `txn`.
    PageImage {
        /// WAL-local transaction id.
        txn: u64,
        /// The page this image replaces on replay.
        page: PageId,
        /// The 4 KiB after-image.
        image: Box<[u8; PAGE_SIZE]>,
    },
    /// Transaction `txn` committed; its images must be replayed.
    Commit {
        /// WAL-local transaction id.
        txn: u64,
    },
    /// All earlier work is on disk (informational: checkpoints truncate
    /// the log, so this is normally the first record after one).
    Checkpoint,
}

/// A record plus the LSN it was written under.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WalEntry {
    /// Log sequence number: position of this record in append order,
    /// starting at 1.
    pub lsn: u64,
    /// The decoded record.
    pub rec: WalRecord,
}

const KIND_BEGIN: u8 = 1;
const KIND_PAGE_IMAGE: u8 = 2;
const KIND_COMMIT: u8 = 3;
const KIND_CHECKPOINT: u8 = 4;

/// Largest legal payload: a `PageImage` (kind + lsn + txn + file + page
/// + image). Anything bigger is garbage and ends the scan.
pub const MAX_PAYLOAD: usize = 1 + 8 + 8 + 2 + 4 + PAGE_SIZE;

/// Encode one record (with its LSN) as a framed byte vector.
pub fn encode(lsn: u64, rec: &WalRecord) -> Vec<u8> {
    let mut payload = Vec::with_capacity(32);
    match rec {
        WalRecord::Begin { txn } => {
            payload.push(KIND_BEGIN);
            payload.extend_from_slice(&lsn.to_le_bytes());
            payload.extend_from_slice(&txn.to_le_bytes());
        }
        WalRecord::PageImage { txn, page, image } => {
            payload.reserve(MAX_PAYLOAD);
            payload.push(KIND_PAGE_IMAGE);
            payload.extend_from_slice(&lsn.to_le_bytes());
            payload.extend_from_slice(&txn.to_le_bytes());
            payload.extend_from_slice(&page.file.0.to_le_bytes());
            payload.extend_from_slice(&page.page.to_le_bytes());
            payload.extend_from_slice(&image[..]);
        }
        WalRecord::Commit { txn } => {
            payload.push(KIND_COMMIT);
            payload.extend_from_slice(&lsn.to_le_bytes());
            payload.extend_from_slice(&txn.to_le_bytes());
        }
        WalRecord::Checkpoint => {
            payload.push(KIND_CHECKPOINT);
            payload.extend_from_slice(&lsn.to_le_bytes());
        }
    }
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

fn decode_payload(payload: &[u8]) -> Option<WalEntry> {
    let kind = *payload.first()?;
    let lsn = u64::from_le_bytes(payload.get(1..9)?.try_into().ok()?);
    let rec = match kind {
        KIND_BEGIN => WalRecord::Begin {
            txn: u64::from_le_bytes(payload.get(9..17)?.try_into().ok()?),
        },
        KIND_COMMIT => WalRecord::Commit {
            txn: u64::from_le_bytes(payload.get(9..17)?.try_into().ok()?),
        },
        KIND_CHECKPOINT => WalRecord::Checkpoint,
        KIND_PAGE_IMAGE => {
            let txn = u64::from_le_bytes(payload.get(9..17)?.try_into().ok()?);
            let file = u16::from_le_bytes(payload.get(17..19)?.try_into().ok()?);
            let page = u32::from_le_bytes(payload.get(19..23)?.try_into().ok()?);
            let image: [u8; PAGE_SIZE] = payload.get(23..23 + PAGE_SIZE)?.try_into().ok()?;
            WalRecord::PageImage {
                txn,
                page: PageId::new(FileId(file), page),
                image: Box::new(image),
            }
        }
        _ => return None,
    };
    Some(WalEntry { lsn, rec })
}

/// Result of scanning a log byte stream.
pub struct ScanResult {
    /// Records of the valid prefix, in append order.
    pub entries: Vec<WalEntry>,
    /// Length in bytes of the valid prefix. Anything past this is a torn
    /// tail the caller should truncate.
    pub valid_len: u64,
}

/// Walk `bytes` from the start, decoding frames until the first torn,
/// oversized, or corrupt one.
pub fn scan(bytes: &[u8]) -> ScanResult {
    let mut entries = Vec::new();
    let mut pos = 0usize;
    while pos + 8 <= bytes.len() {
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        let crc = u32::from_le_bytes([
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
        ]);
        if len == 0 || len > MAX_PAYLOAD || pos + 8 + len > bytes.len() {
            break;
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            break;
        }
        match decode_payload(payload) {
            Some(e) => entries.push(e),
            None => break,
        }
        pos += 8 + len;
    }
    ScanResult {
        entries,
        valid_len: pos as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<(u64, WalRecord)> {
        let mut image = Box::new([0u8; PAGE_SIZE]);
        image[0] = 0xAB;
        image[PAGE_SIZE - 1] = 0xCD;
        vec![
            (1, WalRecord::Begin { txn: 7 }),
            (
                2,
                WalRecord::PageImage {
                    txn: 7,
                    page: PageId::new(FileId(3), 12),
                    image,
                },
            ),
            (3, WalRecord::Commit { txn: 7 }),
            (4, WalRecord::Checkpoint),
        ]
    }

    fn encode_all(recs: &[(u64, WalRecord)]) -> Vec<u8> {
        let mut bytes = Vec::new();
        for (lsn, r) in recs {
            bytes.extend_from_slice(&encode(*lsn, r));
        }
        bytes
    }

    #[test]
    fn roundtrip() {
        let recs = sample();
        let bytes = encode_all(&recs);
        let scanned = scan(&bytes);
        assert_eq!(scanned.valid_len, bytes.len() as u64);
        assert_eq!(scanned.entries.len(), recs.len());
        for (e, (lsn, r)) in scanned.entries.iter().zip(&recs) {
            assert_eq!(e.lsn, *lsn);
            assert_eq!(&e.rec, r);
        }
    }

    #[test]
    fn torn_tail_is_discarded_at_every_cut_point() {
        let recs = sample();
        let bytes = encode_all(&recs);
        // Cutting anywhere must yield a valid prefix of whole records,
        // never an error or a phantom record.
        for cut in 0..bytes.len() {
            let scanned = scan(&bytes[..cut]);
            assert!(scanned.valid_len <= cut as u64);
            assert!(scanned.entries.len() <= recs.len());
            for (e, (lsn, r)) in scanned.entries.iter().zip(&recs) {
                assert_eq!(e.lsn, *lsn);
                assert_eq!(&e.rec, r);
            }
        }
    }

    #[test]
    fn corrupt_byte_ends_the_scan() {
        let recs = sample();
        let bytes = encode_all(&recs);
        // Flip one byte inside the second frame's payload: frame 1
        // survives, everything from frame 2 on is dropped.
        let first_len = encode(1, &recs[0].1).len();
        let mut bad = bytes.clone();
        bad[first_len + 20] ^= 0xFF;
        let scanned = scan(&bad);
        assert_eq!(scanned.entries.len(), 1);
        assert_eq!(scanned.valid_len, first_len as u64);
    }

    #[test]
    fn garbage_length_is_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 64]);
        let scanned = scan(&bytes);
        assert!(scanned.entries.is_empty());
        assert_eq!(scanned.valid_len, 0);
    }
}
