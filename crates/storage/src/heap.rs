//! Heap files: unordered collections of records addressed by physical OID.
//!
//! This is the paper's notion of a *set stored as a disk file* (§2.2): "the
//! set Emp1 would be stored as a disk file, and the pages in that disk file
//! would contain only the EMP objects belonging to Emp1."
//!
//! Records keep their OID for life. If an update outgrows its page — the
//! normal case when in-place replication adds a hidden field to an existing
//! object — the record moves and leaves a forwarding stub behind
//! ([`RecordFlags::Forward`]), exactly the technique slotted-page systems
//! use for stable RIDs. Scans report each logical record once, at its
//! original OID.

use crate::error::{Result, StorageError};
use crate::oid::{FileId, Oid, PageId};
use crate::page::{PageKind, PageMut, PageView, RecordFlags, RecordHeader};
use crate::StorageManager;
use std::collections::VecDeque;

/// Per-file free-space bookkeeping kept by the storage manager.
///
/// Inserts go to the current append page; pages that regain space through
/// deletes or shrinking updates enter a bounded recycling queue that the
/// next inserts probe first. This is an approximation (a real system would
/// keep a free-space map page); it only affects placement, never
/// correctness.
#[derive(Default, Debug)]
pub struct FileSpace {
    /// The page new inserts try first.
    pub append_page: Option<u32>,
    /// Pages that recently regained space.
    pub recycled: VecDeque<u32>,
}

/// How many recycled pages an insert probes before extending the file.
const RECYCLE_PROBES: usize = 8;

/// A handle to a heap file. Carries no state beyond the file id; all
/// operations go through the [`StorageManager`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HeapFile {
    /// The underlying disk file.
    pub file: FileId,
}

impl HeapFile {
    /// Create a new, empty heap file.
    pub fn create(sm: &StorageManager) -> Result<HeapFile> {
        let file = sm.create_file()?;
        Ok(HeapFile { file })
    }

    /// Wrap an existing file id (e.g. one recorded in the catalog).
    pub fn open(file: FileId) -> HeapFile {
        HeapFile { file }
    }

    /// Insert a record, returning its stable OID.
    pub fn rec_insert(&self, sm: &StorageManager, type_tag: u16, payload: &[u8]) -> Result<Oid> {
        self.insert_flagged(sm, type_tag, RecordFlags::Normal, payload)
    }

    fn insert_flagged(
        &self,
        sm: &StorageManager,
        type_tag: u16,
        flags: RecordFlags,
        payload: &[u8],
    ) -> Result<Oid> {
        let header = RecordHeader { type_tag, flags };

        // Snapshot placement candidates under the free-space lock, then
        // probe them with the lock released: a concurrent insert may race
        // us to a page, but `pg.insert` under the page latch simply
        // reports "full" and we fall through to the next candidate.
        let candidates: Vec<u32> = sm.with_free_space(self.file, |space| {
            // 1. The append page first.
            let mut candidates = Vec::with_capacity(1 + RECYCLE_PROBES);
            if let Some(p) = space.append_page {
                candidates.push(p);
            }
            // 2. Then a few recycled pages.
            for p in space.recycled.iter().take(RECYCLE_PROBES) {
                if Some(*p) != space.append_page {
                    candidates.push(*p);
                }
            }
            candidates
        });

        for page_no in candidates {
            let pid = PageId::new(self.file, page_no);
            let h = sm.pool().fetch(pid)?;
            let mut data = h.data_mut();
            let mut pg = PageMut::new(&mut data[..]);
            if let Some(slot) = pg.insert(header, payload)? {
                drop(data);
                self.after_placement(sm, page_no);
                return Ok(Oid::new(self.file, page_no, slot));
            }
        }

        // 3. Extend the file.
        let (pid, h) = sm.pool().new_page(self.file)?;
        let mut data = h.data_mut();
        let mut pg = PageMut::new(&mut data[..]);
        pg.init(PageKind::Heap);
        let slot = pg
            .insert(header, payload)?
            .expect("fresh page always fits a legal record");
        drop(data);
        sm.with_free_space(self.file, |space| space.append_page = Some(pid.page));
        Ok(Oid::new(self.file, pid.page, slot))
    }

    fn after_placement(&self, sm: &StorageManager, page_no: u32) {
        // Keep the recycled queue from growing without bound: drop entries
        // we have just used (front-biased removal).
        sm.with_free_space(self.file, |space| {
            if space.recycled.front() == Some(&page_no) {
                space.recycled.pop_front();
            }
        });
    }

    /// Read a record by OID, following a forwarding stub if present.
    /// Returns the record's type tag and payload.
    pub fn read(&self, sm: &StorageManager, oid: Oid) -> Result<(u16, Vec<u8>)> {
        let (hdr, payload) = self.read_raw(sm, oid)?;
        match hdr.flags {
            RecordFlags::Normal | RecordFlags::Moved => Ok((hdr.type_tag, payload)),
            RecordFlags::Forward => {
                let target = Oid::from_bytes(&payload);
                let (thdr, tpayload) = self.read_raw(sm, target)?;
                if thdr.flags != RecordFlags::Moved {
                    return Err(StorageError::Corrupt(format!(
                        "forwarding stub {oid} points at non-moved record {target}"
                    )));
                }
                Ok((thdr.type_tag, tpayload))
            }
        }
    }

    fn read_raw(&self, sm: &StorageManager, oid: Oid) -> Result<(RecordHeader, Vec<u8>)> {
        if oid.file != self.file {
            return Err(StorageError::InvalidOid(oid));
        }
        let h = sm.pool().fetch(oid.page_id())?;
        let data = h.data();
        let view = PageView::new(&data[..]);
        let (hdr, payload) = view.record(oid.slot).ok_or(StorageError::InvalidOid(oid))?;
        Ok((hdr, payload.to_vec()))
    }

    /// Replace the payload of the record at `oid`, preserving its type tag
    /// and keeping `oid` valid even if the record must move pages.
    pub fn rec_update(&self, sm: &StorageManager, oid: Oid, payload: &[u8]) -> Result<()> {
        let (hdr, old_payload) = self.read_raw(sm, oid)?;
        match hdr.flags {
            RecordFlags::Normal => {
                if self.try_update_at(sm, oid, hdr, payload)? {
                    return Ok(());
                }
                // Move: place the record elsewhere as Moved, stub here.
                let target = self.insert_flagged(sm, hdr.type_tag, RecordFlags::Moved, payload)?;
                let h = sm.pool().fetch(oid.page_id())?;
                let mut data = h.data_mut();
                PageMut::new(&mut data[..]).write_forward_stub(oid.slot, hdr.type_tag, target)?;
                drop(data);
                self.note_shrink(sm, oid.page);
                Ok(())
            }
            RecordFlags::Moved => {
                // Direct update of a moved record (internal use only).
                if self.try_update_at(sm, oid, hdr, payload)? {
                    Ok(())
                } else {
                    Err(StorageError::Corrupt(format!(
                        "moved record {oid} updated without its stub"
                    )))
                }
            }
            RecordFlags::Forward => {
                let target = Oid::from_bytes(&old_payload);
                let (thdr, _) = self.read_raw(sm, target)?;
                if self.try_update_at(sm, target, thdr, payload)? {
                    return Ok(());
                }
                // Re-forward: delete the old target, write a new one, and
                // repoint the stub so chains never exceed length one.
                self.delete_raw(sm, target)?;
                let new_target =
                    self.insert_flagged(sm, hdr.type_tag, RecordFlags::Moved, payload)?;
                let h = sm.pool().fetch(oid.page_id())?;
                let mut data = h.data_mut();
                PageMut::new(&mut data[..]).write_forward_stub(
                    oid.slot,
                    hdr.type_tag,
                    new_target,
                )?;
                Ok(())
            }
        }
    }

    fn try_update_at(
        &self,
        sm: &StorageManager,
        oid: Oid,
        hdr: RecordHeader,
        payload: &[u8],
    ) -> Result<bool> {
        let h = sm.pool().fetch(oid.page_id())?;
        let mut data = h.data_mut();
        let mut pg = PageMut::new(&mut data[..]);
        pg.update(oid.slot, hdr, payload)
    }

    /// Delete the record at `oid` (and its forwarded body, if any).
    pub fn rec_delete(&self, sm: &StorageManager, oid: Oid) -> Result<()> {
        let (hdr, payload) = self.read_raw(sm, oid)?;
        if hdr.flags == RecordFlags::Forward {
            let target = Oid::from_bytes(&payload);
            self.delete_raw(sm, target)?;
        }
        self.delete_raw(sm, oid)
    }

    fn delete_raw(&self, sm: &StorageManager, oid: Oid) -> Result<()> {
        let h = sm.pool().fetch(oid.page_id())?;
        let mut data = h.data_mut();
        PageMut::new(&mut data[..]).delete(oid.slot)?;
        drop(data);
        self.note_shrink(sm, oid.page);
        Ok(())
    }

    fn note_shrink(&self, sm: &StorageManager, page: u32) {
        sm.with_free_space(self.file, |space| {
            if !space.recycled.contains(&page) {
                space.recycled.push_back(page);
                if space.recycled.len() > 64 {
                    space.recycled.pop_front();
                }
            }
        });
    }

    /// Open a physical-order scan over the file.
    pub fn scan<'a>(&self, sm: &'a StorageManager) -> Result<HeapScan<'a>> {
        let npages = sm.page_count(self.file)?;
        Ok(HeapScan {
            sm,
            file: self.file,
            npages,
            page: 0,
            slot: 0,
        })
    }

    /// Number of live logical records (counts stubs, skips moved bodies).
    pub fn count(&self, sm: &StorageManager) -> Result<u64> {
        let mut scan = self.scan(sm)?;
        let mut n = 0;
        while scan.next_record()?.is_some() {
            n += 1;
        }
        Ok(n)
    }
}

/// Streaming physical-order scan. Yields each logical record once, at its
/// stable OID; forwarding stubs are followed (costing the extra page read a
/// real system would pay), moved bodies are skipped.
pub struct HeapScan<'a> {
    sm: &'a StorageManager,
    file: FileId,
    npages: u32,
    page: u32,
    slot: u16,
}

impl<'a> HeapScan<'a> {
    /// Advance to the next logical record: `(oid, type_tag, payload)`.
    pub fn next_record(&mut self) -> Result<Option<(Oid, u16, Vec<u8>)>> {
        loop {
            if self.page >= self.npages {
                return Ok(None);
            }
            let pid = PageId::new(self.file, self.page);
            let h = self.sm.pool().fetch(pid)?;
            let found = {
                let data = h.data();
                let view = PageView::new(&data[..]);
                let mut found = None;
                let n = view.slot_count();
                while self.slot < n {
                    let s = self.slot;
                    self.slot += 1;
                    if let Some((hdr, payload)) = view.record(s) {
                        match hdr.flags {
                            RecordFlags::Moved => continue,
                            RecordFlags::Normal => {
                                found = Some((
                                    Oid::new(self.file, self.page, s),
                                    hdr.type_tag,
                                    payload.to_vec(),
                                    false,
                                ));
                                break;
                            }
                            RecordFlags::Forward => {
                                let target = Oid::from_bytes(payload);
                                found = Some((
                                    Oid::new(self.file, self.page, s),
                                    hdr.type_tag,
                                    target.to_bytes().to_vec(),
                                    true,
                                ));
                                break;
                            }
                        }
                    }
                }
                found
            };
            match found {
                Some((oid, tag, payload, true)) => {
                    // Follow the stub.
                    let target = Oid::from_bytes(&payload);
                    let hf = HeapFile::open(self.file);
                    let (_, body) = hf.read_raw(self.sm, target).map(|(h, p)| (h.flags, p))?;
                    return Ok(Some((oid, tag, body)));
                }
                Some((oid, tag, payload, false)) => return Ok(Some((oid, tag, payload))),
                None => {
                    self.page += 1;
                    self.slot = 0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sm() -> StorageManager {
        StorageManager::in_memory(64)
    }

    #[test]
    fn insert_read_roundtrip() {
        let sm = sm();
        let hf = HeapFile::create(&sm).unwrap();
        let a = hf.rec_insert(&sm, 1, b"alpha").unwrap();
        let b = hf.rec_insert(&sm, 2, b"bravo").unwrap();
        assert_eq!(hf.read(&sm, a).unwrap(), (1, b"alpha".to_vec()));
        assert_eq!(hf.read(&sm, b).unwrap(), (2, b"bravo".to_vec()));
    }

    #[test]
    fn inserts_fill_pages_at_cost_model_density() {
        let sm = sm();
        let hf = HeapFile::create(&sm).unwrap();
        // 100-byte payloads → 33 objects/page (O_r in the paper).
        for _ in 0..330 {
            hf.rec_insert(&sm, 1, &[0u8; 100]).unwrap();
        }
        assert_eq!(sm.page_count(hf.file).unwrap(), 10);
    }

    #[test]
    fn update_in_place_preserves_oid() {
        let sm = sm();
        let hf = HeapFile::create(&sm).unwrap();
        let oid = hf.rec_insert(&sm, 1, &[1u8; 50]).unwrap();
        hf.rec_update(&sm, oid, &[2u8; 50]).unwrap();
        assert_eq!(hf.read(&sm, oid).unwrap().1, vec![2u8; 50]);
    }

    #[test]
    fn growing_update_forwards_and_oid_stays_valid() {
        let sm = sm();
        let hf = HeapFile::create(&sm).unwrap();
        // Fill a page completely.
        let mut oids = vec![];
        for _ in 0..33 {
            oids.push(hf.rec_insert(&sm, 1, &[3u8; 100]).unwrap());
        }
        let victim = oids[0];
        // Grow it so it cannot stay on its full page.
        hf.rec_update(&sm, victim, &[4u8; 600]).unwrap();
        let (tag, body) = hf.read(&sm, victim).unwrap();
        assert_eq!(tag, 1);
        assert_eq!(body, vec![4u8; 600]);
        // Update through the stub again (fits at the forwarded location).
        hf.rec_update(&sm, victim, &[5u8; 600]).unwrap();
        assert_eq!(hf.read(&sm, victim).unwrap().1, vec![5u8; 600]);
        // And grow it further, forcing a re-forward.
        hf.rec_update(&sm, victim, &[6u8; 3000]).unwrap();
        assert_eq!(hf.read(&sm, victim).unwrap().1, vec![6u8; 3000]);
    }

    #[test]
    fn delete_then_read_fails() {
        let sm = sm();
        let hf = HeapFile::create(&sm).unwrap();
        let oid = hf.rec_insert(&sm, 1, b"gone").unwrap();
        hf.rec_delete(&sm, oid).unwrap();
        assert!(hf.read(&sm, oid).is_err());
    }

    #[test]
    fn delete_reclaims_space_for_reuse() {
        let sm = sm();
        let hf = HeapFile::create(&sm).unwrap();
        let mut oids = vec![];
        for _ in 0..33 {
            oids.push(hf.rec_insert(&sm, 1, &[7u8; 100]).unwrap());
        }
        assert_eq!(sm.page_count(hf.file).unwrap(), 1);
        hf.rec_delete(&sm, oids[10]).unwrap();
        // The next insert should reuse page 0, not extend the file.
        let oid = hf.rec_insert(&sm, 1, &[8u8; 100]).unwrap();
        assert_eq!(oid.page, 0);
        assert_eq!(sm.page_count(hf.file).unwrap(), 1);
    }

    #[test]
    fn scan_sees_each_logical_record_once() {
        let sm = sm();
        let hf = HeapFile::create(&sm).unwrap();
        let mut expect = vec![];
        for i in 0..100u8 {
            let oid = hf.rec_insert(&sm, 1, &[i; 60]).unwrap();
            expect.push((oid, vec![i; 60]));
        }
        // Forward a few by growing them.
        for &(oid, _) in expect.iter().take(80).step_by(7) {
            hf.rec_update(&sm, oid, &[0xEE; 900]).unwrap();
        }
        let mut seen = std::collections::HashMap::new();
        let mut scan = hf.scan(&sm).unwrap();
        while let Some((oid, _tag, body)) = scan.next_record().unwrap() {
            assert!(seen.insert(oid, body).is_none(), "duplicate oid in scan");
        }
        assert_eq!(seen.len(), 100);
        for (i, (oid, orig)) in expect.iter().enumerate() {
            let want = if i < 80 && i % 7 == 0 {
                vec![0xEE; 900]
            } else {
                orig.clone()
            };
            assert_eq!(seen[oid], want, "record {i}");
        }
    }

    #[test]
    fn forwarded_delete_removes_both_records() {
        let sm = sm();
        let hf = HeapFile::create(&sm).unwrap();
        for _ in 0..33 {
            hf.rec_insert(&sm, 1, &[1u8; 100]).unwrap();
        }
        let victim = Oid::new(hf.file, 0, 0);
        hf.rec_update(&sm, victim, &[2u8; 1000]).unwrap(); // forwards
        hf.rec_delete(&sm, victim).unwrap();
        assert!(hf.read(&sm, victim).is_err());
        // Nothing in the scan refers to the moved body.
        let mut scan = hf.scan(&sm).unwrap();
        let mut n = 0;
        while scan.next_record().unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 32);
    }

    #[test]
    fn count_matches_inserts() {
        let sm = sm();
        let hf = HeapFile::create(&sm).unwrap();
        for _ in 0..250 {
            hf.rec_insert(&sm, 3, &[0u8; 30]).unwrap();
        }
        assert_eq!(hf.count(&sm).unwrap(), 250);
    }
}
