//! # fieldrep-storage
//!
//! A page-based storage manager modelled on the EXODUS storage manager
//! \[Care86\], which is the substrate assumed by Shekita & Carey's *field
//! replication* paper (SIGMOD 1989).
//!
//! The crate provides:
//!
//! * fixed 4 KiB [`page`]s with a slotted layout whose constants reproduce
//!   the paper's cost-model parameters exactly: `B = 4056` bytes of user
//!   data per page and `h = 20` bytes of per-object overhead (a 4-byte slot
//!   plus a 16-byte record header);
//! * physical 8-byte [`Oid`]s (`file`, `page`, `slot`) — the paper assumes
//!   "object identifiers (OIDs) are used to implement reference attributes"
//!   and that OIDs are *physically based, as they are in EXODUS* (§4.1);
//! * a [`DiskManager`] abstraction with in-memory and real-file backends,
//!   both of which count page reads and writes — the paper's evaluation
//!   metric is page I/O, so accounting is built into the lowest layer;
//! * a [`BufferPool`] with clock eviction and pin/unpin page handles;
//! * [`HeapFile`] record management (insert / read / update / delete /
//!   physical-order scan) with RID forwarding so that OIDs remain stable
//!   when records grow — which happens routinely under *in-place
//!   replication*, where hidden replica fields are appended to objects.
//!
//! Everything above this crate (B⁺-trees, the replication engine, query
//! processing) does its I/O through [`StorageManager`], so a single pair of
//! counters ([`IoStats`]) observes every page touched by an experiment.

pub mod buffer;
pub mod checksum;
pub mod disk;
pub mod error;
pub mod fault;
pub mod heap;
pub mod lockorder;
pub mod oid;
pub mod page;
pub mod stats;
pub mod wal;

pub use buffer::{BufferPool, PageHandle, ShardStats};
pub use disk::{remove_db_dir, DiskManager, FileDisk, MemDisk};
pub use error::{Result, StorageError};
pub use fault::{FaultDisk, FaultPlan};
pub use heap::{HeapFile, HeapScan};
pub use oid::{FileId, Oid, PageId};
pub use page::{
    PageKind, PageMut, PageView, RecordFlags, RecordHeader, MAX_RECORD_PAYLOAD, MIN_RECORD_PAYLOAD,
    OBJECT_OVERHEAD, PAGE_HEADER_SIZE, PAGE_SIZE, RECORD_HEADER_SIZE, SLOT_SIZE,
    USER_BYTES_PER_PAGE,
};
pub use stats::{IoProfile, IoStats};
pub use wal::{FileWalStore, MemWalStore, RecoveryReport, Wal, WalStats, WalStore, WalSyncer};

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// The storage manager: a buffer pool plus per-file free-space tracking and
/// the heap-file record interface used by every higher layer.
///
/// All object and index I/O in the system flows through one
/// `StorageManager`, which is what makes the benchmark harness able to
/// report exact page-I/O counts per query (the paper's cost metric).
///
/// The manager is shared: every method takes `&self`, so concurrent
/// transactions operate on one `StorageManager` without external locking.
/// The pool has its own interior synchronization (see [`BufferPool`]);
/// the free-space placement state sits behind a private mutex accessed
/// through short closures, and only influences *placement* — page-level
/// correctness is always guaranteed by the per-page write latch.
pub struct StorageManager {
    pool: BufferPool,
    /// Per-file insert placement state (append page + recycled pages).
    /// This is an in-memory structure, rebuilt on open; durability of the
    /// *pages* is the WAL's job (see [`wal`]).
    free_space: Mutex<HashMap<FileId, heap::FileSpace>>,
    /// What recovery found when this manager was opened with a WAL.
    recovery: RecoveryReport,
}

impl StorageManager {
    /// Create a storage manager over the given disk backend with a buffer
    /// pool of `pool_pages` frames and no durability layer.
    pub fn new(disk: Box<dyn DiskManager>, pool_pages: usize) -> Self {
        StorageManager {
            pool: BufferPool::new(disk, pool_pages),
            free_space: Mutex::new(HashMap::new()),
            recovery: RecoveryReport::default(),
        }
    }

    /// Create a durable storage manager: run crash [`wal::recover`]y
    /// against `disk` and `store` (replaying any committed transactions
    /// a crash left in the log), then construct the pool with the WAL
    /// attached so every subsequent write-back obeys the steal rule.
    pub fn new_with_wal(
        mut disk: Box<dyn DiskManager>,
        mut store: Box<dyn WalStore>,
        pool_pages: usize,
    ) -> Result<Self> {
        let report = wal::recover(disk.as_mut(), store.as_mut())?;
        let w = Arc::new(Wal::new(store, report.last_lsn + 1));
        Ok(StorageManager {
            pool: BufferPool::new_with_wal(disk, pool_pages, Some(w)),
            free_space: Mutex::new(HashMap::new()),
            recovery: report,
        })
    }

    /// The WAL, if this manager was opened with one.
    pub fn wal(&self) -> Option<&Arc<Wal>> {
        self.pool.wal()
    }

    /// Whether a durability layer is attached.
    pub fn wal_enabled(&self) -> bool {
        self.pool.wal().is_some()
    }

    /// What recovery found and did when this manager was opened (all
    /// zeros without a WAL or after a clean shutdown).
    pub fn recovery_report(&self) -> RecoveryReport {
        self.recovery
    }

    /// Point-in-time WAL counters (zeros when no WAL is attached).
    pub fn wal_stats(&self) -> WalStats {
        self.pool.wal().map(|w| w.stats()).unwrap_or_default()
    }

    /// Checkpoint: write back every dirty page (each gated on its log
    /// records being durable, unlogged ones autocommitted), fsync the
    /// data files, then truncate the log — after this the WAL is empty
    /// and the on-disk state alone is the database. Without a WAL this
    /// is a flush plus a disk sync (still a real durability barrier on
    /// a [`FileDisk`]).
    pub fn checkpoint(&self) -> Result<()> {
        self.pool.flush_all()?;
        self.pool.sync_disk()?;
        if let Some(w) = self.pool.wal() {
            w.checkpoint_truncate()?;
        }
        Ok(())
    }

    /// Convenience constructor: an in-memory disk, suitable for tests and
    /// for the simulation benchmarks (I/O is still counted).
    pub fn in_memory(pool_pages: usize) -> Self {
        Self::new(Box::new(MemDisk::new()), pool_pages)
    }

    /// Access the underlying buffer pool.
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Create a new, empty file and return its id.
    pub fn create_file(&self) -> Result<FileId> {
        let f = self.pool.create_file()?;
        self.free_space.lock().insert(f, heap::FileSpace::default());
        Ok(f)
    }

    /// Drop a file and all its pages.
    pub fn drop_file(&self, file: FileId) -> Result<()> {
        self.free_space.lock().remove(&file);
        self.pool.drop_file(file)
    }

    /// Number of allocated pages in `file`.
    pub fn page_count(&self, file: FileId) -> Result<u32> {
        self.pool.page_count(file)
    }

    /// Combined I/O statistics (disk + buffer pool) since the last reset.
    pub fn io_profile(&self) -> IoProfile {
        self.pool.io_profile()
    }

    /// Reset the whole I/O profile (disk and pool counters together); see
    /// [`BufferPool::reset_profile`]. This is the reset the benchmark
    /// harness uses for cold-pool accounting between queries.
    pub fn reset_profile(&self) {
        self.pool.reset_profile();
    }

    /// Reset all I/O counters. Alias of [`StorageManager::reset_profile`],
    /// kept for existing call sites.
    pub fn reset_io(&self) {
        self.reset_profile();
    }

    /// Write back every dirty page and empty the buffer pool, so that the
    /// next query starts cold. The paper's cost model charges one read for
    /// every page a query needs; a cold pool makes measured I/O comparable.
    pub fn flush_all(&self) -> Result<()> {
        self.pool.flush_all()
    }

    /// Batched page fetch: see [`BufferPool::get_pages_batch`].
    pub fn get_pages_batch(&self, pids: &[PageId]) -> Result<Vec<PageHandle>> {
        self.pool.get_pages_batch(pids)
    }

    /// Read-ahead hint: see [`BufferPool::prefetch`].
    pub fn prefetch_pages(&self, pids: &[PageId]) -> Result<()> {
        self.pool.prefetch(pids)
    }

    /// Run `f` with exclusive access to `file`'s free-space placement
    /// state. The closure must not touch the pool (placement decisions
    /// and page I/O are deliberately decoupled so the free-space mutex is
    /// never held across a disk access).
    pub(crate) fn with_free_space<R>(
        &self,
        file: FileId,
        f: impl FnOnce(&mut heap::FileSpace) -> R,
    ) -> R {
        let mut map = self.free_space.lock();
        f(map.entry(file).or_default())
    }
}

/// Split a physically-sorted OID slice into chunks of at most `max_pages`
/// **distinct** pages each, returning for every chunk the index range it
/// covers and its distinct page ids (in order, deduplicated).
///
/// This is the bridge between a link object's sorted OID array (§4.1.3)
/// and [`BufferPool::get_pages_batch`]: callers iterate the chunks, batch-
/// fetch each page list, and process the OIDs in `range` while the pins
/// are held. Chunking caps how many frames one batch pins at once, so the
/// fast path works even with a tiny pool. OIDs sharing a page always land
/// in the same chunk. `max_pages` is clamped to at least 1.
pub fn oid_page_chunks(
    oids: &[Oid],
    max_pages: usize,
) -> Vec<(std::ops::Range<usize>, Vec<PageId>)> {
    let max_pages = max_pages.max(1);
    let mut out = Vec::new();
    let mut start = 0;
    let mut pages: Vec<PageId> = Vec::new();
    for (i, oid) in oids.iter().enumerate() {
        let pid = oid.page_id();
        if pages.last() != Some(&pid) {
            if pages.len() == max_pages {
                out.push((start..i, std::mem::take(&mut pages)));
                start = i;
            }
            pages.push(pid);
        }
    }
    if !pages.is_empty() {
        out.push((start..oids.len(), pages));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_paper() {
        // Figure 10 of the paper: B = 4056, h = 20.
        assert_eq!(USER_BYTES_PER_PAGE, 4056);
        assert_eq!(OBJECT_OVERHEAD, 20);
        assert_eq!(PAGE_SIZE, 4096);
        assert_eq!(std::mem::size_of::<Oid>(), 8);
    }

    #[test]
    fn oid_page_chunks_groups_by_page_and_caps_distinct_pages() {
        let f = FileId(1);
        let oid = |page, slot| Oid::new(f, page, slot);
        let oids = [
            oid(0, 0),
            oid(0, 1),
            oid(0, 2),
            oid(1, 0),
            oid(2, 0),
            oid(2, 1),
            oid(5, 0),
        ];
        let chunks = oid_page_chunks(&oids, 2);
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].0, 0..4);
        assert_eq!(
            chunks[0].1,
            vec![PageId::new(f, 0), PageId::new(f, 1)],
            "distinct pages only, co-located OIDs stay together"
        );
        assert_eq!(chunks[1].0, 4..7);
        assert_eq!(chunks[1].1, vec![PageId::new(f, 2), PageId::new(f, 5)]);
        // max_pages is clamped to at least one page per chunk.
        assert_eq!(oid_page_chunks(&oids, 0).len(), 4);
        assert!(oid_page_chunks(&[], 4).is_empty());
    }

    #[test]
    fn create_and_drop_files() {
        let sm = StorageManager::in_memory(16);
        let a = sm.create_file().unwrap();
        let b = sm.create_file().unwrap();
        assert_ne!(a, b);
        assert_eq!(sm.page_count(a).unwrap(), 0);
        sm.drop_file(a).unwrap();
        assert!(sm.page_count(a).is_err());
        assert_eq!(sm.page_count(b).unwrap(), 0);
    }
}
