//! I/O accounting.
//!
//! The paper's entire evaluation (§6) is expressed in page I/Os, so the
//! storage layer counts them at two levels: physical transfers at the disk
//! manager, and logical page requests (hits vs. misses) at the buffer pool.

use std::fmt;

/// Physical disk-level counters.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct IoStats {
    /// Pages read from the disk backend.
    pub reads: u64,
    /// Read *calls* issued to the backend: a batched
    /// [`read_pages`](crate::disk::DiskManager::read_pages) of `n`
    /// adjacent pages counts `n` reads but one call. On a real disk this
    /// is the seek/syscall count, so `reads / read_calls` is the mean
    /// batch length actually achieved.
    pub read_calls: u64,
    /// Pages written to the disk backend.
    pub writes: u64,
    /// Pages allocated (extended) on the disk backend.
    pub allocations: u64,
    /// Explicit durability barriers ([`sync`](crate::disk::DiskManager::sync))
    /// issued to the backend — `fsync` calls on [`FileDisk`](crate::FileDisk),
    /// counted-but-free on [`MemDisk`](crate::MemDisk).
    pub syncs: u64,
}

impl IoStats {
    /// Total physical page transfers (reads + writes).
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }

    /// Reset every counter to zero.
    pub fn reset(&mut self) {
        *self = IoStats::default();
    }
}

impl fmt::Display for IoStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reads={} (calls={}) writes={} allocs={} syncs={}",
            self.reads, self.read_calls, self.writes, self.allocations, self.syncs
        )
    }
}

/// Combined view: physical disk traffic plus buffer-pool behaviour.
#[derive(Clone, Copy, Default, Debug)]
pub struct IoProfile {
    /// Physical transfers performed by the disk manager.
    pub disk: IoStats,
    /// Buffer-pool page requests that were already resident.
    pub pool_hits: u64,
    /// Buffer-pool page requests that required a disk read.
    pub pool_misses: u64,
    /// Dirty pages written back during eviction or flush.
    pub evictions: u64,
}

impl IoProfile {
    /// The paper charges a query one I/O per distinct page it needs.
    /// With a cold pool, `pool_misses` is exactly that number for reads.
    pub fn pages_read(&self) -> u64 {
        self.disk.reads
    }

    /// Pages physically written (update queries write dirty pages back).
    pub fn pages_written(&self) -> u64 {
        self.disk.writes
    }

    /// `reads + writes`: the quantity the paper's `C_read` / `C_update`
    /// equations estimate.
    pub fn total_io(&self) -> u64 {
        self.disk.total()
    }
}

impl fmt::Display for IoProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits={} misses={} evictions={}",
            self.disk, self.pool_hits, self.pool_misses, self.evictions
        )
    }
}
