//! Page checksums and the durability header.
//!
//! Bytes 16..28 of every page header (reserved since the first commit;
//! see `page.rs`) hold a durability header: a u64 LSN and a u32 CRC32.
//! The buffer pool stamps both into a stack copy of the frame
//! immediately before every `DiskManager::write_page`, and verifies the
//! CRC on every read. A page whose stored CRC is `0` predates
//! checksumming (or was never written by the pool) and is accepted
//! as-is; a computed CRC of `0` is stored as `1` so the sentinel stays
//! unambiguous.
//!
//! The CRC is the IEEE 802.3 polynomial (reflected, `0xEDB88320`),
//! computed over the full 4096 bytes with the four CRC bytes zeroed.
//! The table is built in a `const fn` — no external crates.

use crate::page::{OFF_PAGE_CRC, OFF_PAGE_LSN, PAGE_SIZE};

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = build_table();

/// CRC32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// CRC32 of a page with its own CRC field treated as zero.
fn page_crc(buf: &[u8; PAGE_SIZE]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for (i, &b) in buf.iter().enumerate() {
        let b = if (OFF_PAGE_CRC..OFF_PAGE_CRC + 4).contains(&i) {
            0
        } else {
            b
        };
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// The page LSN stored at [`OFF_PAGE_LSN`].
pub fn read_lsn(buf: &[u8; PAGE_SIZE]) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[OFF_PAGE_LSN..OFF_PAGE_LSN + 8]);
    u64::from_le_bytes(b)
}

/// Stamp `lsn` and a fresh CRC into `buf` (in that order — the CRC
/// covers the LSN).
pub fn stamp(buf: &mut [u8; PAGE_SIZE], lsn: u64) {
    buf[OFF_PAGE_LSN..OFF_PAGE_LSN + 8].copy_from_slice(&lsn.to_le_bytes());
    let mut crc = page_crc(buf);
    if crc == 0 {
        crc = 1; // 0 is the "unchecksummed" sentinel
    }
    buf[OFF_PAGE_CRC..OFF_PAGE_CRC + 4].copy_from_slice(&crc.to_le_bytes());
}

/// Verify the stored CRC. Returns `true` when the page is intact or
/// unchecksummed (stored CRC 0).
pub fn verify(buf: &[u8; PAGE_SIZE]) -> bool {
    let mut b = [0u8; 4];
    b.copy_from_slice(&buf[OFF_PAGE_CRC..OFF_PAGE_CRC + 4]);
    let stored = u32::from_le_bytes(b);
    if stored == 0 {
        return true;
    }
    let mut crc = page_crc(buf);
    if crc == 0 {
        crc = 1;
    }
    crc == stored
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn stamp_then_verify_roundtrips() {
        let mut buf = [0u8; PAGE_SIZE];
        buf[100] = 0xAA;
        stamp(&mut buf, 42);
        assert!(verify(&buf));
        assert_eq!(read_lsn(&buf), 42);
    }

    #[test]
    fn any_flipped_bit_is_detected() {
        let mut buf = [7u8; PAGE_SIZE];
        stamp(&mut buf, 9);
        for &i in &[0usize, 15, 17, 39, 40, 1000, PAGE_SIZE - 1] {
            let mut torn = buf;
            torn[i] ^= 0x01;
            assert!(!verify(&torn), "flip at byte {i} went undetected");
        }
    }

    #[test]
    fn zero_crc_means_unchecksummed() {
        let buf = [0u8; PAGE_SIZE];
        assert!(verify(&buf), "legacy pages with CRC 0 are accepted");
    }
}
