//! Error type shared by every storage-level operation.

use crate::oid::{FileId, Oid, PageId};
use std::fmt;

/// Result alias used throughout the storage layer.
pub type Result<T> = std::result::Result<T, StorageError>;

/// Errors raised by the storage manager and the layers built directly on it.
#[derive(Debug)]
pub enum StorageError {
    /// An operating-system I/O error (file-backed disk manager only).
    Io(std::io::Error),
    /// The record payload exceeds what a single page can ever hold.
    RecordTooLarge {
        /// Size that was requested.
        size: usize,
        /// The largest payload a page can store.
        max: usize,
    },
    /// The referenced file does not exist (or was dropped).
    FileNotFound(FileId),
    /// The referenced page lies beyond the end of its file.
    PageOutOfBounds(PageId),
    /// The OID does not name a live record (bad slot, deleted record, or a
    /// slot holding a different kind of record than expected).
    InvalidOid(Oid),
    /// Every buffer-pool frame is pinned; the caller holds too many page
    /// handles at once.
    BufferExhausted,
    /// On-page data failed an internal consistency check.
    Corrupt(String),
    /// The page's stored CRC32 does not match its contents — the page was
    /// torn by a crash mid-write or corrupted at rest.
    ChecksumMismatch(PageId),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "I/O error: {e}"),
            StorageError::RecordTooLarge { size, max } => {
                write!(
                    f,
                    "record of {size} bytes exceeds page capacity of {max} bytes"
                )
            }
            StorageError::FileNotFound(id) => write!(f, "file {id} not found"),
            StorageError::PageOutOfBounds(pid) => write!(f, "page {pid} is out of bounds"),
            StorageError::InvalidOid(oid) => write!(f, "OID {oid} does not name a live record"),
            StorageError::BufferExhausted => {
                write!(f, "all buffer-pool frames are pinned; cannot evict")
            }
            StorageError::Corrupt(msg) => write!(f, "corrupt page data: {msg}"),
            StorageError::ChecksumMismatch(pid) => {
                write!(f, "page {pid} failed its CRC32 checksum")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}
