//! Generators for the paper's figures and tables (the per-experiment
//! index of DESIGN.md).

use crate::costs::{percent_difference, read_cost, update_cost};
use crate::params::{IndexSetting, ModelStrategy, Params};

/// One plotted point of Figures 11/13.
#[derive(Clone, Copy, Debug)]
pub struct CurvePoint {
    /// Update probability (x axis).
    pub p_update: f64,
    /// % difference in `C_total` vs. no replication, in-place strategy.
    pub inplace_pct: f64,
    /// % difference, separate strategy.
    pub separate_pct: f64,
}

/// One graph of Figure 11 or 13: for a sharing level `f`, three curves
/// (`f_r ∈ {.001, .002, .005}`) per strategy, sampled over
/// `p_update ∈ [0, 1]`.
#[derive(Clone, Debug)]
pub struct Graph {
    /// Sharing level.
    pub f: f64,
    /// `(f_r, curve)` per read selectivity.
    pub curves: Vec<(f64, Vec<CurvePoint>)>,
}

/// The sharing levels of Figures 11/13.
pub const FIG_SHARING_LEVELS: [f64; 4] = [1.0, 10.0, 20.0, 50.0];
/// The read selectivities of Figures 11/13.
pub const FIG_READ_SELS: [f64; 3] = [0.001, 0.002, 0.005];

/// Generate one graph (fixed `f`, three `f_r` curves, `steps + 1` points).
pub fn figure_graph(setting: IndexSetting, f: f64, steps: usize) -> Graph {
    let mut curves = Vec::new();
    for &fr in &FIG_READ_SELS {
        let params = Params {
            sharing: f,
            read_sel: fr,
            ..Params::default()
        };
        let mut pts = Vec::with_capacity(steps + 1);
        for i in 0..=steps {
            let p_up = i as f64 / steps as f64;
            pts.push(CurvePoint {
                p_update: p_up,
                inplace_pct: percent_difference(&params, ModelStrategy::InPlace, setting, p_up),
                separate_pct: percent_difference(&params, ModelStrategy::Separate, setting, p_up),
            });
        }
        curves.push((fr, pts));
    }
    Graph { f, curves }
}

/// Generate all four graphs of Figure 11 (unclustered) or Figure 13
/// (clustered).
pub fn figure_11_or_13(setting: IndexSetting, steps: usize) -> Vec<Graph> {
    FIG_SHARING_LEVELS
        .iter()
        .map(|&f| figure_graph(setting, f, steps))
        .collect()
}

/// One row of Figures 12/14: `C_read` and `C_update` for a strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TableRow {
    /// Strategy.
    pub strategy: ModelStrategy,
    /// Rounded `C_read`.
    pub c_read: u64,
    /// Rounded `C_update`.
    pub c_update: u64,
}

/// The selected-values table (Figure 12 for unclustered, Figure 14 for
/// clustered): rows for the three strategies at `(f, f_r = .002)`.
pub fn selected_values(setting: IndexSetting, f: f64) -> Vec<TableRow> {
    let params = Params {
        sharing: f,
        read_sel: 0.002,
        ..Params::default()
    };
    [
        ModelStrategy::None,
        ModelStrategy::InPlace,
        ModelStrategy::Separate,
    ]
    .into_iter()
    .map(|strategy| TableRow {
        strategy,
        c_read: read_cost(&params, strategy, setting).rounded(),
        c_update: update_cost(&params, strategy, setting).rounded(),
    })
    .collect()
}

/// Render a graph as a compact ASCII table (used by the figure binaries).
pub fn render_graph(g: &Graph, setting: IndexSetting) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let name = match setting {
        IndexSetting::Unclustered => "Unclustered",
        IndexSetting::Clustered => "Clustered",
    };
    writeln!(
        out,
        "{name} Access, f = {}, |R| = {}",
        g.f,
        (g.f * 10_000.0) as u64
    )
    .unwrap();
    write!(out, "{:>6} |", "P_up").unwrap();
    for (fr, _) in &g.curves {
        write!(out, " in-pl f_r={fr:<5} sep f_r={fr:<7}").unwrap();
    }
    writeln!(out).unwrap();
    let n = g.curves[0].1.len();
    for i in 0..n {
        write!(out, "{:>6.2} |", g.curves[0].1[i].p_update).unwrap();
        for (_, pts) in &g.curves {
            write!(
                out,
                " {:>+13.1}% {:>+10.1}%  ",
                pts[i].inplace_pct, pts[i].separate_pct
            )
            .unwrap();
        }
        writeln!(out).unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graphs_start_negative_and_rise() {
        // At P_up = 0 replication always helps; curves rise with P_up.
        for setting in [IndexSetting::Unclustered, IndexSetting::Clustered] {
            for g in figure_11_or_13(setting, 10) {
                for (_, pts) in &g.curves {
                    assert!(pts[0].inplace_pct < 0.0, "in-place helps at P_up=0");
                    // In-place gets monotonically worse as updates dominate.
                    for w in pts.windows(2) {
                        assert!(w[1].inplace_pct >= w[0].inplace_pct - 1e-9);
                    }
                }
            }
        }
    }

    #[test]
    fn selected_values_match_figures() {
        // Spot checks (full checks live in costs::tests).
        let t = selected_values(IndexSetting::Unclustered, 1.0);
        assert_eq!(t[0].c_read, 43);
        assert_eq!(t[1].c_update, 42);
        let t = selected_values(IndexSetting::Clustered, 20.0);
        assert_eq!(t[1].c_read, 32);
        assert_eq!(t[2].c_update, 6);
    }

    #[test]
    fn render_is_nonempty() {
        let g = figure_graph(IndexSetting::Unclustered, 10.0, 4);
        let s = render_graph(&g, IndexSetting::Unclustered);
        assert!(s.contains("f = 10"));
        assert!(s.lines().count() > 5);
    }
}
