//! # fieldrep-costmodel
//!
//! The analytical I/O cost model of Shekita & Carey's §6, implemented
//! exactly: Yao's block-access function, the twelve `C_read`/`C_update`
//! equations for {no, in-place, separate} replication × {unclustered,
//! clustered} indexes, the query-mix total
//! `C_total = (1−P_up)·C_read + P_up·C_update`, and generators for every
//! figure and table of the evaluation (Figures 11–14).
//!
//! This crate is pure math (no I/O, no dependencies); the benchmark
//! harness compares its predictions against the measured page I/O of the
//! real engine.

pub mod advisor;
pub mod conformance;
pub mod costs;
pub mod figures;
pub mod params;
pub mod yao;

pub use advisor::{crossover, recommend, Recommendation};
pub use conformance::{
    drift_pct, matches_op, predict_read, predict_update, predicted_total, AccessShape,
    OpPrediction, ProjShape, ReadShape, UpdateShape,
};
pub use costs::{percent_difference, read_cost, total_cost, update_cost, Cost};
pub use figures::{
    figure_11_or_13, figure_graph, render_graph, selected_values, CurvePoint, Graph, TableRow,
    FIG_READ_SELS, FIG_SHARING_LEVELS,
};
pub use params::{Derived, IndexSetting, ModelStrategy, Params};
pub use yao::yao;
