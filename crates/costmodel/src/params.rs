//! Cost-model parameters (Figure 10 of the paper) and the per-strategy
//! size adjustments of §6.3.

/// The replication strategy being costed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ModelStrategy {
    /// No replication: read queries join `R` with `S`.
    None,
    /// In-place replication (§4).
    InPlace,
    /// Separate replication (§5).
    Separate,
}

/// Index setting of the analysis (§6.4): both indexes unclustered, or
/// both clustered.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IndexSetting {
    /// §6.5: more total I/O; replication saves a smaller percentage.
    Unclustered,
    /// §6.7: less total I/O; replication saves a larger percentage.
    Clustered,
}

/// Core parameters, with Figure 10's defaults.
#[derive(Clone, Debug)]
pub struct Params {
    /// `B`: user bytes per disk page.
    pub page_bytes: f64,
    /// `h`: storage overhead per object.
    pub obj_overhead: f64,
    /// `m`: B⁺-tree fanout.
    pub fanout: f64,
    /// `|S|`: objects in S.
    pub s_count: f64,
    /// `f`: sharing level (every S object referenced by `f` R objects;
    /// `|R| = f·|S|`).
    pub sharing: f64,
    /// `f_r`: read-query selectivity.
    pub read_sel: f64,
    /// `f_s`: update-query selectivity.
    pub update_sel: f64,
    /// `sizeof(OID)`.
    pub oid_bytes: f64,
    /// `sizeof(link-ID)`.
    pub link_id_bytes: f64,
    /// `sizeof(type-tag)`.
    pub type_tag_bytes: f64,
    /// `k`: size of the replicated field.
    pub repl_field_bytes: f64,
    /// `r`: size of R objects (before strategy adjustment).
    pub r_bytes: f64,
    /// `s`: size of S objects.
    pub s_bytes: f64,
    /// `t`: size of output objects.
    pub t_bytes: f64,
    /// Apply the §4.3.1 optimization in the model: when `f = 1`, every
    /// link object holds one OID and is eliminated, dropping the
    /// `C_read/L` term of in-place updates. Figure 12's in-place `f = 1`
    /// update cost (42) is only reproducible with this on; see DESIGN.md.
    pub inline_link_elimination: bool,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            page_bytes: 4056.0,
            obj_overhead: 20.0,
            fanout: 350.0,
            s_count: 10_000.0,
            sharing: 1.0,
            read_sel: 0.001,
            update_sel: 0.001,
            oid_bytes: 8.0,
            link_id_bytes: 1.0,
            type_tag_bytes: 2.0,
            repl_field_bytes: 20.0,
            r_bytes: 100.0,
            s_bytes: 200.0,
            t_bytes: 100.0,
            inline_link_elimination: true,
        }
    }
}

impl Params {
    /// Figure 10's defaults with a given sharing level `f`.
    pub fn with_sharing(f: f64) -> Params {
        Params {
            sharing: f,
            ..Params::default()
        }
    }

    /// `|R| = f·|S|`.
    pub fn r_count(&self) -> f64 {
        self.sharing * self.s_count
    }

    /// Derive all file-size quantities for a strategy (§6.3's tacit
    /// adjustments, pinned down in DESIGN.md §4):
    /// * in-place: `r → r + k`;
    /// * separate: `r → r + sizeof(OID)` (the hidden replica reference),
    ///   `s' = k + sizeof(type-tag)`, `l = 1 + sizeof(type-tag) +
    ///   f·sizeof(OID)`;
    /// * `s` is never adjusted (verified against Figure 12).
    pub fn derive(&self, strategy: ModelStrategy) -> Derived {
        let r = match strategy {
            ModelStrategy::None => self.r_bytes,
            ModelStrategy::InPlace => self.r_bytes + self.repl_field_bytes,
            ModelStrategy::Separate => self.r_bytes + self.oid_bytes,
        };
        let s = self.s_bytes;
        let s_prime = self.repl_field_bytes + self.type_tag_bytes;
        let l = 1.0 + self.type_tag_bytes + self.sharing * self.oid_bytes;

        let per_page = |x: f64| (self.page_bytes / (self.obj_overhead + x)).floor();
        let pages = |count: f64, per: f64| (count / per).ceil();

        let o_r = per_page(r);
        let o_s = per_page(s);
        let o_sp = per_page(s_prime);
        let o_l = per_page(l);
        let o_t = per_page(self.t_bytes);

        Derived {
            o_r,
            o_s,
            o_sp,
            o_l,
            o_t,
            p_r: pages(self.r_count(), o_r),
            p_s: pages(self.s_count, o_s),
            p_sp: pages(self.s_count, o_sp),
            p_l: pages(self.s_count, o_l),
            p_t: pages(self.read_sel * self.r_count(), o_t),
        }
    }
}

/// Derived per-file quantities (the `O_x` / `P_x` of Figure 10).
#[derive(Clone, Copy, Debug)]
pub struct Derived {
    /// Objects per page in R.
    pub o_r: f64,
    /// Objects per page in S.
    pub o_s: f64,
    /// Objects per page in S'.
    pub o_sp: f64,
    /// Objects per page in L.
    pub o_l: f64,
    /// Objects per page in T.
    pub o_t: f64,
    /// Pages in R.
    pub p_r: f64,
    /// Pages in S.
    pub p_s: f64,
    /// Pages in S'.
    pub p_sp: f64,
    /// Pages in L.
    pub p_l: f64,
    /// Pages in T (for one read query).
    pub p_t: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_10_derived_values() {
        let p = Params::default(); // f = 1
        let d = p.derive(ModelStrategy::None);
        assert_eq!(d.o_r, 33.0); // ⌊4056/120⌋
        assert_eq!(d.o_s, 18.0); // ⌊4056/220⌋
        assert_eq!(d.p_r, 304.0); // ⌈10000/33⌉
        assert_eq!(d.p_s, 556.0); // ⌈10000/18⌉
        assert_eq!(d.o_t, 33.0);

        let d = p.derive(ModelStrategy::InPlace);
        assert_eq!(d.o_r, 28.0); // r = 120 → ⌊4056/140⌋
        assert_eq!(d.p_r, 358.0);
        assert_eq!(d.o_l, 130.0); // l = 11 → ⌊4056/31⌋
        assert_eq!(d.p_l, 77.0);

        let d = p.derive(ModelStrategy::Separate);
        assert_eq!(d.o_r, 31.0); // r = 108 → ⌊4056/128⌋
        assert_eq!(d.p_r, 323.0);
        assert_eq!(d.o_sp, 96.0); // s' = 22 → ⌊4056/42⌋
        assert_eq!(d.p_sp, 105.0);
    }

    #[test]
    fn sharing_scales_r() {
        let p = Params::with_sharing(20.0);
        assert_eq!(p.r_count(), 200_000.0);
        let d = p.derive(ModelStrategy::InPlace);
        assert_eq!(d.p_r, (200_000.0f64 / 28.0).ceil());
        // l grows with f: 1 + 2 + 20·8 = 163 → ⌊4056/183⌋ = 22.
        assert_eq!(d.o_l, 22.0);
    }
}
