//! The twelve cost equations of §6.5 (unclustered) and §6.7 (clustered).
//!
//! Every function returns a [`Cost`] whose named terms correspond to the
//! paper's `C_read/index`, `C_read/R`, … decomposition, so tables and
//! ablations can inspect them individually.
//!
//! Rounding conventions (pinned down against Figures 12/14, see
//! DESIGN.md §4): totals are computed in full precision and rounded up
//! once; in the *clustered* equations, sequential accesses of the form
//! `sel·P_x` are charged as whole pages `⌈sel·count/O_x⌉` for the data
//! files R, S, S′ and T (you cannot transfer a fraction of a page), while
//! the paper's `f_s·P_l` term is kept fractional as printed.

use crate::params::{Derived, IndexSetting, ModelStrategy, Params};
use crate::yao::yao;

/// A cost broken into named I/O terms.
#[derive(Clone, Debug)]
pub struct Cost {
    /// `(term name, expected page I/Os)`.
    pub terms: Vec<(&'static str, f64)>,
}

impl Cost {
    /// Total expected I/O.
    pub fn total(&self) -> f64 {
        self.terms.iter().map(|(_, v)| v).sum()
    }

    /// Total rounded up to whole pages (the paper's table convention:
    /// "fractional values were rounded up to the nearest unit").
    pub fn rounded(&self) -> u64 {
        self.total().ceil() as u64
    }

    /// Look up one term.
    pub fn term(&self, name: &str) -> Option<f64> {
        self.terms.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
    }
}

/// `⌈log_m N⌉ + max(⌈sel·N/m − 1⌉, 0)`: descend the B⁺-tree, then walk
/// the qualifying leaves.
pub fn index_read(p: &Params, n: f64, sel: f64) -> f64 {
    let descend = n.log(p.fanout).ceil().max(1.0);
    let leaves = (sel * n / p.fanout - 1.0).ceil().max(0.0);
    descend + leaves
}

/// Whole pages holding `sel·count` consecutive objects at `per_page`
/// density (clustered access).
pub fn seq_pages(sel: f64, count: f64, per_page: f64) -> f64 {
    (sel * count / per_page).ceil()
}

/// C_read for a strategy under an index setting.
pub fn read_cost(p: &Params, strategy: ModelStrategy, setting: IndexSetting) -> Cost {
    let d = p.derive(strategy);
    match setting {
        IndexSetting::Unclustered => read_unclustered(p, strategy, &d),
        IndexSetting::Clustered => read_clustered(p, strategy, &d),
    }
}

/// C_update for a strategy under an index setting.
pub fn update_cost(p: &Params, strategy: ModelStrategy, setting: IndexSetting) -> Cost {
    let d = p.derive(strategy);
    match setting {
        IndexSetting::Unclustered => update_unclustered(p, strategy, &d),
        IndexSetting::Clustered => update_clustered(p, strategy, &d),
    }
}

/// `C_total = (1 − P_up)·C_read + P_up·C_update` (§6).
pub fn total_cost(
    p: &Params,
    strategy: ModelStrategy,
    setting: IndexSetting,
    p_update: f64,
) -> f64 {
    (1.0 - p_update) * read_cost(p, strategy, setting).total()
        + p_update * update_cost(p, strategy, setting).total()
}

/// Percentage difference in `C_total` relative to no replication —
/// the quantity plotted in Figures 11 and 13 (negative = replication
/// wins).
pub fn percent_difference(
    p: &Params,
    strategy: ModelStrategy,
    setting: IndexSetting,
    p_update: f64,
) -> f64 {
    let base = total_cost(p, ModelStrategy::None, setting, p_update);
    let this = total_cost(p, strategy, setting, p_update);
    100.0 * (this - base) / base
}

// ------------------------------------------------------------ unclustered

fn read_unclustered(p: &Params, strategy: ModelStrategy, d: &Derived) -> Cost {
    let r_n = p.r_count();
    let picked = p.read_sel * r_n;
    let mut terms = vec![
        ("index_r", index_read(p, r_n, p.read_sel)),
        ("read_R", d.p_r * yao(r_n, d.o_r, picked)),
    ];
    match strategy {
        ModelStrategy::None => {
            terms.push(("read_S", d.p_s * yao(r_n, p.sharing * d.o_s, picked)));
        }
        ModelStrategy::InPlace => {} // no join at all
        ModelStrategy::Separate => {
            terms.push(("read_S'", d.p_sp * yao(r_n, p.sharing * d.o_sp, picked)));
        }
    }
    terms.push(("generate_T", d.p_t));
    Cost { terms }
}

fn update_unclustered(p: &Params, strategy: ModelStrategy, d: &Derived) -> Cost {
    let s_n = p.s_count;
    let picked = p.update_sel * s_n;
    let mut terms = vec![
        ("index_s", index_read(p, s_n, p.update_sel)),
        ("update_S", 2.0 * d.p_s * yao(s_n, d.o_s, picked)),
    ];
    match strategy {
        ModelStrategy::None => {}
        ModelStrategy::InPlace => {
            if !(p.inline_link_elimination && p.sharing <= 1.0) {
                terms.push(("read_L", d.p_l * yao(s_n, d.o_l, picked)));
            }
            let r_n = p.r_count();
            // f·f_s·|S| = f_s·|R| objects in R receive the propagation.
            terms.push((
                "update_R",
                2.0 * d.p_r * yao(r_n, d.o_r, p.update_sel * r_n),
            ));
        }
        ModelStrategy::Separate => {
            terms.push(("update_S'", 2.0 * d.p_sp * yao(s_n, d.o_sp, picked)));
        }
    }
    Cost { terms }
}

// -------------------------------------------------------------- clustered

fn read_clustered(p: &Params, strategy: ModelStrategy, d: &Derived) -> Cost {
    let r_n = p.r_count();
    let picked = p.read_sel * r_n;
    let mut terms = vec![
        ("index_r", index_read(p, r_n, p.read_sel)),
        ("read_R", seq_pages(p.read_sel, r_n, d.o_r)),
    ];
    match strategy {
        ModelStrategy::None => {
            terms.push(("read_S", d.p_s * yao(r_n, p.sharing * d.o_s, picked)));
        }
        ModelStrategy::InPlace => {}
        ModelStrategy::Separate => {
            terms.push(("read_S'", d.p_sp * yao(r_n, p.sharing * d.o_sp, picked)));
        }
    }
    terms.push(("generate_T", d.p_t));
    Cost { terms }
}

fn update_clustered(p: &Params, strategy: ModelStrategy, d: &Derived) -> Cost {
    let s_n = p.s_count;
    let mut terms = vec![
        ("index_s", index_read(p, s_n, p.update_sel)),
        ("update_S", 2.0 * seq_pages(p.update_sel, s_n, d.o_s)),
    ];
    match strategy {
        ModelStrategy::None => {}
        ModelStrategy::InPlace => {
            if !(p.inline_link_elimination && p.sharing <= 1.0) {
                terms.push(("read_L", p.update_sel * d.p_l));
            }
            let r_n = p.r_count();
            terms.push((
                "update_R",
                2.0 * d.p_r * yao(r_n, d.o_r, p.update_sel * r_n),
            ));
        }
        ModelStrategy::Separate => {
            terms.push(("update_S'", 2.0 * seq_pages(p.update_sel, s_n, d.o_sp)));
        }
    }
    Cost { terms }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(f: f64, fr: f64) -> Params {
        Params {
            sharing: f,
            read_sel: fr,
            ..Params::default()
        }
    }

    /// Figure 12 of the paper (unclustered), reproduced within ±1 I/O.
    #[test]
    fn figure_12_values() {
        let cases: &[(f64, ModelStrategy, u64, u64)] = &[
            (1.0, ModelStrategy::None, 43, 22),
            (1.0, ModelStrategy::InPlace, 23, 42),
            (1.0, ModelStrategy::Separate, 41, 42),
            (20.0, ModelStrategy::None, 691, 22),
            (20.0, ModelStrategy::InPlace, 407, 427),
            (20.0, ModelStrategy::Separate, 509, 42),
        ];
        for &(f, strat, want_read, want_update) in cases {
            let params = p(f, 0.002);
            let read = read_cost(&params, strat, IndexSetting::Unclustered).rounded();
            let update = update_cost(&params, strat, IndexSetting::Unclustered).rounded();
            assert!(
                read.abs_diff(want_read) <= 1,
                "read {strat:?} f={f}: got {read}, paper {want_read}"
            );
            assert!(
                update.abs_diff(want_update) <= 1,
                "update {strat:?} f={f}: got {update}, paper {want_update}"
            );
        }
    }

    /// Figure 14 of the paper (clustered), reproduced within ±1 I/O.
    #[test]
    fn figure_14_values() {
        let cases: &[(f64, ModelStrategy, u64, u64)] = &[
            (1.0, ModelStrategy::None, 24, 4),
            (1.0, ModelStrategy::InPlace, 4, 24),
            (1.0, ModelStrategy::Separate, 23, 6),
            (20.0, ModelStrategy::None, 316, 4),
            (20.0, ModelStrategy::InPlace, 32, 400),
            (20.0, ModelStrategy::Separate, 133, 6),
        ];
        for &(f, strat, want_read, want_update) in cases {
            let params = p(f, 0.002);
            let read = read_cost(&params, strat, IndexSetting::Clustered).rounded();
            let update = update_cost(&params, strat, IndexSetting::Clustered).rounded();
            assert!(
                read.abs_diff(want_read) <= 1,
                "read {strat:?} f={f}: got {read}, paper {want_read}"
            );
            assert!(
                update.abs_diff(want_update) <= 1,
                "update {strat:?} f={f}: got {update}, paper {want_update}"
            );
        }
    }

    /// Without the §4.3.1 elimination, the in-place f = 1 unclustered
    /// update is ≈ 52 (the printed-equation value; DESIGN.md §4).
    #[test]
    fn inplace_f1_update_without_elimination() {
        let mut params = p(1.0, 0.002);
        params.inline_link_elimination = false;
        let update = update_cost(&params, ModelStrategy::InPlace, IndexSetting::Unclustered);
        assert!(update.term("read_L").is_some());
        assert!((51.0..=53.0).contains(&(update.rounded() as f64)));
    }

    /// §6.6's headline claims: in-place beats separate for small update
    /// probabilities; separate beats in-place beyond ~0.35 (f > 1); both
    /// beat no replication over wide ranges.
    #[test]
    fn crossover_claims() {
        for f in [10.0, 20.0, 50.0] {
            let params = p(f, 0.002);
            for setting in [IndexSetting::Unclustered, IndexSetting::Clustered] {
                let ip_low = percent_difference(&params, ModelStrategy::InPlace, setting, 0.05);
                let sep_low = percent_difference(&params, ModelStrategy::Separate, setting, 0.05);
                assert!(ip_low < sep_low, "in-place wins at low update prob");
                assert!(ip_low < 0.0, "in-place beats no replication at 0.05");

                let ip_hi = percent_difference(&params, ModelStrategy::InPlace, setting, 0.5);
                let sep_hi = percent_difference(&params, ModelStrategy::Separate, setting, 0.5);
                assert!(sep_hi < ip_hi, "separate wins at high update prob (f={f})");
                assert!(sep_hi < 0.0, "separate still beats no replication at 0.5");
            }
        }
    }

    /// §6.6: "for f = 1, separate replication provides almost no benefit".
    #[test]
    fn separate_useless_at_f1() {
        let params = p(1.0, 0.002);
        let d = percent_difference(
            &params,
            ModelStrategy::Separate,
            IndexSetting::Unclustered,
            0.0,
        );
        assert!(d.abs() < 6.0, "separate ≈ no replication at f=1: {d}");
    }

    /// The §6.6 "flip": for separate replication, f_r = .005 is best at
    /// f = 10 but worst at f = 50.
    #[test]
    fn read_selectivity_flip() {
        let setting = IndexSetting::Unclustered;
        let at =
            |f: f64, fr: f64| percent_difference(&p(f, fr), ModelStrategy::Separate, setting, 0.1);
        assert!(
            at(10.0, 0.005) < at(10.0, 0.001),
            "at f=10 larger reads help"
        );
        assert!(
            at(50.0, 0.001) < at(50.0, 0.005),
            "at f=50 larger reads hurt"
        );
    }

    #[test]
    fn cost_terms_are_positive_and_named() {
        let params = p(10.0, 0.002);
        for strat in [
            ModelStrategy::None,
            ModelStrategy::InPlace,
            ModelStrategy::Separate,
        ] {
            for setting in [IndexSetting::Unclustered, IndexSetting::Clustered] {
                for c in [
                    read_cost(&params, strat, setting),
                    update_cost(&params, strat, setting),
                ] {
                    assert!(!c.terms.is_empty());
                    for (n, v) in &c.terms {
                        assert!(*v >= 0.0, "{n} negative");
                    }
                    assert!(c.total() > 0.0);
                }
            }
        }
    }
}
