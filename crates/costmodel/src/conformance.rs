//! Per-operator cost predictions for compiled plans (EXPLAIN support).
//!
//! The §6 equations in [`crate::costs`] predict the *total* page I/O of a
//! read or update query. EXPLAIN ANALYZE needs those same predictions
//! *attributed to individual plan operators* so each one can be compared
//! against the measured per-operator I/O of the executor's `Profile`.
//! This module re-derives the cost terms operator by operator, using the
//! identical primitives ([`yao`], [`index_read`], [`seq_pages`]); for a
//! §6-shaped plan the per-operator predictions sum exactly to the
//! corresponding `read_cost`/`update_cost` total (pinned by tests below),
//! so the paper's Figure 12/14 reference points carry over unchanged.
//!
//! The module stays free of engine types on purpose (this crate is pure
//! math): callers describe their plan as a [`ReadShape`]/[`UpdateShape`]
//! and join the returned predictions to measured operators by name
//! prefix ([`OpPrediction::key`]).

use crate::costs::{index_read, seq_pages};
use crate::params::{IndexSetting, ModelStrategy, Params};
use crate::yao::yao;

/// Shape of the access-path operator of a compiled plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessShape {
    /// Sequential scan of the whole source file.
    FullScan,
    /// B⁺-tree range/equality probe on a base field.
    IndexRange,
    /// B⁺-tree probe on a path index (§3.3.4); costed like a base index.
    PathIndexRange,
}

/// Shape of one projection operator of a compiled read plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProjShape {
    /// Field of the source object itself — no extra I/O.
    BaseField,
    /// In-place replica (§4): the value travels with the source object.
    InPlaceReplica,
    /// Separate replica (§5): one fetch into the S′ file per source.
    SeparateReplica,
    /// Functional join traversing `levels` reference hops, one object
    /// fetch batch per hop.
    FunctionalJoin {
        /// Number of fetch batches (one per traversed file).
        levels: usize,
    },
    /// Collapsed path (§3.3.3): the stored replica jumps straight to a
    /// midpoint, leaving `remaining_levels` fetch batches.
    CollapseThenJoin {
        /// Fetch batches still required after the collapse jump.
        remaining_levels: usize,
    },
}

/// Shape of a compiled read plan, as far as the cost model cares.
#[derive(Clone, Debug)]
pub struct ReadShape {
    /// The access path.
    pub access: AccessShape,
    /// One entry per projection, in plan order.
    pub projections: Vec<ProjShape>,
    /// Whether qualifying rows are spooled to an output file T.
    pub spool: bool,
}

/// Shape of a compiled update plan.
#[derive(Clone, Debug)]
pub struct UpdateShape {
    /// The access path.
    pub access: AccessShape,
    /// Replica-maintenance work triggered by the update:
    /// `ModelStrategy::None` when the touched field has no replicas.
    pub propagation: ModelStrategy,
}

/// Every drift-gauge metric suffix a prediction may carry. The EXPLAIN
/// ANALYZE layer records each operator's drift under
/// `costmodel.drift.<suffix>`; `fieldrep-lint` rule **L2** cross-checks
/// this list against the gauges registered in `fieldrep_obs::names`, so
/// a new operator metric cannot ship without its gauge (and vice versa).
pub const DRIFT_METRICS: &[&str] = &[
    "plan",
    "access",
    "sync",
    "fetch",
    "proj.base-field",
    "proj.inplace-replica",
    "proj.separate-replica",
    "proj.functional-join",
    "proj.collapse",
    "spool",
    "apply",
    "propagate",
];

/// Predicted page I/O for one plan operator.
#[derive(Clone, Debug)]
pub struct OpPrediction {
    /// Matched (by prefix, see [`matches_op`]) against the executor's
    /// `Profile` operator names: `"plan"`, `"access"`, `"fetch"`,
    /// `"proj[0]"`, `"spool"`, `"apply"`, `"core.propagate"`, …
    pub key: String,
    /// Stable metric suffix for the `costmodel.drift.{operator}` gauge
    /// family (e.g. `"fetch"`, `"proj.separate-replica"`).
    pub metric: &'static str,
    /// Expected page I/Os.
    pub pages: f64,
}

impl OpPrediction {
    fn new(key: &str, metric: &'static str, pages: f64) -> OpPrediction {
        debug_assert!(
            DRIFT_METRICS.contains(&metric),
            "operator metric {metric:?} missing from DRIFT_METRICS"
        );
        OpPrediction {
            key: key.to_string(),
            metric,
            pages,
        }
    }
}

/// Does a measured `Profile` operator name belong to a prediction key?
/// Exact match, or the prediction key followed by a `:`-separated detail
/// suffix (`"access"` matches `"access:index-range(Unclustered #1)"`,
/// `"proj[0]"` matches `"proj[0]:replica(in-place)"`).
pub fn matches_op(prediction_key: &str, op_name: &str) -> bool {
    op_name == prediction_key
        || (op_name.len() > prediction_key.len()
            && op_name.starts_with(prediction_key)
            && op_name.as_bytes()[prediction_key.len()] == b':')
}

/// Drift of a measured value from its prediction, in percent. The
/// denominator is clamped to one page so near-zero predictions (planner
/// bookkeeping, empty result sets) cannot explode the percentage.
pub fn drift_pct(predicted: f64, measured: f64) -> f64 {
    100.0 * (measured - predicted) / predicted.max(1.0)
}

/// The strategy whose file-size adjustments (§6.3) govern a read plan:
/// in-place replicas grow R by `k`, separate replicas by an OID.
fn read_strategy(shape: &ReadShape) -> ModelStrategy {
    let mut strategy = ModelStrategy::None;
    for proj in &shape.projections {
        match proj {
            ProjShape::InPlaceReplica | ProjShape::CollapseThenJoin { .. } => {
                return ModelStrategy::InPlace;
            }
            ProjShape::SeparateReplica => strategy = ModelStrategy::Separate,
            ProjShape::BaseField | ProjShape::FunctionalJoin { .. } => {}
        }
    }
    strategy
}

/// Per-operator predictions for a read plan. Keys follow the executor's
/// mark order: `plan`, `access`, `sync`, `fetch`, `proj[i]`, `spool`.
pub fn predict_read(p: &Params, setting: IndexSetting, shape: &ReadShape) -> Vec<OpPrediction> {
    let d = p.derive(read_strategy(shape));
    let r_n = p.r_count();
    let picked = p.read_sel * r_n;

    let mut ops = vec![OpPrediction::new("plan", "plan", 0.0)];
    let access_pages = match shape.access {
        AccessShape::FullScan => d.p_r,
        AccessShape::IndexRange | AccessShape::PathIndexRange => index_read(p, r_n, p.read_sel),
    };
    ops.push(OpPrediction::new("access", "access", access_pages));
    ops.push(OpPrediction::new("sync", "sync", 0.0));

    // A full scan already pulled every source page through the pool, so
    // the fetch stage re-reads nothing the model should charge for.
    let fetch_pages = match (shape.access, setting) {
        (AccessShape::FullScan, _) => 0.0,
        (_, IndexSetting::Unclustered) => d.p_r * yao(r_n, d.o_r, picked),
        (_, IndexSetting::Clustered) => seq_pages(p.read_sel, r_n, d.o_r),
    };
    ops.push(OpPrediction::new("fetch", "fetch", fetch_pages));

    for (i, proj) in shape.projections.iter().enumerate() {
        let (metric, pages) = match proj {
            ProjShape::BaseField => ("proj.base-field", 0.0),
            ProjShape::InPlaceReplica => ("proj.inplace-replica", 0.0),
            ProjShape::SeparateReplica => (
                "proj.separate-replica",
                d.p_sp * yao(r_n, p.sharing * d.o_sp, picked),
            ),
            ProjShape::FunctionalJoin { levels } => (
                "proj.functional-join",
                *levels as f64 * d.p_s * yao(r_n, p.sharing * d.o_s, picked),
            ),
            ProjShape::CollapseThenJoin { remaining_levels } => (
                "proj.collapse",
                *remaining_levels as f64 * d.p_s * yao(r_n, p.sharing * d.o_s, picked),
            ),
        };
        ops.push(OpPrediction::new(&format!("proj[{i}]"), metric, pages));
    }

    let spool_pages = if shape.spool { d.p_t } else { 0.0 };
    ops.push(OpPrediction::new("spool", "spool", spool_pages));
    ops
}

/// Per-operator predictions for an update plan. Keys follow the
/// executor's mark order: `plan`, `access`, `apply`, `core.propagate`.
pub fn predict_update(p: &Params, setting: IndexSetting, shape: &UpdateShape) -> Vec<OpPrediction> {
    let d = p.derive(shape.propagation);
    let s_n = p.s_count;
    let picked = p.update_sel * s_n;

    let mut ops = vec![OpPrediction::new("plan", "plan", 0.0)];
    let access_pages = match shape.access {
        AccessShape::FullScan => d.p_s,
        AccessShape::IndexRange | AccessShape::PathIndexRange => index_read(p, s_n, p.update_sel),
    };
    ops.push(OpPrediction::new("access", "access", access_pages));

    let apply_pages = match setting {
        IndexSetting::Unclustered => 2.0 * d.p_s * yao(s_n, d.o_s, picked),
        IndexSetting::Clustered => 2.0 * seq_pages(p.update_sel, s_n, d.o_s),
    };
    ops.push(OpPrediction::new("apply", "apply", apply_pages));

    let propagate_pages = match shape.propagation {
        ModelStrategy::None => 0.0,
        ModelStrategy::InPlace => {
            let read_l = if p.inline_link_elimination && p.sharing <= 1.0 {
                0.0
            } else {
                match setting {
                    IndexSetting::Unclustered => d.p_l * yao(s_n, d.o_l, picked),
                    IndexSetting::Clustered => p.update_sel * d.p_l,
                }
            };
            let r_n = p.r_count();
            read_l + 2.0 * d.p_r * yao(r_n, d.o_r, p.update_sel * r_n)
        }
        ModelStrategy::Separate => match setting {
            IndexSetting::Unclustered => 2.0 * d.p_sp * yao(s_n, d.o_sp, picked),
            IndexSetting::Clustered => 2.0 * seq_pages(p.update_sel, s_n, d.o_sp),
        },
    };
    ops.push(OpPrediction::new(
        "core.propagate",
        "propagate",
        propagate_pages,
    ));
    ops
}

/// Sum of all predicted pages.
pub fn predicted_total(ops: &[OpPrediction]) -> f64 {
    ops.iter().map(|o| o.pages).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs::{read_cost, update_cost};

    fn params(f: f64) -> Params {
        Params {
            sharing: f,
            read_sel: 0.002,
            ..Params::default()
        }
    }

    fn read_shape(strategy: ModelStrategy) -> ReadShape {
        let proj = match strategy {
            ModelStrategy::None => ProjShape::FunctionalJoin { levels: 1 },
            ModelStrategy::InPlace => ProjShape::InPlaceReplica,
            ModelStrategy::Separate => ProjShape::SeparateReplica,
        };
        ReadShape {
            access: AccessShape::IndexRange,
            projections: vec![proj],
            spool: true,
        }
    }

    const ALL: [ModelStrategy; 3] = [
        ModelStrategy::None,
        ModelStrategy::InPlace,
        ModelStrategy::Separate,
    ];
    const SETTINGS: [IndexSetting; 2] = [IndexSetting::Unclustered, IndexSetting::Clustered];

    /// For §6-shaped plans the per-operator predictions sum to exactly
    /// the same totals as the twelve closed-form equations.
    #[test]
    fn per_operator_predictions_telescope_to_cost_totals() {
        for f in [1.0, 10.0, 20.0, 50.0] {
            let p = params(f);
            for strategy in ALL {
                for setting in SETTINGS {
                    let read = predict_read(&p, setting, &read_shape(strategy));
                    let want = read_cost(&p, strategy, setting).total();
                    assert!(
                        (predicted_total(&read) - want).abs() < 1e-9,
                        "read {strategy:?}/{setting:?} f={f}: {} vs {want}",
                        predicted_total(&read)
                    );

                    let upd = predict_update(
                        &p,
                        setting,
                        &UpdateShape {
                            access: AccessShape::IndexRange,
                            propagation: strategy,
                        },
                    );
                    let want = update_cost(&p, strategy, setting).total();
                    assert!(
                        (predicted_total(&upd) - want).abs() < 1e-9,
                        "update {strategy:?}/{setting:?} f={f}: {} vs {want}",
                        predicted_total(&upd)
                    );
                }
            }
        }
    }

    /// Pin the predictions at the paper's Figure 12 (unclustered, f=20,
    /// f_r=.002) and Figure 14 (clustered) reference points, ±1 I/O.
    #[test]
    fn figure_reference_points() {
        let cases: &[(IndexSetting, ModelStrategy, u64, u64)] = &[
            (IndexSetting::Unclustered, ModelStrategy::None, 691, 22),
            (IndexSetting::Unclustered, ModelStrategy::InPlace, 407, 427),
            (IndexSetting::Unclustered, ModelStrategy::Separate, 509, 42),
            (IndexSetting::Clustered, ModelStrategy::None, 316, 4),
            (IndexSetting::Clustered, ModelStrategy::InPlace, 32, 400),
            (IndexSetting::Clustered, ModelStrategy::Separate, 133, 6),
        ];
        let p = params(20.0);
        for &(setting, strategy, want_read, want_update) in cases {
            let read =
                predicted_total(&predict_read(&p, setting, &read_shape(strategy))).ceil() as u64;
            assert!(
                read.abs_diff(want_read) <= 1,
                "read {strategy:?}/{setting:?}: got {read}, paper {want_read}"
            );
            let upd = predicted_total(&predict_update(
                &p,
                setting,
                &UpdateShape {
                    access: AccessShape::IndexRange,
                    propagation: strategy,
                },
            ))
            .ceil() as u64;
            assert!(
                upd.abs_diff(want_update) <= 1,
                "update {strategy:?}/{setting:?}: got {upd}, paper {want_update}"
            );
        }
    }

    /// The prediction keys line up, by prefix, with the executor's
    /// Profile operator names.
    #[test]
    fn keys_match_profile_names_by_prefix() {
        assert!(matches_op("access", "access:index-range(Unclustered #1)"));
        assert!(matches_op("proj[0]", "proj[0]:replica(in-place)"));
        assert!(matches_op("plan", "plan"));
        assert!(!matches_op("proj[0]", "proj[1]:base-field(#2)"));
        assert!(!matches_op("access", "accessory"));
        assert!(!matches_op("fetch", "proj[0]:fetch"));
    }

    /// A full scan charges the whole file at the access stage and
    /// nothing at the fetch stage.
    #[test]
    fn full_scan_moves_cost_to_access() {
        let p = params(10.0);
        let shape = ReadShape {
            access: AccessShape::FullScan,
            projections: vec![ProjShape::BaseField],
            spool: false,
        };
        let ops = predict_read(&p, IndexSetting::Unclustered, &shape);
        let of = |k: &str| ops.iter().find(|o| o.key == k).unwrap().pages;
        let d = p.derive(ModelStrategy::None);
        assert!((of("access") - d.p_r).abs() < 1e-9);
        assert_eq!(of("fetch"), 0.0);
        assert_eq!(of("proj[0]"), 0.0);
        assert_eq!(of("spool"), 0.0);
    }

    /// Multi-level functional joins charge one Yao batch per level.
    #[test]
    fn join_levels_scale_linearly() {
        let p = params(10.0);
        let shape_of = |levels| ReadShape {
            access: AccessShape::IndexRange,
            projections: vec![ProjShape::FunctionalJoin { levels }],
            spool: false,
        };
        let one = predict_read(&p, IndexSetting::Unclustered, &shape_of(1));
        let three = predict_read(&p, IndexSetting::Unclustered, &shape_of(3));
        let proj = |ops: &[OpPrediction]| ops.iter().find(|o| o.key == "proj[0]").unwrap().pages;
        assert!((proj(&three) - 3.0 * proj(&one)).abs() < 1e-9);
    }

    /// Every metric a prediction can emit is declared in `DRIFT_METRICS`
    /// (the list the lint cross-checks against the obs name registry).
    #[test]
    fn emitted_metrics_are_all_declared() {
        let p = params(20.0);
        let mut shapes = vec![ReadShape {
            access: AccessShape::FullScan,
            projections: vec![
                ProjShape::BaseField,
                ProjShape::InPlaceReplica,
                ProjShape::SeparateReplica,
                ProjShape::FunctionalJoin { levels: 2 },
                ProjShape::CollapseThenJoin {
                    remaining_levels: 1,
                },
            ],
            spool: true,
        }];
        shapes.push(read_shape(ModelStrategy::InPlace));
        for shape in &shapes {
            for op in predict_read(&p, IndexSetting::Unclustered, shape) {
                assert!(DRIFT_METRICS.contains(&op.metric), "{}", op.metric);
            }
        }
        for strategy in ALL {
            for op in predict_update(
                &p,
                IndexSetting::Clustered,
                &UpdateShape {
                    access: AccessShape::FullScan,
                    propagation: strategy,
                },
            ) {
                assert!(DRIFT_METRICS.contains(&op.metric), "{}", op.metric);
            }
        }
    }

    #[test]
    fn drift_is_zero_when_exact_and_guarded_near_zero() {
        assert_eq!(drift_pct(40.0, 40.0), 0.0);
        assert!((drift_pct(40.0, 50.0) - 25.0).abs() < 1e-9);
        assert!((drift_pct(0.0, 2.0) - 200.0).abs() < 1e-9); // clamped denominator
        assert_eq!(drift_pct(0.0, 0.0), 0.0);
    }
}
