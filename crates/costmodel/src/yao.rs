//! Yao's block-access estimate \[Yao77\], used throughout §6.
//!
//! `y(a, b, c)` is the probability that a given page is touched when `c`
//! objects are chosen at random from `a` objects of which `b` live on
//! that page:
//!
//! ```text
//! y(a, b, c) = 1 − C(a−b, c) / C(a, c)
//! ```
//!
//! The expected number of pages read from a `P`-page file is then
//! `P · y(a, b, c)`.

/// Exact Yao function, computed as a telescoping product for numerical
/// stability (no factorials).
///
/// Edge cases: `c = 0` → 0; `c > a − b` (every subset must hit the page)
/// → 1; `b = 0` → 0.
pub fn yao(a: f64, b: f64, c: f64) -> f64 {
    assert!(a >= 0.0 && b >= 0.0 && c >= 0.0, "yao: negative argument");
    if c == 0.0 || b == 0.0 || a == 0.0 {
        return 0.0;
    }
    let b = b.min(a);
    if c > a - b {
        return 1.0;
    }
    // C(a-b, c)/C(a, c) = Π_{i=0}^{c-1} (a - b - i) / (a - i)
    let mut prod = 1.0f64;
    let n = c as u64;
    for i in 0..n {
        let i = i as f64;
        prod *= (a - b - i) / (a - i);
    }
    (1.0 - prod).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::yao;

    #[test]
    fn edge_cases() {
        assert_eq!(yao(1000.0, 10.0, 0.0), 0.0);
        assert_eq!(yao(1000.0, 0.0, 10.0), 0.0);
        assert_eq!(yao(1000.0, 10.0, 991.0), 1.0);
        assert_eq!(yao(10.0, 10.0, 1.0), 1.0);
    }

    #[test]
    fn single_pick() {
        // One object picked from a: hit probability is b/a.
        let y = yao(1000.0, 25.0, 1.0);
        assert!((y - 0.025).abs() < 1e-12);
    }

    #[test]
    fn bounds_and_monotonicity() {
        let a = 10_000.0;
        let b = 33.0;
        let mut prev = 0.0;
        for c in 1..200 {
            let y = yao(a, b, c as f64);
            assert!((0.0..=1.0).contains(&y));
            assert!(y >= prev, "monotone in c");
            prev = y;
        }
    }

    #[test]
    fn matches_binomial_approximation_for_small_selectivity() {
        // For c ≪ a, y ≈ 1 − (1 − b/a)^c.
        let (a, b, c) = (200_000.0, 28.0, 400.0);
        let approx = 1.0 - (1.0f64 - b / a).powf(c);
        let exact = yao(a, b, c);
        assert!((exact - approx).abs() < 1e-3, "{exact} vs {approx}");
    }
}
