//! Strategy advisor: turn the §6 model into a recommendation.
//!
//! The paper closes §3.1 with "the DBA … is knowledgeable enough to
//! realize that replication should only be specified on reference paths
//! that are frequently accessed and, at the same time, infrequently
//! updated". This module mechanises that judgement: given the workload
//! parameters and an update probability, it picks the cheapest strategy
//! and reports the expected saving.

use crate::costs::total_cost;
use crate::params::{IndexSetting, ModelStrategy, Params};

/// A recommendation for one reference path.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Recommendation {
    /// The cheapest strategy at the given update probability.
    pub strategy: ModelStrategy,
    /// Expected `C_total` under the recommendation.
    pub cost: f64,
    /// Percentage saved versus no replication (positive = saving).
    pub saving_pct: f64,
}

/// Recommend the cheapest strategy for the given parameters and update
/// probability.
pub fn recommend(p: &Params, setting: IndexSetting, p_update: f64) -> Recommendation {
    let candidates = [
        ModelStrategy::None,
        ModelStrategy::InPlace,
        ModelStrategy::Separate,
    ];
    let base = total_cost(p, ModelStrategy::None, setting, p_update);
    let (strategy, cost) = candidates
        .into_iter()
        .map(|s| (s, total_cost(p, s, setting, p_update)))
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("non-empty candidate list");
    Recommendation {
        strategy,
        cost,
        saving_pct: 100.0 * (base - cost) / base,
    }
}

/// The update probability at which `b` becomes cheaper than `a`, found by
/// bisection over `[0, 1]` (`None` if one strategy dominates throughout).
pub fn crossover(
    p: &Params,
    setting: IndexSetting,
    a: ModelStrategy,
    b: ModelStrategy,
) -> Option<f64> {
    let diff = |x: f64| total_cost(p, a, setting, x) - total_cost(p, b, setting, x);
    let (d0, d1) = (diff(0.0), diff(1.0));
    if d0.signum() == d1.signum() {
        return None;
    }
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    for _ in 0..60 {
        let mid = (lo + hi) / 2.0;
        if diff(mid).signum() == d0.signum() {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some((lo + hi) / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(f: f64) -> Params {
        Params {
            sharing: f,
            read_sel: 0.002,
            ..Params::default()
        }
    }

    #[test]
    fn read_heavy_mix_prefers_inplace() {
        for setting in [IndexSetting::Unclustered, IndexSetting::Clustered] {
            for f in [1.0, 10.0, 20.0, 50.0] {
                let r = recommend(&p(f), setting, 0.05);
                assert_eq!(r.strategy, ModelStrategy::InPlace, "f={f} {setting:?}");
                assert!(r.saving_pct > 10.0);
            }
        }
    }

    #[test]
    fn update_heavy_shared_mix_prefers_separate() {
        for setting in [IndexSetting::Unclustered, IndexSetting::Clustered] {
            for f in [10.0, 20.0, 50.0] {
                let r = recommend(&p(f), setting, 0.5);
                assert_eq!(r.strategy, ModelStrategy::Separate, "f={f} {setting:?}");
                assert!(r.saving_pct > 0.0);
            }
        }
    }

    #[test]
    fn pure_update_workload_prefers_no_replication() {
        let r = recommend(&p(1.0), IndexSetting::Unclustered, 1.0);
        assert_eq!(r.strategy, ModelStrategy::None);
        assert_eq!(r.saving_pct, 0.0);
    }

    #[test]
    fn crossover_matches_paper_window() {
        // §6.6: in-place always wins below P_up ≈ 0.15·(something small)
        // and separate always wins beyond ≈ 0.35 for f > 1 — so every
        // crossover must fall strictly inside (0, 0.35]; it moves earlier
        // as f grows (propagation cost scales with f).
        let mut prev = f64::INFINITY;
        for f in [10.0, 20.0, 50.0] {
            let x = crossover(
                &p(f),
                IndexSetting::Unclustered,
                ModelStrategy::InPlace,
                ModelStrategy::Separate,
            )
            .expect("strategies cross");
            assert!((0.0..=0.35).contains(&x), "crossover at f={f} was {x}");
            assert!(x < prev, "crossover moves earlier as f grows");
            prev = x;
        }
    }

    #[test]
    fn crossover_none_when_dominated() {
        // Against itself there is no crossing.
        assert!(crossover(
            &p(10.0),
            IndexSetting::Unclustered,
            ModelStrategy::InPlace,
            ModelStrategy::InPlace
        )
        .is_none());
    }

    #[test]
    fn recommendation_is_continuous_in_p_update() {
        // Cost of the recommended strategy is monotone non-decreasing as
        // updates grow more likely… not in general, but the *saving*
        // shrinks toward high update probabilities for in-place.
        let params = p(20.0);
        let early = recommend(&params, IndexSetting::Clustered, 0.0);
        let late = recommend(&params, IndexSetting::Clustered, 0.9);
        assert!(early.saving_pct >= late.saving_pct);
    }
}
