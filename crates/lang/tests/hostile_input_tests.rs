//! Hostile-input regressions: malformed scripts must come back as
//! `Err(LangError)` diagnostics, never a panic. Every input here once
//! mapped to (or resembles) a panic path in the parser or interpreter.

use fieldrep_core::DbConfig;
use fieldrep_lang::{parse_script, parse_stmt, Interpreter};

/// Statements that are syntactically broken in assorted ways. Each must
/// produce a parse error, not a panic.
#[test]
fn malformed_statements_are_errors_not_panics() {
    let hostile = [
        "",
        ";",
        ";;;",
        "retrieve",
        "retrieve (",
        "retrieve ()",
        "retrieve (Emp1.name",
        "retrieve (Emp1.name,)",
        "retrieve (Emp1..name)",
        "retrieve (Emp1.name) where",
        "retrieve (Emp1.name) where Emp1.salary",
        "retrieve (Emp1.name) where Emp1.salary between 1",
        "retrieve (Emp1.name) where Emp1.salary between 1 and",
        "replace",
        "replace ()",
        "replace (Dept.budget)",
        "replace (Dept.budget = )",
        "replace (Dept.budget = 42",
        "insert",
        "insert Emp1",
        "insert Emp1 (",
        "insert Emp1 (name",
        "insert Emp1 (name =",
        "insert Emp1 (name = \"A\"",
        "insert Emp1 (name = \"A\") as",
        "insert Emp1 (name = \"A\") as bare",
        "define type",
        "define type X",
        "define type X (",
        "define type X ( a )",
        "define type X ( a: )",
        "define type X ( a: char )",
        "define type X ( a: char[ )",
        "define type X ( a: pad[999999999999] )",
        "define type X ( a: ref )",
        "create",
        "create S",
        "create S:",
        "create S: {ref EMP}",
        "replicate",
        "replicate Emp1.",
        "replicate Emp1.dept.name using",
        "drop",
        "drop Emp1.dept.name",
        "build",
        "build btree",
        "build btree on",
        "delete",
        "delete Emp1",
        "delete from",
        "explain",
        "explain insert Emp1 (name = \"A\")",
        "advise",
        "advise Emp1.dept.name at",
        "advise Emp1.dept.name at high",
        "show",
        "sync extra tokens",
        "\u{0}\u{1}\u{2}",
        "🦀🦀🦀",
        "retrieve (🦀.🦀)",
    ];
    for src in hostile {
        assert!(
            parse_stmt(src).is_err(),
            "hostile input parsed cleanly: {src:?}"
        );
    }
}

/// `parse_stmt` on zero or many statements reports counts, never pops an
/// empty vec.
#[test]
fn parse_stmt_rejects_wrong_statement_counts() {
    let err = parse_stmt("").unwrap_err();
    assert!(err.to_string().contains("empty"), "{err}");
    let err = parse_stmt("sync; sync").unwrap_err();
    assert!(err.to_string().contains("found 2"), "{err}");
    // A trailing semicolon is one statement, not two.
    assert!(parse_stmt("sync;").is_ok());
}

/// Deeply nested / very long inputs stay within the recursive-descent
/// parser's comfort zone (only `explain` nests, and it nests once).
#[test]
fn pathological_lengths_do_not_panic() {
    let long_path = format!("retrieve (Emp1.{})", vec!["a"; 10_000].join("."));
    let _ = parse_stmt(&long_path);
    let many_fields = format!(
        "define type X ( {} )",
        (0..5_000)
            .map(|i| format!("f{i}: int"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = parse_stmt(&many_fields);
    let explains = format!("{}retrieve (Emp1.name)", "explain ".repeat(64));
    assert!(parse_stmt(&explains).is_err());
    let stmts = parse_script(&"sync;".repeat(2_000)).unwrap();
    assert_eq!(stmts.len(), 2_000);
}

/// Statements that parse but name unknown schema objects must surface as
/// interpreter errors, not panics.
#[test]
fn unknown_names_are_interpreter_errors() {
    let mut it = Interpreter::new(DbConfig::default());
    it.run_script("define type EMP ( name: char[] ); create Emp1: {own ref EMP};")
        .unwrap();
    for src in [
        "retrieve (Ghost.name)",
        "retrieve (Emp1.ghost)",
        "retrieve (Emp1.name) where Ghost.name = \"x\"",
        "replace (Ghost.name = \"x\")",
        "replicate Ghost.dept.name",
        "replicate Emp1.ghost.name",
        "drop replicate Emp1.ghost.name",
        "build btree on Ghost.name",
        "insert Ghost (name = \"x\")",
        "insert Emp1 (ghost = \"x\")",
        "insert Emp1 (name = $unbound)",
        "delete from Ghost",
        "advise Ghost.dept.name",
        "show ghosts",
    ] {
        assert!(it.execute(src).is_err(), "expected error for {src:?}");
    }
}
