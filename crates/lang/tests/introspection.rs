//! End-to-end acceptance tests for the introspection subsystem
//! (ISSUE: sys.* virtual tables + slow-query log).
//!
//! Everything lives in ONE test function: the metrics registry and the
//! slow-query log are process-global, and a single `#[test]` in its own
//! integration binary is the only way to guarantee no concurrent test
//! thread mutates them between a `retrieve` and the snapshot it is
//! compared against.

use fieldrep_core::DbConfig;
use fieldrep_lang::{Interpreter, Output};
use fieldrep_model::Value;
use fieldrep_obs::export::snapshot_jsonl;
use fieldrep_obs::{registry, slowlog};
use fieldrep_query::{Filter, ReadQuery};

fn rows_of(out: Output) -> (Vec<String>, Vec<Vec<Option<Value>>>) {
    match out {
        Output::Rows { columns, rows } => (columns, rows),
        other => panic!("expected rows, got {other:?}"),
    }
}

fn seed(it: &mut Interpreter) {
    it.run_script(
        r#"
        define type DEPT ( name: char[], budget: int );
        define type EMP  ( name: char[], salary: int, dept: ref DEPT );
        create Dept: {own ref DEPT};
        create Emp1: {own ref EMP};
        insert Dept (name = "Shoe", budget = 100000) as $shoe;
        insert Dept (name = "Toy", budget = 50000) as $toy;
        replicate Emp1.dept.name;
        "#,
    )
    .expect("schema");
    for i in 0..200 {
        let dept = if i % 2 == 0 { "$shoe" } else { "$toy" };
        it.execute(&format!(
            "insert Emp1 (name = \"e{i}\", salary = {}, dept = {dept})",
            1000 + i
        ))
        .expect("insert");
    }
}

#[test]
fn sys_tables_and_slow_query_log_round_trip() {
    let mut it = Interpreter::new(DbConfig {
        pool_pages: 256,
        ..DbConfig::default()
    });
    slowlog::set_off();
    slowlog::clear();
    seed(&mut it);

    // ---- Round-trip invariant: `retrieve … from sys.metrics` returns
    // values exactly equal to the JSONL exporter's snapshot of the same
    // registry. The virtual scan is metrics-free, so the registry the
    // statement reads IS the registry the snapshot right after sees.
    let (cols, rows) = rows_of(it.execute("retrieve (all) from sys.metrics").unwrap());
    let snap = registry().snapshot();
    assert_eq!(cols[0], "kind");
    assert_eq!(cols[1], "name");
    assert_eq!(
        rows.len(),
        snap.counters.len() + snap.gauges.len() + snap.derived.len() + snap.histograms.len(),
        "one row per registry instrument"
    );
    let cell_str = |c: &Option<Value>| match c {
        Some(Value::Str(s)) => s.clone(),
        other => panic!("expected string cell, got {other:?}"),
    };
    let jsonl = snapshot_jsonl(&snap);
    for row in &rows {
        let kind = cell_str(&row[0]);
        let name = cell_str(&row[1]);
        match kind.as_str() {
            "counter" => {
                let v = snap
                    .counters
                    .iter()
                    .find(|(n, _)| *n == name)
                    .unwrap_or_else(|| panic!("counter {name} not in snapshot"))
                    .1;
                assert_eq!(row[2], Some(Value::Int(v as i64)), "counter {name}");
                let line = format!("{{\"type\":\"counter\",\"name\":\"{name}\",\"value\":{v}}}");
                assert!(jsonl.contains(&line), "JSONL missing {line}");
            }
            "gauge" => {
                let v = snap
                    .gauges
                    .iter()
                    .find(|(n, _)| *n == name)
                    .unwrap_or_else(|| panic!("gauge {name} not in snapshot"))
                    .1;
                assert_eq!(row[2], Some(Value::Int(v)), "gauge {name}");
            }
            "derived" => {
                let v = snap
                    .derived
                    .iter()
                    .find(|(n, _)| *n == name)
                    .unwrap_or_else(|| panic!("derived {name} not in snapshot"))
                    .1;
                assert_eq!(row[2], Some(Value::Float(v)), "derived {name}");
                let formatted = format!("\"value\":{v:.6}");
                assert!(
                    jsonl
                        .iter()
                        .any(|l| l.contains(&name) && l.contains(&formatted)),
                    "JSONL missing derived {name}={formatted}"
                );
            }
            "histogram" => {
                let h = snap
                    .histograms
                    .iter()
                    .find(|h| h.name == name)
                    .unwrap_or_else(|| panic!("histogram {name} not in snapshot"));
                assert_eq!(row[3], Some(Value::Int(h.count as i64)), "histogram {name}");
            }
            other => panic!("unknown kind {other}"),
        }
    }

    // Filtering and projection through the language front-end.
    let (cols, rows) = rows_of(
        it.execute(
            "retrieve (name, value) from sys.metrics \
             where name = \"storage.pool.hits\"",
        )
        .unwrap(),
    );
    assert_eq!(cols, vec!["name".to_string(), "value".to_string()]);
    assert_eq!(rows.len(), 1, "exactly the filtered counter");
    assert!(matches!(rows[0][1], Some(Value::Int(n)) if n > 0));

    // sys.pool reflects the buffer pool; frame total == capacity.
    let (_, rows) = rows_of(it.execute("retrieve (all) from sys.pool").unwrap());
    let frames: i64 = rows
        .iter()
        .map(|r| match r[1] {
            Some(Value::Int(n)) => n,
            _ => 0,
        })
        .sum();
    assert_eq!(frames, 256, "sys.pool frames sum to the pool capacity");

    // sys.workload sees the replicated-path reads the seed queries did.
    it.execute("retrieve (Emp1.dept.name) where Emp1.salary > 1100")
        .unwrap();
    let (_, rows) = rows_of(
        it.execute("retrieve (path, reads) from sys.workload")
            .unwrap(),
    );
    assert!(
        rows.iter()
            .any(|r| r[0] == Some(Value::Str("Emp1.dept.name".into()))),
        "replicated path shows up in sys.workload: {rows:?}"
    );

    // ---- Slow-query acceptance: a driven over-threshold statement
    // appears in sys.slow_queries with per-operator profile I/O matching
    // the statement's EXPLAIN ANALYZE measured column.
    let stmt = "retrieve (Emp1.name, Emp1.dept.name) where Emp1.salary > 1050";
    it.execute("set slowlog threshold 1 pages").unwrap();
    let before = slowlog::recorded_total();
    // Cold pool, like EXPLAIN ANALYZE uses, so both runs measure the
    // same per-operator I/O.
    it.db.flush_all().unwrap();
    it.db.reset_profile();
    it.execute(stmt).unwrap();
    it.execute("set slowlog off").unwrap();
    assert_eq!(slowlog::recorded_total(), before + 1, "statement recorded");
    let entry = slowlog::entries().pop().expect("slow-query entry");
    assert_eq!(entry.statement, stmt);
    assert!(entry.io_pages >= 1);
    assert!(entry.plan.contains("access"), "plan text captured");
    assert!(
        entry.workload.contains("Emp1.dept.name"),
        "workload snapshot captured: {:?}",
        entry.workload
    );

    // EXPLAIN ANALYZE the same query (it resets to a cold pool itself).
    let q = ReadQuery::on("Emp1")
        .project(["name", "dept.name"])
        .filter(Filter::Range {
            path: "salary".into(),
            lo: Value::Int(1051),
            hi: Value::Int(i64::MAX),
        });
    let (explain, _res) = fieldrep_query::explain_analyze_read(&mut it.db, &q).unwrap();
    for op in &entry.profile.ops {
        let measured = explain
            .rows
            .iter()
            .find(|r| r.op == op.name)
            .and_then(|r| r.measured)
            .unwrap_or_else(|| panic!("operator {} missing from EXPLAIN ANALYZE", op.name));
        assert_eq!(
            op.io.disk_total(),
            measured,
            "per-operator I/O of {} matches EXPLAIN ANALYZE",
            op.name
        );
    }
    assert_eq!(
        entry.profile.total_io.disk_total(),
        explain.measured_total.unwrap(),
        "total I/O matches"
    );

    // The entry is queryable through sys.slow_queries, with filtering.
    let (cols, rows) = rows_of(
        it.execute("retrieve (statement, io_pages, ops) from sys.slow_queries")
            .unwrap(),
    );
    assert_eq!(cols.len(), 3);
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0][0], Some(Value::Str(stmt.into())));
    assert!(matches!(rows[0][1], Some(Value::Int(n)) if n as u64 == entry.io_pages));
    let ops_cell = match &rows[0][2] {
        Some(Value::Str(s)) => s.clone(),
        other => panic!("ops cell: {other:?}"),
    };
    assert!(
        ops_cell.contains("plan="),
        "ops summary lists operators: {ops_cell}"
    );

    // `show slowlog` dumps JSONL lines for the retained entries.
    let text = match it.execute("show slowlog").unwrap() {
        Output::Text(t) => t,
        other => panic!("{other:?}"),
    };
    assert!(text.contains("\"type\":\"slowlog_dump\""));
    assert!(text.contains("\"type\":\"slow_query\""));

    // EXPLAIN over a sys table renders the virtual-scan plan; ANALYZE
    // keeps the zero-I/O invariant visible.
    let plan = match it
        .execute("explain retrieve (all) from sys.metrics")
        .unwrap()
    {
        Output::Text(t) => t,
        other => panic!("{other:?}"),
    };
    assert!(plan.contains("virtual scan of sys.metrics"));
    let analyzed = match it
        .execute("explain analyze retrieve (all) from sys.metrics")
        .unwrap()
    {
        Output::Text(t) => t,
        other => panic!("{other:?}"),
    };
    assert!(analyzed.contains("rows:"));

    slowlog::set_off();
    slowlog::clear();
}
