//! End-to-end interpreter tests: the paper's examples typed as the paper
//! prints them.

use fieldrep_core::DbConfig;
use fieldrep_lang::{Interpreter, Output};
use fieldrep_model::Value;

fn interpreter_with_figure_1() -> Interpreter {
    let mut it = Interpreter::new(DbConfig::default());
    it.run_script(
        r#"
        define type ORG ( name: char[], budget: int );
        define type DEPT ( name: char[], budget: int, org: ref ORG );
        define type EMP ( name: char[], age: int, salary: int, dept: ref DEPT );
        create Org: {own ref ORG};
        create Dept: {own ref DEPT};
        create Emp1: {own ref EMP};
        create Emp2: {own ref EMP};

        insert Org (name = "Acme", budget = 5000000) as $acme;
        insert Dept (name = "Shoe", budget = 100000, org = $acme) as $shoe;
        insert Dept (name = "Toy", budget = 200000, org = $acme) as $toy;
        insert Emp1 (name = "Alice", age = 34, salary = 120000, dept = $shoe);
        insert Emp1 (name = "Bob", age = 29, salary = 90000, dept = $toy);
        insert Emp1 (name = "Cara", age = 41, salary = 150000, dept = $toy);
        insert Emp2 (name = "Dan", age = 50, salary = 200000, dept = $shoe);
        "#,
    )
    .unwrap();
    it
}

fn rows(o: Output) -> Vec<Vec<Option<Value>>> {
    match o {
        Output::Rows { rows, .. } => rows,
        other => panic!("expected rows, got {other:?}"),
    }
}

#[test]
fn section_3_1_example_verbatim() {
    let mut it = interpreter_with_figure_1();
    it.execute("replicate Emp1.dept.name").unwrap();

    // The paper's query, verbatim.
    let out = it
        .execute("retrieve (Emp1.name, Emp1.salary, Emp1.dept.name) where Emp1.salary > 100000")
        .unwrap();
    let rows = rows(out);
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0][0], Some(Value::Str("Alice".into())));
    assert_eq!(rows[0][2], Some(Value::Str("Shoe".into())));
    assert_eq!(rows[1][0], Some(Value::Str("Cara".into())));
    assert_eq!(rows[1][2], Some(Value::Str("Toy".into())));
}

#[test]
fn replace_propagates_through_replicas() {
    let mut it = interpreter_with_figure_1();
    it.execute("replicate Emp1.dept.name").unwrap();
    let out = it
        .execute(r#"replace (Dept.name = "Footwear", Dept.budget = 1) where Dept.name = "Shoe""#)
        .unwrap();
    assert!(matches!(out, Output::Updated(1)));
    let out = it
        .execute(r#"retrieve (Emp1.dept.name) where Emp1.name = "Alice""#)
        .unwrap();
    assert_eq!(rows(out)[0][0], Some(Value::Str("Footwear".into())));
}

#[test]
fn two_level_and_build_btree() {
    let mut it = interpreter_with_figure_1();
    it.run_script(
        r#"
        replicate Emp1.dept.org.name;
        build btree on Emp1.dept.org.name;
        build btree on Emp1.salary;
        "#,
    )
    .unwrap();
    // Associative lookup through the path index (§3.3.4).
    let out = it
        .execute(r#"retrieve (Emp1.name) where Emp1.dept.org.name = "Acme""#)
        .unwrap();
    assert_eq!(rows(out).len(), 3);
}

#[test]
fn separate_and_deferred_variants() {
    let mut it = interpreter_with_figure_1();
    it.execute("replicate Emp1.dept.budget using separate")
        .unwrap();
    it.execute("replicate Emp1.dept.name using inplace deferred")
        .unwrap();
    it.execute(r#"replace (Dept.name = "S2") where Dept.name = "Shoe""#)
        .unwrap();
    // Deferred: pending until read or sync.
    let show = it.execute("show pending").unwrap();
    let text = format!("{show}");
    assert!(text.contains("1 pending"), "{text}");
    let out = it.execute("sync").unwrap();
    assert!(matches!(out, Output::Synced(1)));
    let out = it
        .execute(r#"retrieve (Emp1.dept.name) where Emp1.name = "Alice""#)
        .unwrap();
    assert_eq!(rows(out)[0][0], Some(Value::Str("S2".into())));
}

#[test]
fn drop_replicate_statement() {
    let mut it = interpreter_with_figure_1();
    it.execute("replicate Emp1.dept.name").unwrap();
    it.execute("drop replicate Emp1.dept.name").unwrap();
    assert_eq!(it.db.catalog().paths().count(), 0);
    // Unknown path errors cleanly.
    assert!(it.execute("drop replicate Emp1.dept.name").is_err());
}

#[test]
fn delete_from_with_predicate() {
    let mut it = interpreter_with_figure_1();
    let out = it
        .execute("delete from Emp1 where Emp1.salary < 100000")
        .unwrap();
    assert!(matches!(out, Output::Deleted(1))); // Bob
    let out = it.execute("retrieve (Emp1.name)").unwrap();
    assert_eq!(rows(out).len(), 2);
}

#[test]
fn between_predicate() {
    let mut it = interpreter_with_figure_1();
    let out = it
        .execute("retrieve (Emp1.name) where Emp1.salary between 90000 and 120000")
        .unwrap();
    assert_eq!(rows(out).len(), 2);
}

#[test]
fn show_catalog_prints_link_sequences() {
    // §4.1.3's illustration: link sequences next to replicate statements.
    let mut it = interpreter_with_figure_1();
    it.run_script(
        r#"
        replicate Emp1.dept.budget;
        replicate Emp1.dept.name;
        replicate Emp1.dept.org.name;
        replicate Emp2.dept.org;
        "#,
    )
    .unwrap();
    let out = format!("{}", it.execute("show catalog").unwrap());
    assert!(out.contains("link sequence = (1)"), "{out}");
    assert!(out.contains("link sequence = (1,2)"), "{out}");
    assert!(out.contains("link sequence = (3)"), "{out}");
}

#[test]
fn null_refs_and_defaults() {
    let mut it = interpreter_with_figure_1();
    it.execute("replicate Emp1.dept.name").unwrap();
    it.execute(r#"insert Emp1 (name = "Eve", dept = null)"#)
        .unwrap();
    // Defaults: age/salary 0; NULL dept → NULL projection.
    let out = it
        .execute(r#"retrieve (Emp1.salary, Emp1.dept.name) where Emp1.name = "Eve""#)
        .unwrap();
    let r = rows(out);
    assert_eq!(r[0][0], Some(Value::Int(0)));
    assert_eq!(r[0][1], None);
}

#[test]
fn mixed_api_and_language_use() {
    let mut it = interpreter_with_figure_1();
    // Bind a variable from the API side and use it in a statement.
    let dept = it.db.scan_set("Dept").unwrap()[0];
    it.bind("d", dept);
    it.execute(r#"insert Emp1 (name = "Zoe", salary = 1, dept = $d)"#)
        .unwrap();
    assert_eq!(it.db.set_len("Emp1").unwrap(), 4);
}

#[test]
fn execution_errors_are_clean() {
    let mut it = interpreter_with_figure_1();
    // Unknown set.
    assert!(it.execute("retrieve (Nope.name)").is_err());
    // Unknown field in insert.
    assert!(it.execute(r#"insert Emp1 (bogus = 1)"#).is_err());
    // Unbound variable.
    assert!(it.execute(r#"insert Emp1 (dept = $nothing)"#).is_err());
    // Cross-set projection mix.
    assert!(it.execute("retrieve (Emp1.name, Emp2.name)").is_err());
    // Non-integer range operator.
    assert!(it
        .execute(r#"retrieve (Emp1.name) where Emp1.name > "A""#)
        .is_err());
    // Nested path in replace.
    assert!(it
        .execute(r#"replace (Emp1.dept.name = "x") where Emp1.salary = 0"#)
        .is_err());
    // The session stays usable after errors.
    assert!(it.execute("retrieve (Emp1.name)").is_ok());
}

#[test]
fn collapsed_replicate_statement() {
    let mut it = interpreter_with_figure_1();
    it.execute("replicate Emp1.dept.org.name collapsed")
        .unwrap();
    let p = it.db.catalog().paths().next().unwrap();
    assert!(p.collapsed);
    let out = it
        .execute(r#"retrieve (Emp1.dept.org.name) where Emp1.name = "Alice""#)
        .unwrap();
    assert_eq!(rows(out)[0][0], Some(Value::Str("Acme".into())));
    // And `using separate collapsed` is rejected.
    assert!(it
        .execute("replicate Emp1.dept.org.budget using separate collapsed")
        .is_err());
}

#[test]
fn advise_statement_reports() {
    let mut it = interpreter_with_figure_1();
    let out = format!("{}", it.execute("advise Emp1.dept.name at 0.05").unwrap());
    assert!(out.contains("use InPlace"), "{out}");
    assert!(out.contains("f = "), "{out}");
}

#[test]
fn deferred_read_through_language_syncs() {
    let mut it = interpreter_with_figure_1();
    it.execute("replicate Emp1.dept.name using inplace deferred")
        .unwrap();
    it.execute(r#"replace (Dept.name = "Lazy") where Dept.name = "Toy""#)
        .unwrap();
    // retrieve must observe the new value (auto-sync in the executor).
    let out = it
        .execute(r#"retrieve (Emp1.dept.name) where Emp1.name = "Bob""#)
        .unwrap();
    assert_eq!(rows(out)[0][0], Some(Value::Str("Lazy".into())));
}

#[test]
fn explain_retrieve_prints_predictions_only() {
    let mut it = interpreter_with_figure_1();
    it.execute("replicate Emp1.dept.name").unwrap();
    let out = it
        .execute("explain retrieve (Emp1.name, Emp1.dept.name) where Emp1.salary > 100000")
        .unwrap();
    let text = format!("{out}");
    assert!(text.contains("predicted"), "{text}");
    assert!(text.contains("access"), "{text}");
    assert!(!text.contains("measured"), "{text}");
    assert!(!text.contains("rows:"), "explain must not execute: {text}");
}

#[test]
fn explain_analyze_retrieve_reports_measured_io_and_drift() {
    let mut it = interpreter_with_figure_1();
    it.execute("replicate Emp1.dept.name using separate")
        .unwrap();
    let out = it
        .execute("explain analyze retrieve (Emp1.name, Emp1.dept.name) where Emp1.salary > 100000")
        .unwrap();
    let text = format!("{out}");
    for needle in ["predicted", "measured", "drift", "total", "rows: 2"] {
        assert!(text.contains(needle), "missing {needle}:\n{text}");
    }
}

#[test]
fn explain_analyze_replace_shows_propagation_operator() {
    let mut it = interpreter_with_figure_1();
    it.execute("replicate Emp1.dept.name").unwrap();
    let out = it
        .execute(r#"explain analyze replace (Dept.name = "Sneaker") where Dept.name = "Shoe""#)
        .unwrap();
    let text = format!("{out}");
    assert!(text.contains("core.propagate"), "{text}");
    assert!(text.contains("measured"), "{text}");
    // The update really ran.
    let check = it
        .execute(r#"retrieve (Emp1.dept.name) where Emp1.name = "Alice""#)
        .unwrap();
    assert_eq!(rows(check)[0][0], Some(Value::Str("Sneaker".into())));
}

#[test]
fn explain_accepts_only_retrieve_and_replace() {
    let mut it = interpreter_with_figure_1();
    assert!(it.execute("explain sync").is_err());
    assert!(it
        .execute(r#"explain insert Org (name = "X", budget = 1)"#)
        .is_err());
    assert!(it.execute("explain analyze advise Emp1.dept.name").is_err());
}

#[test]
fn show_stats_reports_the_driven_workload_per_path() {
    let mut it = interpreter_with_figure_1();
    it.execute("replicate Emp1.dept.name").unwrap();
    for _ in 0..3 {
        it.execute("retrieve (Emp1.dept.name)").unwrap();
    }
    it.execute(r#"replace (Dept.name = "Outlet") where Dept.name = "Shoe""#)
        .unwrap();

    let text = format!("{}", it.execute("show stats").unwrap());
    assert!(text.contains("observed workload"), "{text}");
    assert!(text.contains("Emp1.dept.name"), "{text}");

    // Filtered to the driven path: same row, nothing else.
    let filtered = format!("{}", it.execute("show stats path Emp1.dept.name").unwrap());
    assert!(filtered.contains("Emp1.dept.name"), "{filtered}");

    // A path with no observed statistics is an error, not an empty table.
    assert!(it.execute("show stats path Emp1.dept.budget").is_err());
}
