//! Parser robustness properties: arbitrary input must never panic, and
//! generated well-formed statements must parse to the expected shapes.

use fieldrep_lang::{parse_script, parse_stmt, Stmt};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup: the parser returns Ok or Err, never panics.
    #[test]
    fn parser_never_panics(src in ".{0,200}") {
        let _ = parse_script(&src);
    }

    /// Arbitrary token-ish soup from the language's own alphabet.
    #[test]
    fn parser_never_panics_on_tokeny_input(
        words in proptest::collection::vec(
            prop_oneof![
                Just("define".to_string()),
                Just("type".to_string()),
                Just("retrieve".to_string()),
                Just("replicate".to_string()),
                Just("where".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just(",".to_string()),
                Just(".".to_string()),
                Just(";".to_string()),
                Just("=".to_string()),
                Just("$x".to_string()),
                Just("\"s\"".to_string()),
                Just("42".to_string()),
                "[a-z]{1,6}",
            ],
            0..30,
        )
    ) {
        let src = words.join(" ");
        let _ = parse_script(&src);
    }

    /// Generated `retrieve` statements parse back to their structure.
    #[test]
    fn generated_retrieves_roundtrip(
        set in "[A-Z][a-z]{1,6}",
        fields in proptest::collection::vec("[a-z]{1,8}", 1..5),
        sel in proptest::option::of(("[a-z]{1,8}", -1000..1000i64)),
    ) {
        let projs: Vec<String> = fields.iter().map(|f| format!("{set}.{f}")).collect();
        let mut stmt = format!("retrieve ({})", projs.join(", "));
        if let Some((f, v)) = &sel {
            stmt.push_str(&format!(" where {set}.{f} > {v}"));
        }
        let parsed = parse_stmt(&stmt).unwrap();
        match parsed {
            Stmt::Retrieve { projections, predicate } => {
                prop_assert_eq!(projections.len(), fields.len());
                prop_assert_eq!(predicate.is_some(), sel.is_some());
                for (p, f) in projections.iter().zip(&fields) {
                    prop_assert_eq!(&p[0], &set);
                    prop_assert_eq!(&p[1], f);
                }
            }
            other => prop_assert!(false, "unexpected {other:?}"),
        }
    }

    /// Generated schema scripts parse to the right number of statements.
    #[test]
    fn generated_schema_scripts_parse(
        types in proptest::collection::vec(("[A-Z]{2,6}", 1..5usize), 1..4),
    ) {
        let mut script = String::new();
        for (name, nfields) in &types {
            let fields: Vec<String> =
                (0..*nfields).map(|i| format!("f{i}: int")).collect();
            script.push_str(&format!("define type {name} ( {} );\n", fields.join(", ")));
        }
        let stmts = parse_script(&script).unwrap();
        prop_assert_eq!(stmts.len(), types.len());
    }

    /// String literals with escapes survive the lexer.
    #[test]
    fn string_literals_roundtrip(s in "[a-zA-Z0-9 _.,!?-]{0,40}") {
        let stmt = format!(r#"insert X (name = "{s}")"#);
        match parse_stmt(&stmt).unwrap() {
            Stmt::Insert { fields, .. } => {
                prop_assert_eq!(fields.len(), 1);
                match &fields[0].1 {
                    fieldrep_lang::Expr::Str(got) => prop_assert_eq!(got, &s),
                    other => prop_assert!(false, "expected string, got {other:?}"),
                }
            }
            other => prop_assert!(false, "unexpected {other:?}"),
        }
    }
}
