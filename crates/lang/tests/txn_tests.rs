//! Language-level transaction statements: `begin` / `commit` / `abort`
//! and the `sys.txn` virtual table.

use fieldrep_core::DbConfig;
use fieldrep_lang::{Interpreter, Output};
use fieldrep_model::Value;

fn it() -> Interpreter {
    let mut it = Interpreter::new(DbConfig {
        pool_pages: 128,
        ..DbConfig::default()
    });
    it.run_script(
        r#"
        define type DEPT ( name: char[], budget: int );
        define type EMP  ( name: char[], salary: int, dept: ref DEPT );
        create Dept: {own ref DEPT};
        create Emp1: {own ref EMP};
        insert Dept (name = "Shoe", budget = 100000) as $shoe;
        insert Emp1 (name = "alice", salary = 10, dept = $shoe);
        replicate Emp1.dept.name;
        "#,
    )
    .expect("schema");
    it
}

fn txn_counter(it: &mut Interpreter, name: &str) -> i64 {
    let out = it
        .execute(&format!(
            "retrieve (value) from sys.txn where counter = \"{name}\""
        ))
        .expect("sys.txn query");
    match out {
        Output::Rows { rows, .. } => match rows.as_slice() {
            [row] => match &row[0] {
                Some(Value::Int(v)) => *v,
                other => panic!("expected int, got {other:?}"),
            },
            other => panic!("expected one row, got {other:?}"),
        },
        other => panic!("expected rows, got {other:?}"),
    }
}

#[test]
fn begin_commit_shows_in_sys_txn() {
    let mut it = it();
    assert!(it.current_txn().is_none());
    it.execute("begin").expect("begin");
    assert!(it.current_txn().is_some());
    assert_eq!(txn_counter(&mut it, "active"), 1);
    it.execute("commit").expect("commit");
    assert!(it.current_txn().is_none());
    assert_eq!(txn_counter(&mut it, "active"), 0);
    assert_eq!(txn_counter(&mut it, "committed"), 1);
}

#[test]
fn abort_is_refused_after_writes_but_fine_before() {
    let mut it = it();
    it.execute("begin").expect("begin");
    it.execute("abort").expect("read-only abort is legal");
    assert_eq!(txn_counter(&mut it, "aborted"), 1);

    it.execute("begin").expect("begin again");
    it.execute(r#"replace (Dept.budget = 1) where Dept.name = "Shoe""#)
        .expect("write");
    let err = it.execute("abort").expect_err("abort after writes");
    assert!(err.to_string().contains("cannot abort"), "{err}");
    // The transaction is still open; commit closes it.
    it.execute("commit").expect("commit");
    assert!(it.current_txn().is_none());
}

#[test]
fn txn_statements_need_an_open_transaction() {
    let mut it = it();
    assert!(it.execute("commit").is_err());
    assert!(it.execute("abort").is_err());
    it.execute("begin").expect("begin");
    assert!(it.execute("begin").is_err(), "no nesting");
    it.execute("commit").expect("commit");
}
