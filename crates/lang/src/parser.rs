//! Recursive-descent parser for the EXTRA-style statement language.

use crate::ast::{CmpOp, Expr, FieldDecl, Predicate, Stmt};
use crate::lexer::{lex, Token};
use crate::LangError;

/// Parse a script into statements (separated by `;`, which is optional
/// after the last statement).
pub fn parse_script(src: &str) -> Result<Vec<Stmt>, LangError> {
    let tokens = lex(src)?;
    let mut stmts = Vec::new();
    let mut p = Parser { tokens, pos: 0 };
    while !p.at_end() {
        if p.eat(&Token::Semi) {
            continue;
        }
        stmts.push(p.statement()?);
    }
    Ok(stmts)
}

/// Parse exactly one statement.
pub fn parse_stmt(src: &str) -> Result<Stmt, LangError> {
    let mut stmts = parse_script(src)?;
    if stmts.len() > 1 {
        return Err(LangError::Parse(format!(
            "expected one statement, found {}",
            stmts.len()
        )));
    }
    stmts
        .pop()
        .ok_or_else(|| LangError::Parse("empty statement".into()))
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Result<Token, LangError> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| LangError::Parse("unexpected end of statement".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_tok(&mut self, t: Token) -> Result<(), LangError> {
        let got = self.next()?;
        if got == t {
            Ok(())
        } else {
            Err(LangError::Parse(format!("expected {t:?}, found {got:?}")))
        }
    }

    fn ident(&mut self) -> Result<String, LangError> {
        match self.next()? {
            Token::Ident(s) => Ok(s),
            other => Err(LangError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    /// Case-insensitive keyword check-and-consume.
    fn keyword(&mut self, kw: &str) -> bool {
        if let Some(Token::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), LangError> {
        if self.keyword(kw) {
            Ok(())
        } else {
            Err(LangError::Parse(format!(
                "expected keyword {kw:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn statement(&mut self) -> Result<Stmt, LangError> {
        let kw = match self.peek() {
            Some(Token::Ident(s)) => s.to_ascii_lowercase(),
            other => {
                return Err(LangError::Parse(format!(
                    "expected statement, found {other:?}"
                )))
            }
        };
        match kw.as_str() {
            "define" => self.define_type(),
            "create" => self.create_set(),
            "replicate" => self.replicate(),
            "drop" => self.drop_replicate(),
            "build" => self.build_index(),
            "insert" => self.insert(),
            "retrieve" => self.retrieve(),
            "replace" => self.replace(),
            "delete" => self.delete(),
            "explain" => self.explain(),
            "set" => self.set_slowlog(),
            "advise" => {
                self.pos += 1;
                let path = self.dotted_path()?;
                let p_update = if self.keyword("at") {
                    match self.next()? {
                        Token::Float(v) => v,
                        Token::Int(v) => v as f64,
                        other => {
                            return Err(LangError::Parse(format!(
                                "expected probability after `at`, found {other:?}"
                            )))
                        }
                    }
                } else {
                    0.1
                };
                Ok(Stmt::Advise { path, p_update })
            }
            "begin" => {
                self.pos += 1;
                Ok(Stmt::Begin)
            }
            "commit" => {
                self.pos += 1;
                Ok(Stmt::Commit)
            }
            "abort" => {
                self.pos += 1;
                Ok(Stmt::Abort)
            }
            "sync" => {
                self.pos += 1;
                Ok(Stmt::Sync)
            }
            "show" => {
                self.pos += 1;
                let what = self.ident()?.to_ascii_lowercase();
                if what == "stats" {
                    let path = if self.keyword("path") {
                        Some(self.dotted_path()?)
                    } else {
                        None
                    };
                    return Ok(Stmt::ShowStats { path });
                }
                Ok(Stmt::Show { what })
            }
            other => Err(LangError::Parse(format!("unknown statement {other:?}"))),
        }
    }

    /// `define type EMP ( name: char[], age: int, dept: ref DEPT )`
    fn define_type(&mut self) -> Result<Stmt, LangError> {
        self.expect_keyword("define")?;
        self.expect_keyword("type")?;
        let name = self.ident()?;
        self.expect_tok(Token::LParen)?;
        let mut fields = Vec::new();
        loop {
            let fname = self.ident()?;
            self.expect_tok(Token::Colon)?;
            let ftype = self.ident()?;
            let decl = match ftype.to_ascii_lowercase().as_str() {
                "int" => FieldDecl::Int(fname),
                "float" => FieldDecl::Float(fname),
                "char" => {
                    self.expect_tok(Token::LBracket)?;
                    self.expect_tok(Token::RBracket)?;
                    FieldDecl::Str(fname)
                }
                "ref" => {
                    let target = self.ident()?;
                    FieldDecl::Ref(fname, target)
                }
                "pad" => {
                    self.expect_tok(Token::LBracket)?;
                    let n = match self.next()? {
                        Token::Int(n) if (0..=u16::MAX as i64).contains(&n) => n as u16,
                        other => {
                            return Err(LangError::Parse(format!(
                                "expected pad size, found {other:?}"
                            )))
                        }
                    };
                    self.expect_tok(Token::RBracket)?;
                    FieldDecl::Pad(fname, n)
                }
                other => return Err(LangError::Parse(format!("unknown field type {other:?}"))),
            };
            fields.push(decl);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect_tok(Token::RParen)?;
        Ok(Stmt::DefineType { name, fields })
    }

    /// `create Emp1: {own ref EMP}`
    fn create_set(&mut self) -> Result<Stmt, LangError> {
        self.expect_keyword("create")?;
        let name = self.ident()?;
        self.expect_tok(Token::Colon)?;
        self.expect_tok(Token::LBrace)?;
        self.expect_keyword("own")?;
        self.expect_keyword("ref")?;
        let type_name = self.ident()?;
        self.expect_tok(Token::RBrace)?;
        Ok(Stmt::CreateSet { name, type_name })
    }

    fn dotted_path(&mut self) -> Result<Vec<String>, LangError> {
        let mut path = vec![self.ident()?];
        while self.eat(&Token::Dot) {
            path.push(self.ident()?);
        }
        Ok(path)
    }

    /// `replicate Emp1.dept.name [using separate|inplace] [deferred]`
    fn replicate(&mut self) -> Result<Stmt, LangError> {
        self.expect_keyword("replicate")?;
        let path = self.dotted_path()?;
        let mut separate = false;
        if self.keyword("using") {
            let which = self.ident()?.to_ascii_lowercase();
            match which.as_str() {
                "separate" => separate = true,
                "inplace" | "in_place" => separate = false,
                other => {
                    return Err(LangError::Parse(format!(
                        "unknown strategy {other:?} (use `separate` or `inplace`)"
                    )))
                }
            }
        }
        let mut deferred = false;
        let mut collapsed = false;
        loop {
            if self.keyword("deferred") {
                deferred = true;
            } else if self.keyword("collapsed") {
                collapsed = true;
            } else {
                break;
            }
        }
        Ok(Stmt::Replicate {
            path,
            separate,
            deferred,
            collapsed,
        })
    }

    /// `drop replicate Emp1.dept.name`
    fn drop_replicate(&mut self) -> Result<Stmt, LangError> {
        self.expect_keyword("drop")?;
        self.expect_keyword("replicate")?;
        let path = self.dotted_path()?;
        Ok(Stmt::DropReplicate { path })
    }

    /// `build [clustered] btree on Emp1.salary`
    fn build_index(&mut self) -> Result<Stmt, LangError> {
        self.expect_keyword("build")?;
        let clustered = self.keyword("clustered");
        self.expect_keyword("btree")?;
        self.expect_keyword("on")?;
        let path = self.dotted_path()?;
        Ok(Stmt::BuildIndex { path, clustered })
    }

    fn expr(&mut self) -> Result<Expr, LangError> {
        match self.next()? {
            Token::Int(v) => Ok(Expr::Int(v)),
            Token::Float(v) => Ok(Expr::Float(v)),
            Token::Str(s) => Ok(Expr::Str(s)),
            Token::Var(v) => Ok(Expr::Var(v)),
            Token::Ident(s) if s.eq_ignore_ascii_case("null") => Ok(Expr::Null),
            other => Err(LangError::Parse(format!("expected value, found {other:?}"))),
        }
    }

    /// `insert Emp1 (name = "A", dept = $d) [as $e]`
    fn insert(&mut self) -> Result<Stmt, LangError> {
        self.expect_keyword("insert")?;
        // Tolerate the SQL-flavoured `insert into`.
        self.keyword("into");
        let set = self.ident()?;
        self.expect_tok(Token::LParen)?;
        let mut fields = Vec::new();
        if !self.eat(&Token::RParen) {
            loop {
                let f = self.ident()?;
                self.expect_tok(Token::Eq)?;
                let v = self.expr()?;
                fields.push((f, v));
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect_tok(Token::RParen)?;
        }
        let bind = if self.keyword("as") {
            match self.next()? {
                Token::Var(v) => Some(v),
                other => {
                    return Err(LangError::Parse(format!(
                        "expected $variable after `as`, found {other:?}"
                    )))
                }
            }
        } else {
            None
        };
        Ok(Stmt::Insert { set, fields, bind })
    }

    fn predicate_opt(&mut self) -> Result<Option<Predicate>, LangError> {
        if !self.keyword("where") {
            return Ok(None);
        }
        let path = self.dotted_path()?;
        if self.keyword("between") {
            let lo = self.expr()?;
            self.expect_keyword("and")?;
            let hi = self.expr()?;
            return Ok(Some(Predicate::Between { path, lo, hi }));
        }
        let op = match self.next()? {
            Token::Eq => CmpOp::Eq,
            Token::Lt => CmpOp::Lt,
            Token::Gt => CmpOp::Gt,
            Token::Le => CmpOp::Le,
            Token::Ge => CmpOp::Ge,
            other => {
                return Err(LangError::Parse(format!(
                    "expected comparison operator, found {other:?}"
                )))
            }
        };
        let value = self.expr()?;
        Ok(Some(Predicate::Cmp { path, op, value }))
    }

    /// `retrieve (Emp1.name, Emp1.dept.name) where …`
    fn retrieve(&mut self) -> Result<Stmt, LangError> {
        self.expect_keyword("retrieve")?;
        self.expect_tok(Token::LParen)?;
        let mut projections = vec![self.dotted_path()?];
        while self.eat(&Token::Comma) {
            projections.push(self.dotted_path()?);
        }
        self.expect_tok(Token::RParen)?;
        if self.keyword("from") {
            return self.retrieve_sys(projections);
        }
        let predicate = self.predicate_opt()?;
        Ok(Stmt::Retrieve {
            projections,
            predicate,
        })
    }

    /// `… from sys.metrics [where name = "…"]` — the tail of a virtual
    /// `retrieve` over one introspection table. The parenthesised list
    /// holds bare column names, or the single word `all` for every
    /// column.
    fn retrieve_sys(&mut self, projections: Vec<Vec<String>>) -> Result<Stmt, LangError> {
        let table_path = self.dotted_path()?;
        if table_path.len() != 2 || !table_path[0].eq_ignore_ascii_case("sys") {
            return Err(LangError::Parse(format!(
                "`from` expects a sys.<table> name, found {:?}",
                table_path.join(".")
            )));
        }
        let table = format!("sys.{}", table_path[1].to_ascii_lowercase());
        let all = projections.len() == 1
            && projections[0].len() == 1
            && projections[0][0].eq_ignore_ascii_case("all");
        let mut columns = Vec::new();
        if !all {
            for p in &projections {
                if p.len() != 1 {
                    return Err(LangError::Parse(format!(
                        "sys projections are bare column names, found {:?}",
                        p.join(".")
                    )));
                }
                columns.push(p[0].clone());
            }
        }
        let predicate = self.predicate_opt()?;
        Ok(Stmt::RetrieveSys {
            table,
            columns,
            predicate,
        })
    }

    /// `set slowlog off` / `set slowlog threshold 10 ms [100 pages]`
    fn set_slowlog(&mut self) -> Result<Stmt, LangError> {
        self.expect_keyword("set")?;
        self.expect_keyword("slowlog")?;
        if self.keyword("off") {
            return Ok(Stmt::SetSlowlog {
                wall_ms: None,
                io_pages: None,
            });
        }
        self.expect_keyword("threshold")?;
        let mut wall_ms = None;
        let mut io_pages = None;
        while let Some(Token::Int(v)) = self.peek() {
            if *v < 0 {
                return Err(LangError::Parse("threshold must be non-negative".into()));
            }
            let n = *v as u64;
            self.pos += 1;
            if self.keyword("ms") {
                wall_ms = Some(n);
            } else if self.keyword("pages") {
                io_pages = Some(n);
            } else {
                return Err(LangError::Parse(format!(
                    "expected `ms` or `pages` after threshold value, found {:?}",
                    self.peek()
                )));
            }
        }
        if wall_ms.is_none() && io_pages.is_none() {
            return Err(LangError::Parse(
                "set slowlog threshold needs `<N> ms` and/or `<N> pages`".into(),
            ));
        }
        Ok(Stmt::SetSlowlog { wall_ms, io_pages })
    }

    /// `replace (Dept.budget = 42, Dept.name = "X") where …`
    fn replace(&mut self) -> Result<Stmt, LangError> {
        self.expect_keyword("replace")?;
        self.expect_tok(Token::LParen)?;
        let mut assignments = Vec::new();
        loop {
            let path = self.dotted_path()?;
            self.expect_tok(Token::Eq)?;
            let v = self.expr()?;
            assignments.push((path, v));
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect_tok(Token::RParen)?;
        let predicate = self.predicate_opt()?;
        Ok(Stmt::Replace {
            assignments,
            predicate,
        })
    }

    /// `explain [analyze] retrieve (…) …` / `explain [analyze] replace (…) …`
    fn explain(&mut self) -> Result<Stmt, LangError> {
        self.expect_keyword("explain")?;
        let analyze = self.keyword("analyze");
        let inner = self.statement()?;
        match inner {
            Stmt::Retrieve { .. } | Stmt::RetrieveSys { .. } | Stmt::Replace { .. } => {
                Ok(Stmt::Explain {
                    analyze,
                    stmt: Box::new(inner),
                })
            }
            _ => Err(LangError::Parse(
                "explain supports retrieve and replace statements only".into(),
            )),
        }
    }

    /// `delete from Emp1 where …`
    fn delete(&mut self) -> Result<Stmt, LangError> {
        self.expect_keyword("delete")?;
        self.expect_keyword("from")?;
        let set = self.ident()?;
        let predicate = self.predicate_opt()?;
        Ok(Stmt::Delete { set, predicate })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_figure_1_schema() {
        // The paper's Figure 1, verbatim modulo whitespace.
        let stmts = parse_script(
            r#"
            define type ORG ( name: char[], budget: int );
            define type DEPT ( name: char[], budget: int, org: ref ORG );
            define type EMP ( name: char[], age: int, salary: int, dept: ref DEPT );
            create Org: {own ref ORG};
            create Dept: {own ref DEPT};
            create Emp1: {own ref EMP};
            create Emp2: {own ref EMP};
            replicate Emp1.dept.name
            "#,
        )
        .unwrap();
        assert_eq!(stmts.len(), 8);
        assert!(matches!(&stmts[0], Stmt::DefineType { name, fields }
            if name == "ORG" && fields.len() == 2));
        assert!(matches!(&stmts[4], Stmt::CreateSet { name, type_name }
            if name == "Dept" && type_name == "DEPT"));
        assert!(matches!(
            &stmts[7],
            Stmt::Replicate {
                separate: false,
                deferred: false,
                ..
            }
        ));
    }

    #[test]
    fn parse_section_3_1_query() {
        // The paper's §3.1 example query.
        let s = parse_stmt(
            "retrieve (Emp1.name, Emp1.salary, Emp1.dept.name) where Emp1.salary > 100000",
        )
        .unwrap();
        match s {
            Stmt::Retrieve {
                projections,
                predicate: Some(Predicate::Cmp { path, op, value }),
            } => {
                assert_eq!(projections.len(), 3);
                assert_eq!(projections[2], vec!["Emp1", "dept", "name"]);
                assert_eq!(path, vec!["Emp1", "salary"]);
                assert_eq!(op, CmpOp::Gt);
                assert_eq!(value, Expr::Int(100_000));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_replicate_variants() {
        assert!(matches!(
            parse_stmt("replicate Emp1.dept.org.name using separate").unwrap(),
            Stmt::Replicate {
                separate: true,
                deferred: false,
                collapsed: false,
                ..
            }
        ));
        assert!(matches!(
            parse_stmt("replicate Emp1.dept.all using inplace deferred").unwrap(),
            Stmt::Replicate {
                separate: false,
                deferred: true,
                ..
            }
        ));
        assert!(matches!(
            parse_stmt("replicate Emp1.dept.org.name collapsed").unwrap(),
            Stmt::Replicate {
                collapsed: true,
                ..
            }
        ));
        assert!(matches!(
            parse_stmt("drop replicate Emp1.dept.name").unwrap(),
            Stmt::DropReplicate { .. }
        ));
    }

    #[test]
    fn parse_build_index() {
        // The paper's §3.3.4 statement.
        assert!(matches!(
            parse_stmt("build btree on Emp1.dept.org.name").unwrap(),
            Stmt::BuildIndex {
                clustered: false,
                ..
            }
        ));
        assert!(matches!(
            parse_stmt("build clustered btree on Emp1.salary").unwrap(),
            Stmt::BuildIndex {
                clustered: true,
                ..
            }
        ));
    }

    #[test]
    fn parse_insert_and_bind() {
        let s = parse_stmt(r#"insert Emp1 (name = "Alice", age = 30, dept = $shoe) as $alice"#)
            .unwrap();
        match s {
            Stmt::Insert { set, fields, bind } => {
                assert_eq!(set, "Emp1");
                assert_eq!(fields.len(), 3);
                assert_eq!(fields[2], ("dept".into(), Expr::Var("shoe".into())));
                assert_eq!(bind, Some("alice".into()));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_replace_and_delete() {
        let s = parse_stmt(r#"replace (Dept.budget = 42) where Dept.name = "Shoe""#).unwrap();
        assert!(matches!(s, Stmt::Replace { .. }));
        let s = parse_stmt("delete from Emp1 where Emp1.salary < 100").unwrap();
        assert!(matches!(
            s,
            Stmt::Delete {
                predicate: Some(_),
                ..
            }
        ));
        let s = parse_stmt("delete from Emp1").unwrap();
        assert!(matches!(
            s,
            Stmt::Delete {
                predicate: None,
                ..
            }
        ));
    }

    #[test]
    fn parse_advise() {
        assert!(matches!(
            parse_stmt("advise Emp1.dept.name").unwrap(),
            Stmt::Advise { p_update, .. } if p_update == 0.1
        ));
        assert!(matches!(
            parse_stmt("advise Emp1.dept.org.name at 0.35").unwrap(),
            Stmt::Advise { p_update, .. } if (p_update - 0.35).abs() < 1e-9
        ));
    }

    #[test]
    fn parse_between() {
        let s = parse_stmt("retrieve (R.field_r) where R.field_r between 10 and 20").unwrap();
        assert!(matches!(
            s,
            Stmt::Retrieve {
                predicate: Some(Predicate::Between { .. }),
                ..
            }
        ));
    }

    #[test]
    fn parse_retrieve_sys() {
        let s = parse_stmt(r#"retrieve (name, value) from sys.metrics where name = "x""#).unwrap();
        match s {
            Stmt::RetrieveSys {
                table,
                columns,
                predicate,
            } => {
                assert_eq!(table, "sys.metrics");
                assert_eq!(columns, vec!["name".to_string(), "value".to_string()]);
                assert!(matches!(
                    predicate,
                    Some(Predicate::Cmp { path, .. }) if path == vec!["name".to_string()]
                ));
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse_stmt("retrieve (all) from sys.slow_queries").unwrap(),
            Stmt::RetrieveSys { columns, .. } if columns.is_empty()
        ));
        assert!(matches!(
            parse_stmt("explain analyze retrieve (all) from sys.pool").unwrap(),
            Stmt::Explain { analyze: true, stmt }
                if matches!(*stmt, Stmt::RetrieveSys { .. })
        ));
        // Dotted projections and non-sys sources are rejected.
        assert!(parse_stmt("retrieve (a.b) from sys.metrics").is_err());
        assert!(parse_stmt("retrieve (name) from other.metrics").is_err());
        assert!(parse_stmt("retrieve (name) from sys").is_err());
    }

    #[test]
    fn parse_set_slowlog() {
        assert_eq!(
            parse_stmt("set slowlog off").unwrap(),
            Stmt::SetSlowlog {
                wall_ms: None,
                io_pages: None
            }
        );
        assert_eq!(
            parse_stmt("set slowlog threshold 10 ms 100 pages").unwrap(),
            Stmt::SetSlowlog {
                wall_ms: Some(10),
                io_pages: Some(100)
            }
        );
        assert_eq!(
            parse_stmt("set slowlog threshold 7 pages").unwrap(),
            Stmt::SetSlowlog {
                wall_ms: None,
                io_pages: Some(7)
            }
        );
        assert!(parse_stmt("set slowlog threshold").is_err());
        assert!(parse_stmt("set slowlog threshold 10 bogus").is_err());
    }

    #[test]
    fn parse_errors() {
        assert!(parse_stmt("").is_err());
        assert!(parse_stmt("frobnicate Emp1").is_err());
        assert!(parse_stmt("define type X ( a: blob )").is_err());
        assert!(parse_stmt("retrieve Emp1.name").is_err()); // missing parens
        assert!(parse_stmt("replicate Emp1.dept.name using magic").is_err());
        assert!(parse_stmt("insert Emp1 (name = )").is_err());
        assert!(parse_stmt("retrieve (Emp1.name) where Emp1.x !* 3").is_err());
    }
}
