//! Tokenizer for the EXTRA-style statement language.

use crate::LangError;

/// A lexical token.
#[derive(Clone, PartialEq, Debug)]
pub enum Token {
    /// Identifier or keyword (`define`, `Emp1`, `salary`…). Keywords are
    /// recognised case-insensitively by the parser.
    Ident(String),
    /// `$name` — an interpreter variable holding an object reference.
    Var(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Double-quoted string literal (supports `\"` and `\\`).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `!=`
    Ne,
    /// `;`
    Semi,
}

/// Tokenize one statement (or script). `--` starts a line comment.
pub fn lex(src: &str) -> Result<Vec<Token>, LangError> {
    let mut out = Vec::new();
    let b: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if b.get(i + 1) == Some(&'-') => {
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '{' => {
                out.push(Token::LBrace);
                i += 1;
            }
            '}' => {
                out.push(Token::RBrace);
                i += 1;
            }
            '[' => {
                out.push(Token::LBracket);
                i += 1;
            }
            ']' => {
                out.push(Token::RBracket);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            ':' => {
                out.push(Token::Colon);
                i += 1;
            }
            '.' => {
                out.push(Token::Dot);
                i += 1;
            }
            ';' => {
                out.push(Token::Semi);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '!' if b.get(i + 1) == Some(&'=') => {
                out.push(Token::Ne);
                i += 2;
            }
            '<' => {
                if b.get(i + 1) == Some(&'=') {
                    out.push(Token::Le);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if b.get(i + 1) == Some(&'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '$' => {
                let start = i + 1;
                let mut j = start;
                while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                if j == start {
                    return Err(LangError::Lex("empty variable name after '$'".into()));
                }
                out.push(Token::Var(b[start..j].iter().collect()));
                i = j;
            }
            '"' => {
                let mut s = String::new();
                let mut j = i + 1;
                loop {
                    match b.get(j) {
                        None => return Err(LangError::Lex("unterminated string".into())),
                        Some('"') => {
                            j += 1;
                            break;
                        }
                        Some('\\') => {
                            match b.get(j + 1) {
                                Some('"') => s.push('"'),
                                Some('\\') => s.push('\\'),
                                Some('n') => s.push('\n'),
                                other => {
                                    return Err(LangError::Lex(format!("bad escape: \\{other:?}")))
                                }
                            }
                            j += 2;
                        }
                        Some(c) => {
                            s.push(*c);
                            j += 1;
                        }
                    }
                }
                out.push(Token::Str(s));
                i = j;
            }
            c if c.is_ascii_digit()
                || (c == '-' && b.get(i + 1).is_some_and(char::is_ascii_digit)) =>
            {
                let start = i;
                let mut j = i + 1;
                let mut is_float = false;
                while j < b.len() {
                    match b[j] {
                        d if d.is_ascii_digit() => j += 1,
                        '.' if !is_float && b.get(j + 1).is_some_and(char::is_ascii_digit) => {
                            is_float = true;
                            j += 1;
                        }
                        '_' => j += 1,
                        _ => break,
                    }
                }
                let text: String = b[start..j].iter().filter(|c| **c != '_').collect();
                if is_float {
                    out.push(Token::Float(text.parse().map_err(|e| {
                        LangError::Lex(format!("bad float {text:?}: {e}"))
                    })?));
                } else {
                    out.push(Token::Int(
                        text.parse()
                            .map_err(|e| LangError::Lex(format!("bad int {text:?}: {e}")))?,
                    ));
                }
                i = j;
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                out.push(Token::Ident(b[start..j].iter().collect()));
                i = j;
            }
            other => return Err(LangError::Lex(format!("unexpected character {other:?}"))),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lex_statement() {
        let toks = lex(r#"retrieve (Emp1.name) where Emp1.salary > 100_000 -- comment"#).unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("retrieve".into()),
                Token::LParen,
                Token::Ident("Emp1".into()),
                Token::Dot,
                Token::Ident("name".into()),
                Token::RParen,
                Token::Ident("where".into()),
                Token::Ident("Emp1".into()),
                Token::Dot,
                Token::Ident("salary".into()),
                Token::Gt,
                Token::Int(100_000),
            ]
        );
    }

    #[test]
    fn lex_strings_and_vars() {
        let toks = lex(r#"insert Dept (name = "Sho\"e", org = $acme)"#).unwrap();
        assert!(toks.contains(&Token::Str("Sho\"e".into())));
        assert!(toks.contains(&Token::Var("acme".into())));
    }

    #[test]
    fn lex_numbers() {
        assert_eq!(lex("-5").unwrap(), vec![Token::Int(-5)]);
        assert_eq!(lex("2.5").unwrap(), vec![Token::Float(2.5)]);
        assert_eq!(lex("1_000").unwrap(), vec![Token::Int(1000)]);
    }

    #[test]
    fn lex_operators() {
        assert_eq!(
            lex("<= >= != < > =").unwrap(),
            vec![
                Token::Le,
                Token::Ge,
                Token::Ne,
                Token::Lt,
                Token::Gt,
                Token::Eq
            ]
        );
    }

    #[test]
    fn lex_errors() {
        assert!(lex("\"unterminated").is_err());
        assert!(lex("$").is_err());
        assert!(lex("#").is_err());
    }
}
