//! Interpreter: executes parsed statements against a [`Database`].

use crate::ast::{CmpOp, Expr, FieldDecl, Predicate, Stmt};
use crate::parser::{parse_script, parse_stmt};
use crate::LangError;
use fieldrep_catalog::{IndexKind, Propagation, Strategy};
use fieldrep_core::{Database, DbConfig};
use fieldrep_model::{FieldType, TypeDef, Value};
use fieldrep_query::{Assign, Filter, ReadQuery, UpdateQuery};
use fieldrep_storage::Oid;
use std::collections::HashMap;
use std::fmt;

/// The result of executing one statement.
#[derive(Debug)]
pub enum Output {
    /// Statement had no result (DDL).
    None,
    /// `insert` — the new object's OID.
    Inserted(Oid),
    /// `retrieve` — column headers and rows.
    Rows {
        /// Column headers (the projection paths).
        columns: Vec<String>,
        /// Result rows (`None` = broken reference path).
        rows: Vec<Vec<Option<Value>>>,
    },
    /// `replace` — number of objects updated.
    Updated(usize),
    /// `delete` — number of objects deleted.
    Deleted(usize),
    /// `sync` — number of deferred work items applied.
    Synced(usize),
    /// `show …` — formatted text.
    Text(String),
}

impl fmt::Display for Output {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Output::None => write!(f, "ok"),
            Output::Inserted(oid) => write!(f, "inserted {oid}"),
            Output::Updated(n) => write!(f, "{n} object(s) updated"),
            Output::Deleted(n) => write!(f, "{n} object(s) deleted"),
            Output::Synced(n) => write!(f, "{n} deferred propagation(s) applied"),
            Output::Text(s) => write!(f, "{s}"),
            Output::Rows { columns, rows } => {
                writeln!(f, "{}", columns.join(" | "))?;
                for row in rows {
                    let cells: Vec<String> = row
                        .iter()
                        .map(|v| match v {
                            Some(v) => format!("{v}"),
                            None => "NULL".into(),
                        })
                        .collect();
                    writeln!(f, "{}", cells.join(" | "))?;
                }
                write!(f, "({} row(s))", rows.len())
            }
        }
    }
}

/// An interpreter session: a database plus `$variable` bindings.
pub struct Interpreter {
    /// The underlying database (accessible for mixing API and language
    /// use).
    pub db: Database,
    vars: HashMap<String, Oid>,
    /// The open transaction, if any: `(id, has written)`. The engine has
    /// no undo log, so the `abort` statement is refused once the flag is
    /// set.
    txn: Option<(u64, bool)>,
}

impl Interpreter {
    /// Fresh in-memory database session.
    pub fn new(cfg: DbConfig) -> Interpreter {
        Interpreter {
            db: Database::in_memory(cfg),
            vars: HashMap::new(),
            txn: None,
        }
    }

    /// Wrap an existing database.
    pub fn with_db(db: Database) -> Interpreter {
        Interpreter {
            db,
            vars: HashMap::new(),
            txn: None,
        }
    }

    /// The id of the currently open transaction, if any.
    pub fn current_txn(&self) -> Option<u64> {
        self.txn.map(|(id, _)| id)
    }

    /// Look up a `$variable` bound by `insert … as $var`.
    pub fn var(&self, name: &str) -> Option<Oid> {
        self.vars.get(name).copied()
    }

    /// Bind a `$variable` programmatically.
    pub fn bind(&mut self, name: impl Into<String>, oid: Oid) {
        self.vars.insert(name.into(), oid);
    }

    /// Parse and execute a single statement.
    pub fn execute(&mut self, src: &str) -> Result<Output, LangError> {
        let stmt = parse_stmt(src)?;
        self.execute_stmt(&stmt)
    }

    /// Parse and execute a `;`-separated script, returning each
    /// statement's output.
    pub fn run_script(&mut self, src: &str) -> Result<Vec<Output>, LangError> {
        let stmts = parse_script(src)?;
        stmts.iter().map(|s| self.execute_stmt(s)).collect()
    }

    fn value_of(&self, e: &Expr) -> Result<Value, LangError> {
        Ok(match e {
            Expr::Int(v) => Value::Int(*v),
            Expr::Float(v) => Value::Float(*v),
            Expr::Str(s) => Value::Str(s.clone()),
            Expr::Null => Value::Ref(Oid::NULL),
            Expr::Var(name) => Value::Ref(
                *self
                    .vars
                    .get(name)
                    .ok_or_else(|| LangError::Exec(format!("unbound variable ${name}")))?,
            ),
        })
    }

    fn filter_of(&self, pred: &Predicate) -> Result<(String, Filter), LangError> {
        let (path, filter) = match pred {
            Predicate::Between { path, lo, hi } => {
                let (set, rel) = split_set(path)?;
                (
                    set,
                    Filter::Range {
                        path: rel,
                        lo: self.value_of(lo)?,
                        hi: self.value_of(hi)?,
                    },
                )
            }
            Predicate::Cmp { path, op, value } => {
                let (set, rel) = split_set(path)?;
                let f = cmp_filter(rel, *op, self.value_of(value)?)?;
                (set, f)
            }
        };
        Ok((path, filter))
    }

    /// Convert a predicate over a bare column name (the `where` clause of
    /// a `retrieve … from sys.<table>`) into a [`Filter`].
    fn sys_filter_of(&self, pred: &Predicate) -> Result<Filter, LangError> {
        let col = |path: &[String]| {
            if path.len() == 1 {
                Ok(path[0].clone())
            } else {
                Err(LangError::Exec(format!(
                    "sys predicates filter one bare column, found {:?}",
                    path.join(".")
                )))
            }
        };
        match pred {
            Predicate::Between { path, lo, hi } => Ok(Filter::Range {
                path: col(path)?,
                lo: self.value_of(lo)?,
                hi: self.value_of(hi)?,
            }),
            Predicate::Cmp { path, op, value } => {
                cmp_filter(col(path)?, *op, self.value_of(value)?)
            }
        }
    }

    /// Build the [`ReadQuery`] for a `retrieve` statement, returning the
    /// column headers alongside. Shared by `retrieve` and `explain`.
    fn build_read_query(
        &self,
        projections: &[Vec<String>],
        predicate: &Option<Predicate>,
    ) -> Result<(Vec<String>, ReadQuery), LangError> {
        let (set, first_rel) = split_set(&projections[0])?;
        let mut q = ReadQuery::on(set.clone()).project([first_rel]);
        for p in &projections[1..] {
            let (s, rel) = split_set(p)?;
            if s != set {
                return Err(LangError::Exec(format!(
                    "all projections must start from the same set ({set} vs {s})"
                )));
            }
            q = q.project([rel]);
        }
        if let Some(pred) = predicate {
            let (pset, filter) = self.filter_of(pred)?;
            if pset != set {
                return Err(LangError::Exec(format!(
                    "predicate set {pset} differs from projection set {set}"
                )));
            }
            q = q.filter(filter);
        }
        let columns = projections.iter().map(|p| p.join(".")).collect();
        Ok((columns, q))
    }

    /// Build the [`UpdateQuery`] for a `replace` statement. Shared by
    /// `replace` and `explain`.
    fn build_update_query(
        &self,
        assignments: &[(Vec<String>, Expr)],
        predicate: &Option<Predicate>,
    ) -> Result<UpdateQuery, LangError> {
        let (set, first_field) = {
            let (s, rel) = split_set(&assignments[0].0)?;
            if rel.contains('.') {
                return Err(LangError::Exec(
                    "replace assigns base fields only (Set.field = value)".into(),
                ));
            }
            (s, rel)
        };
        let mut q = UpdateQuery::on(set.clone())
            .assign(first_field, Assign::Set(self.value_of(&assignments[0].1)?));
        for (path, e) in &assignments[1..] {
            let (s, rel) = split_set(path)?;
            if s != set {
                return Err(LangError::Exec(
                    "all assignments must target the same set".into(),
                ));
            }
            q = q.assign(rel, Assign::Set(self.value_of(e)?));
        }
        if let Some(pred) = predicate {
            let (pset, filter) = self.filter_of(pred)?;
            if pset != set {
                return Err(LangError::Exec(format!(
                    "predicate set {pset} differs from assignment set {set}"
                )));
            }
            q = q.filter(filter);
        }
        Ok(q)
    }

    /// Execute one parsed statement.
    pub fn execute_stmt(&mut self, stmt: &Stmt) -> Result<Output, LangError> {
        let out = self.execute_stmt_inner(stmt)?;
        // Track whether the open transaction has written: once it has,
        // `abort` is no longer legal (there is no undo log).
        if matches!(
            stmt,
            Stmt::Insert { .. }
                | Stmt::Replace { .. }
                | Stmt::Delete { .. }
                | Stmt::Sync
                | Stmt::DefineType { .. }
                | Stmt::CreateSet { .. }
                | Stmt::Replicate { .. }
                | Stmt::DropReplicate { .. }
                | Stmt::BuildIndex { .. }
        ) {
            if let Some((_, wrote)) = &mut self.txn {
                *wrote = true;
            }
        }
        Ok(out)
    }

    fn execute_stmt_inner(&mut self, stmt: &Stmt) -> Result<Output, LangError> {
        match stmt {
            Stmt::Begin => {
                if let Some((id, _)) = self.txn {
                    return Err(LangError::Exec(format!(
                        "transaction {id} is already open (no nesting)"
                    )));
                }
                let id = self.db.txn().begin();
                self.txn = Some((id, false));
                Ok(Output::Text(format!("begin transaction {id}")))
            }
            Stmt::Commit => {
                let Some((id, _)) = self.txn.take() else {
                    return Err(LangError::Exec("no open transaction to commit".into()));
                };
                self.db.txn().commit(id);
                Ok(Output::Text(format!("commit transaction {id}")))
            }
            Stmt::Abort => {
                let Some((id, wrote)) = self.txn else {
                    return Err(LangError::Exec("no open transaction to abort".into()));
                };
                if wrote {
                    return Err(LangError::Exec(format!(
                        "transaction {id} has already applied writes and cannot abort \
                         (no undo log); commit instead"
                    )));
                }
                self.txn = None;
                self.db.txn().abort(id);
                Ok(Output::Text(format!("abort transaction {id}")))
            }
            Stmt::DefineType { name, fields } => {
                let fields: Vec<(String, FieldType)> = fields
                    .iter()
                    .map(|f| match f {
                        FieldDecl::Int(n) => (n.clone(), FieldType::Int),
                        FieldDecl::Float(n) => (n.clone(), FieldType::Float),
                        FieldDecl::Str(n) => (n.clone(), FieldType::Str),
                        FieldDecl::Ref(n, t) => (n.clone(), FieldType::Ref(t.clone())),
                        FieldDecl::Pad(n, sz) => (n.clone(), FieldType::Pad(*sz)),
                    })
                    .collect();
                self.db.define_type(TypeDef::new(name.clone(), fields))?;
                Ok(Output::None)
            }
            Stmt::CreateSet { name, type_name } => {
                self.db.create_set(name, type_name)?;
                Ok(Output::None)
            }
            Stmt::Replicate {
                path,
                separate,
                deferred,
                collapsed,
            } => {
                let strategy = if *separate {
                    Strategy::Separate
                } else {
                    Strategy::InPlace
                };
                let propagation = if *deferred {
                    Propagation::Deferred
                } else {
                    Propagation::Eager
                };
                if *collapsed {
                    if *separate {
                        return Err(LangError::Exec(
                            "collapsed inverted paths require the in-place strategy".into(),
                        ));
                    }
                    self.db.replicate_collapsed(&path.join("."), propagation)?;
                } else {
                    self.db
                        .replicate_with(&path.join("."), strategy, propagation)?;
                }
                Ok(Output::None)
            }
            Stmt::DropReplicate { path } => {
                let dotted = path.join(".");
                let pid = self
                    .db
                    .catalog()
                    .paths()
                    .find(|p| p.expr.to_string() == dotted)
                    .map(|p| p.id)
                    .ok_or_else(|| LangError::Exec(format!("no replication path {dotted:?}")))?;
                self.db.drop_replication(pid)?;
                Ok(Output::None)
            }
            Stmt::BuildIndex { path, clustered } => {
                let kind = if *clustered {
                    IndexKind::Clustered
                } else {
                    IndexKind::Unclustered
                };
                self.db.create_index(&path.join("."), kind)?;
                Ok(Output::None)
            }
            Stmt::Insert { set, fields, bind } => {
                let set_id = self.db.catalog().set_id(set)?;
                let def = self
                    .db
                    .catalog()
                    .type_def(self.db.catalog().set(set_id).elem_type)
                    .clone();
                let mut values = Vec::with_capacity(def.fields.len());
                for fd in &def.fields {
                    let provided = fields.iter().find(|(n, _)| *n == fd.name);
                    let v = match provided {
                        Some((_, e)) => self.value_of(e)?,
                        None => match &fd.ftype {
                            FieldType::Int => Value::Int(0),
                            FieldType::Float => Value::Float(0.0),
                            FieldType::Str => Value::Str(String::new()),
                            FieldType::Ref(_) => Value::Ref(Oid::NULL),
                            FieldType::Pad(_) => Value::Unit,
                        },
                    };
                    values.push(v);
                }
                // Reject unknown field names.
                for (n, _) in fields {
                    if def.field_index(n).is_none() {
                        return Err(LangError::Exec(format!(
                            "type {} has no field {n:?}",
                            def.name
                        )));
                    }
                }
                let oid = self.db.insert(set, values)?;
                if let Some(b) = bind {
                    self.vars.insert(b.clone(), oid);
                }
                Ok(Output::Inserted(oid))
            }
            Stmt::Retrieve {
                projections,
                predicate,
            } => {
                let (columns, q) = self.build_read_query(projections, predicate)?;
                let res = q.run(&mut self.db)?;
                if slowlog_armed() {
                    self.db.observe_statement(
                        &stmt_text(stmt),
                        &res.plan.to_string(),
                        &res.profile,
                        res.rows.len() as u64,
                    );
                }
                Ok(Output::Rows {
                    columns,
                    rows: res.rows,
                })
            }
            Stmt::RetrieveSys {
                table,
                columns,
                predicate,
            } => {
                let mut q =
                    fieldrep_query::SysQuery::on(table.clone()).project(columns.iter().cloned());
                if let Some(pred) = predicate {
                    q = q.filter(self.sys_filter_of(pred)?);
                }
                let res = q.run(&mut self.db)?;
                if slowlog_armed() {
                    self.db.observe_statement(
                        &stmt_text(stmt),
                        &q.plan()?.render(),
                        &res.profile,
                        res.rows.len() as u64,
                    );
                }
                Ok(Output::Rows {
                    columns: res.columns,
                    rows: res.rows,
                })
            }
            Stmt::Replace {
                assignments,
                predicate,
            } => {
                let q = self.build_update_query(assignments, predicate)?;
                let res = q.run(&mut self.db)?;
                if slowlog_armed() {
                    self.db.observe_statement(
                        &stmt_text(stmt),
                        &res.plan.to_string(),
                        &res.profile,
                        res.updated as u64,
                    );
                }
                Ok(Output::Updated(res.updated))
            }
            Stmt::SetSlowlog { wall_ms, io_pages } => {
                if wall_ms.is_none() && io_pages.is_none() {
                    self.db.set_slowlog_off();
                    Ok(Output::Text("slow-query log: off".into()))
                } else {
                    self.db.set_slowlog_thresholds(*wall_ms, *io_pages);
                    let mut arms = Vec::new();
                    if let Some(ms) = wall_ms {
                        arms.push(format!("wall >= {ms} ms"));
                    }
                    if let Some(p) = io_pages {
                        arms.push(format!("io >= {p} pages"));
                    }
                    Ok(Output::Text(format!(
                        "slow-query log: {}",
                        arms.join(" or ")
                    )))
                }
            }
            Stmt::Explain { analyze, stmt } => {
                if let Stmt::RetrieveSys {
                    table,
                    columns,
                    predicate,
                } = &**stmt
                {
                    let mut q = fieldrep_query::SysQuery::on(table.clone())
                        .project(columns.iter().cloned());
                    if let Some(pred) = predicate {
                        q = q.filter(self.sys_filter_of(pred)?);
                    }
                    let text = if *analyze {
                        q.explain_analyze_text(&mut self.db)?.0
                    } else {
                        q.explain_text()?
                    };
                    return Ok(Output::Text(text.trim_end().to_string()));
                }
                let report = match &**stmt {
                    Stmt::Retrieve {
                        projections,
                        predicate,
                    } => {
                        let (_, q) = self.build_read_query(projections, predicate)?;
                        if *analyze {
                            let (e, res) = fieldrep_query::explain_analyze_read(&mut self.db, &q)?;
                            if let Some(f) = res.output_file {
                                self.db.sm().drop_file(f).ok();
                            }
                            e
                        } else {
                            fieldrep_query::explain_read(&mut self.db, &q)?
                        }
                    }
                    Stmt::Replace {
                        assignments,
                        predicate,
                    } => {
                        let q = self.build_update_query(assignments, predicate)?;
                        if *analyze {
                            let (e, _) = fieldrep_query::explain_analyze_update(&mut self.db, &q)?;
                            e
                        } else {
                            fieldrep_query::explain_update(&mut self.db, &q)?
                        }
                    }
                    other => {
                        return Err(LangError::Exec(format!(
                            "explain supports retrieve and replace only, got {other:?}"
                        )))
                    }
                };
                Ok(Output::Text(
                    fieldrep_query::render(&report).trim_end().to_string(),
                ))
            }
            Stmt::Delete { set, predicate } => {
                // Evaluate the predicate per object (index use is a
                // possible refinement; deletes are rare in the paper's
                // workloads).
                let oids = self.db.scan_set(set)?;
                let mut victims = Vec::new();
                match predicate {
                    None => victims = oids,
                    Some(pred) => {
                        let (pset, filter) = self.filter_of(pred)?;
                        if &pset != set {
                            return Err(LangError::Exec(format!(
                                "predicate set {pset} differs from target set {set}"
                            )));
                        }
                        for oid in oids {
                            let vals = self.db.deref_path(oid, filter.path())?;
                            if let Some(v) = vals.and_then(|v| v.into_iter().next()) {
                                if filter.matches(&v) {
                                    victims.push(oid);
                                }
                            }
                        }
                    }
                }
                let n = victims.len();
                for oid in victims {
                    self.db.delete(oid)?;
                }
                Ok(Output::Deleted(n))
            }
            Stmt::Advise { path, p_update } => {
                let dotted = path.join(".");
                let (stats, rec) = self.db.advise_path(
                    &dotted,
                    fieldrep_costmodel::IndexSetting::Unclustered,
                    0.001,
                    0.001,
                    *p_update,
                )?;
                Ok(Output::Text(format!(
                    "{dotted}: |R| = {}, referenced terminals = {}, f = {:.1}, \
                     r = {:.0}B, s = {:.0}B, k = {:.0}B\n\
                     at P_update = {p_update}: use {:?} (saves {:.1}% vs no replication)",
                    stats.source_count,
                    stats.terminal_count,
                    stats.sharing,
                    stats.source_bytes,
                    stats.terminal_bytes,
                    stats.replicated_bytes,
                    rec.strategy,
                    rec.saving_pct,
                )))
            }
            Stmt::Sync => Ok(Output::Synced(self.db.sync_all_pending()?)),
            Stmt::Show { what } => self.show(what),
            Stmt::ShowStats { path } => self.show_stats(path.as_deref()),
        }
    }

    fn show_stats(&mut self, path: Option<&[String]>) -> Result<Output, LangError> {
        use std::fmt::Write;
        let filter = path.map(|p| p.join("."));
        let mut out = String::new();
        let _ = writeln!(out, "observed workload (per replication path):");
        let _ = writeln!(
            out,
            "  {:<28} {:>7} {:>8} {:>7} {:>7} {:>9} {:>9}",
            "path", "reads", "updates", "P_up", "fanout", "r_pages", "u_pages"
        );
        let mut shown = 0usize;
        for (expr, w) in self.db.workload().all() {
            if filter.as_deref().is_some_and(|f| f != expr) {
                continue;
            }
            shown += 1;
            let _ = writeln!(
                out,
                "  {:<28} {:>7} {:>8} {:>7.3} {:>7.1} {:>9.1} {:>9.1}",
                expr,
                w.reads,
                w.updates,
                w.p_up(),
                w.fanout_ewma,
                w.read_pages_ewma,
                w.update_pages_ewma
            );
        }
        if shown == 0 {
            if let Some(f) = &filter {
                return Err(LangError::Exec(format!(
                    "no observed statistics for path {f:?}"
                )));
            }
            let _ = writeln!(out, "  (none recorded yet)");
        }
        Ok(Output::Text(out.trim_end().to_string()))
    }

    fn show(&mut self, what: &str) -> Result<Output, LangError> {
        use std::fmt::Write;
        let mut out = String::new();
        match what {
            "catalog" => {
                writeln!(out, "sets:").unwrap();
                for s in self.db.catalog().sets() {
                    let ty = self.db.catalog().type_def(s.elem_type).name.clone();
                    writeln!(out, "  {}: {{own ref {}}}", s.name, ty).unwrap();
                }
                writeln!(out, "replication paths:").unwrap();
                let lines: Vec<String> = self
                    .db
                    .catalog()
                    .paths()
                    .map(|p| {
                        let seq: Vec<String> = p.links.iter().map(|l| l.0.to_string()).collect();
                        format!(
                            "  replicate {:<28} {:?}/{:?}  link sequence = ({})",
                            p.expr.to_string(),
                            p.strategy,
                            p.propagation,
                            seq.join(",")
                        )
                    })
                    .collect();
                for l in lines {
                    writeln!(out, "{l}").unwrap();
                }
                writeln!(out, "indexes:").unwrap();
                let idx: Vec<String> = self
                    .db
                    .catalog()
                    .sets()
                    .iter()
                    .flat_map(|s| {
                        self.db
                            .catalog()
                            .indexes_on(s.id)
                            .map(|i| format!("  {:?} on {} ({:?})", i.kind, s.name, i.target))
                            .collect::<Vec<_>>()
                    })
                    .collect();
                for l in idx {
                    writeln!(out, "{l}").unwrap();
                }
            }
            "pending" => {
                let lines: Vec<String> = self
                    .db
                    .catalog()
                    .paths()
                    .map(|p| (p.id, p.expr.to_string()))
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|(id, expr)| format!("  {expr}: {} pending", self.db.pending_count(id)))
                    .collect();
                writeln!(out, "deferred propagation queues:").unwrap();
                for l in lines {
                    writeln!(out, "{l}").unwrap();
                }
            }
            "io" => {
                writeln!(out, "{}", self.db.io_profile()).unwrap();
            }
            "slowlog" => {
                let (wall, pages) = fieldrep_obs::slowlog::thresholds();
                let arm = |v: Option<u64>, unit: &str| {
                    v.map_or("off".to_string(), |n| format!(">= {n} {unit}"))
                };
                writeln!(
                    out,
                    "slow-query log: wall {} | io {} | recorded {}",
                    arm(wall, "ms"),
                    arm(pages, "pages"),
                    fieldrep_obs::slowlog::recorded_total()
                )
                .unwrap();
                for line in fieldrep_obs::slowlog::dump_jsonl() {
                    writeln!(out, "{line}").unwrap();
                }
            }
            other => {
                return Err(LangError::Exec(format!(
                    "unknown `show` target {other:?} (catalog | pending | io | stats | slowlog)"
                )))
            }
        }
        Ok(Output::Text(out.trim_end().to_string()))
    }
}

/// Whether the process-wide slow-query log has any trigger armed. The
/// interpreter probes this before rendering statement/plan text, so the
/// disabled path costs two relaxed atomic loads per statement.
fn slowlog_armed() -> bool {
    fieldrep_obs::slowlog::thresholds() != (None, None)
}

fn expr_text(e: &Expr) -> String {
    match e {
        Expr::Int(v) => v.to_string(),
        Expr::Float(v) => v.to_string(),
        Expr::Str(s) => format!("{s:?}"),
        Expr::Null => "null".into(),
        Expr::Var(v) => format!("${v}"),
    }
}

fn pred_text(p: &Predicate) -> String {
    match p {
        Predicate::Cmp { path, op, value } => {
            let sym = match op {
                CmpOp::Eq => "=",
                CmpOp::Lt => "<",
                CmpOp::Gt => ">",
                CmpOp::Le => "<=",
                CmpOp::Ge => ">=",
            };
            format!(" where {} {} {}", path.join("."), sym, expr_text(value))
        }
        Predicate::Between { path, lo, hi } => format!(
            " where {} between {} and {}",
            path.join("."),
            expr_text(lo),
            expr_text(hi)
        ),
    }
}

/// Canonical statement text for the slow-query log: the parsed statement
/// re-rendered (whitespace-normalised but otherwise faithful). Only the
/// observed statement kinds get a full rendering.
fn stmt_text(stmt: &Stmt) -> String {
    let where_of = |p: &Option<Predicate>| p.as_ref().map(pred_text).unwrap_or_default();
    match stmt {
        Stmt::Retrieve {
            projections,
            predicate,
        } => format!(
            "retrieve ({}){}",
            projections
                .iter()
                .map(|p| p.join("."))
                .collect::<Vec<_>>()
                .join(", "),
            where_of(predicate)
        ),
        Stmt::RetrieveSys {
            table,
            columns,
            predicate,
        } => format!(
            "retrieve ({}) from {}{}",
            if columns.is_empty() {
                "all".to_string()
            } else {
                columns.join(", ")
            },
            table,
            where_of(predicate)
        ),
        Stmt::Replace {
            assignments,
            predicate,
        } => format!(
            "replace ({}){}",
            assignments
                .iter()
                .map(|(p, e)| format!("{} = {}", p.join("."), expr_text(e)))
                .collect::<Vec<_>>()
                .join(", "),
            where_of(predicate)
        ),
        other => format!("{other:?}"),
    }
}

/// Map `path OP value` onto the inclusive [`Filter`] forms the query
/// layer understands (equality, or an open-ended integer range).
fn cmp_filter(rel: String, op: CmpOp, v: Value) -> Result<Filter, LangError> {
    let f = match (op, &v) {
        (CmpOp::Eq, _) => Filter::Eq {
            path: rel,
            value: v,
        },
        (CmpOp::Gt, Value::Int(x)) => Filter::Range {
            path: rel,
            lo: Value::Int(x + 1),
            hi: Value::Int(i64::MAX),
        },
        (CmpOp::Ge, Value::Int(x)) => Filter::Range {
            path: rel,
            lo: Value::Int(*x),
            hi: Value::Int(i64::MAX),
        },
        (CmpOp::Lt, Value::Int(x)) => Filter::Range {
            path: rel,
            lo: Value::Int(i64::MIN),
            hi: Value::Int(x - 1),
        },
        (CmpOp::Le, Value::Int(x)) => Filter::Range {
            path: rel,
            lo: Value::Int(i64::MIN),
            hi: Value::Int(*x),
        },
        (op, v) => {
            return Err(LangError::Exec(format!(
                "operator {op:?} is only supported on integer fields (got {v})"
            )))
        }
    };
    Ok(f)
}

/// Split `[set, rest…]` into `(set, "rest.joined")`.
fn split_set(path: &[String]) -> Result<(String, String), LangError> {
    if path.len() < 2 {
        return Err(LangError::Exec(format!(
            "path {:?} must be set-qualified (Set.field…)",
            path.join(".")
        )));
    }
    Ok((path[0].clone(), path[1..].join(".")))
}
