//! # fieldrep-lang
//!
//! A textual front-end in the EXTRA style the paper uses for every
//! example (§2–§3): the schema of Figure 1, the `replicate` statements,
//! `build btree on`, and the `retrieve`/`replace` query forms all parse
//! and execute verbatim (modulo whitespace):
//!
//! ```
//! use fieldrep_lang::Interpreter;
//! use fieldrep_core::DbConfig;
//!
//! let mut it = Interpreter::new(DbConfig::default());
//! it.run_script(r#"
//!     define type DEPT ( name: char[], budget: int );
//!     define type EMP  ( name: char[], salary: int, dept: ref DEPT );
//!     create Dept: {own ref DEPT};
//!     create Emp1: {own ref EMP};
//!     insert Dept (name = "Shoe", budget = 100000) as $shoe;
//!     insert Emp1 (name = "Alice", salary = 120000, dept = $shoe);
//!     replicate Emp1.dept.name;
//! "#).unwrap();
//!
//! let out = it.execute(
//!     "retrieve (Emp1.name, Emp1.salary, Emp1.dept.name) \
//!      where Emp1.salary > 100000").unwrap();
//! println!("{out}");
//! ```
//!
//! Extensions beyond the paper's printed syntax (documented in DESIGN.md):
//! `using separate` / `deferred` / `collapsed` on `replicate`,
//! `drop replicate`, `insert … as $var` object handles, `delete from`,
//! `advise <path> at <p>` (live statistics + §6 model recommendation),
//! `sync`, and `show catalog|pending|io` (which prints the link sequences
//! of §4.1.3).

pub mod ast;
pub mod interp;
pub mod lexer;
pub mod parser;

pub use ast::{CmpOp, Expr, FieldDecl, Predicate, Stmt};
pub use interp::{Interpreter, Output};
pub use parser::{parse_script, parse_stmt};

use std::fmt;

/// Errors from the language layer.
#[derive(Debug)]
pub enum LangError {
    /// Tokenizer failure.
    Lex(String),
    /// Parser failure.
    Parse(String),
    /// Execution failure raised by the interpreter itself.
    Exec(String),
    /// Failure from the underlying engine.
    Db(fieldrep_core::DbError),
    /// Failure from the query layer.
    Query(fieldrep_query::QueryError),
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Lex(m) => write!(f, "lex error: {m}"),
            LangError::Parse(m) => write!(f, "parse error: {m}"),
            LangError::Exec(m) => write!(f, "error: {m}"),
            LangError::Db(e) => write!(f, "engine error: {e}"),
            LangError::Query(e) => write!(f, "query error: {e}"),
        }
    }
}

impl std::error::Error for LangError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LangError::Db(e) => Some(e),
            LangError::Query(e) => Some(e),
            _ => None,
        }
    }
}

impl From<fieldrep_core::DbError> for LangError {
    fn from(e: fieldrep_core::DbError) -> Self {
        LangError::Db(e)
    }
}

impl From<fieldrep_query::QueryError> for LangError {
    fn from(e: fieldrep_query::QueryError) -> Self {
        LangError::Query(e)
    }
}

impl From<fieldrep_catalog::CatalogError> for LangError {
    fn from(e: fieldrep_catalog::CatalogError) -> Self {
        LangError::Db(fieldrep_core::DbError::Catalog(e))
    }
}
