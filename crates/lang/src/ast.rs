//! Abstract syntax of the EXTRA-style statement language.

/// A literal or variable expression appearing as a value.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// The null reference.
    Null,
    /// `$var` — an object handle bound by `insert … as $var`.
    Var(String),
}

/// Comparison operators in `where` clauses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
}

/// A `where` predicate over one dotted path.
#[derive(Clone, PartialEq, Debug)]
pub enum Predicate {
    /// `path OP literal`.
    Cmp {
        /// Dotted path including the set name (`Emp1.salary`).
        path: Vec<String>,
        /// The operator.
        op: CmpOp,
        /// The literal.
        value: Expr,
    },
    /// `path between lo and hi` (inclusive).
    Between {
        /// Dotted path including the set name.
        path: Vec<String>,
        /// Lower bound.
        lo: Expr,
        /// Upper bound.
        hi: Expr,
    },
}

/// One field declaration inside `define type`.
#[derive(Clone, PartialEq, Debug)]
pub enum FieldDecl {
    /// `name: int`
    Int(String),
    /// `name: float`
    Float(String),
    /// `name: char[]`
    Str(String),
    /// `name: ref TYPE`
    Ref(String, String),
    /// `name: pad[N]` (benchmark sizing helper)
    Pad(String, u16),
}

/// A parsed statement.
#[derive(Clone, PartialEq, Debug)]
pub enum Stmt {
    /// `define type EMP ( name: char[], … )`
    DefineType {
        /// Type name.
        name: String,
        /// Field declarations.
        fields: Vec<FieldDecl>,
    },
    /// `create Emp1: {own ref EMP}`
    CreateSet {
        /// Set name.
        name: String,
        /// Element type name.
        type_name: String,
    },
    /// `replicate Emp1.dept.name [using separate] [deferred]`
    Replicate {
        /// Dotted path including the set name.
        path: Vec<String>,
        /// True for `using separate` (default is in-place, as in the
        /// paper's examples).
        separate: bool,
        /// True for `deferred` propagation.
        deferred: bool,
        /// True for `collapsed` (§4.3.3) inverted paths.
        collapsed: bool,
    },
    /// `drop replicate Emp1.dept.name`
    DropReplicate {
        /// Dotted path including the set name.
        path: Vec<String>,
    },
    /// `build [clustered] btree on Emp1.salary`
    BuildIndex {
        /// Dotted path including the set name.
        path: Vec<String>,
        /// True for `clustered`.
        clustered: bool,
    },
    /// `insert Emp1 (name = "Alice", dept = $shoe) [as $alice]`
    Insert {
        /// Target set.
        set: String,
        /// `(field, value)` pairs; unmentioned pad fields default.
        fields: Vec<(String, Expr)>,
        /// Variable to bind the new OID to.
        bind: Option<String>,
    },
    /// `retrieve (Emp1.name, Emp1.dept.name) [where …]`
    Retrieve {
        /// Projections: dotted paths including the set name (all must
        /// start from the same set).
        projections: Vec<Vec<String>>,
        /// Optional predicate.
        predicate: Option<Predicate>,
    },
    /// `retrieve (name, value) from sys.metrics [where …]` — a virtual
    /// scan over one introspection table. `retrieve (all) from sys.…`
    /// projects every column.
    RetrieveSys {
        /// Full table name (`"sys.metrics"`, …).
        table: String,
        /// Projected column names; empty = every column.
        columns: Vec<String>,
        /// Optional predicate over one column (bare column name).
        predicate: Option<Predicate>,
    },
    /// `replace (Dept.budget = 42) where Dept.name = "Shoe"`
    Replace {
        /// Assignments: `(set-qualified field path, value)`.
        assignments: Vec<(Vec<String>, Expr)>,
        /// Optional predicate.
        predicate: Option<Predicate>,
    },
    /// `delete from Emp1 where …`
    Delete {
        /// Target set.
        set: String,
        /// Optional predicate (absent = delete all).
        predicate: Option<Predicate>,
    },
    /// `advise Emp1.dept.name [at 0.3]` — measure the path and recommend
    /// a strategy using the §6 cost model (extension; see
    /// `Database::advise_path`).
    Advise {
        /// Dotted path including the set name.
        path: Vec<String>,
        /// Update probability of the workload mix (default 0.1).
        p_update: f64,
    },
    /// `explain [analyze] <retrieve|replace …>` — print the physical
    /// plan with §6 cost-model page-I/O predictions per operator;
    /// with `analyze`, execute and show measured I/O and drift too.
    Explain {
        /// True for `explain analyze` (executes the statement).
        analyze: bool,
        /// The explained statement (`Retrieve` or `Replace`).
        stmt: Box<Stmt>,
    },
    /// `set slowlog off` / `set slowlog threshold 10 ms 100 pages` —
    /// configure the process-wide slow-query log. Both limits `None`
    /// turns the log off.
    SetSlowlog {
        /// Wall-clock threshold in milliseconds.
        wall_ms: Option<u64>,
        /// Page-touch threshold.
        io_pages: Option<u64>,
    },
    /// `begin` — open a transaction (statistics window + abort right).
    Begin,
    /// `commit` — close the current transaction.
    Commit,
    /// `abort` — abandon the current transaction. The engine has no undo
    /// log (the paper's no-recovery scope), so aborting is only legal
    /// before the transaction's first write.
    Abort,
    /// `sync` — apply all deferred propagation.
    Sync,
    /// `show catalog | show pending | show io`
    Show {
        /// What to show.
        what: String,
    },
    /// `show stats [path Emp1.dept.name]` — observed per-path workload
    /// statistics (reads, update ripples, `P_up`, fan-out and page EWMAs).
    ShowStats {
        /// Restrict to one dotted path (including the set name).
        path: Option<Vec<String>>,
    },
}
