//! Lint self-tests: each rule fires exactly once on the violation
//! fixture, suppressions behave, the ratchet only moves down, and the
//! real workspace is clean against its committed budget.

use fieldrep_lint::{budget, check_budget, run_checks, Budget, Report};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn rule_diags<'a>(r: &'a Report, rule: &str) -> Vec<(&'a str, u32)> {
    r.diags
        .iter()
        .filter(|d| d.rule == rule)
        .map(|d| (d.file.as_str(), d.line))
        .collect()
}

#[test]
fn each_rule_fires_exactly_once_on_the_violation_fixture() {
    let r = run_checks(&fixture("violations")).unwrap();
    assert_eq!(
        rule_diags(&r, "L1"),
        [("crates/app/src/lib.rs", 6), ("crates/app/src/lib.rs", 68)],
        "L1: the one raw `use std::fs` and the one raw WAL store call in \
         library code (bin and test code exempt)"
    );
    assert_eq!(
        rule_diags(&r, "L2"),
        [
            ("crates/app/src/lib.rs", 17),
            ("crates/app/src/lib.rs", 51),
            ("crates/obs/src/names.rs", 8)
        ],
        "L2: the one unregistered name literal, the one unregistered sys.* \
         table literal, plus the one dead registry const (the used consts, \
         the registered sys.* literal, non-name-shaped sys strings, the \
         drift gauge, and the resolved conformance operator are fine)"
    );
    assert!(
        r.diags
            .iter()
            .any(|d| d.msg.contains("sys virtual-table name") && d.msg.contains("sys.bogus")),
        "{:?}",
        r.diags
    );
    assert!(
        r.diags
            .iter()
            .any(|d| d.msg.contains("dead name") && d.msg.contains("APP_DEAD")),
        "{:?}",
        r.diags
    );
    assert_eq!(
        rule_diags(&r, "L4"),
        [
            ("crates/app/src/lib.rs", 25),
            ("crates/app/src/lib.rs", 61),
            ("crates/core/src/txn.rs", 1)
        ],
        "L4: the one fetch under a live write guard (post-drop fetch and the \
         ordered batch helper are fine), the one raw OID-lock acquisition \
         outside the blessed file, and the blessed file's exactly-one check \
         (two call sites there)"
    );
    assert!(
        r.diags
            .iter()
            .any(|d| d.msg.contains("found 2") && d.file == "crates/core/src/txn.rs"),
        "{:?}",
        r.diags
    );
    assert!(rule_diags(&r, "suppression").is_empty());
    assert_eq!(r.diags.len(), 8, "no other diagnostics: {:?}", r.diags);
    // L3 is a count, not a diagnostic: two library unwraps, none from the
    // bin or the test module.
    assert_eq!(r.panic_counts.get("crates/app"), Some(&2));
    assert_eq!(r.suppressions, 0);
}

#[test]
fn diagnostics_render_rustc_style() {
    let r = run_checks(&fixture("violations")).unwrap();
    let rendered = r.diags[0].to_string();
    assert!(
        rendered.starts_with("crates/app/src/lib.rs:6: error[L1]:"),
        "{rendered}"
    );
}

#[test]
fn reasoned_suppressions_silence_and_reasonless_ones_error() {
    let r = run_checks(&fixture("suppressed")).unwrap();
    // The reasoned marker on line 5 silences the `use std::fs` on line 6.
    assert!(
        !r.diags.iter().any(|d| d.rule == "L1" && d.line == 6),
        "{:?}",
        r.diags
    );
    // The reasonless marker is itself an error…
    assert_eq!(
        rule_diags(&r, "suppression"),
        [("crates/app/src/lib.rs", 12)]
    );
    // …and does not silence its finding.
    assert_eq!(rule_diags(&r, "L1"), [("crates/app/src/lib.rs", 14)]);
    // Both markers count toward the suppression ratchet.
    assert_eq!(r.suppressions, 2);
}

#[test]
fn conformance_operators_must_resolve_in_the_registry() {
    let r = run_checks(&fixture("conformance")).unwrap();
    let l2 = rule_diags(&r, "L2");
    assert_eq!(l2.len(), 1, "{:?}", r.diags);
    assert_eq!(l2[0].0, "crates/costmodel/src/conformance.rs");
    assert!(r.diags[0].msg.contains("costmodel.drift.sync"));
}

#[test]
fn lockflow_rules_fire_exactly_once_on_the_lockflow_fixture() {
    let r = run_checks(&fixture("lockflow")).unwrap();
    // L5 through the call graph: `bad_order` holds OidSeqlock across a
    // call whose callee blocking-acquires the lower-ranked index guard.
    assert_eq!(rule_diags(&r, "L5"), [("crates/core/src/engine.rs", 22)]);
    assert!(
        r.diags.iter().any(|d| d.rule == "L5"
            && d.msg.contains("`reindex`")
            && d.msg.contains("TxnIndexGuard")
            && d.msg.contains("OidSeqlock")),
        "{:?}",
        r.diags
    );
    // L6: fsync inside the WalInner append section (the PR 9 shape);
    // the log write under the same lock and the post-drop fsync are
    // fine, as is the try-probe of a lower rank in `evict_probe`.
    assert_eq!(
        rule_diags(&r, "L6"),
        [("crates/storage/src/wal/mod.rs", 15)]
    );
    assert!(
        r.diags
            .iter()
            .any(|d| d.rule == "L6" && d.msg.contains("fsync") && d.msg.contains("WalAppend")),
        "{:?}",
        r.diags
    );
    // L7: the one unguarded pub &self entry point; the covered,
    // suppressed, private, and &mut self shapes stay silent.
    assert_eq!(rule_diags(&r, "L7"), [("crates/core/src/database.rs", 13)]);
    assert!(
        r.diags.iter().any(|d| d.rule == "L7"
            && d.msg.contains("`Database::touch`")
            && d.msg.contains("rec_insert")),
        "{:?}",
        r.diags
    );
    assert_eq!(r.diags.len(), 3, "no other diagnostics: {:?}", r.diags);
    // The reasoned allow on `touch_inherited` suppresses (not silences)
    // its finding, and counts toward the ratchet.
    assert_eq!(
        r.suppressed
            .iter()
            .map(|d| (d.rule, d.file.as_str(), d.line))
            .collect::<Vec<_>>(),
        [("L7", "crates/core/src/database.rs", 24)]
    );
    assert_eq!(r.suppressions, 1);
}

#[test]
fn jsonl_output_is_structurally_valid() {
    let r = run_checks(&fixture("lockflow")).unwrap();
    let out = fieldrep_lint::json::render_jsonl(&r, &[]);
    let lines: Vec<&str> = out.lines().collect();
    // One object per diagnostic, suppressed findings included.
    assert_eq!(lines.len(), r.diags.len() + r.suppressed.len());
    for line in &lines {
        let fields = parse_json_object(line).unwrap_or_else(|e| panic!("{e}: {line}"));
        assert_eq!(
            fields.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>(),
            ["rule", "file", "line", "msg", "suppressed"],
            "{line}"
        );
    }
    // Messages quote identifiers with backticks and cite file:line
    // witnesses — none of that may break the JSON framing.
    assert!(lines.iter().any(|l| l.contains("\"rule\":\"L5\"")));
    assert!(out.ends_with('\n'));
    let suppressed_line = lines
        .iter()
        .find(|l| l.contains("\"suppressed\":true"))
        .expect("suppressed L7 finding rendered");
    assert!(suppressed_line.contains("\"rule\":\"L7\""));
}

/// Minimal JSON object reader for the self-test: returns the key/value
/// pairs in order, validating string escaping and framing.
fn parse_json_object(line: &str) -> Result<Vec<(String, String)>, String> {
    let mut c = line.chars().peekable();
    let mut fields = Vec::new();
    if c.next() != Some('{') {
        return Err("missing '{'".into());
    }
    loop {
        let key = parse_json_string(&mut c)?;
        if c.next() != Some(':') {
            return Err(format!("missing ':' after {key:?}"));
        }
        let value = match c.peek() {
            Some('"') => parse_json_string(&mut c)?,
            _ => {
                let mut v = String::new();
                while let Some(&ch) = c.peek() {
                    if ch == ',' || ch == '}' {
                        break;
                    }
                    v.push(ch);
                    c.next();
                }
                if v.parse::<u64>().is_err() && v != "true" && v != "false" {
                    return Err(format!("bad literal {v:?}"));
                }
                v
            }
        };
        fields.push((key, value));
        match c.next() {
            Some(',') => {}
            Some('}') => break,
            other => return Err(format!("expected ',' or '}}', got {other:?}")),
        }
    }
    if c.next().is_some() {
        return Err("trailing content after '}'".into());
    }
    Ok(fields)
}

fn parse_json_string(c: &mut std::iter::Peekable<std::str::Chars>) -> Result<String, String> {
    if c.next() != Some('"') {
        return Err("missing '\"'".into());
    }
    let mut s = String::new();
    loop {
        match c.next() {
            Some('"') => return Ok(s),
            Some('\\') => match c.next() {
                Some(e @ ('"' | '\\' | 'n' | 'r' | 't')) => s.push(e),
                Some('u') => {
                    for _ in 0..4 {
                        c.next()
                            .filter(char::is_ascii_hexdigit)
                            .ok_or("bad \\u escape")?;
                    }
                }
                other => return Err(format!("bad escape {other:?}")),
            },
            Some(ch) if (ch as u32) >= 0x20 => s.push(ch),
            other => return Err(format!("unescaped control char {other:?}")),
        }
    }
}

#[test]
fn the_ratchet_only_moves_down() {
    let r = run_checks(&fixture("violations")).unwrap();
    // Exact budget: no budget diagnostics.
    let mut exact = Budget::default();
    for (k, v) in &r.panic_counts {
        exact.panic_budget.insert(k.clone(), *v);
    }
    assert!(check_budget(&r, &exact).is_empty());

    // Exceeding the budget is a regression.
    let mut tight = Budget::default();
    for (k, v) in &r.panic_counts {
        tight.panic_budget.insert(k.clone(), v.saturating_sub(1));
    }
    let diags = check_budget(&r, &tight);
    assert!(
        diags.iter().any(|d| d.msg.contains("budget allows 1")),
        "{diags:?}"
    );

    // A stale (too-generous) budget must be ratcheted down.
    let mut loose = Budget::default();
    for (k, v) in &r.panic_counts {
        loose.panic_budget.insert(k.clone(), v + 5);
    }
    let diags = check_budget(&r, &loose);
    assert!(
        diags.iter().any(|d| d.msg.contains("ratchet down")),
        "{diags:?}"
    );

    // Suppression counts ratchet the same way in both directions.
    let r2 = Report {
        suppressions: 3,
        ..Default::default()
    };
    let mut b = Budget {
        suppressions: 3,
        ..Default::default()
    };
    assert!(check_budget(&r2, &b).is_empty());
    b.suppressions = 2;
    assert_eq!(check_budget(&r2, &b).len(), 1);
    b.suppressions = 4;
    assert_eq!(check_budget(&r2, &b).len(), 1);
}

#[test]
fn the_workspace_is_clean_against_its_committed_budget() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let r = run_checks(&root).unwrap();
    assert!(
        r.diags.is_empty(),
        "workspace lint violations: {:?}",
        r.diags
    );
    let text = std::fs::read_to_string(root.join("lint_budget.toml")).unwrap();
    let b = budget::parse(&text).unwrap();
    let diags = check_budget(&r, &b);
    assert!(diags.is_empty(), "budget drift: {diags:?}");
}
