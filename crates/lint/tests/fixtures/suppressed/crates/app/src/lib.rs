//! Fixture: suppression markers. The reasoned marker silences its L1
//! finding; the reasonless one is itself an error (and its L1 finding
//! still fires).

// lint: allow(L1) fixture tool legitimately reads its own sidecar file
use std::fs;

pub fn sidecar() -> Vec<u8> {
    fs::read("sidecar.bin").unwrap_or_default()
}

// lint: allow(L1)
pub fn naughty() {
    let _ = std::fs::read("other.bin");
}
