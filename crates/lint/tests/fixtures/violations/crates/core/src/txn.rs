//! Fixture transaction manager: the blessed OID-lock file, but with TWO
//! `raw_acquire` call sites — the exactly-one check must fire (once, on
//! line 1 of this file).

pub fn lock_sorted(table: &LockTable, oids: &[Oid]) {
    for &oid in oids {
        let _held = table.entry(oid).raw_acquire(oid);
    }
}

pub fn sneaky_second_path(table: &LockTable, oid: Oid) {
    // A second acquisition point dodges the sorted-input validation.
    let _held = table.entry(oid).raw_acquire(oid);
}
