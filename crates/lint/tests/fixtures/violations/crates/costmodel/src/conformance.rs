//! Fixture conformance table: resolves cleanly against the registry
//! (the L2 violation in this tree comes from a call-site literal).

pub const DRIFT_METRICS: &[&str] = &["plan"];
