//! Fixture registry: the only names the fixture workspace may use.

/// A registered metric name.
pub const APP_KNOWN: &str = "app.known";
/// Registered drift gauge for the fixture's one conformance operator.
pub const DRIFT_PLAN: &str = "costmodel.drift.plan";
/// Dead name: nothing outside this file references the constant.
pub const APP_DEAD: &str = "app.dead";
/// Registered virtual-table name.
pub const SYS_OK: &str = "sys.ok";
