//! Fixture binary: raw file I/O and panics are fine in bins.

fn main() {
    let _ = std::fs::read("data.bin").unwrap();
}
