//! Fixture app crate: exactly one violation of each diagnostic rule.
//! (L3 produces counts, not diagnostics: this file has exactly two
//! panic sites in library code.)

// L1 fires here (raw file I/O outside crates/storage):
use std::fs;

pub fn read_config() -> Vec<u8> {
    // L3 site 1:
    fs::read("config.bin").unwrap()
}

pub fn record(reg: &Registry) {
    // Fine: registered name.
    reg.counter("app.known").inc();
    // L2 fires here (literal not in the registry):
    reg.counter("app.unknown").inc();
}

pub fn rewrite(pool: &mut BufferPool, a: PageId, b: PageId) {
    let h = pool.fetch(a).unwrap(); // L3 site 2
    let mut g = h.data_mut();
    g[0] = 1;
    // L4 fires here (second frame acquired while `g` is live):
    let _other = pool.fetch(b);
    drop(g);
    // Fine after the drop:
    let _ok = pool.fetch(b);
}

pub fn batched(pool: &mut BufferPool, a: PageId, b: PageId) {
    let h = pool.fetch(a);
    let mut g = h.data_mut();
    g[0] = 1;
    // Fine: the ordered batch helper is the sanctioned path.
    let _hs = pool.get_pages_batch(&[b]);
}

pub fn describe(reg: &Registry) {
    // A call site through the constant keeps APP_KNOWN alive for the
    // dead-name check (its sibling APP_DEAD has none).
    reg.counter(names::APP_KNOWN).inc();
}

pub fn introspect(catalog: &SysCatalog) {
    // Fine: registered virtual-table name, as a literal and through the
    // constant (which also keeps SYS_OK alive for the dead-name check).
    catalog.open("sys.ok");
    catalog.open(names::SYS_OK);
    // L2 fires here (sys.* literal not in the registry):
    catalog.open("sys.bogus");
    // Fine: not name-shaped (format hole / prose / bare prefix).
    let _fmt = "sys.{}";
    let _prose = "sys. tables are virtual";
    let _prefix = "sys.";
}

pub fn hostile_lock(table: &LockTable, oid: Oid) {
    // L4 fires here (raw OID write lock outside the sorted-order
    // helper):
    let _held = table.raw_acquire(oid);
    // Fine: the sanctioned path hands the whole closure to lock_sorted.
    let _guard = table.lock_sorted(&[oid]);
}

pub fn bypass_log(store: &mut WalStore) {
    // L1 fires here (raw WAL store access outside crates/storage/src/wal):
    let _ = store.wal_append(b"rogue");
}

#[cfg(test)]
mod tests {
    // None of these fire: test code is out of scope.
    use std::fs;

    #[test]
    fn test_code_is_exempt() {
        fs::read("x").unwrap();
        panic!("fine in tests");
    }
}
