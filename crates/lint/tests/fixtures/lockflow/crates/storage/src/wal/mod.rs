//! Fixture WAL crate: exactly one L6 violation — the PR 9
//! group-commit bug shape, fsync inside the `WalInner` append section.

pub struct Wal {
    inner: Mutex<WalInner>,
}

impl Wal {
    pub fn append_commit(&self, frame: &[u8]) -> u64 {
        let mut inner = self.inner.lock(); // WalAppend acquired
        // Fine: the append lock exists to cover LSN assignment plus the
        // buffered log write (LogIo is not forbidden here).
        inner.store.wal_append(frame);
        // L6 fires here (fsync while WalAppend is held):
        inner.store.wal_sync();
        inner.next_lsn
    }

    pub fn sync_after_drop(&self) {
        {
            let mut inner = self.inner.lock();
            inner.store.wal_append(b"tail");
        }
        // Fine: the append lock is released before the fsync.
        self.store.wal_sync();
    }
}
