//! Fixture database: exactly one L7 violation — a `pub` `&self` entry
//! point reaching a storage mutation outside the WAL apply section —
//! plus the covered, suppressed, and exempt shapes that stay silent.

pub struct Database {
    heap: HeapFile,
    wal: Wal,
    sm: StorageManager,
}

impl Database {
    // L7 fires here (mutation with no apply section on the path):
    pub fn touch(&self, oid: Oid) {
        self.heap.rec_insert(&self.sm, 1, &[]);
    }

    pub fn touch_guarded(&self, oid: Oid) {
        // Fine: the mutation happens under the apply section.
        let _a = self.wal.apply_lock();
        self.heap.rec_update(&self.sm, oid, &[]);
    }

    // lint: allow(L7) both callers hold the apply section across this call
    pub fn touch_inherited(&self, oid: Oid) {
        self.heap.rec_update(&self.sm, oid, &[]);
    }

    fn touch_private(&self, oid: Oid) {
        // Fine: not an entry point — coverage is charged to the pub
        // callers that reach it (none here).
        self.heap.rec_delete(&self.sm, oid);
    }

    pub fn touch_exclusive(&mut self, oid: Oid) {
        // Fine: &mut self means no concurrent commit sweep can observe
        // a torn apply.
        self.heap.rec_delete(&self.sm, oid);
    }
}
