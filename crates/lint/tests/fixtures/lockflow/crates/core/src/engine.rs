//! Fixture engine: exactly one L5 violation, reached *through* the
//! call graph — the caller holds a higher-ranked lock while a callee
//! blocking-acquires a lower-ranked one.

pub struct Engine {
    txn: TxnManager,
    idx: IndexState,
    wal: Wal,
}

impl Engine {
    fn reindex(&self) {
        // Fine in isolation (nothing held here): the index guard is the
        // lowest rank in the declared order.
        let _g = self.idx.index_lock();
    }

    pub fn bad_order(&self, oids: &[Oid]) {
        let _set = self.txn.lock_sorted(oids); // OidSeqlock held
        // L5 fires here: the callee blocking-acquires TxnIndexGuard
        // (rank below OidSeqlock) while OidSeqlock is held.
        self.reindex();
    }

    pub fn good_order(&self, oids: &[Oid]) {
        // Fine: strictly increasing ranks.
        let _g = self.idx.index_lock();
        let _set = self.txn.lock_sorted(oids);
    }

    pub fn evict_probe(&self, frame: &Frame) {
        let mut g = frame.data_mut(); // FrameData held
        // Fine: a try-acquire cannot deadlock, so probing the
        // lower-ranked apply section creates no L5 order edge.
        if let Some(_a) = self.wal.try_apply_lock() {
            g[0] = 0;
        }
    }
}
