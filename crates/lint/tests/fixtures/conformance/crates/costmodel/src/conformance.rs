//! Fixture conformance table whose operator has no registered gauge.

pub const DRIFT_METRICS: &[&str] = &["sync"];

/// Keeps the fixture registry's one name alive for the dead-name check.
pub fn touch() {
    let _ = names::APP_KNOWN;
}
