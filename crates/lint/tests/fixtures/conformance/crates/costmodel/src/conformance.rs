//! Fixture conformance table whose operator has no registered gauge.

pub const DRIFT_METRICS: &[&str] = &["sync"];
