//! Fixture registry without the drift gauge the conformance table needs.

/// Unrelated registered name.
pub const APP_KNOWN: &str = "app.known";
