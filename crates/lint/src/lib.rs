//! Project-specific static analysis for the field-replication workspace.
//!
//! `cargo run -q -p fieldrep-lint` enforces seven invariants that rustc
//! and clippy cannot see (each is documented in DESIGN.md's quality-gate
//! appendix):
//!
//! - **L1 — storage layering**: `DiskManager` page I/O and raw file I/O
//!   (`std::fs`, `File::open`, `OpenOptions`) appear only inside
//!   `crates/storage`. Everything else reaches pages through the buffer
//!   pool, which is what keeps the paper's Fig. 12/14 I/O accounting
//!   complete.
//! - **L2 — name registry**: metric/span name literals passed to obs
//!   APIs, and `costmodel::conformance` operator names, must resolve in
//!   the central `obs::names` module. EXPLAIN ANALYZE joins predictions
//!   to measurements by name string; a typo silently breaks the join.
//! - **L3 — panic budget**: `unwrap`/`expect`/`panic!`/`unreachable!` in
//!   non-test, non-bin library code is counted per crate against the
//!   committed `lint_budget.toml`, which may only ratchet down.
//! - **L4 — lock discipline**: no buffer frame may be acquired (`fetch`,
//!   `new_page`, `prefetch`) while a page write guard is live, except
//!   through the ordered batch helper `get_pages_batch`. Mirrors the
//!   debug-build runtime check in `storage::buffer`.
//! - **L5 — lock order**: held-lock sets propagate through a
//!   workspace-wide call graph ([`callgraph`]); any acquisition edge
//!   that violates the declared total order over the named locks
//!   ([`locks::LOCKS`]) is an error. A total order admits no wait-for
//!   cycles, so this is a complete static deadlock-freedom check for
//!   the registered locks.
//! - **L6 — blocking under lock**: no recognised blocking operation
//!   (fsync, page/log file I/O, `thread::sleep`) may be reachable —
//!   directly or through calls — while a lock that forbids that class
//!   is held. The motivating shape is the PR 9 group-commit bug: fsync
//!   inside the `WalInner` append critical section.
//! - **L7 — apply-section coverage**: every `pub`/`pub(crate)`
//!   `&self` method on `Database` that can reach a mutating storage
//!   call (`data_mut`, `new_page`, `rec_insert`/`rec_update`/
//!   `rec_delete`) must do so under the WAL apply section, or carry a
//!   reasoned `// lint: allow(L7)` documenting that the caller holds
//!   it. (`&mut self` methods are exempt: exclusive access means no
//!   concurrent commit sweep can observe a torn apply.)
//!
//! Violations print as rustc-style `file:line` diagnostics and make the
//! process exit nonzero (`--json` emits JSONL instead). A
//! `// lint: allow(<rule>) <reason>` on (or right above) the offending
//! line suppresses a finding; suppressions require a reason and are
//! themselves budgeted.
//!
//! The whole tool is dependency-free (offline registry): a minimal
//! hand-rolled tokenizer plus token-pattern rules, with an
//! interprocedural summary fixpoint for L5–L7.

pub mod budget;
pub mod callgraph;
pub mod json;
pub mod locks;
pub mod registry;
pub mod rules;
pub mod tokens;

pub use budget::Budget;
pub use rules::{check_budget, run_checks, Diagnostic, Report};
