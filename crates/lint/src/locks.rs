//! Declarative registry of the workspace's named locks and blocking
//! operations, plus the L5/L6/L7 checkers that run over the call-graph
//! summaries built by [`crate::callgraph`].
//!
//! The registry is the single source of truth for the global lock
//! acquisition order (mirrored by the runtime assert in
//! `storage::lockorder` and documented in DESIGN.md §9): every lock has
//! a **rank**, and a thread may only acquire a lock of strictly higher
//! rank than anything it already holds (equal rank is allowed for
//! *reentrant* locks, which order their members internally — the OID
//! seqlock table sorts by OID, the frame locks go through the ordered
//! batch helper). Because the declared order is total, rank checking is
//! complete: any wait-for cycle must contain at least one edge from a
//! higher-or-equal rank to a lower-or-equal rank, so L5's edge check
//! also rules out cycles.
//!
//! Try-acquisitions (`try_apply_lock`) never block, so they create no
//! L5 order edges — but once a try-lock *succeeds* the lock is held
//! like any other, so it still participates in held-sets for L6 and
//! for edges to later blocking acquisitions.

use crate::callgraph::{Graph, Receiver, Vis};
use crate::rules::Diagnostic;
use crate::tokens::{Tok, TokKind};
use std::collections::BTreeSet;

/// Index into [`LOCKS`].
pub type LockId = usize;

/// A class of blocking operation, for the per-lock L6 forbid lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BlockClass {
    /// `fsync`/`fdatasync` — the slowest thing the engine ever does.
    Fsync,
    /// `std::thread::sleep` — never acceptable under any engine lock.
    Sleep,
    /// Data-page file I/O (`read_page`/`write_page`/…).
    PageIo,
    /// Log-store file I/O (`wal_append`/`wal_truncate`/…).
    LogIo,
}

impl BlockClass {
    /// Human label for diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            BlockClass::Fsync => "fsync",
            BlockClass::Sleep => "sleep",
            BlockClass::PageIo => "page I/O",
            BlockClass::LogIo => "log I/O",
        }
    }
}

/// A token pattern that acquires (or tries to acquire) a lock.
pub struct AcquirePattern {
    /// Token texts; `.`/`(`/`::` must be puncts, everything else idents.
    pub toks: &'static [&'static str],
    /// Only match in files whose workspace-relative path starts with
    /// this prefix (`None` = the pattern is globally distinctive).
    pub scope: Option<&'static str>,
    /// Non-blocking acquisition: no L5 order edge, but held afterwards.
    pub is_try: bool,
}

/// One named lock with its place in the global order.
pub struct LockDef {
    /// Short name used in diagnostics (`WalAppend`).
    pub name: &'static str,
    /// What it is, for messages.
    pub what: &'static str,
    /// Position in the global acquisition order (strictly increasing).
    pub rank: u8,
    /// Same-rank re-acquisition allowed (internally ordered family).
    pub reentrant: bool,
    /// Blocking classes that must not be reachable while held.
    pub forbids: &'static [BlockClass],
    /// Call shapes that acquire it.
    pub acquires: &'static [AcquirePattern],
    /// Type the guard dereferences to: a call projected directly
    /// through the fresh guard (`self.core.lock().fetch(..)`) resolves
    /// against this impl, which keeps same-name delegation wrappers
    /// (`BufferPool::fetch` → `PoolCore::fetch`) from merging.
    pub owner_hint: Option<&'static str>,
}

const fn pat(toks: &'static [&'static str]) -> AcquirePattern {
    AcquirePattern {
        toks,
        scope: None,
        is_try: false,
    }
}

const fn pat_in(toks: &'static [&'static str], scope: &'static str) -> AcquirePattern {
    AcquirePattern {
        toks,
        scope: Some(scope),
        is_try: false,
    }
}

/// The declared global lock order, lowest rank first. A thread
/// acquires downward through this table, never upward. Keep in sync
/// with `storage::lockorder` and the DESIGN.md §9 table.
pub const LOCKS: &[LockDef] = &[
    LockDef {
        name: "TxnIndexGuard",
        what: "the transaction layer's index maintenance guard",
        rank: 10,
        reentrant: false,
        forbids: &[BlockClass::Sleep],
        owner_hint: None,
        acquires: &[
            pat(&[".", "index_lock", "("]),
            pat_in(&["index_guard", ".", "lock", "("], "crates/core/src/txn.rs"),
        ],
    },
    LockDef {
        name: "OidSeqlock",
        what: "per-OID seqlock write locks (sorted-order family)",
        rank: 20,
        reentrant: true,
        forbids: &[BlockClass::Sleep],
        owner_hint: None,
        acquires: &[
            pat(&[".", "lock_sorted", "("]),
            pat(&[".", "raw_acquire", "("]),
        ],
    },
    LockDef {
        name: "WalApply",
        what: "the WAL apply section (log-to-page coverage barrier)",
        rank: 30,
        reentrant: false,
        forbids: &[BlockClass::Sleep],
        owner_hint: None,
        acquires: &[
            pat(&[".", "apply_lock", "("]),
            AcquirePattern {
                toks: &[".", "try_apply_lock", "("],
                scope: None,
                is_try: true,
            },
            pat_in(&["apply", ".", "lock", "("], "crates/storage/src/wal"),
        ],
    },
    LockDef {
        name: "PoolCore",
        what: "the buffer-pool metadata mutex",
        rank: 40,
        reentrant: false,
        // Page I/O and even fsync under PoolCore are load-bearing (the
        // steal rules autocommit dirty victims during eviction — see
        // DESIGN.md §11), so only sleeping is forbidden here.
        forbids: &[BlockClass::Sleep],
        owner_hint: Some("PoolCore"),
        acquires: &[pat_in(
            &["core", ".", "lock", "("],
            "crates/storage/src/buffer.rs",
        )],
    },
    LockDef {
        name: "FrameData",
        what: "a buffer-frame page latch (write side)",
        rank: 50,
        reentrant: true,
        forbids: &[BlockClass::Sleep, BlockClass::Fsync, BlockClass::LogIo],
        owner_hint: None,
        acquires: &[
            pat(&[".", "data_mut", "("]),
            pat_in(&["data", ".", "write", "("], "crates/storage/src/buffer.rs"),
        ],
    },
    LockDef {
        name: "WalSync",
        what: "the group-commit leader lock",
        rank: 60,
        reentrant: false,
        forbids: &[BlockClass::Sleep],
        owner_hint: None,
        acquires: &[pat_in(
            &["sync_lock", ".", "lock", "("],
            "crates/storage/src/wal",
        )],
    },
    LockDef {
        name: "WalAppend",
        what: "the WAL append lock (WalInner)",
        rank: 70,
        reentrant: false,
        // The append lock covers LSN assignment + the buffered append
        // (LogIo), but fsync under it serialises every committer behind
        // the disk — the exact PR 9 group-commit bug.
        forbids: &[BlockClass::Sleep, BlockClass::Fsync],
        owner_hint: Some("WalInner"),
        acquires: &[pat_in(
            &["inner", ".", "lock", "("],
            "crates/storage/src/wal",
        )],
    },
];

/// A blocking operation the analyzer recognises.
pub struct BlockOp {
    /// Which class it belongs to.
    pub class: BlockClass,
    /// Token pattern (same kind rules as [`AcquirePattern::toks`]).
    pub toks: &'static [&'static str],
    /// Label for diagnostics.
    pub label: &'static str,
}

const fn bop(class: BlockClass, toks: &'static [&'static str], label: &'static str) -> BlockOp {
    BlockOp { class, toks, label }
}

/// Recognised blocking calls, most specific first.
pub const BLOCKING_OPS: &[BlockOp] = &[
    bop(
        BlockClass::Fsync,
        &[".", "wal_sync_now", "("],
        "WalSyncer::wal_sync_now (fsync)",
    ),
    bop(
        BlockClass::Fsync,
        &[".", "wal_sync", "("],
        "WalStore::wal_sync (fsync)",
    ),
    bop(
        BlockClass::Fsync,
        &[".", "sync_all", "("],
        "File::sync_all (fsync)",
    ),
    bop(
        BlockClass::Fsync,
        &[".", "sync_data", "("],
        "File::sync_data (fsync)",
    ),
    bop(
        BlockClass::Fsync,
        &["disk", ".", "sync", "("],
        "DiskManager::sync (fsync)",
    ),
    bop(
        BlockClass::Sleep,
        &["thread", "::", "sleep", "("],
        "std::thread::sleep",
    ),
    bop(
        BlockClass::LogIo,
        &[".", "wal_append", "("],
        "WalStore::wal_append",
    ),
    bop(
        BlockClass::LogIo,
        &[".", "wal_truncate", "("],
        "WalStore::wal_truncate",
    ),
    bop(
        BlockClass::LogIo,
        &[".", "wal_read_all", "("],
        "WalStore::wal_read_all",
    ),
    bop(
        BlockClass::PageIo,
        &[".", "read_page", "("],
        "DiskManager::read_page",
    ),
    bop(
        BlockClass::PageIo,
        &[".", "read_pages", "("],
        "DiskManager::read_pages",
    ),
    bop(
        BlockClass::PageIo,
        &[".", "write_page", "("],
        "DiskManager::write_page",
    ),
    bop(
        BlockClass::PageIo,
        &[".", "write_pages", "("],
        "DiskManager::write_pages",
    ),
    bop(
        BlockClass::PageIo,
        &[".", "create_file", "("],
        "DiskManager::create_file",
    ),
];

/// Markers that mutate page storage (for L7 apply-section coverage).
/// All are deliberately distinctive names: the frame write latch, page
/// allocation, and the heap record mutators.
pub const MUTATION_MARKERS: &[&[&str]] = &[
    &[".", "data_mut", "("],
    &[".", "new_page", "("],
    &[".", "rec_insert", "("],
    &[".", "rec_update", "("],
    &[".", "rec_delete", "("],
];

/// Does the token pattern match at `toks[at..]`, honouring kinds
/// (punctuation elements must be puncts, names must be idents)?
pub fn pattern_matches(toks: &[Tok], at: usize, pattern: &[&str]) -> bool {
    pattern.iter().enumerate().all(|(k, want)| {
        toks.get(at + k).is_some_and(|tok| {
            tok.text == *want
                && match *want {
                    "." | "(" | "::" => tok.kind == TokKind::Punct,
                    _ => tok.kind == TokKind::Ident,
                }
        })
    })
}

/// Try to match any registered acquire pattern at `toks[at..]` in a
/// file at `rel`. Returns `(lock, is_try, pattern_len)`.
pub fn match_acquire(toks: &[Tok], at: usize, rel: &str) -> Option<(LockId, bool, usize)> {
    for (id, def) in LOCKS.iter().enumerate() {
        for p in def.acquires {
            if p.scope.is_none_or(|s| rel.starts_with(s)) && pattern_matches(toks, at, p.toks) {
                return Some((id, p.is_try, p.toks.len()));
            }
        }
    }
    None
}

/// Try to match a blocking op at `toks[at..]`. Returns the op index.
pub fn match_blocking(toks: &[Tok], at: usize) -> Option<usize> {
    BLOCKING_OPS
        .iter()
        .position(|op| pattern_matches(toks, at, op.toks))
}

/// Try to match a mutation marker at `toks[at..]`. Returns its label.
pub fn match_mutation(toks: &[Tok], at: usize) -> Option<&'static str> {
    MUTATION_MARKERS
        .iter()
        .find(|p| pattern_matches(toks, at, p))
        .map(|p| p[1])
}

/// L5 + L6 + L7 over the summarised call graph.
pub fn check_lockflow(graph: &Graph) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut seen: BTreeSet<(usize, usize, usize)> = BTreeSet::new(); // (fn, held, other)

    for (fi, f) in graph.fns.iter().enumerate() {
        // L5: direct blocking acquisitions out of declared order.
        for ev in &f.acquires {
            if ev.is_try {
                continue;
            }
            for held in &ev.held {
                if order_violation(held.lock, ev.lock) && seen.insert((fi, held.lock, ev.lock)) {
                    diags.push(Diagnostic {
                        file: f.file.clone(),
                        line: ev.line,
                        rule: "L5",
                        msg: format!(
                            "lock-order violation: `{}` (rank {}) acquired while `{}` (rank {}, \
                             taken at line {}) is held — the declared order (DESIGN.md §9) \
                             requires {} before {}, or this edge can deadlock against the \
                             straight-order path",
                            LOCKS[ev.lock].name,
                            LOCKS[ev.lock].rank,
                            LOCKS[held.lock].name,
                            LOCKS[held.lock].rank,
                            held.line,
                            LOCKS[ev.lock].name,
                            LOCKS[held.lock].name,
                        ),
                    });
                }
            }
        }
        // L5 via calls: the callee (transitively) blocks on a lock.
        for call in &f.calls {
            for &ti in &call.targets {
                let t = &graph.fns[ti];
                for (&lock, wit) in &t.may_acquire {
                    for held in &call.held {
                        if order_violation(held.lock, lock) && seen.insert((fi, held.lock, lock)) {
                            diags.push(Diagnostic {
                                file: f.file.clone(),
                                line: call.line,
                                rule: "L5",
                                msg: format!(
                                    "lock-order violation: call to `{}` can acquire `{}` (rank \
                                     {}, at {}:{}) while `{}` (rank {}, taken at line {}) is \
                                     held — declared order requires {} before {}",
                                    call.name,
                                    LOCKS[lock].name,
                                    LOCKS[lock].rank,
                                    wit.file,
                                    wit.line,
                                    LOCKS[held.lock].name,
                                    LOCKS[held.lock].rank,
                                    held.line,
                                    LOCKS[lock].name,
                                    LOCKS[held.lock].name,
                                ),
                            });
                        }
                    }
                }
            }
        }
        // L6: blocking ops (direct or reachable) under a forbidding lock.
        let mut seen6: BTreeSet<(usize, BlockClass)> = BTreeSet::new();
        for ev in &f.blocks {
            for held in &ev.held {
                if LOCKS[held.lock].forbids.contains(&ev.class)
                    && seen6.insert((held.lock, ev.class))
                {
                    diags.push(Diagnostic {
                        file: f.file.clone(),
                        line: ev.line,
                        rule: "L6",
                        msg: format!(
                            "blocking call `{}` while `{}` ({}, rank {}, taken at line {}) is \
                             held — {} locks forbid {} in their critical section; move the \
                             call outside the lock (the PR 9 group-commit fix shape)",
                            ev.label,
                            LOCKS[held.lock].name,
                            LOCKS[held.lock].what,
                            LOCKS[held.lock].rank,
                            held.line,
                            LOCKS[held.lock].name,
                            ev.class.label(),
                        ),
                    });
                }
            }
        }
        for call in &f.calls {
            for &ti in &call.targets {
                let t = &graph.fns[ti];
                for (&class, wit) in &t.may_block {
                    for held in &call.held {
                        if LOCKS[held.lock].forbids.contains(&class)
                            && seen6.insert((held.lock, class))
                        {
                            diags.push(Diagnostic {
                                file: f.file.clone(),
                                line: call.line,
                                rule: "L6",
                                msg: format!(
                                    "call to `{}` can reach blocking `{}` (at {}:{}) while \
                                     `{}` is held — {} locks forbid {} in their critical \
                                     section",
                                    call.name,
                                    wit.label,
                                    wit.file,
                                    wit.line,
                                    LOCKS[held.lock].name,
                                    LOCKS[held.lock].name,
                                    class.label(),
                                ),
                            });
                        }
                    }
                }
            }
        }
    }

    // L7: Database &self entry points that reach a page mutation on some
    // path not covered by the WAL apply section.
    for f in &graph.fns {
        if f.owner.as_deref() != Some("Database")
            || f.vis == Vis::Private
            || f.receiver != Receiver::Ref
        {
            continue;
        }
        if let Some(wit) = &f.unprotected_mutation {
            diags.push(Diagnostic {
                file: f.file.clone(),
                line: f.line,
                rule: "L7",
                msg: format!(
                    "`Database::{}` reaches mutating storage call `{}` ({}:{}{}) without the \
                     WAL apply section held — acquire `apply_lock()` around the mutation, or \
                     document inheriting it from the caller with a reasoned \
                     `// lint: allow(L7)`",
                    f.name,
                    wit.label,
                    wit.file,
                    wit.line,
                    wit.via
                        .as_ref()
                        .map(|v| format!(", via `{v}`"))
                        .unwrap_or_default(),
                ),
            });
        }
    }

    diags
}

/// Is acquiring `next` while holding `held` an order violation?
fn order_violation(held: LockId, next: LockId) -> bool {
    let (h, n) = (&LOCKS[held], &LOCKS[next]);
    if held == next {
        !h.reentrant
    } else {
        h.rank >= n.rank
    }
}
