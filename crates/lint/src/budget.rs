//! The committed ratchet file (`lint_budget.toml`): per-crate panic
//! counts and the total suppression count. Parsed with a tiny TOML
//! subset reader (sections, `key = integer`, `#` comments) — the
//! registry is offline, so no external TOML crate.

use std::collections::BTreeMap;

/// Parsed budget file.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Budget {
    /// `[panic_budget]`: crate dir (e.g. `crates/query`) → allowed count
    /// of `unwrap`/`expect`/`panic!`/`unreachable!` in library code.
    pub panic_budget: BTreeMap<String, u64>,
    /// `[suppressions]` → `total`: allowed `// lint: allow(..)` markers.
    pub suppressions: u64,
}

/// Parse the budget file. Errors carry the offending line.
pub fn parse(text: &str) -> Result<Budget, String> {
    let mut b = Budget::default();
    let mut section = String::new();
    for (n, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            section = name.trim().to_string();
            continue;
        }
        let Some((key, val)) = line.split_once('=') else {
            return Err(format!("line {}: expected `key = value`", n + 1));
        };
        let key = key.trim().trim_matches('"').to_string();
        let val: u64 = val
            .trim()
            .parse()
            .map_err(|e| format!("line {}: bad integer: {e}", n + 1))?;
        match section.as_str() {
            "panic_budget" => {
                b.panic_budget.insert(key, val);
            }
            "suppressions" if key == "total" => b.suppressions = val,
            other => return Err(format!("line {}: unknown entry in [{other}]", n + 1)),
        }
    }
    Ok(b)
}

/// Render a budget back to the committed file format (deterministic
/// ordering, so `--update-budget` produces minimal diffs).
pub fn render(b: &Budget) -> String {
    let mut out = String::from(
        "# Panic-path ratchet, enforced by `cargo run -q -p fieldrep-lint`.\n\
         # Counts may only go DOWN: when you remove an unwrap/expect/panic!/\n\
         # unreachable! from library code, lower the crate's number (or run\n\
         # `cargo run -p fieldrep-lint -- --update-budget`). Raising a number\n\
         # requires justifying the new panic path in review.\n\n[panic_budget]\n",
    );
    for (k, v) in &b.panic_budget {
        out.push_str(&format!("\"{k}\" = {v}\n"));
    }
    out.push_str(&format!(
        "\n# `// lint: allow(<rule>) <reason>` markers in library code.\n[suppressions]\ntotal = {}\n",
        b.suppressions
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let mut b = Budget::default();
        b.panic_budget.insert("crates/query".into(), 3);
        b.panic_budget.insert("crates/btree".into(), 7);
        b.suppressions = 2;
        let parsed = parse(&render(&b)).unwrap();
        assert_eq!(parsed, b);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("[panic_budget]\nnot a pair").is_err());
        assert!(parse("[panic_budget]\nx = abc").is_err());
        assert!(parse("[mystery]\nx = 1").is_err());
    }
}
