//! JSONL rendering of lint results for `--json` (machine-readable
//! diagnostics: one object per line, obs_smoke-style).
//!
//! Schema per line:
//! `{"rule":"L6","file":"…","line":42,"msg":"…","suppressed":false}`
//!
//! Suppressed findings are included (with `"suppressed":true`) so
//! tooling can see what the reasoned allow markers are hiding; budget
//! comparison lines use rule `"budget"` like the text output.

use crate::rules::{Diagnostic, Report};

/// Render every diagnostic (live, suppressed, and budget) as JSONL.
pub fn render_jsonl(report: &Report, budget_diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in &report.diags {
        line(&mut out, d, false);
    }
    for d in &report.suppressed {
        line(&mut out, d, true);
    }
    for d in budget_diags {
        line(&mut out, d, false);
    }
    out
}

fn line(out: &mut String, d: &Diagnostic, suppressed: bool) {
    out.push_str("{\"rule\":");
    string(out, d.rule);
    out.push_str(",\"file\":");
    string(out, &d.file);
    out.push_str(&format!(",\"line\":{}", d.line));
    out.push_str(",\"msg\":");
    string(out, &d.msg);
    out.push_str(&format!(",\"suppressed\":{suppressed}}}\n"));
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}
