//! CLI for the workspace lint. See the library docs for the rules.
//!
//! Usage: `cargo run -q -p fieldrep-lint [-- --root DIR] [--update-budget] [--json]`

use fieldrep_lint::{budget, check_budget, json, run_checks};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut update_budget = false;
    let mut as_json = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--update-budget" => update_budget = true,
            "--json" => as_json = true,
            other => {
                eprintln!("unknown flag {other:?} (try --root DIR, --update-budget, --json)");
                return ExitCode::from(2);
            }
        }
    }

    let report = match run_checks(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fieldrep-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let budget_path = root.join("lint_budget.toml");
    let mut diags = report.diags.clone();
    if update_budget {
        let b = budget::Budget {
            panic_budget: report.panic_counts.clone(),
            suppressions: report.suppressions,
        };
        if let Err(e) = std::fs::write(&budget_path, budget::render(&b)) {
            eprintln!("fieldrep-lint: writing {}: {e}", budget_path.display());
            return ExitCode::from(2);
        }
        println!("wrote {}", budget_path.display());
    } else {
        match std::fs::read_to_string(&budget_path) {
            Ok(text) => match budget::parse(&text) {
                Ok(b) => diags.extend(check_budget(&report, &b)),
                Err(e) => {
                    eprintln!("fieldrep-lint: {}: {e}", budget_path.display());
                    return ExitCode::from(2);
                }
            },
            Err(_) => {
                eprintln!(
                    "fieldrep-lint: missing {} — run `cargo run -p fieldrep-lint -- \
                     --update-budget` to create the ratchet baseline",
                    budget_path.display()
                );
                return ExitCode::from(2);
            }
        }
    }

    if as_json {
        // Budget diags live in `diags` after the report's own; split
        // them back out so the JSONL marks suppressed findings too.
        let budget_only = &diags[report.diags.len().min(diags.len())..];
        print!("{}", json::render_jsonl(&report, budget_only));
        return if diags.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        println!(
            "fieldrep-lint: ok ({} crate(s), {} suppression(s))",
            report.panic_counts.len(),
            report.suppressions
        );
        ExitCode::SUCCESS
    } else {
        println!("fieldrep-lint: {} error(s)", diags.len());
        ExitCode::FAILURE
    }
}
