//! Loading the central name registry (`obs::names`) and the cost-model
//! operator table, by parsing their source files with the lint tokenizer.
//!
//! The registry is the set of string values bound to `const` items in
//! `crates/obs/src/names.rs` (scalar `&str` consts and `&[&str]` tables
//! both contribute). The cost-model side parses the `DRIFT_METRICS`
//! table from `crates/costmodel/src/conformance.rs` so its operator
//! names can be resolved against the registry without running any code.

use crate::tokens::{tokenize, TokKind};
use std::collections::BTreeSet;
use std::path::Path;

/// One `const` item binding string values: its line, identifier, and
/// every string literal in its initializer (one for scalar `&str`
/// consts, several for `&[&str]` tables).
#[derive(Debug, Clone, PartialEq)]
pub struct ConstDef {
    /// 1-based line of the const's identifier.
    pub line: u32,
    /// The const's identifier.
    pub name: String,
    /// String literals in the initializer, in source order.
    pub values: Vec<String>,
}

/// All `const` items binding string values in a source file, with line
/// numbers — the dead-name check anchors its diagnostics here.
///
/// Matches `const NAME: … = "value";` and `const NAME: … = &["a", "b"];`
/// by scanning from each `const` keyword to the terminating `;` and
/// collecting every string literal in between.
pub fn const_defs(src: &str) -> Vec<ConstDef> {
    let toks = tokenize(src).toks;
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("const") && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident) {
            let name = toks[i + 1].text.clone();
            let line = toks[i + 1].line;
            let mut values = Vec::new();
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct(";") {
                if toks[j].kind == TokKind::Str {
                    values.push(toks[j].text.clone());
                }
                j += 1;
            }
            if !values.is_empty() {
                out.push(ConstDef { line, name, values });
            }
            i = j;
        } else {
            i += 1;
        }
    }
    out
}

/// All string values bound to `const` items in a source file (the
/// line-less view of [`const_defs`]).
pub fn const_strings(src: &str) -> Vec<(String, Vec<String>)> {
    const_defs(src)
        .into_iter()
        .map(|d| (d.name, d.values))
        .collect()
}

/// The registry's const definitions, for the dead-name check. Empty when
/// `crates/obs/src/names.rs` is absent (fixture trees without one).
pub fn registry_const_defs(root: &Path) -> Vec<ConstDef> {
    match std::fs::read_to_string(root.join("crates/obs/src/names.rs")) {
        Ok(src) => const_defs(&src),
        Err(_) => Vec::new(),
    }
}

/// The obs name registry: every registered metric/span/operator name.
#[derive(Debug, Default)]
pub struct Registry {
    names: BTreeSet<String>,
}

impl Registry {
    /// Parse the registry from `crates/obs/src/names.rs` under `root`.
    /// Returns `None` when the file does not exist (fixture trees that
    /// don't exercise L2).
    pub fn load(root: &Path) -> Option<Registry> {
        let src = std::fs::read_to_string(root.join("crates/obs/src/names.rs")).ok()?;
        let mut names = BTreeSet::new();
        for (_, vals) in const_strings(&src) {
            names.extend(vals);
        }
        Some(Registry { names })
    }

    /// Whether `name` is a registered name.
    pub fn contains(&self, name: &str) -> bool {
        self.names.contains(name)
    }

    /// Number of registered names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// The cost-model operator table: `(line, name)` per `DRIFT_METRICS`
/// entry in `crates/costmodel/src/conformance.rs`, or empty when the
/// file (or table) is absent.
pub fn drift_metrics(root: &Path) -> Vec<(u32, String)> {
    let Ok(src) = std::fs::read_to_string(root.join("crates/costmodel/src/conformance.rs")) else {
        return Vec::new();
    };
    let toks = tokenize(&src).toks;
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("DRIFT_METRICS") {
            let mut j = i + 1;
            while j < toks.len() && !toks[j].is_punct(";") {
                if toks[j].kind == TokKind::Str {
                    out.push((toks[j].line, toks[j].text.clone()));
                }
                j += 1;
            }
            return out;
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_strings_sees_scalars_and_tables() {
        let src = r#"
            pub const A: &str = "x.y";
            pub const T: &[&str] = &["p", "q"];
            fn not_a_const() { let s = "ignored"; }
        "#;
        let got = const_strings(src);
        assert_eq!(
            got,
            vec![
                ("A".to_string(), vec!["x.y".to_string()]),
                ("T".to_string(), vec!["p".to_string(), "q".to_string()]),
            ]
        );
    }

    #[test]
    fn const_defs_carry_the_identifier_line() {
        let src = "pub const A: &str = \"x\";\n\npub const T: &[&str] = &[\"p\"];\n";
        let got = const_defs(src);
        assert_eq!(got.len(), 2);
        assert_eq!((got[0].line, got[0].name.as_str()), (1, "A"));
        assert_eq!((got[1].line, got[1].name.as_str()), (3, "T"));
    }
}
