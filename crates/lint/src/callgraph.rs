//! Workspace-wide call graph with per-function guard-flow summaries.
//!
//! Built on the token stream: one linear pass per file extracts every
//! `fn` (with its `impl` owner, visibility, and receiver kind) and the
//! events inside its body — lock acquisitions (from the declarative
//! registry in [`crate::locks`]), recognised blocking operations,
//! storage-mutation markers, and outgoing calls — each annotated with
//! the set of locks held at that point.
//!
//! Held-lock tracking models the shapes the codebase actually uses:
//! `let`-bound guards live to the end of their enclosing block (an
//! `if let`/`while let` binding lives for the following block),
//! `drop(guard)` releases early, and a guard that is only a temporary
//! in a larger expression (`self.core.lock().fetch(pid)`,
//! `self.inner.lock().appended`) is held to the end of the statement —
//! which is exactly long enough for the callee invoked through it to
//! run under the lock. A projection through `.unwrap()`/`.expect()` is
//! recognised as still being the guard.
//!
//! Summaries (`may_acquire`, `may_block`, `unprotected_mutation`)
//! propagate up the call graph to a fixpoint. Calls resolve by name;
//! `self.f()` and `Type::f()` resolve through the impl owner, and a
//! short stoplist of std-collection method names (`insert`, `push`,
//! `get`, …) is excluded from cross-impl name merging — those names
//! are too common for receiver-blind resolution to be meaningful, and
//! the workspace's own hot mutators deliberately use distinctive names
//! (`rec_insert`, `wal_append`, `data_mut`) so they resolve precisely.

use crate::locks::{self, BlockClass, LockId};
use crate::tokens::{Tok, TokKind};
use std::collections::{BTreeMap, BTreeSet};

/// Item visibility (token-level approximation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vis {
    /// No `pub` on the item.
    Private,
    /// `pub(crate)` (or any `pub(..)` restriction).
    Crate,
    /// Plain `pub`.
    Pub,
}

/// Receiver kind of a method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Receiver {
    /// Free function (no `self`).
    None,
    /// `&self`.
    Ref,
    /// `&mut self`.
    RefMut,
    /// `self` by value.
    Owned,
}

/// One lock held at an event, with the line it was taken on.
#[derive(Debug, Clone)]
pub struct Held {
    /// Which registered lock.
    pub lock: LockId,
    /// Line of the acquisition.
    pub line: u32,
}

/// A lock acquisition inside a function body.
#[derive(Debug)]
pub struct AcquireEv {
    /// Which lock.
    pub lock: LockId,
    /// Non-blocking (`try_`) acquisition.
    pub is_try: bool,
    /// Source line.
    pub line: u32,
    /// Locks already held (before this one).
    pub held: Vec<Held>,
}

/// A recognised blocking operation.
#[derive(Debug)]
pub struct BlockEv {
    /// Blocking class.
    pub class: BlockClass,
    /// Diagnostic label.
    pub label: &'static str,
    /// Source line.
    pub line: u32,
    /// Locks held at the call.
    pub held: Vec<Held>,
}

/// A storage-mutation marker.
#[derive(Debug)]
pub struct MutateEv {
    /// Marker name (`data_mut`, `rec_insert`, …).
    pub label: &'static str,
    /// Source line.
    pub line: u32,
    /// Locks held at the call.
    pub held: Vec<Held>,
}

/// An outgoing call.
#[derive(Debug)]
pub struct CallEv {
    /// Callee name.
    pub name: String,
    /// Source line.
    pub line: u32,
    /// Locks held at the call site.
    pub held: Vec<Held>,
    /// `self.name(..)` shape.
    pub self_call: bool,
    /// `Qual::name(..)` shape.
    pub qualifier: Option<String>,
    /// Resolved definition indices (filled by [`Graph::build`]).
    pub targets: Vec<usize>,
}

/// Where a summarised fact was observed, for diagnostics.
#[derive(Debug, Clone)]
pub struct Witness {
    /// File of the underlying event.
    pub file: String,
    /// Line of the underlying event.
    pub line: u32,
    /// What it was.
    pub label: String,
    /// Call chain it was inherited through, if not local.
    pub via: Option<String>,
}

/// One function with its events and fixpoint summaries.
#[derive(Debug)]
pub struct FnInfo {
    /// Bare function name.
    pub name: String,
    /// `impl` owner type, if any.
    pub owner: Option<String>,
    /// Workspace-relative file.
    pub file: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Visibility.
    pub vis: Vis,
    /// Receiver kind.
    pub receiver: Receiver,
    /// Lock acquisitions.
    pub acquires: Vec<AcquireEv>,
    /// Blocking operations.
    pub blocks: Vec<BlockEv>,
    /// Mutation markers.
    pub mutations: Vec<MutateEv>,
    /// Outgoing calls.
    pub calls: Vec<CallEv>,
    /// Locks this function may blocking-acquire, transitively.
    pub may_acquire: BTreeMap<LockId, Witness>,
    /// Blocking classes reachable from this function.
    pub may_block: BTreeMap<BlockClass, Witness>,
    /// A storage mutation reachable on a path where no caller-visible
    /// WAL apply section is held.
    pub unprotected_mutation: Option<Witness>,
}

/// The whole workspace graph.
#[derive(Debug, Default)]
pub struct Graph {
    /// All scanned functions.
    pub fns: Vec<FnInfo>,
}

/// std-collection method names excluded from receiver-blind (weak)
/// call resolution: merging every `map.insert(..)` into every
/// `impl`'s `insert` poisons the graph with false edges.
const WEAK_STOPLIST: &[&str] = &[
    "insert",
    "update",
    "delete",
    "remove",
    "get",
    "get_mut",
    "set",
    "push",
    "pop",
    "len",
    "is_empty",
    "clear",
    "contains",
    "contains_key",
    "append",
    "extend",
    "drain",
    "take",
    "replace",
    "clone",
    "next",
    "iter",
    "into_iter",
    "map",
    "filter",
    "fold",
    "read",
    "write",
    "lock",
    "try_lock",
    "unwrap",
    "expect",
    "new",
    "default",
    "from",
    "into",
    "as_ref",
    "as_mut",
    "open",
    "close",
    "create",
    "flush",
    "sync",
    "send",
    "recv",
    "join",
    "spawn",
    "entry",
    "keys",
    "values",
    "count",
    "find",
    "position",
    "sort",
    "min",
    "max",
    "start",
    "end",
    "run",
    "sleep",
    "begin",
    "commit",
    "abort",
    "eq",
    "cmp",
    "hash",
    "fmt",
    "to_string",
    "to_vec",
    "split",
    "parse",
    "encode",
    "decode",
    "name",
    "id",
    "with",
    "init",
    "load",
    "store",
    "save",
    "tick",
    "reset",
    "record",
    "emit",
    "scan",
    "register",
    "stats",
    "wait",
    "notify",
    "observe",
    "drop",
    "add",
    "first",
    "last",
    "retain",
    "resize",
    "swap",
    "copy",
    "fill",
    "zip",
    "chain",
    "rev",
    "all",
    "any",
    "sum",
    "collect",
    "get_or_insert_with",
    // Storage delegation-chain names that exist at every layer
    // (DiskManager / PoolCore / BufferPool / StorageManager): weak
    // resolution would merge the whole tower into a cycle. The real
    // edges still resolve through owner hints and self-call owners.
    "drop_file",
    "page_count",
];

/// Keywords that look like calls when followed by `(`.
const KEYWORDS: &[&str] = &[
    "if", "while", "match", "for", "loop", "return", "as", "in", "move", "fn", "let", "pub",
    "impl", "use", "mod", "where", "unsafe", "async", "else", "break", "continue", "ref", "mut",
    "box", "dyn", "type", "const", "static", "trait", "enum", "struct",
];

/// A live guard in the scanner.
struct LiveGuard {
    lock: LockId,
    line: u32,
    name: Option<String>,
    depth: usize,
    transient: bool,
}

/// Per-open-function scanner state.
struct FnCtx {
    info: FnInfo,
    open_depth: usize,
    paren_depth: usize,
    guards: Vec<LiveGuard>,
    let_ctx: Option<(String, bool)>, // (binding name, is if/while-let)
}

impl FnCtx {
    fn held(&self) -> Vec<Held> {
        let mut out: Vec<Held> = Vec::new();
        for g in &self.guards {
            if !out.iter().any(|h| h.lock == g.lock) {
                out.push(Held {
                    lock: g.lock,
                    line: g.line,
                });
            }
        }
        out
    }
}

/// Scan one file's (test-stripped) tokens into function records.
pub fn scan_file(rel: &str, toks: &[Tok]) -> Vec<FnInfo> {
    let mut out: Vec<FnInfo> = Vec::new();
    let mut depth = 0usize;
    let mut impl_stack: Vec<(Option<String>, usize)> = Vec::new();
    let mut pending_impl: Option<Option<String>> = None;
    let mut fn_stack: Vec<FnCtx> = Vec::new();
    // Ident positions consumed by acquire/blocking/mutation pattern
    // matches — excluded from generic call detection.
    let mut no_call: BTreeSet<usize> = BTreeSet::new();
    // Call positions projected directly through a fresh lock guard:
    // `self.core.lock().fetch(pid)` resolves `fetch` against the
    // guard's deref target ([`locks::LockDef::owner_hint`]), not the
    // whole same-name family.
    let mut owner_hints: BTreeMap<usize, &'static str> = BTreeMap::new();

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        // Structure: braces, impl blocks, fn signatures.
        if t.is_punct("{") {
            depth += 1;
            if let Some(owner) = pending_impl.take() {
                impl_stack.push((owner, depth));
            }
            if let Some(f) = fn_stack.last_mut() {
                f.guards.retain(|g| !g.transient);
                f.let_ctx = None;
            }
            i += 1;
            continue;
        }
        if t.is_punct("}") {
            depth = depth.saturating_sub(1);
            while impl_stack.last().is_some_and(|(_, d)| *d > depth) {
                impl_stack.pop();
            }
            while fn_stack.last().is_some_and(|f| f.open_depth > depth) {
                if let Some(done) = fn_stack.pop() {
                    out.push(done.info);
                }
            }
            if let Some(f) = fn_stack.last_mut() {
                f.guards.retain(|g| !g.transient && g.depth <= depth);
            }
            i += 1;
            continue;
        }
        if t.is_ident("impl") {
            // Find the impl header's `{`, extract the owner type name.
            let mut j = i + 1;
            let mut angle = 0i32;
            let mut for_at: Option<usize> = None;
            while j < toks.len() && !toks[j].is_punct("{") && !toks[j].is_punct(";") {
                match toks[j].text.as_str() {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    "for" if angle == 0 && toks[j].kind == TokKind::Ident => for_at = Some(j),
                    _ => {}
                }
                j += 1;
            }
            let from = for_at.map(|k| k + 1).unwrap_or(i + 1);
            let mut owner = None;
            let mut k = from;
            let mut skip_angle = 0i32;
            while k < j {
                let tk = &toks[k];
                if tk.is_punct("<") {
                    skip_angle += 1;
                } else if tk.is_punct(">") {
                    skip_angle -= 1;
                } else if skip_angle == 0
                    && tk.kind == TokKind::Ident
                    && !matches!(tk.text.as_str(), "mut" | "dyn")
                {
                    // Take the last path segment (`wal::Wal` → `Wal`).
                    if toks.get(k + 1).is_some_and(|n| n.is_punct("::")) {
                        k += 2;
                        continue;
                    }
                    owner = Some(tk.text.clone());
                    break;
                }
                k += 1;
            }
            pending_impl = Some(owner);
            i = j; // land on the `{` (or stray `;`)
            continue;
        }
        if t.is_ident("fn") && toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident) {
            let name_tok = &toks[i + 1];
            // Visibility: look back over the item header.
            let mut vis = Vis::Private;
            let mut back = i;
            while back > 0 {
                back -= 1;
                match toks[back].text.as_str() {
                    "unsafe" | "const" | "async" | "extern" | ")" | "(" => {}
                    "crate" | "super" | "in" | "self" => vis = Vis::Crate,
                    "pub" => {
                        if vis == Vis::Private {
                            vis = Vis::Pub;
                        }
                        break;
                    }
                    _ => break,
                }
            }
            // Skip generics, then the parameter list.
            let mut j = i + 2;
            if toks.get(j).is_some_and(|n| n.is_punct("<")) {
                let mut angle = 0i32;
                while j < toks.len() {
                    if toks[j].is_punct("<") {
                        angle += 1;
                    } else if toks[j].is_punct(">") {
                        angle -= 1;
                        if angle == 0 {
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
            }
            let mut receiver = Receiver::None;
            if toks.get(j).is_some_and(|n| n.is_punct("(")) {
                let mut paren = 0i32;
                let arg_start = j + 1;
                while j < toks.len() {
                    if toks[j].is_punct("(") {
                        paren += 1;
                    } else if toks[j].is_punct(")") {
                        paren -= 1;
                        if paren == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                let first: Vec<&Tok> = toks[arg_start..j.min(toks.len())]
                    .iter()
                    .take_while(|x| !x.is_punct(","))
                    .take(5)
                    .collect();
                if first.iter().any(|x| x.is_ident("self")) {
                    receiver = if first.iter().any(|x| x.is_ident("mut")) {
                        Receiver::RefMut
                    } else if first.first().is_some_and(|x| x.is_ident("self")) {
                        Receiver::Owned
                    } else {
                        Receiver::Ref
                    };
                }
                j += 1; // step past the params' closing `)`
            }
            // Advance to the body `{` (skipping return type / where
            // clause) or a `;` (trait declaration — no body).
            let mut brace = None;
            let mut paren = 0i32;
            while j < toks.len() {
                let x = &toks[j];
                if x.is_punct("(") || x.is_punct("[") {
                    paren += 1;
                } else if x.is_punct(")") || x.is_punct("]") {
                    paren -= 1;
                } else if paren == 0 && x.is_punct("{") {
                    brace = Some(j);
                    break;
                } else if paren == 0 && x.is_punct(";") {
                    break;
                }
                j += 1;
            }
            if let Some(b) = brace {
                depth += 1;
                fn_stack.push(FnCtx {
                    info: FnInfo {
                        name: name_tok.text.clone(),
                        owner: impl_stack.last().and_then(|(o, _)| o.clone()),
                        file: rel.to_string(),
                        line: name_tok.line,
                        vis,
                        receiver,
                        acquires: Vec::new(),
                        blocks: Vec::new(),
                        mutations: Vec::new(),
                        calls: Vec::new(),
                        may_acquire: BTreeMap::new(),
                        may_block: BTreeMap::new(),
                        unprotected_mutation: None,
                    },
                    open_depth: depth,
                    paren_depth: 0,
                    guards: Vec::new(),
                    let_ctx: None,
                });
                i = b + 1;
            } else {
                i = j + 1;
            }
            continue;
        }

        // Event extraction, only inside a function body.
        if let Some(f) = fn_stack.last_mut() {
            if t.is_punct("(") || t.is_punct("[") {
                f.paren_depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                f.paren_depth = f.paren_depth.saturating_sub(1);
            } else if t.is_punct(";") && f.paren_depth == 0 {
                f.guards.retain(|g| !g.transient);
                f.let_ctx = None;
            } else if t.is_ident("let") {
                let mut j = i + 1;
                if toks.get(j).is_some_and(|n| n.is_ident("mut")) {
                    j += 1;
                }
                let mut name = None;
                if let Some(n) = toks.get(j) {
                    if n.kind == TokKind::Ident {
                        if matches!(n.text.as_str(), "Some" | "Ok")
                            && toks.get(j + 1).is_some_and(|x| x.is_punct("("))
                        {
                            let mut k = j + 2;
                            if toks.get(k).is_some_and(|x| x.is_ident("mut")) {
                                k += 1;
                            }
                            name = toks
                                .get(k)
                                .filter(|x| x.kind == TokKind::Ident)
                                .map(|x| x.text.clone());
                        } else if !n.text.chars().next().is_some_and(char::is_uppercase) {
                            name = Some(n.text.clone());
                        }
                    }
                }
                let if_let = i > 0 && (toks[i - 1].is_ident("if") || toks[i - 1].is_ident("while"));
                f.let_ctx = name.map(|n| (n, if_let));
            } else if t.is_ident("drop")
                && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
                && toks.get(i + 3).is_some_and(|n| n.is_punct(")"))
            {
                if let Some(v) = toks.get(i + 2) {
                    f.guards
                        .retain(|g| g.name.as_deref() != Some(v.text.as_str()));
                }
            }

            // Acquire patterns.
            if let Some((lock, is_try, plen)) = locks::match_acquire(toks, i, rel) {
                let held = f.held();
                let line = toks[i + plen - 2].line;
                // `.data_mut(` is both a frame-lock acquire and a
                // storage-mutation marker.
                if let Some(label) = locks::match_mutation(toks, i) {
                    f.info.mutations.push(MutateEv {
                        label,
                        line,
                        held: held.clone(),
                    });
                }
                f.info.acquires.push(AcquireEv {
                    lock,
                    is_try,
                    line,
                    held,
                });
                for (k, txt) in toks[i..i + plen].iter().enumerate() {
                    if txt.kind == TokKind::Ident {
                        no_call.insert(i + k);
                    }
                }
                // Binding position: find the call's closing paren, skip
                // `.unwrap()`/`.expect(..)`/`?`, then check whether the
                // guard is projected through (temporary) or bound.
                let open = i + plen - 1;
                let mut k = open;
                let mut paren = 0i32;
                while k < toks.len() {
                    if toks[k].is_punct("(") {
                        paren += 1;
                    } else if toks[k].is_punct(")") {
                        paren -= 1;
                        if paren == 0 {
                            break;
                        }
                    }
                    k += 1;
                }
                k += 1;
                loop {
                    if toks.get(k).is_some_and(|x| x.is_punct("?")) {
                        k += 1;
                    } else if toks.get(k).is_some_and(|x| x.is_punct("."))
                        && toks
                            .get(k + 1)
                            .is_some_and(|x| x.is_ident("unwrap") || x.is_ident("expect"))
                        && toks.get(k + 2).is_some_and(|x| x.is_punct("("))
                    {
                        let mut p = 0i32;
                        k += 2;
                        while k < toks.len() {
                            if toks[k].is_punct("(") {
                                p += 1;
                            } else if toks[k].is_punct(")") {
                                p -= 1;
                                if p == 0 {
                                    k += 1;
                                    break;
                                }
                            }
                            k += 1;
                        }
                    } else {
                        break;
                    }
                }
                let projected = toks.get(k).is_some_and(|x| x.is_punct("."));
                if projected {
                    if let Some(hint) = locks::LOCKS[lock].owner_hint {
                        if toks.get(k + 1).is_some_and(|x| x.kind == TokKind::Ident)
                            && toks.get(k + 2).is_some_and(|x| x.is_punct("("))
                        {
                            owner_hints.insert(k + 1, hint);
                        }
                    }
                }
                let binding = f.let_ctx.clone().filter(|_| !projected);
                match binding {
                    Some((name, if_let)) => f.guards.push(LiveGuard {
                        lock,
                        line,
                        name: Some(name),
                        depth: if if_let { depth + 1 } else { depth },
                        transient: false,
                    }),
                    None => f.guards.push(LiveGuard {
                        lock,
                        line,
                        name: None,
                        depth,
                        transient: true,
                    }),
                }
                i += 1;
                continue;
            }
            // Blocking operations.
            if let Some(op) = locks::match_blocking(toks, i) {
                let op = &locks::BLOCKING_OPS[op];
                let held = f.held();
                let line = toks[i + op.toks.len() - 2].line;
                f.info.blocks.push(BlockEv {
                    class: op.class,
                    label: op.label,
                    line,
                    held,
                });
                for (k, txt) in toks[i..i + op.toks.len()].iter().enumerate() {
                    if txt.kind == TokKind::Ident {
                        no_call.insert(i + k);
                    }
                }
                i += 1;
                continue;
            }
            // Mutation markers (`.rec_insert(` etc). No `continue` and
            // no `no_call` entry: the marker is also an ordinary call,
            // and the call edge carries the callee's may_block/
            // may_acquire summaries.
            if let Some(label) = locks::match_mutation(toks, i) {
                let held = f.held();
                f.info.mutations.push(MutateEv {
                    label,
                    line: toks[i + 1].line,
                    held,
                });
            }
            // Generic call detection.
            if t.kind == TokKind::Ident
                && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
                && !no_call.contains(&i)
                && !t.text.chars().next().is_some_and(char::is_uppercase)
                && !KEYWORDS.contains(&t.text.as_str())
            {
                let prev = i.checked_sub(1).map(|p| &toks[p]);
                let (self_call, qualifier, is_method) = match prev {
                    Some(p) if p.is_punct(".") => {
                        let sc = i >= 2 && toks[i - 2].is_ident("self");
                        let q = owner_hints.get(&i).map(ToString::to_string);
                        (sc && q.is_none(), q, true)
                    }
                    Some(p) if p.is_punct("::") => {
                        let q = i
                            .checked_sub(2)
                            .map(|p| &toks[p])
                            .filter(|x| x.kind == TokKind::Ident)
                            .map(|x| x.text.clone());
                        (false, q, false)
                    }
                    _ => (false, None, false),
                };
                // `fn` defs never reach here (signatures are skipped),
                // so this is a genuine call expression.
                f.info.calls.push(CallEv {
                    name: t.text.clone(),
                    line: t.line,
                    held: f.held(),
                    self_call: self_call || qualifier.as_deref() == Some("Self"),
                    qualifier: qualifier.filter(|q| q != "Self"),
                    targets: Vec::new(),
                });
                let _ = is_method;
            }
        }
        i += 1;
    }
    while let Some(done) = fn_stack.pop() {
        out.push(done.info);
    }
    out
}

impl Graph {
    /// Resolve calls and run the summary fixpoint.
    pub fn build(mut fns: Vec<FnInfo>) -> Graph {
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut by_owner_name: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        for (idx, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(idx);
            if let Some(o) = &f.owner {
                by_owner_name
                    .entry((o.clone(), f.name.clone()))
                    .or_default()
                    .push(idx);
            }
        }
        #[allow(clippy::needless_range_loop)] // `fi` also filters self-edges below
        for fi in 0..fns.len() {
            let owner = fns[fi].owner.clone();
            let mut resolved: Vec<Vec<usize>> = Vec::with_capacity(fns[fi].calls.len());
            for call in &fns[fi].calls {
                let name = &call.name;
                let targets: Vec<usize> = if let Some(q) = &call.qualifier {
                    by_owner_name
                        .get(&(q.clone(), name.clone()))
                        .cloned()
                        .or_else(|| by_name.get(name).filter(|v| v.len() == 1).cloned())
                        .unwrap_or_default()
                } else if call.self_call {
                    owner
                        .as_ref()
                        .and_then(|o| by_owner_name.get(&(o.clone(), name.clone())))
                        .cloned()
                        .or_else(|| {
                            if WEAK_STOPLIST.contains(&name.as_str()) {
                                None
                            } else {
                                by_name.get(name).cloned()
                            }
                        })
                        .unwrap_or_default()
                } else if WEAK_STOPLIST.contains(&name.as_str()) {
                    Vec::new()
                } else {
                    by_name.get(name).cloned().unwrap_or_default()
                };
                resolved.push(targets.into_iter().filter(|t| *t != fi).collect());
            }
            for (call, targets) in fns[fi].calls.iter_mut().zip(resolved) {
                call.targets = targets;
            }
        }

        // Fixpoint: local events seed the summaries, call edges merge
        // callee summaries (Jacobi-style against a per-pass snapshot).
        let apply_id = locks::LOCKS
            .iter()
            .position(|l| l.name == "WalApply")
            .unwrap_or(usize::MAX);
        for f in fns.iter_mut() {
            for ev in &f.acquires {
                if !ev.is_try {
                    f.may_acquire.entry(ev.lock).or_insert(Witness {
                        file: f.file.clone(),
                        line: ev.line,
                        label: locks::LOCKS[ev.lock].name.to_string(),
                        via: None,
                    });
                }
            }
            for ev in &f.blocks {
                f.may_block.entry(ev.class).or_insert(Witness {
                    file: f.file.clone(),
                    line: ev.line,
                    label: ev.label.to_string(),
                    via: None,
                });
            }
            for ev in &f.mutations {
                if !ev.held.iter().any(|h| h.lock == apply_id) && f.unprotected_mutation.is_none() {
                    f.unprotected_mutation = Some(Witness {
                        file: f.file.clone(),
                        line: ev.line,
                        label: ev.label.to_string(),
                        via: None,
                    });
                }
            }
        }
        type Summary = (
            BTreeMap<LockId, Witness>,
            BTreeMap<BlockClass, Witness>,
            Option<Witness>,
        );
        for _pass in 0..64 {
            let snapshot: Vec<Summary> = fns
                .iter()
                .map(|f| {
                    (
                        f.may_acquire.clone(),
                        f.may_block.clone(),
                        f.unprotected_mutation.clone(),
                    )
                })
                .collect();
            let mut changed = false;
            #[allow(clippy::needless_range_loop)] // mutates fns[fi] after reading it
            for fi in 0..fns.len() {
                let mut add_acq: Vec<(LockId, Witness)> = Vec::new();
                let mut add_blk: Vec<(BlockClass, Witness)> = Vec::new();
                let mut add_mut: Option<Witness> = None;
                for call in &fns[fi].calls {
                    for &ti in &call.targets {
                        let (acq, blk, unp) = &snapshot[ti];
                        for (l, w) in acq {
                            if !fns[fi].may_acquire.contains_key(l) {
                                add_acq.push((*l, inherit(w, &call.name)));
                            }
                        }
                        for (c, w) in blk {
                            if !fns[fi].may_block.contains_key(c) {
                                add_blk.push((*c, inherit(w, &call.name)));
                            }
                        }
                        if fns[fi].unprotected_mutation.is_none()
                            && add_mut.is_none()
                            && !call.held.iter().any(|h| h.lock == apply_id)
                        {
                            if let Some(w) = unp {
                                add_mut = Some(inherit(w, &call.name));
                            }
                        }
                    }
                }
                let f = &mut fns[fi];
                for (l, w) in add_acq {
                    if f.may_acquire.insert(l, w).is_none() {
                        changed = true;
                    }
                }
                for (c, w) in add_blk {
                    if f.may_block.insert(c, w).is_none() {
                        changed = true;
                    }
                }
                if let Some(w) = add_mut {
                    f.unprotected_mutation = Some(w);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        Graph { fns }
    }
}

/// Re-anchor a witness one call-hop further from its event.
fn inherit(w: &Witness, via: &str) -> Witness {
    let chain = match &w.via {
        Some(rest) if rest.len() < 120 => format!("{via} → {rest}"),
        Some(rest) => rest.clone(),
        None => via.to_string(),
    };
    Witness {
        file: w.file.clone(),
        line: w.line,
        label: w.label.clone(),
        via: Some(chain),
    }
}
