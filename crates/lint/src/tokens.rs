//! Minimal line-aware Rust tokenizer.
//!
//! Not a full lexer — it distinguishes identifiers, string literals, and
//! punctuation (with `::` fused into one token so qualified paths match
//! as `a`, `::`, `b`), which is all the rules need. Comments are captured
//! separately so suppression markers can be matched to the lines they
//! govern; char literals and lifetimes are recognised just enough not to
//! confuse string tracking; numeric literals are skipped entirely.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// String literal (text holds the *contents*, quotes stripped, raw).
    Str,
    /// Punctuation (single char, except the fused `::`).
    Punct,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Kind of token.
    pub kind: TokKind,
    /// Token text (contents only for strings).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// Is this an identifier with exactly this text?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Is this a punctuation token with exactly this text?
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// One comment (`//` or `/* */`), with its starting line.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text without the `//` / `/*` markers, trimmed.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// Tokenizer output: code tokens plus the comment sidecar.
#[derive(Debug, Default)]
pub struct Tokens {
    /// Code tokens in source order.
    pub toks: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Tokenize Rust source. Never fails: unterminated constructs are
/// consumed to end of input (good enough for linting committed code).
pub fn tokenize(src: &str) -> Tokens {
    let b: Vec<char> = src.chars().collect();
    let mut out = Tokens::default();
    let mut i = 0;
    let mut line: u32 = 1;
    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if b.get(i + 1) == Some(&'/') => {
                let start = i + 2;
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
                let text: String = b[start..i].iter().collect();
                out.comments.push(Comment {
                    text: text.trim().to_string(),
                    line,
                });
            }
            '/' if b.get(i + 1) == Some(&'*') => {
                let start_line = line;
                let start = i + 2;
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                let end = i.saturating_sub(2).max(start);
                let text: String = b[start..end].iter().collect();
                out.comments.push(Comment {
                    text: text.trim().to_string(),
                    line: start_line,
                });
            }
            '"' => {
                let tok_line = line;
                i += 1;
                let start = i;
                while i < b.len() && b[i] != '"' {
                    if b[i] == '\\' {
                        i += 1; // skip the escaped char
                    } else if b[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
                let text: String = b[start..i.min(b.len())].iter().collect();
                i += 1; // closing quote
                out.toks.push(Tok {
                    kind: TokKind::Str,
                    text,
                    line: tok_line,
                });
            }
            '\'' => {
                // Char literal or lifetime. A char literal closes within a
                // couple of chars ('x', '\n', '\u{..}'); a lifetime is a
                // quote followed by an ident with no closing quote.
                if b.get(i + 1) == Some(&'\\') {
                    i += 3; // '\x
                    while i < b.len() && b[i] != '\'' {
                        i += 1;
                    }
                    i += 1;
                } else if b.get(i + 2) == Some(&'\'') {
                    i += 3; // 'x'
                } else {
                    i += 1; // lifetime: skip quote, ident lexes next round
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                let text: String = b[start..i].iter().collect();
                // Raw/byte string prefixes: hand off to the string scanner.
                if matches!(text.as_str(), "r" | "b" | "br")
                    && matches!(b.get(i), Some(&'"') | Some(&'#'))
                {
                    let tok_line = line;
                    let mut hashes = 0;
                    while b.get(i) == Some(&'#') {
                        hashes += 1;
                        i += 1;
                    }
                    if b.get(i) == Some(&'"') {
                        i += 1;
                        let start = i;
                        'scan: while i < b.len() {
                            if b[i] == '\n' {
                                line += 1;
                            }
                            if b[i] == '"' {
                                let mut ok = true;
                                for k in 0..hashes {
                                    if b.get(i + 1 + k) != Some(&'#') {
                                        ok = false;
                                        break;
                                    }
                                }
                                if ok {
                                    let text: String = b[start..i].iter().collect();
                                    i += 1 + hashes;
                                    out.toks.push(Tok {
                                        kind: TokKind::Str,
                                        text,
                                        line: tok_line,
                                    });
                                    break 'scan;
                                }
                            }
                            i += 1;
                        }
                        continue;
                    }
                    // Raw identifier (`r#move`): emit the bare name so call
                    // sites and definitions match under the same key.
                    if text == "r"
                        && hashes == 1
                        && b.get(i)
                            .is_some_and(|c| c.is_ascii_alphabetic() || *c == '_')
                    {
                        let start = i;
                        while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == '_') {
                            i += 1;
                        }
                        out.toks.push(Tok {
                            kind: TokKind::Ident,
                            text: b[start..i].iter().collect(),
                            line: tok_line,
                        });
                        continue;
                    }
                    // Not a raw string or raw ident after all (`b#` etc.):
                    // keep the prefix ident and re-emit the swallowed hashes.
                    out.toks.push(Tok {
                        kind: TokKind::Ident,
                        text,
                        line: tok_line,
                    });
                    for _ in 0..hashes {
                        out.toks.push(Tok {
                            kind: TokKind::Punct,
                            text: "#".into(),
                            line: tok_line,
                        });
                    }
                    continue;
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text,
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                // Skip the number (incl. 1_000, 0xFF, 1.5, 1e9, 1u64).
                while i < b.len()
                    && (b[i].is_ascii_alphanumeric()
                        || b[i] == '_'
                        || (b[i] == '.' && b.get(i + 1).is_some_and(char::is_ascii_digit)))
                {
                    i += 1;
                }
            }
            ':' if b.get(i + 1) == Some(&':') => {
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text: "::".into(),
                    line,
                });
                i += 2;
            }
            _ => {
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text: c.to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qualified_paths_fuse_the_double_colon() {
        let t = tokenize("std::fs::File");
        let texts: Vec<&str> = t.toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["std", "::", "fs", "::", "File"]);
    }

    #[test]
    fn strings_capture_contents_and_lines() {
        let t = tokenize("let x = \"a.b\";\nlet y = r#\"raw\"#;");
        let strs: Vec<(&str, u32)> = t
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| (t.text.as_str(), t.line))
            .collect();
        assert_eq!(strs, [("a.b", 1), ("raw", 2)]);
    }

    #[test]
    fn comments_lifetimes_and_chars_do_not_confuse_the_stream() {
        let t = tokenize("fn f<'a>(x: &'a str) { // c1\n let c = '\"'; /* c2 */ }");
        assert_eq!(t.comments.len(), 2);
        assert_eq!(t.comments[0].text, "c1");
        assert_eq!(t.comments[1].text, "c2");
        assert!(!t.toks.iter().any(|t| t.kind == TokKind::Str));
    }

    #[test]
    fn raw_identifiers_lex_as_their_bare_name() {
        let t = tokenize("fn r#move(x: u32) { r#move(x) }");
        let texts: Vec<&str> = t.toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            ["fn", "move", "(", "x", ":", "u32", ")", "{", "move", "(", "x", ")", "}"]
        );
    }

    #[test]
    fn turbofish_and_nested_generics_keep_punctuation_balanced() {
        let t = tokenize("let v = xs.iter().collect::<Vec<Option<&'a str>>>();");
        let texts: Vec<&str> = t.toks.iter().map(|t| t.text.as_str()).collect();
        // `::` stays fused before the turbofish and every angle bracket
        // survives as its own punct (no string/lifetime confusion).
        assert!(texts.windows(2).any(|w| w == ["::", "<"]));
        let lt = texts.iter().filter(|t| **t == "<").count();
        let gt = texts.iter().filter(|t| **t == ">").count();
        assert_eq!(lt, 3);
        assert_eq!(gt, 3);
        assert!(!t.toks.iter().any(|t| t.kind == TokKind::Str));
    }

    #[test]
    fn impl_methods_with_where_clauses_tokenize_cleanly() {
        let src = "impl<T> Store<T> {\n    fn put<K>(&mut self, k: K) -> bool\n    where\n        K: Into<T>,\n    {\n        self.items.push(k.into());\n        true\n    }\n}";
        let t = tokenize(src);
        let fn_pos = t.toks.iter().position(|t| t.is_ident("fn")).unwrap();
        assert_eq!(t.toks[fn_pos + 1].text, "put");
        assert_eq!(t.toks[fn_pos + 1].line, 2);
        assert!(t.toks.iter().any(|t| t.is_ident("where")));
        // The body open brace lands after the where clause, on line 5.
        let braces: Vec<u32> = t
            .toks
            .iter()
            .filter(|t| t.is_punct("{"))
            .map(|t| t.line)
            .collect();
        assert_eq!(braces, [1, 5]);
    }

    #[test]
    fn macro_invocation_bodies_yield_their_inner_tokens() {
        let t = tokenize("vec![a.lock(), write!(f, \"{x:?}\")?];");
        let texts: Vec<&str> = t.toks.iter().map(|t| t.text.as_str()).collect();
        assert!(texts.windows(4).any(|w| w == ["a", ".", "lock", "("]));
        assert!(texts.windows(2).any(|w| w == ["write", "!"]));
        assert_eq!(t.toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
    }

    #[test]
    fn numbers_are_skipped() {
        let t = tokenize("let x = 1_000.5e3 + 0xFFu64;");
        assert!(t.toks.iter().all(|t| t.kind != TokKind::Str));
        assert!(!t.toks.iter().any(|t| t.text.contains('0')));
    }
}
