//! The rule engine: L1 layering, L2 name registry, L3 panic budget,
//! L4 lock discipline — token-pattern checks over library sources —
//! plus the interprocedural pass for L5 lock-order, L6
//! blocking-under-lock, and L7 apply-section coverage (see
//! [`crate::callgraph`] and [`crate::locks`]).
//!
//! Scope: `crates/*/src/**/*.rs` and the root crate's `src/**/*.rs`,
//! minus `src/bin/` binaries and `#[cfg(test)]` modules. A finding on a
//! line covered by a `// lint: allow(<rule>) <reason>` marker (same line
//! or the line above) is suppressed; markers without a reason are
//! themselves errors, and the total marker count ratchets through
//! `lint_budget.toml` alongside the panic counts.

use crate::budget::Budget;
use crate::callgraph;
use crate::locks;
use crate::registry::{drift_metrics, registry_const_defs, Registry};
use crate::tokens::{tokenize, Tok, TokKind};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};

/// One finding, in rustc style: `file:line: error[rule]: message`.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Path relative to the workspace root.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id (`L1`..`L7`, `suppression`, `budget`).
    pub rule: &'static str,
    /// Human-readable message.
    pub msg: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: error[{}]: {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

/// Everything one lint run produced.
#[derive(Debug, Default)]
pub struct Report {
    /// Rule violations (budget comparison is separate — see
    /// [`check_budget`]).
    pub diags: Vec<Diagnostic>,
    /// Panic-site count per crate dir (L3 raw counts).
    pub panic_counts: BTreeMap<String, u64>,
    /// Total `// lint: allow(..)` markers seen.
    pub suppressions: u64,
    /// Findings silenced by a reasoned allow marker (reported by
    /// `--json` so suppressions stay visible to tooling).
    pub suppressed: Vec<Diagnostic>,
}

/// A parsed suppression marker.
struct Allow {
    line: u32,
    rule: String,
    has_reason: bool,
}

/// Rules L1/L2/L4 fire as diagnostics; L3 only counts. `DiskManager`
/// page I/O and raw file APIs are the layering surface.
const DISK_METHODS: [&str; 4] = ["read_page", "read_pages", "write_page", "write_pages"];
/// obs calls whose first argument, when a string literal, must be a
/// registered name.
const OBS_NAME_APIS: [&str; 6] = [
    "counter",
    "gauge",
    "histogram",
    "component_add",
    "component_take",
    "mark",
];
/// Buffer-pool entry points that take a frame lock (L4 triggers).
const FRAME_ACQUIRERS: [&str; 3] = ["fetch", "new_page", "prefetch"];
/// Raw `WalStore` methods: the log's framing, fsync, and truncation
/// surface. Deliberately distinctive names so call sites are greppable.
const WAL_STORE_METHODS: [&str; 7] = [
    "wal_append",
    "wal_sync",
    "wal_read_all",
    "wal_truncate",
    "wal_len",
    "wal_syncer",
    "wal_sync_now",
];
/// The only directory allowed to touch the raw log store (L1, WAL half).
const WAL_DIR: &str = "crates/storage/src/wal";
/// The one file allowed to acquire raw OID write locks: the transaction
/// manager's sorted-order helper lives here (L4, concurrency half).
const OID_LOCK_FILE: &str = "crates/core/src/txn.rs";
/// Where the obs name registry lives; its own consts don't count as
/// usages of themselves.
const NAMES_FILE: &str = "crates/obs/src/names.rs";
/// Prefix of the drift gauge family — consts under it are exercised via
/// `drift_gauge(suffix)` rather than by identifier, so they get a
/// reverse check against the conformance table instead.
const DRIFT_PREFIX: &str = "costmodel.drift.";

/// Run all checks over the workspace at `root`.
pub fn run_checks(root: &Path) -> std::io::Result<Report> {
    let mut report = Report::default();
    let registry = Registry::load(root);
    // L4 (concurrency half): raw OID-lock acquisitions in the blessed
    // file — exactly one call site must remain.
    let mut blessed_file_seen = false;
    let mut blessed_acquires = 0usize;
    // Ident usages outside the registry file itself, for the dead-name
    // check — tests count as usages, so collect before stripping.
    let mut used_idents: BTreeSet<String> = BTreeSet::new();
    // Pass-1 collection for the interprocedural L5/L6/L7 pass.
    let mut all_fns: Vec<callgraph::FnInfo> = Vec::new();
    let mut allow_map: BTreeMap<String, Vec<Allow>> = BTreeMap::new();

    for file in source_files(root)? {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let crate_key = crate_key(&rel);
        let src = std::fs::read_to_string(&file)?;
        let parsed = tokenize(&src);
        if rel != NAMES_FILE {
            used_idents.extend(
                parsed
                    .toks
                    .iter()
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.clone()),
            );
        }
        let toks = strip_test_modules(parsed.toks);
        let allows: Vec<Allow> = parsed
            .comments
            .iter()
            .filter_map(|c| parse_allow(c.text.as_str(), c.line))
            .collect();
        report.suppressions += allows.len() as u64;
        for a in &allows {
            if !a.has_reason {
                report.diags.push(Diagnostic {
                    file: rel.clone(),
                    line: a.line,
                    rule: "suppression",
                    msg: format!(
                        "`lint: allow({})` must carry a reason after the rule name",
                        a.rule
                    ),
                });
            }
        }

        let mut push = |line: u32, rule: &'static str, msg: String| {
            let suppressed = allows
                .iter()
                .any(|a| a.rule == rule && a.has_reason && (a.line == line || a.line + 1 == line));
            let diag = Diagnostic {
                file: rel.clone(),
                line,
                rule,
                msg,
            };
            if suppressed {
                report.suppressed.push(diag);
            } else {
                report.diags.push(diag);
            }
        };

        if crate_key != "crates/storage" && crate_key != "crates/lint" {
            check_layering(&toks, &mut push);
        }
        if crate_key != "crates/lint" && !rel.starts_with(WAL_DIR) {
            check_wal_confinement(&toks, &mut push);
        }
        if crate_key != "crates/lint" {
            if let Some(reg) = &registry {
                check_names(&toks, reg, &mut push);
            }
        }
        check_lock_discipline(&toks, &mut push);
        let acquire_sites = raw_acquire_sites(&toks);
        if rel == OID_LOCK_FILE {
            blessed_file_seen = true;
            blessed_acquires += acquire_sites.len();
        } else {
            for line in acquire_sites {
                push(
                    line,
                    "L4",
                    "`raw_acquire` (raw OID write lock) outside TxnManager::lock_sorted — \
                     every OID lock must be taken through the sorted-order helper, or the \
                     global acquisition order (and with it deadlock freedom) is lost"
                        .into(),
                );
            }
        }
        *report.panic_counts.entry(crate_key.clone()).or_insert(0) += count_panics(&toks);
        if crate_key != "crates/lint" {
            all_fns.extend(callgraph::scan_file(&rel, &toks));
        }
        allow_map.insert(rel, allows);
    }
    // Pass 2: resolve the call graph, run the summary fixpoint, and
    // check lock order (L5), blocking-under-lock (L6), and apply
    // coverage (L7) — suppression markers apply at the anchor line.
    let graph = callgraph::Graph::build(all_fns);
    for diag in locks::check_lockflow(&graph) {
        let suppressed = allow_map.get(&diag.file).is_some_and(|allows| {
            allows.iter().any(|a| {
                a.rule == diag.rule
                    && a.has_reason
                    && (a.line == diag.line || a.line + 1 == diag.line)
            })
        });
        if suppressed {
            report.suppressed.push(diag);
        } else {
            report.diags.push(diag);
        }
    }
    if blessed_file_seen && blessed_acquires != 1 {
        report.diags.push(Diagnostic {
            file: OID_LOCK_FILE.into(),
            line: 1,
            rule: "L4",
            msg: format!(
                "expected exactly one `raw_acquire` call site (inside lock_sorted, which \
                 validates sorted input), found {blessed_acquires}"
            ),
        });
    }

    if let Some(reg) = &registry {
        for (line, name) in drift_metrics(root) {
            let full = format!("costmodel.drift.{name}");
            if !reg.contains(&full) {
                report.diags.push(Diagnostic {
                    file: "crates/costmodel/src/conformance.rs".into(),
                    line,
                    rule: "L2",
                    msg: format!(
                        "conformance operator {name:?} has no `{full}` gauge in obs::names"
                    ),
                });
            }
        }
        check_dead_names(root, &used_idents, &mut report.diags);
    }

    report
        .diags
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    report
        .suppressed
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(report)
}

/// Compare a report against the committed budget: counts may only match
/// exactly — higher is a regression, lower means the ratchet is stale.
pub fn check_budget(report: &Report, budget: &Budget) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut keys: Vec<&String> = report.panic_counts.keys().collect();
    for k in budget.panic_budget.keys() {
        if !report.panic_counts.contains_key(k) {
            keys.push(k);
        }
    }
    keys.sort();
    keys.dedup();
    for key in keys {
        let actual = report.panic_counts.get(key).copied().unwrap_or(0);
        let allowed = budget.panic_budget.get(key).copied().unwrap_or(0);
        if actual > allowed {
            diags.push(budget_diag(format!(
                "{key}: {actual} panic site(s) in library code, budget allows {allowed} — \
                 return an Err instead, or justify raising the budget in review"
            )));
        } else if actual < allowed {
            diags.push(budget_diag(format!(
                "{key}: budget allows {allowed} panic site(s) but only {actual} remain — \
                 ratchet down (run `cargo run -p fieldrep-lint -- --update-budget`)"
            )));
        }
    }
    if report.suppressions > budget.suppressions {
        diags.push(budget_diag(format!(
            "{} lint suppression(s) in tree, budget allows {} — remove markers or justify \
             raising the budget in review",
            report.suppressions, budget.suppressions
        )));
    } else if report.suppressions < budget.suppressions {
        diags.push(budget_diag(format!(
            "suppression budget allows {} but only {} remain — ratchet down",
            budget.suppressions, report.suppressions
        )));
    }
    diags
}

fn budget_diag(msg: String) -> Diagnostic {
    Diagnostic {
        file: "lint_budget.toml".into(),
        line: 1,
        rule: "budget",
        msg,
    }
}

/// `// lint: allow(L4) guards dropped via mem::take` → marker.
fn parse_allow(text: &str, line: u32) -> Option<Allow> {
    let rest = text.trim().strip_prefix("lint:")?.trim();
    let rest = rest.strip_prefix("allow(")?;
    let (rule, reason) = rest.split_once(')')?;
    Some(Allow {
        line,
        rule: rule.trim().to_string(),
        has_reason: !reason.trim().is_empty(),
    })
}

/// All library sources: `crates/*/src/**` plus the root `src/**`,
/// excluding `bin/` subtrees.
fn source_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in std::fs::read_dir(&crates_dir)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                walk(&src, &mut out)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        walk(&root_src, &mut out)?;
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "bin") {
                continue; // binaries are outside the library lint scope
            }
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `crates/query/src/exec.rs` → `crates/query`; root `src/lib.rs` → `src`.
fn crate_key(rel: &str) -> String {
    let parts: Vec<&str> = rel.split('/').collect();
    if parts.first() == Some(&"crates") && parts.len() > 1 {
        format!("crates/{}", parts[1])
    } else {
        "src".to_string()
    }
}

/// Remove `#[cfg(test)] mod … { … }` blocks from the token stream.
fn strip_test_modules(toks: Vec<Tok>) -> Vec<Tok> {
    let mut out = Vec::with_capacity(toks.len());
    let mut i = 0;
    while i < toks.len() {
        let is_cfg_test =
            toks[i].is_punct("#") && matches(&toks, i + 1, &["[", "cfg", "(", "test", ")", "]"]);
        if is_cfg_test {
            // Skip to the `mod` item's body (or `;` for out-of-line mods).
            let mut j = i + 7;
            while j < toks.len() && !toks[j].is_ident("mod") && !toks[j].is_punct(";") {
                j += 1;
            }
            while j < toks.len() && !toks[j].is_punct("{") && !toks[j].is_punct(";") {
                j += 1;
            }
            if j < toks.len() && toks[j].is_punct("{") {
                let mut depth = 1;
                j += 1;
                while j < toks.len() && depth > 0 {
                    if toks[j].is_punct("{") {
                        depth += 1;
                    } else if toks[j].is_punct("}") {
                        depth -= 1;
                    }
                    j += 1;
                }
            }
            i = j.max(i + 1);
        } else {
            out.push(toks[i].clone());
            i += 1;
        }
    }
    out
}

/// Does `toks[at..]` start with these texts (idents or puncts)?
fn matches(toks: &[Tok], at: usize, texts: &[&str]) -> bool {
    texts
        .iter()
        .enumerate()
        .all(|(k, t)| toks.get(at + k).is_some_and(|tok| tok.text == *t))
}

/// L1: `DiskManager` page I/O and raw file I/O stay inside
/// `crates/storage` — everything else goes through the buffer pool, or
/// the paper's Fig. 12/14 I/O accounting silently loses pages.
fn check_layering(toks: &[Tok], push: &mut impl FnMut(u32, &'static str, String)) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Ident {
            match t.text.as_str() {
                "std" if matches(toks, i + 1, &["::", "fs"]) => push(
                    t.line,
                    "L1",
                    "raw file I/O (`std::fs`) outside crates/storage — all page I/O must \
                     flow through the buffer pool"
                        .into(),
                ),
                "File" if matches(toks, i + 1, &["::", "open"]) => push(
                    t.line,
                    "L1",
                    "raw `File::open` outside crates/storage — open data through \
                     StorageManager/HeapFile instead"
                        .into(),
                ),
                "OpenOptions" => push(
                    t.line,
                    "L1",
                    "raw `OpenOptions` outside crates/storage".into(),
                ),
                "DiskManager"
                    if toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
                        && toks
                            .get(i + 2)
                            .is_some_and(|n| DISK_METHODS.contains(&n.text.as_str())) =>
                {
                    push(
                        t.line,
                        "L1",
                        format!(
                            "`DiskManager::{}` outside crates/storage bypasses buffer-pool \
                             accounting",
                            toks[i + 2].text
                        ),
                    );
                }
                _ => {}
            }
        }
        if t.is_punct(".")
            && toks.get(i + 1).is_some_and(|n| {
                n.kind == TokKind::Ident && DISK_METHODS.contains(&n.text.as_str())
            })
            && toks.get(i + 2).is_some_and(|n| n.is_punct("("))
        {
            push(
                toks[i + 1].line,
                "L1",
                format!(
                    "`.{}()` call outside crates/storage bypasses buffer-pool accounting",
                    toks[i + 1].text
                ),
            );
        }
    }
}

/// L1 (WAL half): raw [`WalStore`] access (`.wal_append(` …) stays
/// inside `crates/storage/src/wal` — everywhere else goes through the
/// `Wal` front end (or the recovery entry point), whose group-commit
/// coalescing, LSN assignment, and record framing a direct store call
/// would bypass.
fn check_wal_confinement(toks: &[Tok], push: &mut impl FnMut(u32, &'static str, String)) {
    for (i, t) in toks.iter().enumerate() {
        if t.is_punct(".")
            && toks.get(i + 1).is_some_and(|n| {
                n.kind == TokKind::Ident && WAL_STORE_METHODS.contains(&n.text.as_str())
            })
            && toks.get(i + 2).is_some_and(|n| n.is_punct("("))
        {
            push(
                toks[i + 1].line,
                "L1",
                format!(
                    "`.{}()` (raw WAL store access) outside crates/storage/src/wal — go \
                     through the `Wal` front end so commits keep their LSN and fsync \
                     accounting",
                    toks[i + 1].text
                ),
            );
        }
    }
}

/// L2: string literals handed to obs name-taking APIs must be registered
/// in `obs::names` — EXPLAIN ANALYZE joins predictions to profiles by
/// name, so a typo silently breaks the join.
///
/// The same rule covers `sys.*` virtual-table names *anywhere* they
/// appear as a literal (catalog rows, query builders, match arms): the
/// language front-end, the virtual-scan operator, and the table catalog
/// all join on these strings. Only literals shaped like a name (all of
/// `[a-z0-9_.]`, something after the dot) are in scope, which keeps
/// format strings and prose out.
fn check_names(toks: &[Tok], reg: &Registry, push: &mut impl FnMut(u32, &'static str, String)) {
    for t in toks {
        if t.kind == TokKind::Str
            && t.text.len() > 4
            && t.text.starts_with("sys.")
            && t.text
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_')
            && !reg.contains(&t.text)
        {
            push(
                t.line,
                "L2",
                format!(
                    "sys virtual-table name {:?} is not registered in obs::names",
                    t.text
                ),
            );
        }
    }
    for (i, t) in toks.iter().enumerate() {
        // `.api("literal"` and `Span::enter("literal"`.
        let open = if t.is_punct(".")
            && toks
                .get(i + 1)
                .is_some_and(|n| OBS_NAME_APIS.contains(&n.text.as_str()))
        {
            i + 2
        } else if t.is_ident("Span") && matches(toks, i + 1, &["::", "enter"]) {
            i + 3
        } else {
            continue;
        };
        if !toks.get(open).is_some_and(|n| n.is_punct("(")) {
            continue;
        }
        if let Some(arg) = toks.get(open + 1) {
            if arg.kind == TokKind::Str && !reg.contains(&arg.text) {
                push(
                    arg.line,
                    "L2",
                    format!(
                        "name {:?} passed to an obs API is not registered in obs::names",
                        arg.text
                    ),
                );
            }
        }
    }
}

/// L2 (dead names): every scalar const in `obs::names` must have a call
/// site — an identifier usage in some other library source, tests
/// included. A name nothing references is untested vocabulary: it rots
/// silently until someone "reuses" it with different semantics.
///
/// Exemptions: multi-value tables (`ALL`), prefix consts (value ends in
/// `.`), and the `costmodel.drift.*` family, whose gauges are built
/// dynamically through `drift_gauge` — those instead must resolve to a
/// conformance operator (or the whole-query `total`).
fn check_dead_names(root: &Path, used_idents: &BTreeSet<String>, diags: &mut Vec<Diagnostic>) {
    let operators: BTreeSet<String> = drift_metrics(root).into_iter().map(|(_, n)| n).collect();
    for def in registry_const_defs(root) {
        let [value] = def.values.as_slice() else {
            continue; // tables like `ALL` aggregate other consts
        };
        if value.ends_with('.') {
            continue; // prefix const — a family root, not a name
        }
        if let Some(suffix) = value.strip_prefix(DRIFT_PREFIX) {
            if suffix != "total" && !operators.contains(suffix) {
                diags.push(Diagnostic {
                    file: NAMES_FILE.into(),
                    line: def.line,
                    rule: "L2",
                    msg: format!(
                        "dead name: drift gauge const `{}` ({value:?}) matches no \
                         conformance operator in DRIFT_METRICS",
                        def.name
                    ),
                });
            }
        } else if !used_idents.contains(&def.name) {
            diags.push(Diagnostic {
                file: NAMES_FILE.into(),
                line: def.line,
                rule: "L2",
                msg: format!(
                    "dead name: const `{}` ({value:?}) has no call site outside \
                     obs::names — wire it up or remove it",
                    def.name
                ),
            });
        }
    }
}

/// L4 (OID locks): lines with a `.raw_acquire(` call — the low-level,
/// unordered OID write-lock primitive. Sorted-order acquisition is the
/// whole deadlock-freedom argument of the concurrent transaction layer,
/// so the only legal call site is `TxnManager::lock_sorted` (which
/// rejects unsorted input) in [`OID_LOCK_FILE`]; propagation and replica
/// refresh must hand their fan-out closure to it rather than lock
/// piecemeal.
fn raw_acquire_sites(toks: &[Tok]) -> Vec<u32> {
    let mut sites = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.is_punct(".")
            && toks.get(i + 1).is_some_and(|n| n.is_ident("raw_acquire"))
            && toks.get(i + 2).is_some_and(|n| n.is_punct("("))
        {
            sites.push(toks[i + 1].line);
        }
    }
    sites
}

/// L3: count panic sites (`.unwrap(`, `.expect(`, `panic!`,
/// `unreachable!`) in library code.
fn count_panics(toks: &[Tok]) -> u64 {
    let mut n = 0;
    for (i, t) in toks.iter().enumerate() {
        if t.is_punct(".")
            && toks
                .get(i + 1)
                .is_some_and(|x| x.is_ident("unwrap") || x.is_ident("expect"))
            && toks.get(i + 2).is_some_and(|x| x.is_punct("("))
        {
            n += 1;
        }
        if (t.is_ident("panic") || t.is_ident("unreachable"))
            && toks.get(i + 1).is_some_and(|x| x.is_punct("!"))
        {
            n += 1;
        }
    }
    n
}

/// L4: a function must not take another buffer frame lock (`fetch`,
/// `new_page`, `prefetch`) while a page write guard (`data_mut()` /
/// `data.write()`) is still live — multi-page work goes through the
/// ordered batch helper `get_pages_batch`. Brace-depth and `drop(var)`
/// aware, mirroring the debug-build runtime check in `storage::buffer`.
fn check_lock_discipline(toks: &[Tok], push: &mut impl FnMut(u32, &'static str, String)) {
    let mut guards: Vec<(String, usize)> = Vec::new(); // (var, depth at binding)
    let mut pending: Vec<(usize, String)> = Vec::new(); // (token idx of `;`, var)
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate() {
        if let Some(k) = pending.iter().position(|(idx, _)| *idx == i) {
            guards.push((pending.remove(k).1, depth));
        }
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth = depth.saturating_sub(1);
            guards.retain(|(_, d)| *d <= depth);
        } else if t.is_ident("fn") {
            guards.clear();
            pending.clear();
        } else if t.is_ident("drop") && toks.get(i + 1).is_some_and(|n| n.is_punct("(")) {
            if let Some(v) = toks.get(i + 2) {
                if toks.get(i + 3).is_some_and(|n| n.is_punct(")")) {
                    guards.retain(|(name, _)| *name != v.text);
                }
            }
        } else if t.is_ident("let") {
            // `let [mut] v = … .data_mut( … ;`  /  `… .data.write( … ;`
            let mut at = i + 1;
            if toks.get(at).is_some_and(|n| n.is_ident("mut")) {
                at += 1;
            }
            let Some(var) = toks.get(at).filter(|n| n.kind == TokKind::Ident) else {
                continue;
            };
            let mut j = at + 1;
            let mut takes_guard = false;
            while j < toks.len() && !toks[j].is_punct(";") && !toks[j].is_punct("{") {
                if toks[j].is_punct(".")
                    && (matches(toks, j + 1, &["data_mut", "("])
                        || matches(toks, j + 1, &["data", ".", "write", "("]))
                {
                    takes_guard = true;
                }
                j += 1;
            }
            if takes_guard && j < toks.len() && toks[j].is_punct(";") {
                pending.push((j, var.text.clone()));
            }
        }
        if t.is_punct(".")
            && toks
                .get(i + 1)
                .is_some_and(|n| FRAME_ACQUIRERS.contains(&n.text.as_str()))
            && toks.get(i + 2).is_some_and(|n| n.is_punct("("))
        {
            if let Some((var, _)) = guards.first() {
                push(
                    toks[i + 1].line,
                    "L4",
                    format!(
                        "`.{}()` acquires a buffer frame while page write guard `{var}` is \
                         live — use BufferPool::get_pages_batch (the ordered batch helper) \
                         or drop the guard first",
                        toks[i + 1].text
                    ),
                );
            }
        }
    }
}
