//! Query-layer errors.

use fieldrep_catalog::CatalogError;
use fieldrep_core::DbError;
use fieldrep_storage::StorageError;
use std::fmt;

/// Result alias for query operations.
pub type Result<T> = std::result::Result<T, QueryError>;

/// Errors raised while planning or executing queries.
#[derive(Debug)]
pub enum QueryError {
    /// Engine failure.
    Db(DbError),
    /// Malformed query (bad path, bad filter, type mismatch).
    BadQuery(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Db(e) => write!(f, "engine error: {e}"),
            QueryError::BadQuery(m) => write!(f, "bad query: {m}"),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Db(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DbError> for QueryError {
    fn from(e: DbError) -> Self {
        QueryError::Db(e)
    }
}

impl From<CatalogError> for QueryError {
    fn from(e: CatalogError) -> Self {
        QueryError::Db(DbError::Catalog(e))
    }
}

impl From<StorageError> for QueryError {
    fn from(e: StorageError) -> Self {
        QueryError::Db(DbError::Storage(e))
    }
}
