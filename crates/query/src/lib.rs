//! # fieldrep-query
//!
//! Read and update query processing over the field-replication engine —
//! the workload of the paper's §6 cost model:
//!
//! * **read queries**: `retrieve (R.fields, R.sref.repfield) where <range
//!   on an indexed scalar field>` — executed through index-range or full
//!   scans, with projections answered from replicated values whenever a
//!   replication path covers them, collapse-path shortcuts when one
//!   covers a prefix (§3.3.3), and page-optimal functional joins
//!   otherwise (§6.2's "optimal join" assumption, implemented by
//!   batching and sorting OIDs before fetching);
//! * **update queries**: `replace (S.fields = newvalues) where …` —
//!   executed in physical order, with all replica propagation handled by
//!   the engine.

pub mod error;
pub mod exec;
pub mod explain;
pub mod plan;
pub mod sysq;

pub use error::{QueryError, Result};
pub use exec::{QueryResult, Row, UpdateResult};
pub use explain::{
    explain_analyze_read, explain_analyze_update, explain_read, explain_update, render, Explain,
    ExplainRow,
};
pub use plan::{AccessPlan, Plan, ProjPlan};
pub use sysq::{SysPlan, SysQuery, SysResult};

use fieldrep_model::Value;

/// A predicate over one dotted path (usually a base field; a replicated
/// path works too, using a path index if present, §3.3.4).
#[derive(Clone, Debug)]
pub enum Filter {
    /// `lo ≤ value ≤ hi` (inclusive).
    Range {
        /// Dotted path relative to the set (e.g. `"salary"`).
        path: String,
        /// Lower bound.
        lo: Value,
        /// Upper bound.
        hi: Value,
    },
    /// `value = v`.
    Eq {
        /// Dotted path relative to the set.
        path: String,
        /// The value to match.
        value: Value,
    },
}

impl Filter {
    /// The filtered path.
    pub fn path(&self) -> &str {
        match self {
            Filter::Range { path, .. } | Filter::Eq { path, .. } => path,
        }
    }

    /// Inclusive key bounds for an index range scan.
    pub fn bounds(&self) -> (Value, Value) {
        match self {
            Filter::Range { lo, hi, .. } => (lo.clone(), hi.clone()),
            Filter::Eq { value, .. } => (value.clone(), value.clone()),
        }
    }

    /// Evaluate against a concrete value (used by scan fallbacks).
    pub fn matches(&self, v: &Value) -> bool {
        fn le(a: &Value, b: &Value) -> bool {
            match (a, b) {
                (Value::Int(x), Value::Int(y)) => x <= y,
                (Value::Float(x), Value::Float(y)) => x <= y,
                (Value::Str(x), Value::Str(y)) => x <= y,
                _ => false,
            }
        }
        match self {
            Filter::Range { lo, hi, .. } => le(lo, v) && le(v, hi),
            Filter::Eq { value, .. } => value == v,
        }
    }
}

/// A read query (the paper's §6 `Read Query`).
#[derive(Clone, Debug)]
pub struct ReadQuery {
    /// The queried set.
    pub set: String,
    /// Optional selection predicate.
    pub filter: Option<Filter>,
    /// Projected paths, dotted, relative to the set (e.g. `"name"`,
    /// `"dept.name"`, `"dept.org.budget"`).
    pub projections: Vec<String>,
    /// Generate the output file T (§6's `C_generate/T` term). Off by
    /// default; the benchmark harness turns it on.
    pub spool_output: bool,
    /// Pad each output record to this many bytes (the paper's `t`).
    pub output_row_bytes: Option<usize>,
}

impl ReadQuery {
    /// Start building a read query on `set`.
    pub fn on(set: impl Into<String>) -> ReadQuery {
        ReadQuery {
            set: set.into(),
            filter: None,
            projections: Vec::new(),
            spool_output: false,
            output_row_bytes: None,
        }
    }

    /// Add a selection predicate.
    pub fn filter(mut self, f: Filter) -> Self {
        self.filter = Some(f);
        self
    }

    /// Add projection paths.
    pub fn project<I, S>(mut self, paths: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.projections.extend(paths.into_iter().map(Into::into));
        self
    }

    /// Enable output spooling with rows padded to `t` bytes.
    pub fn spool(mut self, row_bytes: usize) -> Self {
        self.spool_output = true;
        self.output_row_bytes = Some(row_bytes);
        self
    }
}

/// How an update query changes a field.
#[derive(Clone, Debug)]
pub enum Assign {
    /// Assign a constant.
    Set(Value),
    /// Add a delta to an integer field (guarantees the value changes, so
    /// propagation is really exercised).
    Increment(i64),
    /// Rewrite a string field `base#k` → `base#(k+1 mod n)`.
    CycleStr(usize),
}

/// An update query (the paper's §6 `Update Query`).
#[derive(Clone, Debug)]
pub struct UpdateQuery {
    /// The updated set.
    pub set: String,
    /// Optional selection predicate.
    pub filter: Option<Filter>,
    /// Field assignments.
    pub assignments: Vec<(String, Assign)>,
}

impl UpdateQuery {
    /// Start building an update query on `set`.
    pub fn on(set: impl Into<String>) -> UpdateQuery {
        UpdateQuery {
            set: set.into(),
            filter: None,
            assignments: Vec::new(),
        }
    }

    /// Add a selection predicate.
    pub fn filter(mut self, f: Filter) -> Self {
        self.filter = Some(f);
        self
    }

    /// Add an assignment.
    pub fn assign(mut self, field: impl Into<String>, a: Assign) -> Self {
        self.assignments.push((field.into(), a));
        self
    }
}
