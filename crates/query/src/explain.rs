//! `EXPLAIN` / `EXPLAIN ANALYZE`: compiled plans annotated with §6
//! cost-model predictions, and (for ANALYZE) the measured per-operator
//! page I/O of the execution they describe.
//!
//! Predictions come from [`fieldrep_costmodel::conformance`], fed with
//! [`Params`] measured from the live data
//! ([`Database::analyze_path`](fieldrep_core::Database::analyze_path) for
//! path cardinalities/sizes, the actual qualifying-row count for ANALYZE
//! selectivity, a documented range heuristic for plain EXPLAIN). ANALYZE
//! runs the query against a cold pool (`flush_all` + `reset_profile`),
//! joins each `Profile` operator to its prediction by name prefix, and
//! records the per-operator drift in the `costmodel.drift.{operator}`
//! gauge family so every profiled query's conformance lands in the
//! standard text/JSONL metric exports.

use std::fmt::Write as _;

use crate::error::{QueryError, Result};
use crate::exec::{QueryResult, UpdateResult};
use crate::plan::{AccessPlan, Plan, ProjPlan};
use crate::{Filter, ReadQuery, UpdateQuery};
use fieldrep_catalog::{IndexKind, Strategy};
use fieldrep_core::Database;
use fieldrep_costmodel::conformance::{
    drift_pct, matches_op, predict_read, predict_update, AccessShape, OpPrediction, ProjShape,
    ReadShape, UpdateShape,
};
use fieldrep_costmodel::{IndexSetting, ModelStrategy, Params};
use fieldrep_model::Value;
use fieldrep_obs::{names as obs_names, registry};

/// One operator row of an EXPLAIN report.
#[derive(Clone, Debug)]
pub struct ExplainRow {
    /// Operator name (the `Profile` label for measured rows, the
    /// prediction key otherwise).
    pub op: String,
    /// Metric suffix for the drift gauge (`None` for measured operators
    /// no prediction claimed).
    pub metric: Option<&'static str>,
    /// Model-predicted page I/O.
    pub predicted: f64,
    /// Measured page I/O (`None` for plain EXPLAIN).
    pub measured: Option<u64>,
    /// Measured wall time in nanoseconds (`None` for plain EXPLAIN).
    pub nanos: Option<u128>,
}

impl ExplainRow {
    /// Drift of the measured I/O from the prediction, when measured.
    pub fn drift(&self) -> Option<f64> {
        self.measured.map(|m| drift_pct(self.predicted, m as f64))
    }
}

/// A full EXPLAIN (ANALYZE) report.
#[derive(Clone, Debug)]
pub struct Explain {
    /// The compiled plan.
    pub plan: Plan,
    /// Per-operator rows, in plan order.
    pub rows: Vec<ExplainRow>,
    /// The model parameters the predictions used.
    pub params: Params,
    /// The index setting the predictions assumed.
    pub setting: IndexSetting,
    /// Sum of predicted pages.
    pub predicted_total: f64,
    /// Total measured page I/O (`None` for plain EXPLAIN).
    pub measured_total: Option<u64>,
    /// Qualifying rows (read) or updated objects (update), when executed.
    pub result_rows: Option<usize>,
    /// Observed workload of the replication paths this plan touches
    /// (path expression → live [`fieldrep_core::PathWorkload`]), from the
    /// database's per-path registry. Empty when nothing was recorded yet.
    pub observed: Vec<(String, fieldrep_core::PathWorkload)>,
}

impl Explain {
    /// Total drift, when the query was executed.
    pub fn total_drift(&self) -> Option<f64> {
        self.measured_total
            .map(|m| drift_pct(self.predicted_total, m as f64))
    }
}

/// Model parameters estimated for one query.
struct Estimate {
    params: Params,
    setting: IndexSetting,
}

/// Selectivity heuristic for plain EXPLAIN: an equality filter picks one
/// object; a finite integer range assumes keys dense over `0..n` (exact
/// for the §6 benchmark workloads); anything else defaults to 1%.
fn estimated_selectivity(filter: Option<&Filter>, n: f64) -> f64 {
    let floor = 1.0 / n.max(1.0);
    match filter {
        None => 1.0,
        Some(Filter::Eq { .. }) => floor,
        Some(Filter::Range { lo, hi, .. }) => match (lo, hi) {
            (Value::Int(a), Value::Int(b)) => {
                (((*b as f64) - (*a as f64) + 1.0) / n.max(1.0)).clamp(floor, 1.0)
            }
            _ => 0.01,
        },
    }
}

/// The index setting a plan's access path implies.
fn setting_of(plan: &Plan) -> IndexSetting {
    match &plan.access {
        AccessPlan::IndexRange {
            kind: IndexKind::Clustered,
            ..
        } => IndexSetting::Clustered,
        _ => IndexSetting::Unclustered,
    }
}

fn access_shape(plan: &Plan) -> AccessShape {
    match &plan.access {
        AccessPlan::FullScan => AccessShape::FullScan,
        AccessPlan::IndexRange { .. } => AccessShape::IndexRange,
        AccessPlan::PathIndexRange { .. } => AccessShape::PathIndexRange,
    }
}

fn read_shape(plan: &Plan, q: &ReadQuery) -> ReadShape {
    let projections = plan
        .projections
        .iter()
        .map(|p| match p {
            ProjPlan::BaseField { .. } => ProjShape::BaseField,
            ProjPlan::InPlaceReplica { .. } => ProjShape::InPlaceReplica,
            ProjPlan::SeparateReplica { .. } => ProjShape::SeparateReplica,
            // One fetch batch per hop object file, plus the terminal.
            ProjPlan::FunctionalJoin { hops, .. } => {
                ProjShape::FunctionalJoin { levels: hops.len() }
            }
            ProjPlan::CollapseThenJoin { remaining_hops, .. } => ProjShape::CollapseThenJoin {
                remaining_levels: remaining_hops.len() + 1,
            },
        })
        .collect();
    ReadShape {
        access: access_shape(plan),
        projections,
        spool: q.spool_output,
    }
}

/// Estimate [`Params`] for a read query: cardinalities and object sizes
/// come from [`Database::analyze_path`] on the first projected reference
/// path (defaults when every projection is a base field), selectivity
/// from `rows` (the actual qualifying count, ANALYZE) or the filter
/// heuristic (plain EXPLAIN).
///
/// `analyze_path` scans live data; callers must invoke this *before*
/// resetting the I/O profile for a measured run.
fn estimate_read(
    db: &mut Database,
    q: &ReadQuery,
    plan: &Plan,
    rows: Option<usize>,
) -> Result<Estimate> {
    let r_count = db.set_len(&q.set)? as f64;
    let read_sel = match rows {
        Some(n) => n as f64 / r_count.max(1.0),
        None => estimated_selectivity(q.filter.as_ref(), r_count),
    };
    let stats = first_path_stats(db, &q.set, q.projections.iter().map(String::as_str))?;
    let params = match stats {
        Some(st) => st.params(read_sel, Params::default().update_sel),
        None => Params {
            s_count: r_count.max(1.0),
            sharing: 1.0,
            read_sel,
            ..Params::default()
        },
    };
    Ok(Estimate {
        params,
        setting: setting_of(plan),
    })
}

/// Estimate [`Params`] for an update query. The updated set plays the
/// model's S role; sharing and object sizes come from a replication path
/// *terminating* at this set's type (the one propagation maintains), when
/// any exists.
fn estimate_update(
    db: &mut Database,
    q: &UpdateQuery,
    plan: &Plan,
    updated: Option<usize>,
) -> Result<Estimate> {
    let s_count = db.set_len(&q.set)? as f64;
    let update_sel = match updated {
        Some(n) => n as f64 / s_count.max(1.0),
        None => estimated_selectivity(q.filter.as_ref(), s_count),
    };
    let path_expr = propagation_path(db, q).map(|(expr, _)| expr);
    let params = match path_expr {
        Some(expr) => {
            let st = db.analyze_path(&expr).map_err(QueryError::from)?;
            st.params(Params::default().read_sel, update_sel)
        }
        None => Params {
            s_count: s_count.max(1.0),
            sharing: 1.0,
            update_sel,
            ..Params::default()
        },
    };
    Ok(Estimate {
        params,
        setting: setting_of(plan),
    })
}

/// Stats for the first projection that traverses reference hops, if any.
fn first_path_stats<'a>(
    db: &mut Database,
    set: &str,
    projections: impl Iterator<Item = &'a str>,
) -> Result<Option<fieldrep_core::PathStats>> {
    for proj in projections {
        let dotted = format!("{set}.{proj}");
        let resolved = db.catalog().resolve_path_str(&dotted);
        if let Ok(r) = resolved {
            if !r.hops.is_empty() {
                return Ok(Some(db.analyze_path(&dotted).map_err(QueryError::from)?));
            }
        }
    }
    Ok(None)
}

/// The replication path whose replicas an update of `q.set` would
/// maintain, with its model strategy: the first catalog path terminating
/// at the set's element type.
fn propagation_path(db: &Database, q: &UpdateQuery) -> Option<(String, ModelStrategy)> {
    let set_id = db.catalog().set_id(&q.set).ok()?;
    let elem = db.catalog().set(set_id).elem_type;
    db.catalog()
        .paths()
        .find(|p| p.terminal_type() == elem)
        .map(|p| {
            let strategy = match p.strategy {
                Strategy::InPlace => ModelStrategy::InPlace,
                Strategy::Separate => ModelStrategy::Separate,
            };
            (p.expr.to_string(), strategy)
        })
}

/// Join predictions with measured profile operators into report rows.
/// Every measured operator appears (unclaimed ones predict 0 pages);
/// unmatched predictions appear with no measurement.
fn join_rows(
    predictions: &[OpPrediction],
    measured: Option<&fieldrep_obs::Profile>,
) -> Vec<ExplainRow> {
    let Some(profile) = measured else {
        return predictions
            .iter()
            .map(|p| ExplainRow {
                op: p.key.clone(),
                metric: Some(p.metric),
                predicted: p.pages,
                measured: None,
                nanos: None,
            })
            .collect();
    };
    let mut claimed = vec![false; predictions.len()];
    let mut rows: Vec<ExplainRow> = profile
        .ops
        .iter()
        .map(|op| {
            let hit = predictions
                .iter()
                .enumerate()
                .find(|(i, p)| !claimed[*i] && matches_op(&p.key, &op.name));
            let (metric, predicted) = match hit {
                Some((i, p)) => {
                    claimed[i] = true;
                    (Some(p.metric), p.pages)
                }
                None => (None, 0.0),
            };
            ExplainRow {
                op: op.name.clone(),
                metric,
                predicted,
                measured: Some(op.io.disk_total()),
                nanos: Some(op.nanos),
            }
        })
        .collect();
    for (i, p) in predictions.iter().enumerate() {
        if !claimed[i] {
            rows.push(ExplainRow {
                op: p.key.clone(),
                metric: Some(p.metric),
                predicted: p.pages,
                measured: Some(0),
                nanos: None,
            });
        }
    }
    rows
}

/// Record per-operator and total drift in the `costmodel.drift.*` gauge
/// family (rounded percent), so conformance shows up in every metrics
/// export alongside the raw storage counters.
fn record_drift(e: &Explain) {
    let reg = registry();
    for row in &e.rows {
        if let (Some(metric), Some(drift)) = (row.metric, row.drift()) {
            reg.gauge(&obs_names::drift_gauge(metric))
                .set(drift.round() as i64);
        }
    }
    if let Some(total) = e.total_drift() {
        reg.gauge(obs_names::COSTMODEL_DRIFT_TOTAL)
            .set(total.round() as i64);
    }
    reg.counter(obs_names::COSTMODEL_CONFORMANCE_QUERIES).inc();
}

/// The replication-path expressions a plan reads through (projection
/// replicas and collapse jumps; separate projections list every path of
/// their group).
fn plan_path_exprs(db: &Database, plan: &Plan) -> Vec<String> {
    let mut v = Vec::new();
    for p in &plan.projections {
        match p {
            ProjPlan::InPlaceReplica { path, .. } | ProjPlan::CollapseThenJoin { path, .. } => {
                v.push(db.catalog().path(*path).expr.to_string());
            }
            ProjPlan::SeparateReplica { group, .. } => {
                for gp in &db.catalog().group(*group).paths {
                    v.push(db.catalog().path(*gp).expr.to_string());
                }
            }
            _ => {}
        }
    }
    v
}

/// Look up the observed workload for each (deduplicated) path expression.
fn observed_workload(
    db: &Database,
    exprs: impl IntoIterator<Item = String>,
) -> Vec<(String, fieldrep_core::PathWorkload)> {
    let mut seen = std::collections::BTreeSet::new();
    let mut out = Vec::new();
    for e in exprs {
        if seen.insert(e.clone()) {
            if let Some(w) = db.workload().get(&e) {
                out.push((e, w));
            }
        }
    }
    out
}

fn build_explain(
    plan: Plan,
    est: Estimate,
    predictions: Vec<OpPrediction>,
    profile: Option<&fieldrep_obs::Profile>,
    result_rows: Option<usize>,
    observed: Vec<(String, fieldrep_core::PathWorkload)>,
) -> Explain {
    let rows = join_rows(&predictions, profile);
    let predicted_total = predictions.iter().map(|p| p.pages).sum();
    let measured_total = profile.map(|p| p.total_io.disk_total());
    Explain {
        plan,
        rows,
        params: est.params,
        setting: est.setting,
        predicted_total,
        measured_total,
        result_rows,
        observed,
    }
}

/// `EXPLAIN <read query>`: compile and predict, without executing.
pub fn explain_read(db: &mut Database, q: &ReadQuery) -> Result<Explain> {
    let plan = q.plan(db)?;
    let est = estimate_read(db, q, &plan, None)?;
    let predictions = predict_read(&est.params, est.setting, &read_shape(&plan, q));
    let observed = observed_workload(db, plan_path_exprs(db, &plan));
    Ok(build_explain(plan, est, predictions, None, None, observed))
}

/// `EXPLAIN ANALYZE <read query>`: execute against a cold buffer pool and
/// report predicted vs. measured page I/O per operator. Selectivity uses
/// the actual qualifying-row count (like the "actual rows" of relational
/// EXPLAIN ANALYZE), and the drift gauges are updated.
pub fn explain_analyze_read(db: &mut Database, q: &ReadQuery) -> Result<(Explain, QueryResult)> {
    // Estimation scans live data — do it before the profiled window.
    let plan = q.plan(db)?;
    db.flush_all().map_err(QueryError::from)?;
    db.reset_profile();
    let result = q.run(db)?;
    let est = estimate_read(db, q, &plan, Some(result.rows.len()))?;
    let predictions = predict_read(&est.params, est.setting, &read_shape(&plan, q));
    let observed = observed_workload(db, plan_path_exprs(db, &plan));
    let e = build_explain(
        plan,
        est,
        predictions,
        Some(&result.profile),
        Some(result.rows.len()),
        observed,
    );
    record_drift(&e);
    Ok((e, result))
}

/// `EXPLAIN <update query>`: compile and predict, without executing.
pub fn explain_update(db: &mut Database, q: &UpdateQuery) -> Result<Explain> {
    let plan = q.plan(db)?;
    let est = estimate_update(db, q, &plan, None)?;
    let shape = UpdateShape {
        access: access_shape(&plan),
        propagation: propagation_path(db, q)
            .map(|(_, s)| s)
            .unwrap_or(ModelStrategy::None),
    };
    let predictions = predict_update(&est.params, est.setting, &shape);
    let observed = observed_workload(db, propagation_path(db, q).map(|(expr, _)| expr));
    Ok(build_explain(plan, est, predictions, None, None, observed))
}

/// `EXPLAIN ANALYZE <update query>`: execute against a cold pool and
/// report predicted vs. measured I/O, including the carved-out
/// `core.propagate` operator.
pub fn explain_analyze_update(
    db: &mut Database,
    q: &UpdateQuery,
) -> Result<(Explain, UpdateResult)> {
    let plan = q.plan(db)?;
    let shape = UpdateShape {
        access: access_shape(&plan),
        propagation: propagation_path(db, q)
            .map(|(_, s)| s)
            .unwrap_or(ModelStrategy::None),
    };
    db.flush_all().map_err(QueryError::from)?;
    db.reset_profile();
    let result = q.run(db)?;
    let est = estimate_update(db, q, &plan, Some(result.updated))?;
    let predictions = predict_update(&est.params, est.setting, &shape);
    let observed = observed_workload(db, propagation_path(db, q).map(|(expr, _)| expr));
    let e = build_explain(
        plan,
        est,
        predictions,
        Some(&result.profile),
        Some(result.updated),
        observed,
    );
    record_drift(&e);
    Ok((e, result))
}

/// Render a report. With measurements, each row shows predicted vs.
/// measured pages and the drift percentage.
pub fn render(e: &Explain) -> String {
    let analyze = e.measured_total.is_some();
    let mut out = String::new();
    out.push_str(&e.plan.to_string());
    let _ = writeln!(
        out,
        "model: f={:.1} |S|={} f_r={:.4} f_s={:.4} ({:?})",
        e.params.sharing,
        e.params.s_count as u64,
        e.params.read_sel,
        e.params.update_sel,
        e.setting
    );
    for (expr, w) in &e.observed {
        let _ = writeln!(
            out,
            "observed: {expr} P_up={:.3} f={:.1} reads={} updates={} pages r/u={:.1}/{:.1}",
            w.p_up(),
            w.fanout_ewma,
            w.reads,
            w.updates,
            w.read_pages_ewma,
            w.update_pages_ewma
        );
    }
    if analyze {
        let _ = writeln!(
            out,
            "  {:<40} {:>10} {:>10} {:>8} {:>10}",
            "operator", "predicted", "measured", "drift", "ms"
        );
    } else {
        let _ = writeln!(out, "  {:<40} {:>10}", "operator", "predicted");
    }
    for row in &e.rows {
        if analyze {
            let _ = writeln!(
                out,
                "  {:<40} {:>10.1} {:>10} {:>+7.0}% {:>10.3}",
                row.op,
                row.predicted,
                row.measured.unwrap_or(0),
                row.drift().unwrap_or(0.0),
                row.nanos.unwrap_or(0) as f64 / 1e6
            );
        } else {
            let _ = writeln!(out, "  {:<40} {:>10.1}", row.op, row.predicted);
        }
    }
    if analyze {
        let _ = writeln!(
            out,
            "  {:<40} {:>10.1} {:>10} {:>+7.0}%",
            "total",
            e.predicted_total,
            e.measured_total.unwrap_or(0),
            e.total_drift().unwrap_or(0.0)
        );
    } else {
        let _ = writeln!(out, "  {:<40} {:>10.1}", "total", e.predicted_total);
    }
    if let Some(rows) = e.result_rows {
        let _ = writeln!(out, "rows: {rows}");
    }
    out
}
