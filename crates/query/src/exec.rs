//! Query execution.
//!
//! Functional joins are performed the way the paper's cost model assumes
//! (§6.2): all target OIDs of a join step are collected, de-duplicated and
//! sorted into physical order, and each needed page is then fetched once.
//! With a cold buffer pool this makes measured page I/O directly
//! comparable to the analytical `C_read` / `C_update`.

use crate::error::{QueryError, Result};
use crate::plan::{plan_access, plan_projection, AccessPlan, Plan, ProjPlan};
use crate::{Assign, Filter, ReadQuery, UpdateQuery};
use fieldrep_btree::BTreeIndex;
use fieldrep_core::{read_object, value_key, Database};
use fieldrep_model::{Annotation, Object, Value};
use fieldrep_obs::{io as obs_io, names as obs_names, Profile, Span};
use fieldrep_storage::{oid_page_chunks, HeapFile, Oid};
use std::collections::HashMap;

/// One result row: one entry per projected column (`None` when a path was
/// broken by a NULL reference).
pub type Row = Vec<Option<Value>>;

/// The outcome of a read query.
#[derive(Debug)]
pub struct QueryResult {
    /// Result rows, in access-path order.
    pub rows: Vec<Row>,
    /// The plan that produced them.
    pub plan: Plan,
    /// The output file T, if the query was run with spooling; the caller
    /// drops it when done.
    pub output_file: Option<fieldrep_storage::FileId>,
    /// `EXPLAIN ANALYZE`-style per-operator breakdown: every plan
    /// operator's page-I/O delta and wall time. The per-operator deltas
    /// sum exactly to `profile.total_io` (telescoping segments).
    pub profile: Profile,
}

/// The outcome of an update query.
#[derive(Debug)]
pub struct UpdateResult {
    /// Number of objects updated.
    pub updated: usize,
    /// The plan used to locate them.
    pub plan: Plan,
    /// Per-operator breakdown; replica-propagation I/O done inside the
    /// apply loop is carved out as its own `core.propagate` operator.
    pub profile: Profile,
}

/// The page-chunk cap for batched fetches: half the pool, so decode work
/// under the pins always has free frames available.
fn max_batch_pages(db: &mut Database) -> usize {
    (db.sm().pool().capacity() / 2).clamp(1, 32)
}

/// Fetch many objects with each page read once: sort unique OIDs into
/// physical order, then move each adjacent page run with one grouped
/// disk read ([`fieldrep_storage::StorageManager::get_pages_batch`]) and
/// decode the objects while their pages are pinned.
fn fetch_batch(db: &mut Database, oids: &[Oid]) -> Result<HashMap<Oid, Object>> {
    let mut uniq: Vec<Oid> = oids.to_vec();
    uniq.sort_unstable();
    uniq.dedup();
    let mut map = HashMap::with_capacity(uniq.len());
    let max_pages = max_batch_pages(db);
    for (range, pages) in oid_page_chunks(&uniq, max_pages) {
        let pinned = db.sm().get_pages_batch(&pages)?;
        for &oid in &uniq[range] {
            let ctx = db.ctx();
            let obj = read_object(ctx.sm, ctx.cat, oid)?;
            map.insert(oid, obj);
        }
        drop(pinned);
    }
    Ok(map)
}

/// Evaluate the access path: the OIDs (in retrieval order) of the
/// qualifying set members.
fn run_access(db: &mut Database, plan: &Plan, filter: Option<&Filter>) -> Result<Vec<Oid>> {
    let set = db.catalog().set(plan.set).clone();
    match &plan.access {
        AccessPlan::IndexRange { index, .. } | AccessPlan::PathIndexRange { index, .. } => {
            let f = filter.ok_or_else(|| {
                QueryError::BadQuery("index access plan requires a filter".into())
            })?;
            let (lo, hi) = f.bounds();
            let tree = BTreeIndex::open(*index);
            let hits = tree.range(db.sm(), &value_key(&lo), &value_key(&hi))?;
            Ok(hits.into_iter().map(|(_, oid)| oid).collect())
        }
        AccessPlan::FullScan => {
            let hf = HeapFile::open(set.file);
            let mut oids = Vec::new();
            {
                let mut scan = hf.scan(db.sm())?;
                while let Some((oid, _, _)) = scan.next_record()? {
                    oids.push(oid);
                }
            }
            match filter {
                None => Ok(oids),
                Some(f) => {
                    // Evaluate the filter per object (base field or path
                    // dereference — the no-index fallback).
                    let mut keep = Vec::new();
                    for oid in oids {
                        let v = eval_filter_value(db, plan.set, f, oid)?;
                        if let Some(v) = v {
                            if f.matches(&v) {
                                keep.push(oid);
                            }
                        }
                    }
                    Ok(keep)
                }
            }
        }
    }
}

fn eval_filter_value(
    db: &mut Database,
    set: fieldrep_catalog::SetId,
    f: &Filter,
    oid: Oid,
) -> Result<Option<Value>> {
    // Reuse the projection machinery for a single object.
    let proj = plan_projection(db.catalog(), set, f.path())?;
    let mut rows = project(db, &[oid], std::slice::from_ref(&proj), None)?;
    Ok(rows.pop().and_then(|mut r| r.pop()).flatten())
}

/// Compute the projected columns for `oids`, one row per OID.
///
/// With `prof`, the sync/fetch phases and every projection operator close
/// their own profile segment (`None` when called for a nested filter
/// evaluation, whose I/O belongs to the enclosing access segment).
fn project(
    db: &mut Database,
    oids: &[Oid],
    projections: &[ProjPlan],
    mut prof: Option<&mut Profile>,
) -> Result<Vec<Row>> {
    let _span = Span::enter(obs_names::QUERY_PROJECT);
    // Deferred-propagation paths must be synced before their replicated
    // values are read (§8 / `Propagation::Deferred`).
    for proj in projections {
        match proj {
            ProjPlan::InPlaceReplica { path, .. } | ProjPlan::CollapseThenJoin { path, .. } => {
                db.sync_path(*path)?;
            }
            ProjPlan::SeparateReplica { group, .. } => {
                let paths: Vec<_> = db.catalog().group(*group).paths.clone();
                for p in paths {
                    db.sync_path(p)?;
                }
            }
            _ => {}
        }
    }
    if let Some(p) = prof.as_deref_mut() {
        p.mark(obs_names::OP_SYNC);
    }
    // Fetch the source objects once (optimally).
    let src = fetch_batch(db, oids)?;
    if let Some(p) = prof.as_deref_mut() {
        p.mark(obs_names::OP_FETCH);
    }
    let width: usize = projections.iter().map(super::plan::ProjPlan::width).sum();
    let mut rows: Vec<Row> = oids.iter().map(|_| Vec::with_capacity(width)).collect();

    for (proj_idx, proj) in projections.iter().enumerate() {
        let io_before = obs_io::snapshot();
        match proj {
            ProjPlan::BaseField { field } => {
                for (row, oid) in rows.iter_mut().zip(oids) {
                    row.push(Some(src[oid].values[*field].clone()));
                }
            }
            ProjPlan::InPlaceReplica { path, positions } => {
                for (row, oid) in rows.iter_mut().zip(oids) {
                    let vals = src[oid].replica_values(path.0);
                    for &pos in positions {
                        row.push(vals.map(|v| v[pos].clone()));
                    }
                }
            }
            ProjPlan::SeparateReplica { group, positions } => {
                let gdef = db.catalog().group(*group).clone();
                // Gather replica OIDs per row, then join optimally.
                let refs: Vec<Option<Oid>> = oids
                    .iter()
                    .map(|oid| {
                        src[oid].annotations.iter().find_map(|a| match a {
                            Annotation::ReplicaRef { group: g, oid } if *g == gdef.id.0 => {
                                Some(*oid)
                            }
                            _ => None,
                        })
                    })
                    .collect();
                let mut targets: Vec<Oid> = refs.iter().flatten().copied().collect();
                targets.sort_unstable();
                targets.dedup();
                let hf = HeapFile::open(gdef.file);
                let mut replica_vals: HashMap<Oid, Vec<Value>> = HashMap::new();
                // S'-scan: batched over the sorted replica OIDs, one
                // grouped read per adjacent page run.
                let max_pages = max_batch_pages(db);
                for (range, pages) in oid_page_chunks(&targets, max_pages) {
                    let pinned = db.sm().get_pages_batch(&pages)?;
                    for &t in &targets[range] {
                        let (_, payload) = hf.read(db.sm(), t)?;
                        replica_vals.insert(
                            t,
                            Value::decode_list(&payload).map_err(|e| {
                                QueryError::BadQuery(format!("bad replica object: {e}"))
                            })?,
                        );
                    }
                    drop(pinned);
                }
                for (row, r) in rows.iter_mut().zip(&refs) {
                    for &pos in positions {
                        row.push(r.and_then(|t| replica_vals.get(&t).map(|v| v[pos].clone())));
                    }
                }
            }
            ProjPlan::CollapseThenJoin {
                path,
                remaining_hops,
                terminal_fields,
            } => {
                // Jump through the replicated reference…
                let pdef = db.catalog().path(*path).clone();
                let mut current: Vec<Option<Oid>> = Vec::with_capacity(oids.len());
                for oid in oids {
                    let obj = &src[oid];
                    let ctx_vals = {
                        let mut ctx = db.ctx();
                        fieldrep_core::attach::read_path_values(&mut ctx, &pdef, obj)
                            .map_err(QueryError::from)?
                    };
                    let target = ctx_vals.and_then(|v| match v.first() {
                        Some(Value::Ref(o)) if !o.is_null() => Some(*o),
                        _ => None,
                    });
                    current.push(target);
                }
                let cols = join_chain(db, current, remaining_hops, terminal_fields)?;
                for (row, c) in rows.iter_mut().zip(cols) {
                    row.extend(c);
                }
            }
            ProjPlan::FunctionalJoin {
                hops,
                terminal_fields,
            } => {
                let current: Vec<Option<Oid>> = oids
                    .iter()
                    .map(|oid| match &src[oid].values[hops[0]] {
                        Value::Ref(o) if !o.is_null() => Some(*o),
                        _ => None,
                    })
                    .collect();
                let cols = join_chain(db, current, &hops[1..], terminal_fields)?;
                for (row, c) in rows.iter_mut().zip(cols) {
                    row.extend(c);
                }
            }
        }
        record_replica_reads(db, proj, oids, io_before);
        if let Some(p) = prof.as_deref_mut() {
            p.mark(format!("proj[{proj_idx}]:{}", proj.label()));
        }
    }
    Ok(rows)
}

/// Feed one projection's replicated reads into the database's observed
/// workload registry: `oids.len()` reads against the replication path(s)
/// the projection was answered by, with the projection's page-I/O delta
/// spread over them. Base fields and plain functional joins record
/// nothing — they do not touch replicated state.
fn record_replica_reads(
    db: &mut Database,
    proj: &ProjPlan,
    oids: &[Oid],
    io_before: obs_io::IoCounts,
) {
    if oids.is_empty() {
        return;
    }
    let pages = (obs_io::snapshot() - io_before).page_touches();
    let n = oids.len() as u64;
    match proj {
        ProjPlan::InPlaceReplica { path, .. } | ProjPlan::CollapseThenJoin { path, .. } => {
            let expr = db.catalog().path(*path).expr.to_string();
            db.workload().record_read(&expr, n, pages);
        }
        ProjPlan::SeparateReplica { group, .. } => {
            // Attribute to the group's paths rooted at the queried set
            // (the ones this projection could have been planned from).
            let set = oids.first().and_then(|&o| db.set_of(o).ok());
            let exprs: Vec<String> = db
                .catalog()
                .group(*group)
                .paths
                .iter()
                .map(|p| db.catalog().path(*p))
                .filter(|p| set.is_none_or(|s| p.set == s))
                .map(|p| p.expr.to_string())
                .collect();
            for e in exprs {
                db.workload().record_read(&e, n, pages);
            }
        }
        _ => {}
    }
}

/// Perform the remaining functional joins: `current` holds, per row, the
/// OID reached so far; `hops` are the ref fields still to follow; the
/// terminal fields are projected from the final objects. Each join level
/// is batched (page-optimal).
fn join_chain(
    db: &mut Database,
    mut current: Vec<Option<Oid>>,
    hops: &[usize],
    terminal_fields: &[usize],
) -> Result<Vec<Vec<Option<Value>>>> {
    for &hop in hops {
        let batch: Vec<Oid> = current.iter().flatten().copied().collect();
        let objs = fetch_batch(db, &batch)?;
        current = current
            .into_iter()
            .map(|c| {
                c.and_then(|oid| match &objs[&oid].values[hop] {
                    Value::Ref(o) if !o.is_null() => Some(*o),
                    _ => None,
                })
            })
            .collect();
    }
    let batch: Vec<Oid> = current.iter().flatten().copied().collect();
    let objs = fetch_batch(db, &batch)?;
    Ok(current
        .into_iter()
        .map(|c| match c {
            Some(oid) => terminal_fields
                .iter()
                .map(|&f| Some(objs[&oid].values[f].clone()))
                .collect(),
            None => terminal_fields.iter().map(|_| None).collect(),
        })
        .collect())
}

/// Project `projections` for one object using only the seqlock-validated
/// snapshot primitives (no batching: snapshot reads are per-object by
/// construction, since each read validates the versions of exactly the
/// OIDs whose bytes it consumed).
fn snapshot_project_into(
    db: &Database,
    oid: Oid,
    projections: &[ProjPlan],
    row: &mut Row,
) -> Result<()> {
    for proj in projections {
        match proj {
            ProjPlan::BaseField { field } => {
                let obj = db.snapshot_get(oid)?;
                row.push(Some(obj.values[*field].clone()));
            }
            ProjPlan::InPlaceReplica { path, positions } => {
                let vals = db.snapshot_path_values(oid, *path)?;
                for &pos in positions {
                    row.push(vals.as_ref().map(|v| v[pos].clone()));
                }
            }
            ProjPlan::SeparateReplica { group, positions } => {
                // Route through a replication path of the group rooted at
                // the queried set, so the snapshot read validates exactly
                // {source, shared replica}.
                let gdef = db.catalog().group(*group).clone();
                let set = db.set_of(oid)?;
                let pdef = gdef
                    .paths
                    .iter()
                    .map(|p| db.catalog().path(*p))
                    .find(|p| {
                        p.set == set
                            && positions
                                .iter()
                                .all(|&pos| p.terminal_fields.contains(&gdef.fields[pos]))
                    })
                    .cloned()
                    .ok_or_else(|| {
                        QueryError::BadQuery(
                            "no replication path of the group covers the projected fields \
                             from the queried set"
                                .into(),
                        )
                    })?;
                let vals = db.snapshot_path_values(oid, pdef.id)?;
                for &pos in positions {
                    let idx = pdef
                        .terminal_fields
                        .iter()
                        .position(|t| *t == gdef.fields[pos]);
                    row.push(match (&vals, idx) {
                        (Some(v), Some(i)) => Some(v[i].clone()),
                        _ => None,
                    });
                }
            }
            ProjPlan::CollapseThenJoin {
                path,
                remaining_hops,
                terminal_fields,
            } => {
                let target = db
                    .snapshot_path_values(oid, *path)?
                    .and_then(|v| match v.first() {
                        Some(Value::Ref(o)) if !o.is_null() => Some(*o),
                        _ => None,
                    });
                snapshot_join_into(db, target, remaining_hops, terminal_fields, row)?;
            }
            ProjPlan::FunctionalJoin {
                hops,
                terminal_fields,
            } => {
                let target = match &db.snapshot_get(oid)?.values[hops[0]] {
                    Value::Ref(o) if !o.is_null() => Some(*o),
                    _ => None,
                };
                snapshot_join_into(db, target, &hops[1..], terminal_fields, row)?;
            }
        }
    }
    Ok(())
}

/// Follow the remaining functional-join hops with per-object snapshot
/// reads. Each hop is individually validated; chain-wide atomicity is
/// not claimed — plain joins read base state, which the replica
/// consistency invariant does not cover (that is what replicated
/// projections are for).
fn snapshot_join_into(
    db: &Database,
    mut current: Option<Oid>,
    hops: &[usize],
    terminal_fields: &[usize],
    row: &mut Row,
) -> Result<()> {
    for &hop in hops {
        current = match current {
            Some(oid) => match &db.snapshot_get(oid)?.values[hop] {
                Value::Ref(o) if !o.is_null() => Some(*o),
                _ => None,
            },
            None => None,
        };
    }
    match current {
        Some(oid) => {
            let obj = db.snapshot_get(oid)?;
            for &f in terminal_fields {
                row.push(Some(obj.values[f].clone()));
            }
        }
        None => row.extend(terminal_fields.iter().map(|_| None)),
    }
    Ok(())
}

/// The qualifying OIDs for a snapshot-mode query: always a heap scan
/// (B-tree pages have no per-OID version to validate), with the filter
/// evaluated through the snapshot primitives.
fn snapshot_access(db: &Database, plan: &Plan, filter: Option<&Filter>) -> Result<Vec<Oid>> {
    let set = db.catalog().set(plan.set).clone();
    let hf = HeapFile::open(set.file);
    let mut oids = Vec::new();
    {
        let mut scan = hf.scan(db.sm())?;
        while let Some((oid, _, _)) = scan.next_record()? {
            oids.push(oid);
        }
    }
    let Some(f) = filter else { return Ok(oids) };
    let fproj = plan_projection(db.catalog(), plan.set, f.path())?;
    let mut keep = Vec::with_capacity(oids.len());
    for oid in oids {
        let mut row = Row::new();
        snapshot_project_into(db, oid, std::slice::from_ref(&fproj), &mut row)?;
        if row
            .first()
            .and_then(|v| v.as_ref())
            .is_some_and(|v| f.matches(v))
        {
            keep.push(oid);
        }
    }
    Ok(keep)
}

/// Compute the concrete `(field, new value)` changes of `assignments`
/// against the current state `obj`.
fn eval_assignments<'a>(
    def: &fieldrep_model::TypeDef,
    obj: &Object,
    assignments: &'a [(String, Assign)],
) -> Result<Vec<(&'a str, Value)>> {
    let mut changes: Vec<(&str, Value)> = Vec::new();
    for (field, assign) in assignments {
        let idx = def
            .field_index(field)
            .ok_or_else(|| QueryError::BadQuery(format!("no field {field}")))?;
        let new = match assign {
            Assign::Set(v) => v.clone(),
            Assign::Increment(d) => match &obj.values[idx] {
                Value::Int(x) => Value::Int(x + d),
                other => {
                    return Err(QueryError::BadQuery(format!(
                        "Increment on non-int field {field} ({other:?})"
                    )))
                }
            },
            Assign::CycleStr(suffixes) => match &obj.values[idx] {
                Value::Str(s) => {
                    let base = s.split('#').next().unwrap_or("").to_string();
                    let n: usize = s
                        .split('#')
                        .nth(1)
                        .and_then(|x| x.parse().ok())
                        .unwrap_or(0);
                    let next = (n + 1) % (*suffixes).max(1);
                    Value::Str(format!("{base}#{next}"))
                }
                other => {
                    return Err(QueryError::BadQuery(format!(
                        "CycleStr on non-string field {field} ({other:?})"
                    )))
                }
            },
        };
        changes.push((field.as_str(), new));
    }
    Ok(changes)
}

impl ReadQuery {
    /// Plan this query against the catalog without running it.
    pub fn plan(&self, db: &Database) -> Result<Plan> {
        let set = db.catalog().set_id(&self.set)?;
        let access = plan_access(
            db.catalog(),
            set,
            self.filter.as_ref().map(super::Filter::path),
        )?;
        let projections = self
            .projections
            .iter()
            .map(|p| plan_projection(db.catalog(), set, p))
            .collect::<Result<Vec<_>>>()?;
        Ok(Plan {
            set,
            access,
            projections,
        })
    }

    /// Execute the query.
    pub fn run(&self, db: &mut Database) -> Result<QueryResult> {
        let span = Span::enter(obs_names::QUERY_READ);
        let mut prof = Profile::start();
        let plan = self.plan(db)?;
        prof.mark(obs_names::OP_PLAN);
        let access_span = span.child(&plan.access.label());
        let oids = run_access(db, &plan, self.filter.as_ref())?;
        access_span.note("oids", oids.len());
        drop(access_span);
        prof.mark(plan.access.label());
        let rows = project(db, &oids, &plan.projections, Some(&mut prof))?;
        span.note("rows", rows.len());

        // Generate the output file T if requested (§6.5.1 charges P_t for
        // it). Rows are padded to `output_row_bytes` to model `t`.
        let output_file = if self.spool_output {
            let hf = HeapFile::create(db.sm())?;
            for row in &rows {
                let vals: Vec<Value> = row
                    .iter()
                    .map(|v| v.clone().unwrap_or(Value::Unit))
                    .collect();
                let mut payload = Value::encode_list(&vals);
                if let Some(target) = self.output_row_bytes {
                    if payload.len() < target {
                        payload.resize(target, 0);
                    }
                }
                hf.rec_insert(db.sm(), 0xFFFD, &payload)?;
            }
            Some(hf.file)
        } else {
            None
        };
        prof.mark(obs_names::OP_SPOOL);

        Ok(QueryResult {
            rows,
            plan,
            output_file,
            profile: prof.finish(),
        })
    }

    /// Snapshot-consistent execution over a shared `&Database`, safe to
    /// run concurrently with [`Database::update_txn`] writers: every
    /// replicated value is read through the seqlock-validated snapshot
    /// primitives, so an in-flight replica ripple is never observed
    /// half-applied. Differences from [`ReadQuery::run`]: the access
    /// path is always a heap scan (the filter evaluated per object with
    /// snapshot reads), deferred paths are *not* synced (a snapshot
    /// reader must not write), and no output file is spooled.
    pub fn run_snapshot(&self, db: &Database) -> Result<QueryResult> {
        let span = Span::enter(obs_names::QUERY_READ);
        let mut prof = Profile::start();
        let mut plan = self.plan(db)?;
        plan.access = AccessPlan::FullScan;
        prof.mark(obs_names::OP_PLAN);
        let oids = snapshot_access(db, &plan, self.filter.as_ref())?;
        prof.mark(plan.access.label());
        let mut rows = Vec::with_capacity(oids.len());
        for &oid in &oids {
            let mut row = Row::new();
            snapshot_project_into(db, oid, &plan.projections, &mut row)?;
            rows.push(row);
        }
        span.note("rows", rows.len());
        prof.mark(obs_names::QUERY_PROJECT);
        Ok(QueryResult {
            rows,
            plan,
            output_file: None,
            profile: prof.finish(),
        })
    }
}

impl UpdateQuery {
    /// Plan this query.
    pub fn plan(&self, db: &Database) -> Result<Plan> {
        let set = db.catalog().set_id(&self.set)?;
        let access = plan_access(
            db.catalog(),
            set,
            self.filter.as_ref().map(super::Filter::path),
        )?;
        Ok(Plan {
            set,
            access,
            projections: Vec::new(),
        })
    }

    /// Execute the query: locate qualifying objects and apply the
    /// assignments through the engine (which propagates to all replicas).
    pub fn run(&self, db: &mut Database) -> Result<UpdateResult> {
        let span = Span::enter(obs_names::QUERY_UPDATE);
        let mut prof = Profile::start();
        let plan = self.plan(db)?;
        prof.mark(obs_names::OP_PLAN);
        let access_span = span.child(&plan.access.label());
        let mut oids = run_access(db, &plan, self.filter.as_ref())?;
        access_span.note("oids", oids.len());
        drop(access_span);
        // Visit in physical order (the paper propagates and updates in
        // clustered order).
        oids.sort_unstable();
        oids.dedup();
        prof.mark(plan.access.label());
        span.note("updates", oids.len());
        // Drain any propagation I/O a previous (unprofiled) caller left
        // accumulated on this thread, so "apply" splits only its own.
        let _ = obs_io::component_take(obs_names::CORE_PROPAGATE);

        let set = db.catalog().set(plan.set).clone();
        let def = db.catalog().type_def(set.elem_type).clone();
        for oid in &oids {
            let obj = db.get(*oid)?;
            let changes = eval_assignments(&def, &obj, &self.assignments)?;
            db.update(*oid, &changes)?;
        }
        prof.mark(obs_names::OP_APPLY);
        prof.split_last(
            obs_names::CORE_PROPAGATE,
            obs_io::component_take(obs_names::CORE_PROPAGATE),
        );
        Ok(UpdateResult {
            updated: oids.len(),
            plan,
            profile: prof.finish(),
        })
    }

    /// Concurrent-safe execution over a shared `&Database`: qualifying
    /// objects are located with snapshot reads (heap scan, like
    /// [`ReadQuery::run_snapshot`]) and each update is applied through
    /// [`Database::update_txn`], which locks the update's whole fan-out
    /// closure in sorted OID order before touching anything.
    pub fn run_txn(&self, db: &Database) -> Result<UpdateResult> {
        let span = Span::enter(obs_names::QUERY_UPDATE);
        let mut prof = Profile::start();
        let mut plan = self.plan(db)?;
        plan.access = AccessPlan::FullScan;
        prof.mark(obs_names::OP_PLAN);
        let mut oids = snapshot_access(db, &plan, self.filter.as_ref())?;
        oids.sort_unstable();
        oids.dedup();
        prof.mark(plan.access.label());
        span.note("updates", oids.len());

        let set = db.catalog().set(plan.set).clone();
        let def = db.catalog().type_def(set.elem_type).clone();
        for oid in &oids {
            // Assignments are evaluated against a snapshot and applied
            // under the closure locks; `update_txn` re-validates the
            // closure, not the values, so read-modify-write assignments
            // (Increment/CycleStr) are last-writer-wins at object
            // granularity, like the plain path.
            let obj = db.snapshot_get(*oid)?;
            let changes = eval_assignments(&def, &obj, &self.assignments)?;
            db.update_txn(*oid, &changes)?;
        }
        prof.mark(obs_names::OP_APPLY);
        Ok(UpdateResult {
            updated: oids.len(),
            plan,
            profile: prof.finish(),
        })
    }
}
