//! Virtual scans over the `sys` introspection catalog.
//!
//! A [`SysQuery`] is the read-only plan operator behind
//! `retrieve (...) from sys.<table> where ...` in `lang`: it materialises
//! one of the [`fieldrep_obs::sys`] virtual tables (plus the
//! database-backed ones, `sys.pool`, `sys.workload`, and `sys.txn`),
//! applies an
//! optional [`Filter`] over a named column, and projects the requested
//! columns.
//!
//! Virtual scans cost **zero page I/O** by construction — row builders
//! only read in-memory telemetry state — so the per-operator [`Profile`]
//! they return preserves the invariant that operator I/O telescopes to
//! the pool totals (every segment is zero). The execution path is also
//! deliberately free of spans and metric updates: a `retrieve` over
//! `sys.metrics` must observe a registry identical to what a JSONL
//! snapshot taken right after would serialise.

use std::fmt::Write as _;

use crate::error::{QueryError, Result};
use crate::exec::Row;
use crate::Filter;
use fieldrep_core::Database;
use fieldrep_model::Value;
use fieldrep_obs::sys::{self, SysValue, TableDef};
use fieldrep_obs::{names as obs_names, Profile};

/// A read-only query over one `sys.*` virtual table.
#[derive(Clone, Debug)]
pub struct SysQuery {
    /// Full table name (`"sys.metrics"`, ... — see [`sys::TABLES`]).
    pub table: String,
    /// Projected column names; empty projects every column in catalog
    /// order.
    pub columns: Vec<String>,
    /// Optional predicate; [`Filter::path`] names the filtered column.
    pub filter: Option<Filter>,
}

impl SysQuery {
    /// Start building a query on `table`.
    pub fn on(table: impl Into<String>) -> SysQuery {
        SysQuery {
            table: table.into(),
            columns: Vec::new(),
            filter: None,
        }
    }

    /// Add projected columns.
    pub fn project<I, S>(mut self, columns: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.columns.extend(columns.into_iter().map(Into::into));
        self
    }

    /// Add a selection predicate.
    pub fn filter(mut self, f: Filter) -> Self {
        self.filter = Some(f);
        self
    }

    /// Resolve the table and column names against the `sys` catalog.
    pub fn plan(&self) -> Result<SysPlan> {
        let table = sys::table(&self.table).ok_or_else(|| {
            QueryError::BadQuery(format!(
                "unknown sys table {:?} (tables: {})",
                self.table,
                sys::TABLES
                    .iter()
                    .map(|t| t.name)
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        })?;
        let projection = if self.columns.is_empty() {
            (0..table.columns.len()).collect::<Vec<_>>()
        } else {
            self.columns
                .iter()
                .map(|c| column_index(table, c))
                .collect::<Result<Vec<_>>>()?
        };
        let filter_column = match &self.filter {
            Some(f) => Some(column_index(table, f.path())?),
            None => None,
        };
        Ok(SysPlan {
            table,
            projection,
            filter_column,
        })
    }

    /// Execute the scan. Span-free and metrics-free: the only observable
    /// side effect is the returned zero-I/O profile.
    pub fn run(&self, db: &mut Database) -> Result<SysResult> {
        let mut prof = Profile::start();
        let plan = self.plan()?;
        prof.mark(obs_names::OP_PLAN);
        let raw = raw_rows(db, plan.table);
        let rows: Vec<Row> = raw
            .into_iter()
            .map(|row| row.into_iter().map(|c| c.map(value_of)).collect::<Row>())
            .filter(|row: &Row| match (&self.filter, plan.filter_column) {
                (Some(f), Some(col)) => row[col].as_ref().is_some_and(|v| f.matches(v)),
                _ => true,
            })
            .map(|row| plan.projection.iter().map(|&i| row[i].clone()).collect())
            .collect();
        prof.mark(plan.access_label());
        Ok(SysResult {
            columns: plan.column_names(),
            rows,
            profile: prof.finish(),
        })
    }

    /// `EXPLAIN`: the plan rendering, without executing.
    pub fn explain_text(&self) -> Result<String> {
        Ok(self.plan()?.render())
    }

    /// `EXPLAIN ANALYZE`: execute, then append the per-operator profile
    /// (every segment zero pages — the virtual-scan invariant) and the
    /// row count to the plan rendering.
    pub fn explain_analyze_text(&self, db: &mut Database) -> Result<(String, SysResult)> {
        let result = self.run(db)?;
        let mut out = self.plan()?.render();
        let _ = writeln!(out, "  {:<40} {:>10} {:>10}", "operator", "pages", "ms");
        for op in &result.profile.ops {
            let _ = writeln!(
                out,
                "  {:<40} {:>10} {:>10.3}",
                op.name,
                op.io.page_touches(),
                op.nanos as f64 / 1e6
            );
        }
        let _ = writeln!(
            out,
            "  {:<40} {:>10} {:>10.3}",
            "total",
            result.profile.total_io.page_touches(),
            result.profile.total_nanos as f64 / 1e6
        );
        let _ = writeln!(out, "rows: {}", result.rows.len());
        Ok((out, result))
    }
}

/// A resolved virtual-scan plan.
#[derive(Clone, Debug)]
pub struct SysPlan {
    /// The scanned table.
    pub table: &'static TableDef,
    /// Projected column indexes, in output order.
    pub projection: Vec<usize>,
    /// Filtered column index, when a predicate is present.
    pub filter_column: Option<usize>,
}

impl SysPlan {
    /// Profile label of the scan operator, in the shared
    /// `access:<shape>` family.
    pub fn access_label(&self) -> String {
        format!("{}:virtual({})", obs_names::OP_ACCESS, self.table.name)
    }

    /// Projected column names, in output order.
    pub fn column_names(&self) -> Vec<String> {
        self.projection
            .iter()
            .map(|&i| self.table.columns[i].to_string())
            .collect()
    }

    /// Human-readable plan text (the `EXPLAIN` body).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "access: virtual scan of {} (zero page I/O)",
            self.table.name
        );
        let _ = writeln!(out, "project: {}", self.column_names().join(", "));
        if let Some(col) = self.filter_column {
            let _ = writeln!(out, "filter: on column {}", self.table.columns[col]);
        }
        out
    }
}

/// The outcome of a virtual scan.
#[derive(Debug)]
pub struct SysResult {
    /// Projected column names, in row order.
    pub columns: Vec<String>,
    /// Result rows (`None` = NULL cell).
    pub rows: Vec<Row>,
    /// Per-operator breakdown; every segment does zero page I/O.
    pub profile: Profile,
}

/// Index of column `name` in `table`, or a [`QueryError::BadQuery`]
/// naming the valid columns.
fn column_index(table: &TableDef, name: &str) -> Result<usize> {
    table
        .columns
        .iter()
        .position(|c| *c == name)
        .ok_or_else(|| {
            QueryError::BadQuery(format!(
                "no column {:?} in {} (columns: {})",
                name,
                table.name,
                table.columns.join(", ")
            ))
        })
}

fn value_of(v: SysValue) -> Value {
    match v {
        SysValue::Int(i) => Value::Int(i),
        SysValue::Float(f) => Value::Float(f),
        SysValue::Str(s) => Value::Str(s),
    }
}

/// Materialise the unprojected, unfiltered rows of `table`. The
/// database-backed tables are built here; everything else delegates to
/// the [`sys`] row builders.
fn raw_rows(db: &mut Database, table: &'static TableDef) -> Vec<sys::SysRow> {
    let name = table.name;
    if name == obs_names::SYS_TXN {
        let s = db.txn().stats();
        return [
            ("active", s.active),
            ("begun", s.begun),
            ("committed", s.committed),
            ("aborted", s.aborted),
            ("conflicts", s.conflicts),
            ("lock_waits", s.lock_waits),
            ("snapshot_retries", s.snapshot_retries),
            ("commit_epoch", s.commit_epoch),
            ("locks_tracked", s.locks_tracked),
        ]
        .into_iter()
        .map(|(counter, value)| {
            vec![
                Some(SysValue::Str(counter.to_string())),
                Some(SysValue::Int(value.min(i64::MAX as u64) as i64)),
            ]
        })
        .collect();
    }
    if name == obs_names::SYS_WAL {
        let w = db.sm().wal_stats();
        let r = db.sm().recovery_report();
        return [
            ("enabled", db.sm().wal_enabled() as u64),
            ("last_lsn", w.last_lsn),
            ("durable_lsn", w.durable_lsn),
            ("appends", w.appends),
            ("fsyncs", w.fsyncs),
            ("bytes", w.bytes),
            ("group_commit_coalesced", w.coalesced),
            ("autocommits", w.autocommits),
            ("recovery_scanned_records", r.scanned_records as u64),
            ("recovery_truncated_bytes", r.truncated_bytes),
            ("recovery_committed_txns", r.committed_txns as u64),
            ("recovery_replayed_pages", r.replayed_pages),
        ]
        .into_iter()
        .map(|(counter, value)| {
            vec![
                Some(SysValue::Str(counter.to_string())),
                Some(SysValue::Int(value.min(i64::MAX as u64) as i64)),
            ]
        })
        .collect();
    }
    if name == obs_names::SYS_POOL {
        return db
            .sm()
            .pool()
            .shard_stats()
            .iter()
            .map(|s| {
                vec![
                    Some(SysValue::Int(s.shard as i64)),
                    Some(SysValue::Int(s.frames as i64)),
                    Some(SysValue::Int(s.resident as i64)),
                    Some(SysValue::Int(s.dirty as i64)),
                    Some(SysValue::Int(s.pinned as i64)),
                ]
            })
            .collect();
    }
    if name == obs_names::SYS_WORKLOAD {
        return db
            .workload()
            .all()
            .iter()
            .map(|(path, w)| {
                vec![
                    Some(SysValue::Str(path.clone())),
                    Some(SysValue::Int(w.reads.min(i64::MAX as u64) as i64)),
                    Some(SysValue::Int(w.updates.min(i64::MAX as u64) as i64)),
                    Some(SysValue::Float(w.p_up())),
                    Some(SysValue::Float(w.fanout_ewma)),
                    Some(SysValue::Float(w.read_pages_ewma)),
                    Some(SysValue::Float(w.update_pages_ewma)),
                ]
            })
            .collect();
    }
    if name == obs_names::SYS_METRICS {
        sys::metrics_rows()
    } else if name == obs_names::SYS_TIMELINE {
        sys::timeline_rows()
    } else if name == obs_names::SYS_RECORDER {
        sys::recorder_rows()
    } else if name == obs_names::SYS_DRIFT {
        sys::drift_rows()
    } else {
        sys::slow_query_rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fieldrep_core::DbConfig;

    fn db() -> Database {
        Database::in_memory(DbConfig {
            pool_pages: 64,
            ..DbConfig::default()
        })
    }

    #[test]
    fn metrics_scan_is_zero_io_and_width_consistent() {
        let mut db = db();
        fieldrep_obs::registry().counter(obs_names::OBS_RECORDER_EVENTS);
        let r = SysQuery::on(obs_names::SYS_METRICS).run(&mut db).unwrap();
        assert_eq!(r.columns.len(), 10);
        assert!(!r.rows.is_empty());
        assert!(r.rows.iter().all(|row| row.len() == 10));
        assert_eq!(
            r.profile.total_io.page_touches(),
            0,
            "virtual scans are free"
        );
        assert_eq!(r.profile.total_io, r.profile.ops_io_sum());
        assert!(r
            .profile
            .ops
            .iter()
            .any(|op| op.name == format!("{}:virtual(sys.metrics)", obs_names::OP_ACCESS)));
    }

    #[test]
    fn projection_and_filter_narrow_the_result() {
        let mut db = db();
        let needle = obs_names::OBS_RECORDER_EVENTS;
        fieldrep_obs::registry().counter(needle);
        let r = SysQuery::on(obs_names::SYS_METRICS)
            .project(["name", "kind"])
            .filter(Filter::Eq {
                path: "name".into(),
                value: Value::Str(needle.into()),
            })
            .run(&mut db)
            .unwrap();
        assert_eq!(r.columns, vec!["name".to_string(), "kind".to_string()]);
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Some(Value::Str(needle.into())));
        assert_eq!(r.rows[0][1], Some(Value::Str("counter".into())));
    }

    #[test]
    fn pool_scan_reflects_shard_stats() {
        let mut db = db();
        let r = SysQuery::on(obs_names::SYS_POOL).run(&mut db).unwrap();
        let shards = db.sm().pool().shard_stats();
        assert_eq!(r.rows.len(), shards.len());
        let frames: i64 = r
            .rows
            .iter()
            .map(|row| match row[1] {
                Some(Value::Int(n)) => n,
                _ => 0,
            })
            .sum();
        assert_eq!(frames as usize, db.sm().pool().capacity());
        assert_eq!(r.profile.total_io.page_touches(), 0);
    }

    #[test]
    fn unknown_table_and_column_are_bad_queries() {
        let mut db = db();
        let e = SysQuery::on("sys.nope").run(&mut db).unwrap_err();
        assert!(matches!(e, QueryError::BadQuery(_)));
        let e = SysQuery::on(obs_names::SYS_POOL)
            .project(["bogus"])
            .run(&mut db)
            .unwrap_err();
        assert!(e.to_string().contains("bogus"));
        let e = SysQuery::on(obs_names::SYS_POOL)
            .filter(Filter::Eq {
                path: "nope".into(),
                value: Value::Int(0),
            })
            .run(&mut db)
            .unwrap_err();
        assert!(e.to_string().contains("nope"));
    }

    #[test]
    fn explain_renders_plan_and_analyze_appends_zero_page_profile() {
        let mut db = db();
        let q = SysQuery::on(obs_names::SYS_POOL).project(["shard", "resident"]);
        let plain = q.explain_text().unwrap();
        assert!(plain.contains("virtual scan of sys.pool"));
        assert!(plain.contains("project: shard, resident"));
        let (text, result) = q.explain_analyze_text(&mut db).unwrap();
        assert!(text.contains("rows:"));
        assert!(text.contains(&format!("{}:virtual(sys.pool)", obs_names::OP_ACCESS)));
        assert_eq!(result.profile.total_io.page_touches(), 0);
    }

    #[test]
    fn txn_scan_reflects_transaction_stats() {
        let mut db = db();
        let t = db.txn().begin();
        db.txn().commit(t);
        let r = SysQuery::on(obs_names::SYS_TXN)
            .filter(Filter::Eq {
                path: "counter".into(),
                value: Value::Str("committed".into()),
            })
            .run(&mut db)
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][1], Some(Value::Int(1)));
        assert_eq!(r.profile.total_io.page_touches(), 0);
    }

    #[test]
    fn wal_scan_reflects_durability_state() {
        // Without a WAL: enabled = 0, every counter zero.
        let mut db = db();
        let r = SysQuery::on(obs_names::SYS_WAL)
            .filter(Filter::Eq {
                path: "counter".into(),
                value: Value::Str("enabled".into()),
            })
            .run(&mut db)
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][1], Some(Value::Int(0)));

        // With a WAL: enabled = 1, and a committed update moves fsyncs.
        let mut db = Database::with_disk_and_wal(
            Box::new(fieldrep_storage::MemDisk::new()),
            Box::new(fieldrep_storage::MemWalStore::new()),
            DbConfig {
                pool_pages: 64,
                ..DbConfig::default()
            },
        )
        .unwrap();
        use fieldrep_model::{FieldType, TypeDef};
        db.define_type(TypeDef::new("D", vec![("name", FieldType::Str)]))
            .unwrap();
        db.create_set("Ds", "D").unwrap();
        let d = db.insert("Ds", vec![Value::Str("a".into())]).unwrap();
        db.update_txn(d, &[("name", Value::Str("b".into()))])
            .unwrap();
        let r = SysQuery::on(obs_names::SYS_WAL).run(&mut db).unwrap();
        let get = |key: &str| {
            r.rows
                .iter()
                .find(|row| row[0] == Some(Value::Str(key.into())))
                .and_then(|row| match row[1] {
                    Some(Value::Int(n)) => Some(n),
                    _ => None,
                })
                .unwrap()
        };
        assert_eq!(get("enabled"), 1);
        assert!(get("fsyncs") >= 1, "the commit fsynced");
        assert!(get("appends") >= 3, "Begin + image(s) + Commit");
        assert_eq!(get("last_lsn"), get("durable_lsn"));
        assert_eq!(r.profile.total_io.page_touches(), 0);
    }

    #[test]
    fn slow_query_scan_has_catalog_width() {
        let mut db = db();
        let r = SysQuery::on(obs_names::SYS_SLOW_QUERIES)
            .run(&mut db)
            .unwrap();
        assert_eq!(r.columns.len(), 8);
        assert!(r.rows.iter().all(|row| row.len() == 8));
    }
}
